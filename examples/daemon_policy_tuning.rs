//! Daemon policy tuning: sweep the knobs a deployer would actually turn.
//!
//! * the memory-PMD frequency step (how far to slow memory-intensive
//!   processes);
//! * the extra voltage guard margin on top of the characterized table.
//!
//! For each setting the same workload replays under the tuned Optimal
//! daemon and the energy / time / ED2P trade-off is printed — a small
//! in-repo version of the exploration §V of the paper does by hand.
//!
//! ```text
//! cargo run -p avfs-experiments --example daemon_policy_tuning
//! ```

use avfs_chip::freq::FreqStep;
use avfs_chip::presets;
use avfs_core::daemon::Daemon;
use avfs_sched::driver::DefaultPolicy;
use avfs_sched::system::{System, SystemConfig};
use avfs_sim::time::SimDuration;
use avfs_workloads::{GeneratorConfig, PerfModel, WorkloadTrace};

fn main() {
    let mut gen = GeneratorConfig::paper_default(8, 1234);
    gen.duration = SimDuration::from_secs(600);
    gen.job_scale = 0.3;
    let trace = WorkloadTrace::generate(&gen);

    // Baseline for comparison.
    let baseline = {
        let chip = presets::xgene2().build();
        let mut driver = DefaultPolicy::ondemand();
        let mut system = System::new(chip, PerfModel::xgene2(), SystemConfig::default());
        system.run(&trace, &mut driver)
    };
    println!(
        "baseline: {:.1} s, {:.1} J (X-Gene 2, {} jobs)\n",
        baseline.makespan.as_secs_f64(),
        baseline.energy_j,
        trace.len()
    );

    // --- Sweep 1: the memory-PMD frequency step. ---
    println!("memory-PMD step sweep (extra margin 0 mV):");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10}",
        "step", "energy(J)", "savings%", "penalty%", "ED2P sav%"
    );
    for step_num in [2u8, 3, 4, 6, 8] {
        let chip = presets::xgene2().build();
        let mut daemon = Daemon::optimal(&chip);
        daemon.set_mem_step(FreqStep::new(step_num).expect("valid step"));
        let mut system = System::new(chip, PerfModel::xgene2(), SystemConfig::default());
        let m = system.run(&trace, &mut daemon);
        println!(
            "{:>7}8 {:>10.1} {:>10.1} {:>10.2} {:>10.1}",
            format!("{step_num}/"),
            m.energy_j,
            m.energy_savings_vs(&baseline) * 100.0,
            m.time_penalty_vs(&baseline) * 100.0,
            m.ed2p_savings_vs(&baseline) * 100.0,
        );
        assert_eq!(m.unsafe_time_s, 0.0);
    }

    // --- Sweep 2: the extra voltage guard margin. ---
    println!("\nextra voltage margin sweep (paper step):");
    println!(
        "{:>8} {:>10} {:>10} {:>12}",
        "margin", "energy(J)", "savings%", "volt changes"
    );
    for margin in [0u32, 10, 25, 50] {
        let chip = presets::xgene2().build();
        let mut config = Daemon::optimal(&chip).config().clone();
        config.extra_margin_mv = margin;
        let mut daemon = Daemon::new(&chip, config);
        let mut system = System::new(chip, PerfModel::xgene2(), SystemConfig::default());
        let m = system.run(&trace, &mut daemon);
        println!(
            "{:>6}mV {:>10.1} {:>10.1} {:>12}",
            margin,
            m.energy_j,
            m.energy_savings_vs(&baseline) * 100.0,
            m.voltage_changes,
        );
        assert_eq!(m.unsafe_time_s, 0.0);
    }

    println!(
        "\nTakeaway: the paper's choices (step 3/8 on X-Gene 2, no extra margin)\n\
         sit at the energy-optimal corner while every setting stays safe."
    );
}
