//! Vmin explorer: walk the safe-Vmin surface of a chip the way the
//! paper's characterization campaign does.
//!
//! Prints, for both machines: the guardband at every droop class and
//! frequency class, the Figure 10 factor decomposition, and a
//! characterization campaign for one benchmark (descending voltage with
//! outcome counts — the raw material of Figures 4/5).
//!
//! ```text
//! cargo run -p avfs-experiments --example vmin_explorer
//! ```

use avfs_chip::failure::RunOutcome;
use avfs_chip::freq::FreqVminClass;
use avfs_chip::vmin::{DroopClass, VminQuery};
use avfs_chip::Millivolts;
use avfs_experiments::{factors, Machine};
use avfs_sim::RngStream;
use avfs_workloads::Benchmark;
use std::collections::BTreeMap;

fn main() {
    for machine in Machine::BOTH {
        let chip = machine.chip_builder().build();
        let model = chip.vmin_model();
        let nominal = chip.nominal_voltage();
        println!("=== {machine} (nominal {nominal}) ===\n");

        // Guardband per droop class and frequency class.
        println!(
            "{:<14} {:>14} {:>14} {:>14}",
            "droop class", "divided", "reduced", "max"
        );
        for class in DroopClass::ALL {
            let pmds = match class {
                DroopClass::D25 => 1,
                DroopClass::D35 => chip.spec().pmds() as usize / 4,
                DroopClass::D45 => chip.spec().pmds() as usize / 2,
                DroopClass::D55 => chip.spec().pmds() as usize,
            }
            .max(1);
            let row: Vec<String> = [
                FreqVminClass::Divided,
                FreqVminClass::Reduced,
                FreqVminClass::Max,
            ]
            .iter()
            .map(|&fc| {
                let q = VminQuery {
                    freq_class: fc,
                    utilized_pmds: pmds,
                    active_threads: pmds * 2,
                    workload_sensitivity: 0.0,
                };
                let v = model.safe_vmin(&q);
                format!("{v} (-{}mV)", nominal - v)
            })
            .collect();
            println!(
                "{:<14} {:>14} {:>14} {:>14}",
                class.to_string(),
                row[0],
                row[1],
                row[2]
            );
        }

        // Figure 10 decomposition.
        println!("\n{}", factors::fig10(machine));
    }

    // A raw characterization campaign, as in §III: descend voltage and
    // count outcomes per level for one benchmark on the X-Gene 2.
    let chip = Machine::XGene2.chip_builder().build();
    let bench = Benchmark::NpbLu;
    let q = VminQuery {
        freq_class: FreqVminClass::Max,
        utilized_pmds: 4,
        active_threads: 8,
        workload_sensitivity: bench.profile().vmin_sensitivity,
    };
    let safe = chip.vmin_model().safe_vmin(&q);
    let droop = chip.vmin_model().droop_class(4);
    let mut rng = RngStream::from_root(7, "vmin-explorer");
    println!("=== campaign: {bench} 8T @2.4GHz on X-Gene 2 (60 runs/level) ===");
    println!(
        "{:>8} {:>8} {:>6} {:>8} {:>6} {:>6}",
        "mV", "pass", "SDC", "timeout", "crash", "hang"
    );
    let mut v = safe.as_mv() + 15;
    loop {
        let voltage = Millivolts::new(v);
        let mut counts: BTreeMap<&str, u32> = BTreeMap::new();
        for _ in 0..60 {
            let outcome = chip
                .failure_model()
                .sample_outcome(voltage, safe, droop, &mut rng);
            let key = match outcome {
                RunOutcome::Correct => "pass",
                RunOutcome::Sdc => "sdc",
                RunOutcome::Timeout => "timeout",
                RunOutcome::SystemCrash => "crash",
                RunOutcome::ThreadHang => "hang",
                _ => "other",
            };
            *counts.entry(key).or_default() += 1;
        }
        let g = |k: &str| counts.get(k).copied().unwrap_or(0);
        println!(
            "{:>8} {:>8} {:>6} {:>8} {:>6} {:>6}",
            v,
            g("pass"),
            g("sdc"),
            g("timeout"),
            g("crash"),
            g("hang")
        );
        if g("pass") == 0 {
            println!("(complete failure — campaign stops; safe Vmin was {safe})");
            break;
        }
        v -= 10;
    }
}
