//! Quickstart: run a small server workload under the default system
//! configuration and under the paper's Optimal daemon, and compare.
//!
//! ```text
//! cargo run -p avfs-experiments --example quickstart
//! ```

use avfs_chip::presets;
use avfs_core::configs::EvalConfig;
use avfs_sched::system::{System, SystemConfig};
use avfs_sim::time::SimDuration;
use avfs_workloads::{GeneratorConfig, PerfModel, WorkloadTrace};

fn main() {
    // 1. Generate a reproducible 10-minute server workload for the
    //    8-core X-Gene 2 (random programs from the 35-program pool).
    let mut gen = GeneratorConfig::paper_default(8, 42);
    gen.duration = SimDuration::from_secs(600);
    gen.job_scale = 0.3;
    let trace = WorkloadTrace::generate(&gen);
    println!(
        "workload: {} jobs over {}s on X-Gene 2",
        trace.len(),
        trace.duration.as_secs_f64()
    );

    // 2. Replay it under Baseline and Optimal.
    let mut baseline = None;
    for config in [EvalConfig::Baseline, EvalConfig::Optimal] {
        let chip = presets::xgene2().build();
        let mut driver = config.driver(&chip);
        let mut system = System::new(chip, PerfModel::xgene2(), SystemConfig::default());
        let metrics = system.run(&trace, driver.as_mut());

        println!("\n== {config} ==");
        println!(
            "  completion time : {:8.1} s",
            metrics.makespan.as_secs_f64()
        );
        println!("  average power   : {:8.2} W", metrics.avg_power_w);
        println!("  energy          : {:8.1} J", metrics.energy_j);
        println!("  ED2P            : {:8.3e} J*s^2", metrics.ed2p());
        println!("  unsafe time     : {:8.3} s", metrics.unsafe_time_s);
        if let Some(base) = &baseline {
            println!(
                "  energy savings  : {:8.1} %",
                metrics.energy_savings_vs(base) * 100.0
            );
            println!(
                "  time penalty    : {:8.2} %",
                metrics.time_penalty_vs(base) * 100.0
            );
        }
        if baseline.is_none() {
            baseline = Some(metrics);
        }
    }
}
