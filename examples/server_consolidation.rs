//! Server-consolidation scenario: a 32-core X-Gene 3 absorbing the load
//! of several decommissioned small hosts.
//!
//! The interesting question for an operator: once the big box runs a mix
//! of latency-tolerant batch analytics (memory-bound) and compute jobs,
//! how much energy does the daemon save, and what does it cost in
//! completion time? This example replays the same consolidated workload
//! under all four §VI-B configurations and prints Table III/IV-style
//! rows plus the per-class placement picture at peak load.
//!
//! ```text
//! cargo run -p avfs-experiments --example server_consolidation
//! ```

use avfs_chip::presets;
use avfs_core::configs::EvalConfig;
use avfs_sched::system::{System, SystemConfig};
use avfs_sim::time::{SimDuration, SimTime};
use avfs_workloads::generator::{Arrival, WorkloadTrace};
use avfs_workloads::{Benchmark, PerfModel};

/// Builds the consolidation mix: three waves of batch analytics
/// (memory-bound SPEC jobs), a steady trickle of compute jobs, and two
/// parallel NPB runs.
fn consolidation_trace() -> WorkloadTrace {
    let mut arrivals = Vec::new();
    let analytics = [
        Benchmark::SpecMilc,
        Benchmark::SpecMcf,
        Benchmark::SpecLbm,
        Benchmark::SpecOmnetpp,
        Benchmark::SpecSoplex,
        Benchmark::SpecGemsFdtd,
    ];
    let compute = [
        Benchmark::SpecNamd,
        Benchmark::SpecGamess,
        Benchmark::SpecPovray,
        Benchmark::SpecGromacs,
    ];
    // Three analytics waves at t = 0, 200, 400 s (8 jobs each).
    for wave in 0..3u64 {
        for i in 0..8usize {
            arrivals.push(Arrival {
                at: SimTime::from_secs(wave * 200 + (i as u64) * 2),
                bench: analytics[i % analytics.len()],
                threads: 1,
                scale: 0.4,
            });
        }
    }
    // Compute trickle: one job every 30 s.
    for i in 0..20u64 {
        arrivals.push(Arrival {
            at: SimTime::from_secs(i * 30),
            bench: compute[(i as usize) % compute.len()],
            threads: 1,
            scale: 0.3,
        });
    }
    // Two parallel NPB runs mid-window.
    arrivals.push(Arrival {
        at: SimTime::from_secs(120),
        bench: Benchmark::NpbCg,
        threads: 8,
        scale: 0.3,
    });
    arrivals.push(Arrival {
        at: SimTime::from_secs(300),
        bench: Benchmark::NpbEp,
        threads: 8,
        scale: 0.3,
    });
    arrivals.sort_by_key(|a| a.at);
    WorkloadTrace {
        arrivals,
        duration: SimDuration::from_secs(600),
    }
}

fn main() {
    let trace = consolidation_trace();
    println!(
        "consolidated workload: {} jobs, {} threads total, X-Gene 3",
        trace.len(),
        trace.total_threads()
    );
    println!(
        "{:>10} | {:>9} | {:>8} | {:>10} | {:>8} | {:>7} | {:>6}",
        "config", "time (s)", "avg W", "energy (J)", "savings", "penalty", "migr"
    );

    let mut baseline = None;
    for config in EvalConfig::ALL {
        let chip = presets::xgene3().build();
        let mut driver = config.driver(&chip);
        let mut system = System::new(chip, PerfModel::xgene3(), SystemConfig::default());
        let m = system.run(&trace, driver.as_mut());
        let (savings, penalty) = match &baseline {
            Some(b) => (m.energy_savings_vs(b) * 100.0, m.time_penalty_vs(b) * 100.0),
            None => (0.0, 0.0),
        };
        println!(
            "{:>10} | {:>9.1} | {:>8.2} | {:>10.1} | {:>6.1} % | {:>5.2} % | {:>6}",
            config.label(),
            m.makespan.as_secs_f64(),
            m.avg_power_w,
            m.energy_j,
            savings,
            penalty,
            m.migrations,
        );
        assert_eq!(m.unsafe_time_s, 0.0, "configuration went below safe Vmin!");
        if baseline.is_none() {
            baseline = Some(m);
        } else if config == EvalConfig::Optimal {
            // Show the class mix the daemon ended up scheduling.
            let peak_mem = m.mem_class_trace.max().unwrap_or(0.0);
            let peak_cpu = m.cpu_class_trace.max().unwrap_or(0.0);
            println!(
                "\nOptimal run: peak concurrent memory-intensive procs = {peak_mem}, \
                 CPU-intensive = {peak_cpu}"
            );
        }
    }
}
