//! Offline stand-in for `crossbeam`.
//!
//! Provides the `channel` subset the daemon service uses — `bounded`
//! channels with cloneable senders and blocking `send`/`recv` — backed
//! by `std::sync::mpsc::sync_channel`, which has the same semantics for
//! this usage (rendezvous on a full buffer, `Err` once the peer is
//! dropped).

#![forbid(unsafe_code)]

/// Multi-producer channels.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Timed out with no message.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued (or the receiver is gone).
        ///
        /// # Errors
        ///
        /// Returns the message if the receiving side has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Receiver").finish_non_exhaustive()
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives (or all senders are gone).
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when no message is ready,
        /// [`TryRecvError::Disconnected`] when every sender is dropped.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Receive with a deadline.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] on expiry,
        /// [`RecvTimeoutError::Disconnected`] when every sender is dropped.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Creates a bounded channel with the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, TryRecvError};

    #[test]
    fn roundtrip_and_clone() {
        let (tx, rx) = bounded(4);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_propagates() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(9).is_err());
        let (tx2, rx2) = bounded::<u32>(1);
        drop(tx2);
        assert!(rx2.recv().is_err());
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = bounded(1);
        let t = std::thread::spawn(move || {
            for i in 0..100u32 {
                tx.send(i).unwrap();
            }
        });
        for i in 0..100u32 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        t.join().unwrap();
    }
}
