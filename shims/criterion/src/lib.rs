//! Offline stand-in for `criterion`.
//!
//! Provides the `Criterion`/`Bencher`/group API surface the bench crate
//! uses, backed by a simple wall-clock timer: each benchmark runs a few
//! timed iterations and prints the mean per-iteration time. No
//! statistical analysis, HTML reports, or warm-up tuning — the goal is
//! that `cargo bench` compiles, runs every registered benchmark, and
//! produces comparable numbers without any registry dependency.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

const DEFAULT_SAMPLES: usize = 10;

/// Runs closures and records their wall-clock time.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration time of the last `iter` call.
    last_mean: Duration,
}

impl Bencher {
    /// Times `routine`, running it `samples` times (after one untimed
    /// warm-up call) and recording the mean duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.last_mean = start.elapsed() / self.samples as u32;
    }
}

fn run_one(id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        last_mean: Duration::ZERO,
    };
    f(&mut b);
    println!(
        "bench: {id:<55} {:>12.3?}/iter ({samples} iters)",
        b.last_mean
    );
}

/// Entry point handed to each registered benchmark function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    /// Registers and immediately runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_one(id.as_ref(), self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark in the group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and immediately runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions (`criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point (`criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_registered_benches() {
        benches();
    }
}
