//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! the `proptest!` test macro, `prop_assert!`/`prop_assert_eq!`,
//! integer/float range strategies, `any::<T>()`, tuple strategies, and
//! `proptest::collection::vec`. Instead of shrinking random failures,
//! each test runs a fixed number of cases drawn from a deterministic
//! per-test RNG (seeded from the test name), so failures reproduce
//! exactly across runs and machines.

#![forbid(unsafe_code)]

/// Number of cases each `proptest!` test executes.
pub const CASES: u32 = 128;

/// Deterministic generator state used by the harness.
pub mod test_runner {
    /// splitmix64-based RNG; seeded from the test's name so every run
    /// of a given test sees the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary label (typically `stringify!(test_name)`).
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label, then run once through splitmix to
            // decorrelate similar names.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut rng = TestRng { state: h };
            rng.next_u64();
            rng
        }

        /// Next 64 uniform bits (splitmix64 step).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0, "below(0) is meaningless");
            // Rejection sampling to avoid modulo bias.
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let r = self.next_u64();
                if r < zone {
                    return r % bound;
                }
            }
        }

        /// Uniform f64 in `[0, 1)` with 53-bit precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for producing values of one type from the test RNG.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + (rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64) - (lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    impl_int_ranges!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    impl_signed_ranges!(i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + (self.end - self.start) * rng.unit_f64();
            v.clamp(self.start, self.end)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            let v = lo + (hi - lo) * rng.unit_f64();
            v.clamp(lo, hi)
        }
    }

    /// Always produces a clone of the same value (`proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / 0, B / 1);
    impl_tuple_strategy!(A / 0, B / 1, C / 2);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
}

/// Types with a canonical "whole domain" strategy (`any::<T>()`).
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Stand-in for `proptest::arbitrary::Arbitrary`.
    pub trait Arbitrary: Sized {
        /// Draws one value from the full domain of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, spanning many magnitudes.
            let mag = rng.unit_f64() * 1e12;
            if rng.next_u64() & 1 == 1 {
                -mag
            } else {
                mag
            }
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T> {
        _ty: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy over the whole domain of `T` (`proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _ty: core::marker::PhantomData,
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length. Mirrors
    /// `proptest::collection::SizeRange` so untyped range literals like
    /// `0..200` infer as `usize` ranges at the call site.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy producing `Vec`s of strategy-drawn elements.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span + 1) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a vec of `element` draws with a
    /// length drawn from `size` (e.g. `0..200` or `1..=16`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let mut prop_rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for prop_case in 0..$crate::CASES {
                    let _ = prop_case;
                    $(let $arg = ($strat).generate(&mut prop_rng);)+
                    $body
                }
            }
        )*
    };
}

/// `prop_assert!`: asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `prop_assert_eq!`: asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `prop_assert_ne!`: asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in 5usize..=9, f in -1.0f64..=1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((5..=9).contains(&y));
            prop_assert!((-1.0..=1.0).contains(&f));
        }

        #[test]
        fn tuples_and_vecs_compose(ops in collection::vec((0u16..64, any::<bool>()), 0..20)) {
            prop_assert!(ops.len() < 20);
            for (v, _flag) in ops {
                prop_assert!(v < 64);
            }
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = TestRng::deterministic("seed");
        let mut b = TestRng::deterministic("seed");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn full_domain_inclusive_range_works() {
        let mut rng = TestRng::deterministic("full");
        let s = 0u64..=u64::MAX;
        use crate::strategy::Strategy as _;
        let _ = s.generate(&mut rng);
    }
}
