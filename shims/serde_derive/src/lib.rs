//! Offline stand-in for `serde_derive`.
//!
//! The companion `serde` shim provides `Serialize`/`Deserialize` as
//! marker traits with blanket implementations, so these derives have
//! nothing to generate: they only need to *exist* (and accept the
//! `#[serde(...)]` helper attribute) for `#[derive(Serialize,
//! Deserialize)]` to keep compiling unchanged across the workspace.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; the trait is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; the trait is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
