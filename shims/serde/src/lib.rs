//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its model types
//! but (by design — the only serialized artifact is the experiment
//! `Table`, which has a hand-rolled JSON codec) never drives a generic
//! serializer through them. With no crates registry available, this
//! shim keeps those derives compiling: the traits are markers with
//! blanket implementations, and the derive macros expand to nothing.
//!
//! If real serde serialization is ever needed, replace this shim with a
//! vendored copy of the actual crate; no call sites will change.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T: ?Sized> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// `serde::de` namespace stand-in.
pub mod de {
    pub use super::DeserializeOwned;
}
