//! Offline stand-in for `parking_lot`.
//!
//! Wraps the standard-library primitives behind `parking_lot`'s
//! signatures: `lock()` returns the guard directly (poisoned locks are
//! recovered rather than propagated, matching `parking_lot`'s
//! no-poisoning semantics). Performance is std's, which is fine for the
//! daemon-service use in this workspace.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s panic-free `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free accessors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
