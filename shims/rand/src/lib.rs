//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the *subset* of the `rand` 0.8 API it actually
//! uses: [`rngs::SmallRng`], [`Rng`], and [`SeedableRng`]. `SmallRng`
//! is implemented as xoshiro256++ seeded through SplitMix64 — the same
//! algorithm the real crate uses on 64-bit targets — so the statistical
//! behaviour of every seeded simulation stream is equivalent.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seeding support (the subset used: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Draws a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1), as the real crate does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Unbiased integer draw in `[0, bound)` by rejection (Lemire-style
/// widening multiply would also do; rejection keeps it obviously
/// correct).
fn uniform_below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample an empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind the real crate's `SmallRng`
    /// on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; splitmix64 of any
            // seed cannot produce four zeros, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.gen_range(3u64..=9);
            assert!((3..=9).contains(&v));
            let w = r.gen_range(0usize..5);
            assert!(w < 5);
        }
    }

    #[test]
    fn range_mean_is_plausible() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
