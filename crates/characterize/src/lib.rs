//! Vmin characterization campaigns: measured margin maps compiled into
//! proven-safe policy tables.
//!
//! The paper's daemon drives voltage from a characterized table
//! (Table II). The rest of the workspace *models* that characterization
//! by reading the chip's Vmin surface directly
//! ([`avfs_core::policy::PolicyTable::from_characterization`]); this
//! crate closes the loop by actually **performing** it, the way the
//! authors did on real X-Gene silicon: seeded stress patterns per
//! (frequency class, droop class, thread bucket) cell, a voltage search
//! against observed pass/fail outcomes only, and enough repeated
//! confirmation passes that a certified level is trustworthy.
//!
//! * [`campaign`] — the measurement engine. [`Campaign`] ranks PMDs by
//!   measured single-PMD Vmin, then binary-searches each cell's safe
//!   level downward against the chip's sampled crash behaviour, through
//!   regulator noise, droop excursions, PMU glitches, and mailbox
//!   faults. Deterministic in its seed, bit for bit.
//! * [`margin`] — [`MarginMap`], the serializable product: JSONL with a
//!   fixed field order, so identical campaigns export identical bytes.
//! * [`compiler`] — [`TableCompiler`] turns a map plus a
//!   [`GuardbandPolicy`] into a validated
//!   [`avfs_core::policy::PolicyTable`], and
//!   [`compiler::preset_conservative`] builds the unmeasured-part foil
//!   the experiments compare against.
//! * [`recharacterizer`] — the online loop: a
//!   [`avfs_core::recharacterize::RecharacterizeTrigger`] watches droop-
//!   guard engagement, and [`Recharacterizer`] re-measures a drifted
//!   chip during idle windows and atomically swaps the daemon's table.
//!
//! # Example
//!
//! ```
//! use avfs_characterize::{Campaign, CampaignConfig, TableCompiler};
//! use avfs_chip::presets;
//!
//! let mut chip = presets::xgene2().build();
//! let map = Campaign::new(CampaignConfig::new(7)).run(&mut chip).unwrap();
//! let table = TableCompiler::default().compile(&map).unwrap();
//! // The compiled table is usable anywhere a characterized one is.
//! let daemon = avfs_core::Daemon::builder(&chip).table(table).build();
//! # let _ = daemon;
//! ```

pub mod campaign;
pub mod compiler;
pub mod margin;
pub mod recharacterizer;

pub use campaign::{Campaign, CampaignConfig, CampaignError};
pub use compiler::{preset_conservative, CompileError, GuardbandPolicy, TableCompiler};
pub use margin::{MarginCell, MarginMap, MarginMapParseError, MARGIN_MAP_SCHEMA};
pub use recharacterizer::{RecharacterizeError, Recharacterizer};
