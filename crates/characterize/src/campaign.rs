//! The characterization campaign: measuring a chip's margin map.
//!
//! The campaign treats the chip's Vmin model as **hidden ground truth**:
//! it only ever sees what real silicon would show — a sampled
//! [`RunOutcome`] per stress probe, through a haze of regulator noise,
//! transient droop excursions, glitched PMU windows, and a mailbox that
//! sometimes refuses or drops requests. Everything is driven from one
//! seeded [`RngStream`] with per-cell substreams, so a campaign is
//! bit-replayable: same seed, same chip, same [`MarginMap`], byte for
//! byte.
//!
//! Per cell the search is *descend-then-confirm*: coarse single-probe
//! steps down from nominal until the first observed failure brackets the
//! unsafe region, then a 1 mV climb where each level must survive
//! [`CampaignConfig::confirm_passes`] consecutive clean probes before it
//! is accepted as the measured safe level. Any unusable observation — a
//! probe taken during a droop excursion, or one whose PMU window
//! glitched — is discarded and retaken; a bounded streak of glitches
//! conservatively counts as a failure rather than certifying blind.

use crate::margin::{MarginCell, MarginMap};
use avfs_chip::chip::Chip;
use avfs_chip::error::ChipError;
use avfs_chip::failure::RunOutcome;
use avfs_chip::freq::FreqVminClass;
use avfs_chip::topology::PmdId;
use avfs_chip::vmin::{DroopClass, VminQuery};
use avfs_chip::voltage::Millivolts;
use avfs_core::PolicyTable;
use avfs_sim::RngStream;
use avfs_telemetry::{TraceKind, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Tuning knobs of one characterization campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Root seed; every probe decision derives from it.
    pub seed: u64,
    /// Consecutive clean probes a level needs before it is accepted.
    pub confirm_passes: u32,
    /// Step of the coarse descent from nominal, mV.
    pub coarse_step_mv: u32,
    /// Worst-case regulator undershoot: each probe runs up to this far
    /// *below* the requested level (downward-only, so noise can only make
    /// the measurement pessimistic, never optimistic).
    pub noise_mv: u32,
    /// Retries per voltage request before the mailbox counts as down.
    pub mailbox_retries: u32,
    /// Droop checks to wait out an excursion before giving up.
    pub excursion_wait_checks: u32,
    /// Consecutive glitched PMU windows tolerated per observation before
    /// the probe conservatively counts as a failure.
    pub glitch_retries: u32,
}

impl CampaignConfig {
    /// Default knobs for a given seed. `confirm_passes` of 24 bounds the
    /// chance of certifying a level more than ~20 mV below the true safe
    /// Vmin (the compile-time guardband) below ~1e-4 per campaign.
    pub fn new(seed: u64) -> Self {
        CampaignConfig {
            seed,
            confirm_passes: 24,
            coarse_step_mv: 16,
            noise_mv: 3,
            mailbox_retries: 8,
            excursion_wait_checks: 64,
            glitch_retries: 16,
        }
    }
}

/// Why a campaign aborted. Aborts leave the rail restored to nominal
/// (best effort), so a daemon supervising the campaign can fall back to
/// safe mode without extra cleanup.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CampaignError {
    /// A voltage request kept failing after all retries.
    MailboxUnavailable {
        /// The level being requested.
        level: Millivolts,
        /// Attempts spent before giving up.
        attempts: u32,
    },
    /// The rail refused a level as out of its regulated window — a
    /// campaign bug, since the search stays within `[floor, nominal]`.
    VoltageRejected {
        /// The rejected level.
        level: Millivolts,
    },
    /// A droop excursion refused to clear within the configured wait.
    ExcursionStuck {
        /// Droop checks waited before giving up.
        checks: u32,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::MailboxUnavailable { level, attempts } => {
                write!(
                    f,
                    "mailbox unavailable setting {level} after {attempts} attempts"
                )
            }
            CampaignError::VoltageRejected { level } => {
                write!(f, "rail rejected in-window level {level}")
            }
            CampaignError::ExcursionStuck { checks } => {
                write!(
                    f,
                    "droop excursion still active after {checks} waited checks"
                )
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// What one probe observation certified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Observation {
    /// The stress pattern completed correctly and the PMU window was
    /// clean.
    Pass,
    /// The run failed — or could not be certified (persistent glitches).
    Fail,
}

/// One cell's search result.
struct Measurement {
    measured_safe: Millivolts,
    highest_fail: Option<Millivolts>,
    probes: u64,
    discarded: u64,
}

/// Representative stressed thread count per policy-table bucket (the
/// worst case within the bucket, mirroring the table's characterization).
fn bucket_stress_threads(bucket: usize) -> usize {
    match bucket {
        0 => 1,
        1 => 2,
        2 => 3,
        _ => 5,
    }
}

/// A seeded characterization campaign over one chip.
#[derive(Debug, Clone)]
pub struct Campaign {
    config: CampaignConfig,
}

impl Campaign {
    /// A campaign with the given knobs.
    pub fn new(config: CampaignConfig) -> Self {
        Campaign { config }
    }

    /// The campaign's knobs.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Runs the full campaign: ranks the PMDs by measured single-PMD
    /// Vmin, then measures every achievable (frequency class, droop
    /// class, thread bucket) cell on the weakest PMDs of that cell's
    /// utilized count. The rail is left at nominal afterwards, including
    /// on abort (best effort — a dead mailbox cannot be forced).
    ///
    /// # Errors
    ///
    /// Returns a [`CampaignError`] when the chip stops cooperating; see
    /// the variants.
    pub fn run(&self, chip: &mut Chip) -> Result<MarginMap, CampaignError> {
        let result = self.run_inner(chip);
        // Best-effort restore: the campaign must never leave the rail at
        // a probe level, success or not.
        let nominal = chip.nominal_voltage();
        for _ in 0..=self.config.mailbox_retries {
            if chip.set_voltage(nominal).is_ok() {
                break;
            }
        }
        result
    }

    fn run_inner(&self, chip: &mut Chip) -> Result<MarginMap, CampaignError> {
        let telemetry = chip.telemetry().clone();
        let spec = chip.spec().clone();
        let pmds = spec.pmds() as usize;
        let root = RngStream::from_root(self.config.seed, "characterize");

        // Phase 1 — rank PMDs weakest-first by measured single-PMD Vmin.
        // The weakest-`u` prefix of this order is the worst-case stress
        // set for any `u`-PMD cell (the rail must satisfy its weakest
        // member, so only the maximum offset matters).
        let mut ranking: Vec<(u32, u16)> = Vec::with_capacity(pmds);
        for p in 0..spec.pmds() {
            let mut rng = root.substream(1_000 + u64::from(p));
            let q = VminQuery {
                freq_class: FreqVminClass::Max,
                utilized_pmds: 1,
                active_threads: 1,
                workload_sensitivity: 1.0,
            };
            let m = self.measure(chip, &q, &[PmdId::new(p)], &mut rng)?;
            ranking.push((m.measured_safe.as_mv(), p));
        }
        ranking.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let order: Vec<PmdId> = ranking.iter().map(|&(_, p)| PmdId::new(p)).collect();

        // Phase 2 — measure every achievable cell, in canonical order.
        let mut cells = Vec::new();
        let mut cell_idx = 0u64;
        for (freq_row, fc) in [
            FreqVminClass::Divided,
            FreqVminClass::Reduced,
            FreqVminClass::Max,
        ]
        .into_iter()
        .enumerate()
        {
            for dc in DroopClass::ALL {
                // The largest utilized-PMD count still inside this droop
                // class; small chips leave some classes unachievable and
                // the compiler later fills those from the class above.
                let utilized =
                    (1..=pmds).rfind(|&u| DroopClass::from_utilized_pmds(&spec, u) == dc);
                let Some(utilized) = utilized else {
                    continue;
                };
                let min_threads = (1..=pmds)
                    .filter(|&u| DroopClass::from_utilized_pmds(&spec, u) == dc)
                    .min()
                    .unwrap_or(1);
                let stress: Vec<PmdId> = order[..utilized].to_vec();
                for bucket in 0..PolicyTable::THREAD_BUCKETS {
                    let threads = bucket_stress_threads(bucket).max(min_threads);
                    let q = VminQuery {
                        freq_class: fc,
                        utilized_pmds: utilized,
                        active_threads: threads,
                        workload_sensitivity: 1.0,
                    };
                    let mut rng = root.substream(cell_idx);
                    let m = self.measure(chip, &q, &stress, &mut rng)?;
                    telemetry.counter_inc("characterize.cells");
                    telemetry.trace(TraceKind::CampaignCell, || {
                        vec![
                            ("fc", Value::U64(freq_row as u64)),
                            ("dc", Value::U64(dc.index() as u64)),
                            ("bucket", Value::U64(bucket as u64)),
                            (
                                "measured_safe_mv",
                                Value::U64(u64::from(m.measured_safe.as_mv())),
                            ),
                            ("probes", Value::U64(m.probes)),
                        ]
                    });
                    cells.push(MarginCell {
                        freq_row,
                        droop_index: dc.index(),
                        bucket,
                        utilized_pmds: utilized,
                        threads,
                        measured_safe_mv: m.measured_safe.as_mv(),
                        highest_fail_mv: m.highest_fail.map_or(0, Millivolts::as_mv),
                        probes: m.probes,
                        discarded: m.discarded,
                    });
                    cell_idx += 1;
                }
            }
        }
        Ok(MarginMap {
            chip: spec.name.clone(),
            nominal_mv: spec.nominal_mv,
            floor_mv: spec.vreg_floor_mv,
            pmds,
            seed: self.config.seed,
            confirm_passes: self.config.confirm_passes,
            cells,
        })
    }

    /// Measures one cell: coarse descent to a failure bracket, then a
    /// 1 mV confirmation climb.
    fn measure(
        &self,
        chip: &mut Chip,
        q: &VminQuery,
        stress: &[PmdId],
        rng: &mut RngStream,
    ) -> Result<Measurement, CampaignError> {
        let nominal = chip.nominal_voltage();
        let floor = Millivolts::new(chip.spec().vreg_floor_mv);
        let mut probes = 0u64;
        let mut discarded = 0u64;
        let mut highest_fail: Option<Millivolts> = None;
        let record_fail = |level: Millivolts, highest: &mut Option<Millivolts>| {
            *highest = Some(highest.map_or(level, |h| h.max(level)));
        };

        // Coarse descent: single probes stepping down from nominal. Any
        // observed failure is conclusive (probes at or above the true
        // safe Vmin never fail), so the first one brackets the search.
        let mut level = nominal;
        let mut bracket = None;
        while level > floor {
            level = Millivolts::new(level.as_mv().saturating_sub(self.config.coarse_step_mv))
                .max(floor);
            let obs = self.probe(
                chip,
                q,
                stress,
                level,
                floor,
                rng,
                &mut probes,
                &mut discarded,
            )?;
            if obs == Observation::Fail {
                record_fail(level, &mut highest_fail);
                bracket = Some(level);
                break;
            }
        }

        // Confirmation climb: from just above the bracket (or from the
        // floor when nothing failed), accept the first level that
        // survives `confirm_passes` consecutive clean probes.
        let mut level = match bracket {
            Some(l) => l.offset(1),
            None => floor,
        };
        let measured_safe = loop {
            if level >= nominal {
                // Nominal is safe by construction.
                break nominal;
            }
            let mut confirmed = true;
            for _ in 0..self.config.confirm_passes {
                let obs = self.probe(
                    chip,
                    q,
                    stress,
                    level,
                    floor,
                    rng,
                    &mut probes,
                    &mut discarded,
                )?;
                if obs == Observation::Fail {
                    record_fail(level, &mut highest_fail);
                    confirmed = false;
                    break;
                }
            }
            if confirmed {
                break level;
            }
            level = level.offset(1);
        };
        Ok(Measurement {
            measured_safe,
            highest_fail,
            probes,
            discarded,
        })
    }

    /// One certified observation at `level`: waits out droop excursions,
    /// applies downward regulator noise, programs the rail (with mailbox
    /// retries), runs the stress probe, and validates the PMU window.
    #[allow(clippy::too_many_arguments)]
    fn probe(
        &self,
        chip: &mut Chip,
        q: &VminQuery,
        stress: &[PmdId],
        level: Millivolts,
        floor: Millivolts,
        rng: &mut RngStream,
        probes: &mut u64,
        discarded: &mut u64,
    ) -> Result<Observation, CampaignError> {
        let mut glitch_streak = 0u32;
        loop {
            self.settle_droop(chip, discarded)?;
            // Downward-only undershoot: a pass at `level - jitter`
            // certifies `level` a fortiori; a jitter-induced failure only
            // makes the measurement pessimistic.
            let jitter = rng.uniform_u64(0, u64::from(self.config.noise_mv)) as u32;
            let target = Millivolts::new(level.as_mv().saturating_sub(jitter)).max(floor);
            self.set_rail(chip, target)?;
            let outcome = chip.probe_stress(q, stress, rng);
            *probes += 1;
            let glitched = chip
                .fault_plan_mut()
                .and_then(|plan| plan.sample_pmu_glitch(1_000_000, 0))
                .is_some();
            if !glitched {
                return Ok(if outcome == RunOutcome::Correct {
                    Observation::Pass
                } else {
                    Observation::Fail
                });
            }
            // A glitched PMU window cannot certify anything: retake the
            // observation, and past the tolerated streak count it as a
            // failure (conservative — never certify blind).
            *discarded += 1;
            glitch_streak += 1;
            if glitch_streak > self.config.glitch_retries {
                return Ok(Observation::Fail);
            }
        }
    }

    /// Advances droop state one check and waits out any active excursion
    /// (probes taken during one are biased pessimistic and wasted).
    fn settle_droop(&self, chip: &mut Chip, discarded: &mut u64) -> Result<(), CampaignError> {
        let Some(plan) = chip.fault_plan_mut() else {
            return Ok(());
        };
        plan.droop_check();
        let mut waits = 0u32;
        while plan.droop_excursion_active() {
            if waits >= self.config.excursion_wait_checks {
                return Err(CampaignError::ExcursionStuck { checks: waits });
            }
            waits += 1;
            *discarded += 1;
            plan.droop_check();
        }
        Ok(())
    }

    /// Programs the rail with bounded retries over transient mailbox
    /// faults (refusals, drops; latency spikes apply and are retried
    /// idempotently).
    fn set_rail(&self, chip: &mut Chip, target: Millivolts) -> Result<(), CampaignError> {
        let mut attempts = 0u32;
        loop {
            match chip.set_voltage(target) {
                Ok(()) => return Ok(()),
                Err(ChipError::MailboxRefused { .. } | ChipError::MailboxDropped) => {
                    attempts += 1;
                    if attempts > self.config.mailbox_retries {
                        return Err(CampaignError::MailboxUnavailable {
                            level: target,
                            attempts,
                        });
                    }
                }
                Err(_) => return Err(CampaignError::VoltageRejected { level: target }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_chip::fault::{FaultPlan, FaultRates};
    use avfs_chip::presets;

    #[test]
    fn campaign_is_deterministic_in_the_seed() {
        let run = |seed| {
            let mut chip = presets::xgene2().build();
            Campaign::new(CampaignConfig::new(seed))
                .run(&mut chip)
                .expect("clean chip")
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b);
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert_ne!(run(8).to_jsonl(), a.to_jsonl());
    }

    #[test]
    fn measured_levels_bracket_the_hidden_truth() {
        let mut chip = presets::xgene2().build();
        let map = Campaign::new(CampaignConfig::new(3))
            .run(&mut chip)
            .expect("clean chip");
        // 3 freq rows × 3 achievable droop classes × 4 buckets on X-Gene 2
        // (D25 needs under 1/8 of 4 PMDs busy — unachievable).
        assert_eq!(map.cells.len(), 36);
        for cell in &map.cells {
            assert!(cell.measured_safe_mv > cell.highest_fail_mv);
            assert!(cell.measured_safe_mv <= map.nominal_mv);
            assert!(cell.measured_safe_mv >= map.floor_mv);
            assert!(cell.probes >= u64::from(map.confirm_passes));
        }
        // The campaign must leave the rail back at nominal.
        assert_eq!(chip.voltage(), chip.nominal_voltage());
    }

    #[test]
    fn faulty_chip_still_characterizes_and_rail_is_restored() {
        let mut chip = presets::xgene3().build();
        chip.set_fault_plan(Some(FaultPlan::new(
            11,
            FaultRates {
                mailbox: 0.10,
                pmu: 0.05,
                droop: 0.05,
                migration: 0.0,
            },
        )));
        let map = Campaign::new(CampaignConfig::new(5))
            .run(&mut chip)
            .expect("survivable fault rates");
        assert_eq!(map.cells.len(), 48);
        let discarded: u64 = map.cells.iter().map(|c| c.discarded).sum();
        assert!(discarded > 0, "injected faults never discarded a probe");
        assert_eq!(chip.voltage(), chip.nominal_voltage());
    }

    #[test]
    fn dead_mailbox_aborts_with_a_typed_error() {
        let mut chip = presets::xgene2().build();
        chip.set_fault_plan(Some(FaultPlan::new(
            1,
            FaultRates {
                mailbox: 1.0,
                ..FaultRates::ZERO
            },
        )));
        let err = Campaign::new(CampaignConfig::new(1))
            .run(&mut chip)
            .expect_err("every request faulted");
        assert!(matches!(err, CampaignError::MailboxUnavailable { .. }));
    }
}
