//! Compiling a measured margin map into a deployable policy table.
//!
//! Raw measurements are *not* a policy: a measured level can sit a few
//! millivolts below the true safe Vmin (the confirmation ladder bounds
//! how far, it cannot make the bound zero), unachievable droop classes
//! are holes, and sampling noise can nick the table's monotonicity. The
//! [`TableCompiler`] closes all three gaps: it adds the guardband, fills
//! holes from the droop class above, restores droop- and frequency-class
//! monotonicity (only ever raising cells), and builds the final
//! [`PolicyTable`] through [`PolicyTable::from_raw`] so the regulator
//! floor is enforced by construction.

use crate::margin::MarginMap;
use avfs_chip::vmin::VminModel;
use avfs_core::policy::{PolicyError, PolicyTable};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How much pessimism the compiler adds on top of raw measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuardbandPolicy {
    /// Margin added to every measured level, mV. Must cover the deepest
    /// level the confirmation ladder could plausibly certify below the
    /// true safe Vmin (≈12 mV at the default 24 passes) plus regulator
    /// noise.
    pub margin_mv: u32,
}

impl Default for GuardbandPolicy {
    fn default() -> Self {
        GuardbandPolicy { margin_mv: 20 }
    }
}

/// Why a margin map would not compile.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileError {
    /// The map carries no cells at all.
    EmptyMap,
    /// A cell lands outside a coordinate of the 3×4×4 policy grid.
    CellOutOfRange {
        /// Frequency-class row of the offending cell.
        freq_row: usize,
        /// Droop-class column of the offending cell.
        droop_index: usize,
        /// Thread bucket of the offending cell.
        bucket: usize,
    },
    /// The assembled table failed [`PolicyTable::from_raw`] validation.
    Policy(PolicyError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::EmptyMap => write!(f, "margin map carries no cells"),
            CompileError::CellOutOfRange {
                freq_row,
                droop_index,
                bucket,
            } => write!(
                f,
                "cell [fc {freq_row}][dc {droop_index}][bucket {bucket}] outside the policy grid"
            ),
            CompileError::Policy(e) => write!(f, "compiled table rejected: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles measured margin maps into policy tables.
#[derive(Debug, Clone, Copy, Default)]
pub struct TableCompiler {
    guardband: GuardbandPolicy,
}

impl TableCompiler {
    /// A compiler applying the given guardband.
    pub fn new(guardband: GuardbandPolicy) -> Self {
        TableCompiler { guardband }
    }

    /// The guardband this compiler applies.
    pub fn guardband(&self) -> GuardbandPolicy {
        self.guardband
    }

    /// Compiles a margin map: guardband, hole filling, monotonicity
    /// fixups (raising only), then [`PolicyTable::from_raw`] validation.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] for an empty map, out-of-grid cells, or
    /// a table `from_raw` rejects (a populated cell below the regulator
    /// floor).
    pub fn compile(&self, map: &MarginMap) -> Result<PolicyTable, CompileError> {
        if map.cells.is_empty() {
            return Err(CompileError::EmptyMap);
        }
        let mut grid = [[[0u32; 4]; 4]; 3];
        for cell in &map.cells {
            let slot = grid
                .get_mut(cell.freq_row)
                .and_then(|row| row.get_mut(cell.droop_index))
                .and_then(|col| col.get_mut(cell.bucket))
                .ok_or(CompileError::CellOutOfRange {
                    freq_row: cell.freq_row,
                    droop_index: cell.droop_index,
                    bucket: cell.bucket,
                })?;
            *slot = cell
                .measured_safe_mv
                .saturating_add(self.guardband.margin_mv)
                .min(map.nominal_mv);
        }
        // Hole filling and droop monotonicity, per frequency row: an
        // unmeasured (unachievable) class inherits the class above it —
        // safe, since less droop never needs more voltage.
        for row in &mut grid {
            // The droop/bucket coordinates are the point of this
            // traversal; an iterator chain would obscure them.
            #[allow(clippy::needless_range_loop)]
            for bucket in 0..4 {
                for dc in (0..3).rev() {
                    if row[dc][bucket] == 0 {
                        row[dc][bucket] = row[dc + 1][bucket];
                    }
                }
                for dc in 1..4 {
                    row[dc][bucket] = row[dc][bucket].max(row[dc - 1][bucket]);
                }
            }
        }
        // Frequency-class monotonicity: sampling noise can nick the
        // Divided ≤ Reduced ≤ Max ordering where the true rows tie.
        // Indexing keeps the cross-row max readable.
        #[allow(clippy::needless_range_loop)]
        for dc in 0..4 {
            for bucket in 0..4 {
                grid[1][dc][bucket] = grid[1][dc][bucket].max(grid[0][dc][bucket]);
                grid[2][dc][bucket] = grid[2][dc][bucket].max(grid[1][dc][bucket]);
            }
        }
        PolicyTable::from_raw(grid, map.nominal_mv, map.floor_mv, map.pmds)
            .map_err(CompileError::Policy)
    }
}

/// The measured tables' foil: a preset table carrying the extra shipping
/// guardband an unmeasured part needs. Built from the chip's *modeled*
/// characterization with `extra` blanket pessimism on every cell
/// (capped at nominal) — what a vendor ships when it cannot afford a
/// per-part campaign.
///
/// # Errors
///
/// Returns [`CompileError::Policy`] if the widened table violates the
/// regulator floor (cannot happen for the built-in presets — widening
/// only raises cells).
pub fn preset_conservative(
    model: &VminModel,
    extra: GuardbandPolicy,
) -> Result<PolicyTable, CompileError> {
    use avfs_chip::freq::FreqVminClass;
    use avfs_chip::vmin::DroopClass;
    let spec = model.spec();
    let base = PolicyTable::from_characterization(model);
    let mut grid = [[[0u32; 4]; 4]; 3];
    for (fi, fc) in [
        FreqVminClass::Divided,
        FreqVminClass::Reduced,
        FreqVminClass::Max,
    ]
    .into_iter()
    .enumerate()
    {
        for dc in DroopClass::ALL {
            // The bucket coordinate is the point; keep the index.
            #[allow(clippy::needless_range_loop)]
            for bucket in 0..PolicyTable::THREAD_BUCKETS {
                grid[fi][dc.index()][bucket] = base
                    .cell(fc, dc, bucket)
                    .saturating_add(extra.margin_mv)
                    .min(spec.nominal_mv);
            }
        }
    }
    PolicyTable::from_raw(
        grid,
        spec.nominal_mv,
        spec.vreg_floor_mv,
        spec.pmds() as usize,
    )
    .map_err(CompileError::Policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, CampaignConfig};
    use avfs_chip::freq::FreqVminClass;
    use avfs_chip::presets;
    use avfs_chip::vmin::DroopClass;

    fn measured_table(seed: u64) -> (avfs_chip::chip::Chip, PolicyTable) {
        let mut chip = presets::xgene2().build();
        let map = Campaign::new(CampaignConfig::new(seed))
            .run(&mut chip)
            .expect("clean chip");
        let table = TableCompiler::default().compile(&map).expect("compiles");
        (chip, table)
    }

    #[test]
    fn compiled_table_is_full_and_monotone() {
        let (_, table) = measured_table(7);
        for fc in [
            FreqVminClass::Divided,
            FreqVminClass::Reduced,
            FreqVminClass::Max,
        ] {
            for bucket in 0..PolicyTable::THREAD_BUCKETS {
                let mut prev = 0;
                for dc in DroopClass::ALL {
                    let v = table.cell(fc, dc, bucket);
                    assert!(v > 0, "hole at [{fc:?}][{dc:?}][{bucket}]");
                    assert!(v >= prev, "droop monotonicity broken");
                    prev = v;
                }
            }
        }
        for dc in DroopClass::ALL {
            for bucket in 0..PolicyTable::THREAD_BUCKETS {
                let div = table.cell(FreqVminClass::Divided, dc, bucket);
                let red = table.cell(FreqVminClass::Reduced, dc, bucket);
                let max = table.cell(FreqVminClass::Max, dc, bucket);
                assert!(div <= red && red <= max, "freq monotonicity broken");
            }
        }
    }

    #[test]
    fn compiled_cells_cover_the_hidden_truth() {
        // The safety contract: every compiled cell is at or above the
        // model's true worst-case safe Vmin for that cell's region.
        for (chip, preset) in [
            (presets::xgene2().build(), "xg2"),
            (presets::xgene3().build(), "xg3"),
        ] {
            let mut chip = chip;
            let map = Campaign::new(CampaignConfig::new(7))
                .run(&mut chip)
                .expect("clean chip");
            let table = TableCompiler::default().compile(&map).expect("compiles");
            let model = chip.vmin_model();
            let spec = chip.spec();
            for cell in &map.cells {
                let fc = [
                    FreqVminClass::Divided,
                    FreqVminClass::Reduced,
                    FreqVminClass::Max,
                ][cell.freq_row];
                // True worst case: the genuinely weakest PMDs by model
                // offset, worst-case workload.
                let mut by_offset: Vec<_> = (0..spec.pmds())
                    .map(avfs_chip::topology::PmdId::new)
                    .collect();
                by_offset.sort_by_key(|&p| std::cmp::Reverse(model.pmd_offset_mv(p)));
                let worst = &by_offset[..cell.utilized_pmds];
                let q = avfs_chip::vmin::VminQuery {
                    freq_class: fc,
                    utilized_pmds: cell.utilized_pmds,
                    active_threads: cell.threads,
                    workload_sensitivity: 1.0,
                };
                let truth = model.safe_vmin_on(&q, worst);
                let dc = DroopClass::ALL[cell.droop_index];
                let compiled = table.cell(fc, dc, cell.bucket);
                assert!(
                    compiled >= truth.as_mv(),
                    "{preset}: cell [{fc:?}][{dc:?}][{}] compiled {compiled} < truth {truth}",
                    cell.bucket
                );
            }
        }
    }

    #[test]
    fn recompiling_an_imported_map_is_bit_identical() {
        let mut chip = presets::xgene3().build();
        let map = Campaign::new(CampaignConfig::new(21))
            .run(&mut chip)
            .expect("clean chip");
        let direct = TableCompiler::default().compile(&map).expect("compiles");
        let imported = MarginMap::from_jsonl(&map.to_jsonl()).expect("round trip");
        assert_eq!(imported, map);
        let recompiled = TableCompiler::default()
            .compile(&imported)
            .expect("compiles");
        assert_eq!(recompiled, direct);
    }

    #[test]
    fn empty_map_is_rejected() {
        let map = MarginMap {
            chip: "x".to_string(),
            nominal_mv: 980,
            floor_mv: 600,
            pmds: 4,
            seed: 0,
            confirm_passes: 1,
            cells: Vec::new(),
        };
        assert_eq!(
            TableCompiler::default().compile(&map).expect_err("empty"),
            CompileError::EmptyMap
        );
    }

    #[test]
    fn out_of_grid_cell_is_rejected() {
        let mut chip = presets::xgene2().build();
        let mut map = Campaign::new(CampaignConfig::new(1))
            .run(&mut chip)
            .expect("clean chip");
        map.cells[0].bucket = 9;
        assert!(matches!(
            TableCompiler::default()
                .compile(&map)
                .expect_err("bad bucket"),
            CompileError::CellOutOfRange { bucket: 9, .. }
        ));
    }

    #[test]
    fn measured_tables_undercut_the_conservative_preset() {
        // The reclaimed-savings claim in miniature: on average the
        // measured table sits strictly lower than the shipping table
        // with its blanket extra guardband.
        let (chip, measured) = measured_table(7);
        let conservative =
            preset_conservative(chip.vmin_model(), GuardbandPolicy { margin_mv: 30 })
                .expect("widened preset");
        let avg = |t: &PolicyTable| {
            let mut sum = 0u64;
            for fc in [
                FreqVminClass::Divided,
                FreqVminClass::Reduced,
                FreqVminClass::Max,
            ] {
                for dc in DroopClass::ALL {
                    for bucket in 0..PolicyTable::THREAD_BUCKETS {
                        sum += u64::from(t.cell(fc, dc, bucket));
                    }
                }
            }
            sum
        };
        assert!(
            avg(&measured) < avg(&conservative),
            "measured {} >= conservative {}",
            avg(&measured),
            avg(&conservative)
        );
    }
}
