//! The measured margin map: a characterization campaign's raw product.
//!
//! A [`MarginMap`] records, for every achievable (frequency class, droop
//! class, thread bucket) cell, the lowest voltage the campaign could
//! confirm safe on the weakest PMDs of that cell — plus enough probe
//! bookkeeping (highest failing level, probe and discard counts) to audit
//! the measurement afterwards. The map serializes to JSONL with a fixed
//! field order, so two campaigns run from the same seed export
//! byte-identical files and any drift in the engine shows up as a diff.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Format tag written into (and required from) every margin-map header.
pub const MARGIN_MAP_SCHEMA: &str = "avfs-margin-map/v1";

/// One measured characterization cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarginCell {
    /// Frequency-class row (0 = Divided, 1 = Reduced, 2 = Max).
    pub freq_row: usize,
    /// Droop-class column (`DroopClass::index()`).
    pub droop_index: usize,
    /// Thread bucket (0 → 1T, 1 → 2T, 2 → 3–4T, 3 → many).
    pub bucket: usize,
    /// Utilized-PMD count the cell was stressed at (the largest count
    /// still inside the droop class).
    pub utilized_pmds: usize,
    /// Active threads the cell was stressed at.
    pub threads: usize,
    /// Lowest voltage that passed the full confirmation ladder, mV.
    pub measured_safe_mv: u32,
    /// Highest voltage at which any probe failed (0 if none did — the
    /// search bottomed out at the regulator floor without a failure).
    pub highest_fail_mv: u32,
    /// Stress probes spent on this cell (including confirmation passes).
    pub probes: u64,
    /// Observations discarded as unusable: droop-excursion waits and
    /// glitched PMU windows.
    pub discarded: u64,
}

/// A complete measured margin map for one chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarginMap {
    /// Name of the characterized chip (its spec name).
    pub chip: String,
    /// Nominal rail voltage of the characterized chip, mV.
    pub nominal_mv: u32,
    /// Regulator floor of the characterized chip, mV.
    pub floor_mv: u32,
    /// Total PMDs on the characterized chip.
    pub pmds: usize,
    /// Campaign seed the map was measured under.
    pub seed: u64,
    /// Confirmation passes each accepted level had to survive.
    pub confirm_passes: u32,
    /// Measured cells, in canonical campaign order (frequency class
    /// ascending, droop class ascending, bucket ascending).
    pub cells: Vec<MarginCell>,
}

/// A line the JSONL importer could not digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarginMapParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for MarginMapParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "margin map line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for MarginMapParseError {}

impl MarginMap {
    /// Renders the map as JSONL: one header line, then one line per cell
    /// in canonical order. Field order is fixed, so identical maps render
    /// identical bytes.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"kind\":\"margin-map\",\"schema\":\"{}\",\"chip\":\"{}\",\
             \"nominal_mv\":{},\"floor_mv\":{},\"pmds\":{},\"seed\":{},\
             \"confirm_passes\":{},\"cells\":{}}}\n",
            MARGIN_MAP_SCHEMA,
            escape_json(&self.chip),
            self.nominal_mv,
            self.floor_mv,
            self.pmds,
            self.seed,
            self.confirm_passes,
            self.cells.len(),
        ));
        for c in &self.cells {
            out.push_str(&format!(
                "{{\"kind\":\"cell\",\"fc\":{},\"dc\":{},\"bucket\":{},\
                 \"utilized_pmds\":{},\"threads\":{},\"measured_safe_mv\":{},\
                 \"highest_fail_mv\":{},\"probes\":{},\"discarded\":{}}}\n",
                c.freq_row,
                c.droop_index,
                c.bucket,
                c.utilized_pmds,
                c.threads,
                c.measured_safe_mv,
                c.highest_fail_mv,
                c.probes,
                c.discarded,
            ));
        }
        out
    }

    /// Parses a JSONL rendering produced by [`MarginMap::to_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns [`MarginMapParseError`] on a missing/foreign header, an
    /// unknown schema, a malformed line, or a cell-count mismatch.
    pub fn from_jsonl(text: &str) -> Result<Self, MarginMapParseError> {
        let err = |line: usize, message: &str| MarginMapParseError {
            line,
            message: message.to_string(),
        };
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| err(1, "empty input, expected a margin-map header"))?;
        if field_str(header, "kind").as_deref() != Some("margin-map") {
            return Err(err(1, "first line is not a margin-map header"));
        }
        match field_str(header, "schema") {
            Some(s) if s == MARGIN_MAP_SCHEMA => {}
            other => {
                return Err(err(
                    1,
                    &format!("unsupported schema {other:?}, expected {MARGIN_MAP_SCHEMA:?}"),
                ))
            }
        }
        let chip = field_str(header, "chip").ok_or_else(|| err(1, "header missing chip name"))?;
        let need = |n: usize, key: &str, line: &str| {
            field_u64(line, key).ok_or_else(|| err(n, &format!("missing numeric field {key:?}")))
        };
        let nominal_mv = need(1, "nominal_mv", header)? as u32;
        let floor_mv = need(1, "floor_mv", header)? as u32;
        let pmds = need(1, "pmds", header)? as usize;
        let seed = need(1, "seed", header)?;
        let confirm_passes = need(1, "confirm_passes", header)? as u32;
        let declared = need(1, "cells", header)? as usize;
        let mut cells = Vec::with_capacity(declared);
        for (idx, line) in lines {
            let n = idx + 1;
            if line.trim().is_empty() {
                continue;
            }
            if field_str(line, "kind").as_deref() != Some("cell") {
                return Err(err(n, "expected a cell line"));
            }
            cells.push(MarginCell {
                freq_row: need(n, "fc", line)? as usize,
                droop_index: need(n, "dc", line)? as usize,
                bucket: need(n, "bucket", line)? as usize,
                utilized_pmds: need(n, "utilized_pmds", line)? as usize,
                threads: need(n, "threads", line)? as usize,
                measured_safe_mv: need(n, "measured_safe_mv", line)? as u32,
                highest_fail_mv: need(n, "highest_fail_mv", line)? as u32,
                probes: need(n, "probes", line)?,
                discarded: need(n, "discarded", line)?,
            });
        }
        if cells.len() != declared {
            return Err(err(
                1,
                &format!(
                    "header declares {declared} cells, file carries {}",
                    cells.len()
                ),
            ));
        }
        Ok(MarginMap {
            chip,
            nominal_mv,
            floor_mv,
            pmds,
            seed,
            confirm_passes,
            cells,
        })
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn unescape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(decoded) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(decoded);
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Extracts `"key":<number>` from a single JSON line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Extracts `"key":"<string>"` from a single JSON line, unescaping it.
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    // Walk to the closing quote, skipping escaped characters.
    let mut end = None;
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        match (escaped, c) {
            (true, _) => escaped = false,
            (false, '\\') => escaped = true,
            (false, '"') => {
                end = Some(i);
                break;
            }
            _ => {}
        }
    }
    Some(unescape_json(&rest[..end?]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MarginMap {
        MarginMap {
            chip: "X-Gene 2".to_string(),
            nominal_mv: 980,
            floor_mv: 600,
            pmds: 4,
            seed: 7,
            confirm_passes: 24,
            cells: vec![
                MarginCell {
                    freq_row: 2,
                    droop_index: 1,
                    bucket: 0,
                    utilized_pmds: 1,
                    threads: 1,
                    measured_safe_mv: 912,
                    highest_fail_mv: 911,
                    probes: 321,
                    discarded: 2,
                },
                MarginCell {
                    freq_row: 2,
                    droop_index: 3,
                    bucket: 3,
                    utilized_pmds: 4,
                    threads: 5,
                    measured_safe_mv: 931,
                    highest_fail_mv: 930,
                    probes: 188,
                    discarded: 0,
                },
            ],
        }
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let map = sample();
        let text = map.to_jsonl();
        let back = MarginMap::from_jsonl(&text).expect("round trip");
        assert_eq!(back, map);
        // Re-export is byte-identical.
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn header_carries_schema_and_cell_count() {
        let text = sample().to_jsonl();
        let header = text.lines().next().expect("header");
        assert!(header.contains("\"schema\":\"avfs-margin-map/v1\""));
        assert!(header.contains("\"cells\":2"));
    }

    #[test]
    fn parser_rejects_foreign_and_truncated_input() {
        assert!(MarginMap::from_jsonl("").is_err());
        assert!(MarginMap::from_jsonl("{\"kind\":\"trace\"}").is_err());
        // Drop the last cell line: count mismatch.
        let text = sample().to_jsonl();
        let truncated: Vec<&str> = text.lines().take(2).collect();
        let err = MarginMap::from_jsonl(&truncated.join("\n")).expect_err("truncated");
        assert!(err.message.contains("declares 2 cells"));
        // Unknown schema.
        let swapped = text.replace("avfs-margin-map/v1", "avfs-margin-map/v9");
        assert!(MarginMap::from_jsonl(&swapped).is_err());
    }

    #[test]
    fn chip_names_with_quotes_survive() {
        let mut map = sample();
        map.chip = "odd \"name\" \\ here".to_string();
        let back = MarginMap::from_jsonl(&map.to_jsonl()).expect("escaped");
        assert_eq!(back.chip, map.chip);
    }
}
