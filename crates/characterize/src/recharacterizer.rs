//! Online recharacterization: keeping a measured table honest as the
//! silicon drifts.
//!
//! A drifted chip raises its true safe Vmin, the droop guard starts
//! engaging for sustained stretches, and the daemon-side
//! [`RecharacterizeTrigger`] eventually fires during an idle window. The
//! [`Recharacterizer`] then owns the rest: run a fresh campaign against
//! the drifted chip (each run under a distinct derived seed), compile it
//! with the standing guardband, and atomically swap the daemon's table.
//! A campaign that aborts mid-flight leaves the old table installed and
//! the rail restored to nominal — the daemon's safe-mode machinery keeps
//! the chip correct while the trigger cools down and retries.

use crate::campaign::{Campaign, CampaignConfig, CampaignError};
use crate::compiler::{CompileError, GuardbandPolicy, TableCompiler};
use avfs_chip::chip::Chip;
use avfs_core::daemon::Daemon;
use avfs_core::policy::PolicyError;
use avfs_core::recharacterize::RecharacterizeTrigger;
use avfs_telemetry::{TraceKind, Value};
use std::fmt;

/// Why a recharacterization pass failed (the old table stays installed).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RecharacterizeError {
    /// The measurement campaign aborted.
    Campaign(CampaignError),
    /// The fresh map would not compile.
    Compile(CompileError),
    /// The daemon rejected the compiled table (shape mismatch).
    Swap(PolicyError),
}

impl fmt::Display for RecharacterizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecharacterizeError::Campaign(e) => write!(f, "campaign aborted: {e}"),
            RecharacterizeError::Compile(e) => write!(f, "map failed to compile: {e}"),
            RecharacterizeError::Swap(e) => write!(f, "daemon rejected the table: {e}"),
        }
    }
}

impl std::error::Error for RecharacterizeError {}

/// The full online loop: trigger, campaign, compile, swap.
#[derive(Debug, Clone)]
pub struct Recharacterizer {
    campaign: CampaignConfig,
    guardband: GuardbandPolicy,
    trigger: RecharacterizeTrigger,
    runs: u64,
}

impl Recharacterizer {
    /// Assembles the loop from its three policies.
    pub fn new(
        campaign: CampaignConfig,
        guardband: GuardbandPolicy,
        trigger: RecharacterizeTrigger,
    ) -> Self {
        Recharacterizer {
            campaign,
            guardband,
            trigger,
            runs: 0,
        }
    }

    /// Feeds one closed monitor window to the trigger. Returns `true`
    /// when a recharacterization pass should start now.
    pub fn observe_window(&mut self, droop_guard_active: bool, idle: bool) -> bool {
        self.trigger.observe(droop_guard_active, idle)
    }

    /// The embedded trigger, for inspection.
    pub fn trigger(&self) -> &RecharacterizeTrigger {
        &self.trigger
    }

    /// Completed (successful) recharacterization passes.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Runs one full pass: campaign on the (possibly drifted) chip,
    /// compile, and atomic table swap into the daemon. Each pass derives
    /// a fresh campaign seed (`seed + runs`) so a retry after an abort
    /// does not replay the aborted probe sequence. Traced as a
    /// [`TraceKind::Recharacterization`], success or not.
    ///
    /// # Errors
    ///
    /// Returns [`RecharacterizeError`]; on any error the daemon's
    /// current table is left untouched.
    pub fn recharacterize(
        &mut self,
        chip: &mut Chip,
        daemon: &mut Daemon,
    ) -> Result<(), RecharacterizeError> {
        let telemetry = chip.telemetry().clone();
        let config = CampaignConfig {
            seed: self.campaign.seed.wrapping_add(self.runs),
            ..self.campaign
        };
        let result = Campaign::new(config)
            .run(chip)
            .map_err(RecharacterizeError::Campaign)
            .and_then(|map| {
                TableCompiler::new(self.guardband)
                    .compile(&map)
                    .map_err(RecharacterizeError::Compile)
            })
            .and_then(|table| daemon.swap_table(table).map_err(RecharacterizeError::Swap));
        let ok = result.is_ok();
        if ok {
            self.runs += 1;
        }
        telemetry.counter_inc("characterize.recharacterizations");
        telemetry.trace(TraceKind::Recharacterization, || {
            vec![
                ("seed", Value::U64(config.seed)),
                ("ok", Value::Bool(ok)),
                ("completed_runs", Value::U64(self.runs)),
            ]
        });
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_chip::presets;
    use avfs_chip::vmin::VminDrift;

    fn daemon_for(chip: &Chip) -> Daemon {
        Daemon::builder(chip).build()
    }

    #[test]
    fn a_pass_swaps_in_a_table_proven_against_the_drifted_chip() {
        let mut chip = presets::xgene2().build();
        let mut daemon = daemon_for(&chip);
        let stale_static = daemon
            .policy_table()
            .static_safe_voltage(avfs_chip::freq::FreqVminClass::Max);
        chip.apply_vmin_drift(VminDrift::aging(15));
        let mut r = Recharacterizer::new(
            CampaignConfig::new(7),
            GuardbandPolicy::default(),
            RecharacterizeTrigger::new(3, 8),
        );
        r.recharacterize(&mut chip, &mut daemon)
            .expect("clean pass");
        assert_eq!(r.runs(), 1);
        let fresh_static = daemon
            .policy_table()
            .static_safe_voltage(avfs_chip::freq::FreqVminClass::Max);
        // The fresh table absorbed the 15 mV drift.
        assert!(
            fresh_static > stale_static,
            "fresh {fresh_static} vs stale {stale_static}"
        );
        assert_eq!(chip.voltage(), chip.nominal_voltage());
    }

    #[test]
    fn aborted_pass_leaves_the_old_table_installed() {
        use avfs_chip::fault::{FaultPlan, FaultRates};
        let mut chip = presets::xgene2().build();
        let mut daemon = daemon_for(&chip);
        let before = daemon.policy_table().clone();
        chip.set_fault_plan(Some(FaultPlan::new(
            1,
            FaultRates {
                mailbox: 1.0,
                ..FaultRates::ZERO
            },
        )));
        let mut r = Recharacterizer::new(
            CampaignConfig::new(7),
            GuardbandPolicy::default(),
            RecharacterizeTrigger::new(3, 8),
        );
        let err = r
            .recharacterize(&mut chip, &mut daemon)
            .expect_err("dead mailbox");
        assert!(matches!(err, RecharacterizeError::Campaign(_)));
        assert_eq!(r.runs(), 0);
        assert_eq!(daemon.policy_table(), &before);
    }

    #[test]
    fn retries_derive_fresh_seeds() {
        let mut chip = presets::xgene2().build();
        let mut daemon = daemon_for(&chip);
        let mut r = Recharacterizer::new(
            CampaignConfig::new(100),
            GuardbandPolicy::default(),
            RecharacterizeTrigger::new(1, 0),
        );
        r.recharacterize(&mut chip, &mut daemon).expect("first");
        r.recharacterize(&mut chip, &mut daemon).expect("second");
        assert_eq!(r.runs(), 2);
    }
}
