//! Deterministic tracing/metrics layer for the AVFS workspace.
//!
//! The paper's daemon is an online *monitoring* loop; this crate gives
//! the reproduction first-class observability over that loop without
//! compromising the property every experiment leans on: **bit-identical
//! reruns**. Three rules make that hold:
//!
//! * **No wall clock.** Every trace event is stamped with [`SimTime`]
//!   propagated from the simulator via [`Observer::advance_to`]. Two
//!   identical seeded runs therefore produce byte-identical journals.
//! * **Static metric names.** Counters, gauges and histograms are keyed
//!   by `&'static str` and stored in `BTreeMap`s, so snapshots and
//!   exports iterate in a stable order independent of insertion history.
//! * **Bounded memory.** The trace journal is a ring of fixed capacity;
//!   overflow drops the *oldest* events and counts the drops, so a long
//!   run can always keep tracing.
//!
//! The seam between the instrumented crates and this one is the
//! [`Telemetry`] handle: a cheap clonable façade over an optional
//! observer. When constructed with [`Telemetry::null`] every method is a
//! single `Option` branch and the closure passed to [`Telemetry::trace`]
//! is never invoked — no event is built, nothing allocates. That is the
//! zero-cost guarantee `crates/bench` verifies.

use avfs_sim::time::SimTime;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Default capacity of the hub's ring journal, in events.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 65_536;

/// Bucket upper bounds (inclusive) shared by every histogram. Decade
/// buckets cover everything the workspace observes — action counts per
/// dispatch through accounted backoff microseconds.
pub const HISTOGRAM_BOUNDS: [u64; 7] = [1, 10, 100, 1_000, 10_000, 100_000, 1_000_000];

/// One field value attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned counter-like quantity.
    U64(u64),
    /// Signed quantity (gauge deltas, offsets).
    I64(i64),
    /// Measured quantity (power, savings). Serialized via `Display`,
    /// which is deterministic for finite values; non-finite values
    /// serialize as JSON `null`.
    F64(f64),
    /// Flag.
    Bool(bool),
    /// Static label (state names, action kinds).
    Str(&'static str),
    /// Owned label (formatted detail, error text).
    Text(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

/// Escapes `s` into `out` as the body of a JSON string literal.
fn write_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            Value::F64(_) => out.push_str("null"),
            Value::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Str(s) => {
                out.push('"');
                write_json_escaped(out, s);
                out.push('"');
            }
            Value::Text(s) => {
                out.push('"');
                write_json_escaped(out, s);
                out.push('"');
            }
        }
    }
}

/// What kind of decision point a trace event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceKind {
    /// A run or component initialized.
    Init,
    /// One closed monitor window's power/voltage/occupancy sample.
    MonitorSample,
    /// A process's frequency-vs-Vmin class flipped.
    Classification,
    /// The daemon produced a new plan.
    Replan,
    /// The scheduler dispatched a driver's action batch.
    ActionDispatch,
    /// A request entered the SLIMpro mailbox.
    MailboxCall,
    /// A mailbox request failed (injected or window-refused).
    MailboxFault,
    /// The recovery state machine changed state.
    RecoveryTransition,
    /// The droop guardband engaged or released.
    DroopGuard,
    /// The migration watchdog rescued a wedged migration.
    Watchdog,
    /// The fleet front door routed a job to a node.
    FleetRoute,
    /// The fleet front door shed a job (no node could admit it).
    FleetShed,
    /// A fleet node's health machine fenced it (no new work routed).
    NodeFenced,
    /// A fenced fleet node passed probation and rejoined the routable set.
    NodeRecovered,
    /// A fleet node's chip was pessimized by an injected degrade fault.
    NodeDegraded,
    /// A job drained from a failed node was re-dispatched (or exhausted
    /// its retry budget).
    JobRedispatch,
    /// A characterization campaign accepted one measured margin-map cell.
    CampaignCell,
    /// A scripted aging/temperature drift shifted the chip's true Vmin.
    DriftEvent,
    /// The daemon atomically swapped in a recompiled policy table.
    TableSwap,
    /// An online recharacterization pass started or finished.
    Recharacterization,
}

impl TraceKind {
    /// Stable snake_case name used in the JSONL export.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::Init => "init",
            TraceKind::MonitorSample => "monitor_sample",
            TraceKind::Classification => "classification",
            TraceKind::Replan => "replan",
            TraceKind::ActionDispatch => "action_dispatch",
            TraceKind::MailboxCall => "mailbox_call",
            TraceKind::MailboxFault => "mailbox_fault",
            TraceKind::RecoveryTransition => "recovery_transition",
            TraceKind::DroopGuard => "droop_guard",
            TraceKind::Watchdog => "watchdog",
            TraceKind::FleetRoute => "fleet_route",
            TraceKind::FleetShed => "fleet_shed",
            TraceKind::NodeFenced => "node_fenced",
            TraceKind::NodeRecovered => "node_recovered",
            TraceKind::NodeDegraded => "node_degraded",
            TraceKind::JobRedispatch => "job_redispatch",
            TraceKind::CampaignCell => "campaign_cell",
            TraceKind::DriftEvent => "drift_event",
            TraceKind::TableSwap => "table_swap",
            TraceKind::Recharacterization => "recharacterization",
        }
    }
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One span-style trace event in the ring journal.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Monotone sequence number, assigned by the hub.
    pub seq: u64,
    /// Simulated time the event was recorded at.
    pub at: SimTime,
    /// Decision point.
    pub kind: TraceKind,
    /// Event-specific fields, in recording order.
    pub fields: Vec<(&'static str, Value)>,
}

impl TraceEvent {
    /// Renders the event as one JSON object (no trailing newline). The
    /// codec is hand-rolled: the workspace's `serde` is an offline
    /// marker shim (see `shims/serde`).
    pub fn to_json_line(&self) -> String {
        self.to_json_line_tagged(None)
    }

    /// Like [`Self::to_json_line`], with an optional extra integer field
    /// injected right after `kind`. Used by multi-hub aggregators (the
    /// fleet journal) to tag each line with its source without touching
    /// the recorded event.
    pub fn to_json_line_tagged(&self, tag: Option<(&'static str, u64)>) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"seq\":{},\"t_ns\":{},\"kind\":\"{}\"",
            self.seq,
            self.at.as_nanos(),
            self.kind.as_str()
        );
        if let Some((name, value)) = tag {
            let _ = write!(out, ",\"{name}\":{value}");
        }
        for (name, value) in &self.fields {
            out.push_str(",\"");
            write_json_escaped(&mut out, name);
            out.push_str("\":");
            value.write_json(&mut out);
        }
        out.push('}');
        out
    }
}

/// The sink side of the telemetry seam.
///
/// Implementations must be deterministic functions of the call sequence:
/// no wall clock, no ambient randomness. The instrumented crates only
/// ever talk to an observer through the [`Telemetry`] handle, which
/// serializes access, so `&mut self` methods need no internal locking.
pub trait Observer: Send {
    /// Propagates simulated time; subsequent events are stamped at `at`.
    /// Called by clock-owning layers (the scheduler, the daemon) on
    /// behalf of clock-less ones (the chip).
    fn advance_to(&mut self, _at: SimTime) {}

    /// Adds `delta` to the named monotone counter.
    fn counter_add(&mut self, name: &'static str, delta: u64);

    /// Sets the named gauge to `value`.
    fn gauge_set(&mut self, name: &'static str, value: i64);

    /// Records one observation into the named histogram.
    fn histogram_observe(&mut self, name: &'static str, value: u64);

    /// Appends a trace event with the given fields.
    fn record(&mut self, kind: TraceKind, fields: Vec<(&'static str, Value)>);
}

/// The do-nothing observer: every hook is a no-op the optimizer can
/// erase. [`Telemetry::null`] does not even allocate one — the handle's
/// sink is `None` — but the type exists for callers that want to pass an
/// explicit observer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn counter_add(&mut self, _name: &'static str, _delta: u64) {}
    fn gauge_set(&mut self, _name: &'static str, _value: i64) {}
    fn histogram_observe(&mut self, _name: &'static str, _value: u64) {}
    fn record(&mut self, _kind: TraceKind, _fields: Vec<(&'static str, Value)>) {}
}

/// A fixed-bucket histogram: decade buckets plus count/sum/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[i]` counts observations `<= HISTOGRAM_BOUNDS[i]`; the
    /// final slot counts overflows.
    pub buckets: [u64; HISTOGRAM_BOUNDS.len() + 1],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BOUNDS.len() + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let slot = HISTOGRAM_BOUNDS
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(HISTOGRAM_BOUNDS.len());
        self.buckets[slot] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A point-in-time copy of the hub's metric registries, in stable
/// (sorted-by-name) order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotone counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<&'static str, i64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsSnapshot {
    /// The named counter's value, 0 if never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if it ever observed anything.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }
}

/// The standard observer: metric registries plus a bounded ring journal
/// of trace events, exportable as JSONL.
#[derive(Debug)]
pub struct TelemetryHub {
    now: SimTime,
    next_seq: u64,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, Histogram>,
    journal: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Default for TelemetryHub {
    fn default() -> Self {
        Self::new()
    }
}

impl TelemetryHub {
    /// A hub with the default journal capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// A hub whose ring journal holds at most `capacity` events; older
    /// events are dropped (and counted) past that.
    pub fn with_capacity(capacity: usize) -> Self {
        TelemetryHub {
            now: SimTime::ZERO,
            next_seq: 0,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            journal: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// The simulated time events are currently stamped with.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events dropped from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The journal's live events, oldest first.
    pub fn journal(&self) -> impl Iterator<Item = &TraceEvent> {
        self.journal.iter()
    }

    /// Copies the metric registries out.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }

    /// Renders the whole journal as JSONL (one event per line, trailing
    /// newline). Byte-identical across identical seeded runs.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.journal.len() * 96);
        for event in &self.journal {
            out.push_str(&event.to_json_line());
            out.push('\n');
        }
        out
    }

    /// [`Self::export_jsonl`] with every line tagged by an extra integer
    /// field (e.g. `"node":3`) so journals from several hubs can be
    /// concatenated without losing provenance.
    pub fn export_jsonl_tagged(&self, name: &'static str, value: u64) -> String {
        let mut out = String::with_capacity(self.journal.len() * 96);
        for event in &self.journal {
            out.push_str(&event.to_json_line_tagged(Some((name, value))));
            out.push('\n');
        }
        out
    }
}

impl Observer for TelemetryHub {
    fn advance_to(&mut self, at: SimTime) {
        // Monotone: a stale caller (e.g. a chip clone replayed out of
        // band) cannot rewind the stamp.
        if at > self.now {
            self.now = at;
        }
    }

    fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    fn gauge_set(&mut self, name: &'static str, value: i64) {
        self.gauges.insert(name, value);
    }

    fn histogram_observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().observe(value);
    }

    fn record(&mut self, kind: TraceKind, fields: Vec<(&'static str, Value)>) {
        if self.journal.len() >= self.capacity {
            self.journal.pop_front();
            self.dropped += 1;
        }
        let event = TraceEvent {
            seq: self.next_seq,
            at: self.now,
            kind,
            fields,
        };
        self.next_seq += 1;
        self.journal.push_back(event);
    }
}

enum Sink {
    Hub(Arc<Mutex<TelemetryHub>>),
    Custom(Arc<Mutex<Box<dyn Observer>>>),
}

impl Clone for Sink {
    fn clone(&self) -> Self {
        match self {
            Sink::Hub(hub) => Sink::Hub(Arc::clone(hub)),
            Sink::Custom(obs) => Sink::Custom(Arc::clone(obs)),
        }
    }
}

/// Recovers the guarded value even if a panicking thread poisoned the
/// lock — telemetry must never take the control loop down with it.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The handle instrumented code holds: a cheap clonable façade over an
/// optional shared observer.
///
/// With [`Telemetry::null`] (the default) every method short-circuits on
/// a `None` check and the closure given to [`trace`](Telemetry::trace)
/// is never called — the zero-cost path `crates/bench` guards. With
/// [`Telemetry::hub`] all clones feed one shared [`TelemetryHub`].
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Sink>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match &self.sink {
            None => "null",
            Some(Sink::Hub(_)) => "hub",
            Some(Sink::Custom(_)) => "custom",
        };
        f.debug_struct("Telemetry").field("sink", &label).finish()
    }
}

impl Telemetry {
    /// The disabled handle: every hook is one branch, no observer exists.
    pub fn null() -> Self {
        Telemetry { sink: None }
    }

    /// A handle over a fresh shared [`TelemetryHub`] with the default
    /// journal capacity.
    pub fn hub() -> Self {
        Self::hub_with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// A handle over a fresh shared hub with the given journal capacity.
    pub fn hub_with_capacity(capacity: usize) -> Self {
        Telemetry {
            sink: Some(Sink::Hub(Arc::new(Mutex::new(
                TelemetryHub::with_capacity(capacity),
            )))),
        }
    }

    /// A handle over an arbitrary observer implementation.
    pub fn custom(observer: Box<dyn Observer>) -> Self {
        Telemetry {
            sink: Some(Sink::Custom(Arc::new(Mutex::new(observer)))),
        }
    }

    /// True when a real observer is attached. Instrumentation may use
    /// this to skip *computing* expensive inputs, mirroring what
    /// [`trace`](Telemetry::trace) does for event construction.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    fn with_observer(&self, f: impl FnOnce(&mut dyn Observer)) {
        match &self.sink {
            None => {}
            Some(Sink::Hub(hub)) => f(&mut *lock_unpoisoned(hub)),
            Some(Sink::Custom(obs)) => f(lock_unpoisoned(obs).as_mut()),
        }
    }

    /// Propagates simulated time to the observer.
    pub fn advance_to(&self, at: SimTime) {
        self.with_observer(|obs| obs.advance_to(at));
    }

    /// Adds `delta` to the named monotone counter.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        self.with_observer(|obs| obs.counter_add(name, delta));
    }

    /// Adds 1 to the named monotone counter.
    pub fn counter_inc(&self, name: &'static str) {
        self.counter_add(name, 1);
    }

    /// Sets the named gauge.
    pub fn gauge_set(&self, name: &'static str, value: i64) {
        self.with_observer(|obs| obs.gauge_set(name, value));
    }

    /// Records one histogram observation.
    pub fn histogram_observe(&self, name: &'static str, value: u64) {
        self.with_observer(|obs| obs.histogram_observe(name, value));
    }

    /// Appends a trace event. `fields` is only invoked when an observer
    /// is attached, so the null path never builds the event.
    pub fn trace(&self, kind: TraceKind, fields: impl FnOnce() -> Vec<(&'static str, Value)>) {
        if self.sink.is_some() {
            self.with_observer(|obs| obs.record(kind, fields()));
        }
    }

    /// Runs `f` against the shared hub, if this handle wraps one.
    /// Returns `None` for null and custom handles.
    pub fn with_hub<R>(&self, f: impl FnOnce(&TelemetryHub) -> R) -> Option<R> {
        match &self.sink {
            Some(Sink::Hub(hub)) => Some(f(&lock_unpoisoned(hub))),
            _ => None,
        }
    }

    /// The hub's metrics snapshot, if this handle wraps a hub.
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.with_hub(TelemetryHub::snapshot)
    }

    /// The hub's JSONL journal export, if this handle wraps a hub.
    pub fn export_jsonl(&self) -> Option<String> {
        self.with_hub(TelemetryHub::export_jsonl)
    }
}

/// A fixed-slot counter registry for hot paths that cannot afford a map
/// lookup per increment: slots are indexed by a caller-defined enum and
/// named once at construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterRegistry {
    names: &'static [&'static str],
    values: Vec<u64>,
}

impl CounterRegistry {
    /// A registry with one zeroed slot per name.
    pub fn new(names: &'static [&'static str]) -> Self {
        CounterRegistry {
            names,
            values: vec![0; names.len()],
        }
    }

    /// Adds `delta` to slot `idx`. Out-of-range indices are ignored
    /// rather than panicking — telemetry must not crash the daemon.
    pub fn add(&mut self, idx: usize, delta: u64) {
        if let Some(slot) = self.values.get_mut(idx) {
            *slot += delta;
        }
    }

    /// The value in slot `idx` (0 when out of range).
    pub fn get(&self, idx: usize) -> u64 {
        self.values.get(idx).copied().unwrap_or(0)
    }

    /// `(name, value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.names.iter().copied().zip(self.values.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_handle_is_disabled_and_never_calls_the_closure() {
        let t = Telemetry::null();
        assert!(!t.is_enabled());
        t.counter_add("x", 1);
        t.gauge_set("g", -3);
        t.histogram_observe("h", 10);
        t.trace(TraceKind::Replan, || {
            panic!("closure must not run on the null path")
        });
        assert!(t.snapshot().is_none());
        assert!(t.export_jsonl().is_none());
    }

    #[test]
    fn hub_counters_gauges_histograms_roundtrip_through_snapshot() {
        let t = Telemetry::hub();
        t.counter_add("a.count", 2);
        t.counter_inc("a.count");
        t.gauge_set("a.gauge", -7);
        t.histogram_observe("a.hist", 5);
        t.histogram_observe("a.hist", 50_000);
        let snap = t.snapshot().expect("hub handle snapshots");
        assert_eq!(snap.counter("a.count"), 3);
        assert_eq!(snap.counter("never.touched"), 0);
        assert_eq!(snap.gauge("a.gauge"), Some(-7));
        let h = snap.histogram("a.hist").expect("observed");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 50_005);
        assert_eq!(h.max, 50_000);
        assert!((h.mean() - 25_002.5).abs() < 1e-9);
    }

    #[test]
    fn clones_share_one_hub() {
        let t = Telemetry::hub();
        let u = t.clone();
        t.counter_add("shared", 1);
        u.counter_add("shared", 1);
        assert_eq!(t.snapshot().expect("hub").counter("shared"), 2);
    }

    #[test]
    fn events_are_stamped_with_advanced_sim_time_and_sequenced() {
        let t = Telemetry::hub();
        t.trace(TraceKind::Init, Vec::new);
        t.advance_to(SimTime::from_nanos(1_500));
        t.trace(TraceKind::Replan, || vec![("actions", Value::U64(4))]);
        // advance_to is monotone: a stale time cannot rewind the stamp.
        t.advance_to(SimTime::from_nanos(900));
        t.trace(TraceKind::Watchdog, Vec::new);
        let events: Vec<TraceEvent> = t
            .with_hub(|hub| hub.journal().cloned().collect())
            .expect("hub");
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].at, SimTime::ZERO);
        assert_eq!(events[1].at, SimTime::from_nanos(1_500));
        assert_eq!(events[2].seq, 2);
        assert_eq!(events[2].at, SimTime::from_nanos(1_500));
    }

    #[test]
    fn json_lines_are_wellformed_and_escaped() {
        let t = Telemetry::hub();
        t.advance_to(SimTime::from_nanos(42));
        t.trace(TraceKind::MailboxFault, || {
            vec![
                ("reason", Value::Text("refused: \"window\"\n".to_string())),
                ("mv", Value::U64(880)),
                ("power_w", Value::F64(12.5)),
                ("nan", Value::F64(f64::NAN)),
                ("ok", Value::Bool(false)),
            ]
        });
        let jsonl = t.export_jsonl().expect("hub");
        assert_eq!(
            jsonl,
            "{\"seq\":0,\"t_ns\":42,\"kind\":\"mailbox_fault\",\
             \"reason\":\"refused: \\\"window\\\"\\n\",\"mv\":880,\
             \"power_w\":12.5,\"nan\":null,\"ok\":false}\n"
        );
    }

    #[test]
    fn ring_journal_drops_oldest_and_counts() {
        let t = Telemetry::hub_with_capacity(2);
        for i in 0..5u64 {
            t.trace(TraceKind::Init, move || vec![("i", Value::U64(i))]);
        }
        t.with_hub(|hub| {
            assert_eq!(hub.dropped(), 3);
            let seqs: Vec<u64> = hub.journal().map(|e| e.seq).collect();
            assert_eq!(seqs, vec![3, 4]);
        })
        .expect("hub");
    }

    #[test]
    fn histogram_buckets_cover_bounds_and_overflow() {
        let mut h = Histogram::default();
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(1_000_000);
        h.observe(9_999_999);
        assert_eq!(h.buckets[0], 2, "0 and 1 land in the first bucket");
        assert_eq!(h.buckets[1], 1, "2 lands in <=10");
        assert_eq!(h.buckets[HISTOGRAM_BOUNDS.len() - 1], 1);
        assert_eq!(h.buckets[HISTOGRAM_BOUNDS.len()], 1, "overflow slot");
        assert_eq!(h.count, 5);
    }

    #[test]
    fn counter_registry_is_fixed_slot_and_forgiving() {
        static NAMES: [&str; 2] = ["one", "two"];
        let mut reg = CounterRegistry::new(&NAMES);
        reg.add(0, 2);
        reg.add(1, 1);
        reg.add(7, 100); // out of range: ignored
        assert_eq!(reg.get(0), 2);
        assert_eq!(reg.get(7), 0);
        let pairs: Vec<(&str, u64)> = reg.iter().collect();
        assert_eq!(pairs, vec![("one", 2), ("two", 1)]);
    }

    #[test]
    fn custom_observer_receives_all_hooks() {
        #[derive(Default)]
        struct Probe {
            calls: Vec<String>,
        }
        impl Observer for Probe {
            fn advance_to(&mut self, at: SimTime) {
                self.calls.push(format!("t={}", at.as_nanos()));
            }
            fn counter_add(&mut self, name: &'static str, delta: u64) {
                self.calls.push(format!("c:{name}+{delta}"));
            }
            fn gauge_set(&mut self, name: &'static str, value: i64) {
                self.calls.push(format!("g:{name}={value}"));
            }
            fn histogram_observe(&mut self, name: &'static str, value: u64) {
                self.calls.push(format!("h:{name}<{value}"));
            }
            fn record(&mut self, kind: TraceKind, fields: Vec<(&'static str, Value)>) {
                self.calls.push(format!("r:{kind}/{}", fields.len()));
            }
        }
        let t = Telemetry::custom(Box::new(Probe::default()));
        assert!(t.is_enabled());
        t.advance_to(SimTime::from_nanos(9));
        t.counter_add("c", 3);
        t.gauge_set("g", 1);
        t.histogram_observe("h", 2);
        t.trace(TraceKind::Init, Vec::new);
        // Custom sinks have no hub to export from.
        assert!(t.export_jsonl().is_none());
    }
}
