//! Shared helpers for the Criterion benchmark harness live in the bench
//! files themselves; this library target exists so the crate participates
//! in `cargo build --workspace`.
