//! Zero-cost guard for the telemetry seam: a daemon with the default
//! null telemetry must run its hot path as fast as before the
//! instrumentation landed.
//!
//! Absolute thresholds would be machine-dependent, and the workspace's
//! `criterion` shim is a wall-clock mean timer, so both checks here are
//! **self-relative** within one process:
//!
//! * the null path is repeatable — two interleaved measurements of the
//!   same null-telemetry loop agree within a generous noise factor, and
//! * attaching a hub costs *something* measurable, which is the positive
//!   control proving the harness can see telemetry work at all; if even
//!   the hub path is free, the guard's comparison would be meaningless.
//!
//! Functional zero-cost (the `trace` closure never runs, no event is
//! ever built on the null path) is asserted directly in
//! `avfs-telemetry`'s unit tests; this file guards the wall-clock side.

use avfs_chip::presets;
use avfs_chip::topology::{CoreId, CoreSet};
use avfs_core::daemon::Daemon;
use avfs_sched::driver::{Driver, ProcessView, SysEvent, SystemView};
use avfs_sched::governor::GovernorMode;
use avfs_sched::process::{Pid, ProcessState};
use avfs_sim::time::SimTime;
use avfs_telemetry::Telemetry;
use avfs_workloads::classify::IntensityClass;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// The replan view the daemon benchmarks use: 32 running processes.
fn full_view() -> SystemView {
    let chip = presets::xgene3().build();
    let processes = (0..32u64)
        .map(|i| ProcessView {
            pid: Pid(i),
            threads: 1,
            state: ProcessState::Running,
            assigned: {
                let mut cs = CoreSet::EMPTY;
                cs.insert(CoreId::new(i as u16));
                cs
            },
            l3c_per_mcycle: Some(if i % 2 == 0 { 200.0 } else { 15_000.0 }),
            class: Some(if i % 2 == 0 {
                IntensityClass::CpuIntensive
            } else {
                IntensityClass::MemoryIntensive
            }),
            arrived_at: SimTime::ZERO,
            stalled_until: None,
        })
        .collect();
    SystemView {
        now: SimTime::from_secs(10),
        spec: chip.spec().clone(),
        voltage: chip.voltage(),
        pmd_steps: vec![avfs_chip::FreqStep::MAX; 16],
        governor: GovernorMode::Userspace,
        droop_alert: false,
        processes,
    }
}

/// Mean per-event time of `iters` replans on a daemon with `telemetry`.
fn time_daemon(telemetry: Telemetry, view: &SystemView, iters: u32) -> Duration {
    let chip = presets::xgene3().build();
    let mut daemon = Daemon::optimal(&chip);
    daemon.set_telemetry(telemetry);
    let _ = daemon.on_event(view, &SysEvent::MonitorTick);
    // Warm up caches and the allocator outside the timed window.
    for _ in 0..iters / 4 {
        black_box(daemon.on_event(view, &SysEvent::ProcessFinished(Pid(999))));
    }
    let start = Instant::now();
    for _ in 0..iters {
        black_box(daemon.on_event(view, &SysEvent::ProcessFinished(Pid(999))));
    }
    start.elapsed() / iters
}

#[test]
fn null_observer_hot_path_is_within_noise() {
    let view = full_view();
    const ITERS: u32 = 400;

    // Interleave the measurements so slow machine-wide drift (thermal,
    // CI neighbors) hits both sides equally.
    let null_a = time_daemon(Telemetry::null(), &view, ITERS);
    let hub_a = time_daemon(Telemetry::hub(), &view, ITERS);
    let null_b = time_daemon(Telemetry::null(), &view, ITERS);
    let hub_b = time_daemon(Telemetry::hub(), &view, ITERS);

    let null = (null_a + null_b) / 2;
    let hub = (hub_a + hub_b) / 2;
    assert!(null > Duration::ZERO, "timer resolution too coarse");

    // Repeatability: the two null measurements bound this run's noise.
    // Factor 3 is deliberately loose — a shared CI box is noisy, and the
    // guard is after order-of-magnitude regressions (an accidentally
    // always-allocating trace path), not single-digit percents.
    let (lo, hi) = (null_a.min(null_b), null_a.max(null_b));
    assert!(
        hi <= lo * 3 + Duration::from_micros(20),
        "null path not repeatable: {null_a:?} vs {null_b:?}"
    );

    // The null path must not cost more than the fully-observed path
    // plus noise: if it does, the "disabled" branch is doing real work.
    assert!(
        null <= hub * 3 + Duration::from_micros(20),
        "null-telemetry path ({null:?}) costs more than the hub path ({hub:?})"
    );
}
