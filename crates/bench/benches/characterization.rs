//! Benchmarks for the characterization harnesses: the Vmin campaigns and
//! droop measurements behind Figures 3–6 and 10 and Table II.
//!
//! Each bench regenerates (a slice of) the corresponding artifact, so
//! `cargo bench` doubles as a performance check of the reproduction
//! pipeline and a smoke re-generation of every characterization figure.

use avfs_chip::vmin::DroopClass;
use avfs_experiments::characterization::{fig3, fig4, fig5, vmin_search, CharConfig, ThreadAlloc};
use avfs_experiments::droops::fig6;
use avfs_experiments::factors::fig10;
use avfs_experiments::tables::{table1, table2};
use avfs_experiments::{Machine, Scale};
use avfs_sim::RngStream;
use avfs_workloads::Benchmark;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_vmin_search(c: &mut Criterion) {
    let chip = Machine::XGene3.chip_builder().build();
    let config = CharConfig {
        threads: 32,
        alloc: ThreadAlloc::Clustered,
        step: avfs_chip::FreqStep::MAX,
    };
    c.bench_function("fig03/vmin_search_single_benchmark_1000runs", |b| {
        let mut rng = RngStream::from_root(1, "bench");
        b.iter(|| {
            black_box(vmin_search(
                &chip,
                Benchmark::NpbCg,
                &config,
                1000,
                &mut rng,
            ))
        })
    });
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig03");
    g.sample_size(10);
    g.bench_function("xgene2_full_table_quick", |b| {
        b.iter(|| black_box(fig3(Machine::XGene2, Scale::Quick)))
    });
    g.bench_function("xgene3_full_table_quick", |b| {
        b.iter(|| black_box(fig3(Machine::XGene3, Scale::Quick)))
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig04");
    g.sample_size(10);
    g.bench_function("xgene2_core_regions_quick", |b| {
        b.iter(|| black_box(fig4(Scale::Quick)))
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig05");
    g.sample_size(10);
    g.bench_function("xgene2_pfail_curves_quick", |b| {
        b.iter(|| black_box(fig5(Machine::XGene2, Scale::Quick)))
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig06");
    g.sample_size(10);
    g.bench_function("droop_bands_quick", |b| {
        b.iter(|| {
            (
                black_box(fig6(DroopClass::D55, Scale::Quick)),
                black_box(fig6(DroopClass::D45, Scale::Quick)),
            )
        })
    });
    g.finish();
}

fn bench_fig10_and_tables(c: &mut Criterion) {
    c.bench_function("fig10/factor_decomposition_both_machines", |b| {
        b.iter(|| {
            (
                black_box(fig10(Machine::XGene2)),
                black_box(fig10(Machine::XGene3)),
            )
        })
    });
    c.bench_function("table1_table2/regenerate", |b| {
        b.iter(|| (black_box(table1()), black_box(table2())))
    });
}

criterion_group!(
    benches,
    bench_vmin_search,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig10_and_tables
);
criterion_main!(benches);
