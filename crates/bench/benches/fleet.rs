//! Fleet throughput: one mixed-cluster workload replayed across a
//! nodes × worker-threads grid.
//!
//! The workers axis measures how well the epoch fan-out scales (results
//! are byte-identical at every point of the axis, so the grid is purely
//! a throughput comparison); the nodes axis measures how simulation
//! cost grows with cluster size.

use avfs_fleet::{EnergyAware, Fleet, FleetConfig, NodeConfig, NodeKind};
use avfs_sim::time::SimDuration;
use avfs_workloads::{GeneratorConfig, WorkloadTrace};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A mixed cluster alternating X-Gene 2 and X-Gene 3 nodes.
fn cluster(nodes: usize, workers: usize) -> FleetConfig {
    let configs = (0..nodes)
        .map(|i| {
            let kind = if i % 2 == 0 {
                NodeKind::XGene2
            } else {
                NodeKind::XGene3
            };
            NodeConfig::new(kind, 0x5EED + i as u64)
        })
        .collect();
    let mut cfg = FleetConfig::new(configs);
    cfg.workers = workers;
    cfg
}

fn trace(cores: usize) -> WorkloadTrace {
    let mut gen = GeneratorConfig::paper_default(cores, 11);
    gen.duration = SimDuration::from_secs(120);
    gen.job_scale = 0.2;
    WorkloadTrace::generate(&gen)
}

fn bench_fleet_grid(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet_grid");
    g.sample_size(10);
    for nodes in [2usize, 4, 8] {
        // Total cores: alternating 8/32-core nodes.
        let cores = (0..nodes).map(|i| if i % 2 == 0 { 8 } else { 32 }).sum();
        let t = trace(cores);
        for workers in [1usize, 2, 8] {
            g.bench_function(format!("nodes{nodes}_workers{workers}"), |b| {
                b.iter(|| {
                    let fleet = Fleet::builder().config(cluster(nodes, workers)).build();
                    black_box(fleet.run(&t, &mut EnergyAware::new()))
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fleet_grid);
criterion_main!(benches);
