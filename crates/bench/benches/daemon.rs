//! Benchmarks for the system-level evaluation (Tables III/IV, Figures
//! 14/15) and for the daemon's own overhead.
//!
//! The daemon microbenchmarks quantify the paper's "minimally intrusive"
//! claim: a replan on a realistic 32-process view must be microseconds.

use avfs_chip::presets;
use avfs_chip::topology::{CoreId, CoreSet};
use avfs_core::configs::EvalConfig;
use avfs_core::daemon::Daemon;
use avfs_experiments::server_eval::{evaluate, table3_4};
use avfs_experiments::{Machine, Scale};
use avfs_sched::driver::{Driver, ProcessView, SysEvent, SystemView};
use avfs_sched::governor::GovernorMode;
use avfs_sched::process::{Pid, ProcessState};
use avfs_sched::system::{System, SystemConfig};
use avfs_sim::time::SimTime;
use avfs_workloads::classify::IntensityClass;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_tables_3_4(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables3_4");
    g.sample_size(10);
    g.bench_function("table3_xgene2_quick_eval", |b| {
        b.iter(|| black_box(table3_4(Machine::XGene2, Scale::Quick, 7)))
    });
    g.bench_function("table4_xgene3_quick_eval", |b| {
        b.iter(|| black_box(table3_4(Machine::XGene3, Scale::Quick, 7)))
    });
    g.finish();
}

fn bench_fig14_15(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_15");
    g.sample_size(10);
    g.bench_function("four_config_eval_xgene2_quick", |b| {
        b.iter(|| black_box(evaluate(Machine::XGene2, Scale::Quick, 3)))
    });
    g.finish();
}

fn bench_single_config_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("system_run");
    g.sample_size(10);
    for config in [EvalConfig::Baseline, EvalConfig::Optimal] {
        let mut gen = avfs_workloads::GeneratorConfig::paper_default(8, 5);
        gen.duration = avfs_sim::time::SimDuration::from_secs(300);
        gen.job_scale = 0.2;
        let trace = avfs_workloads::WorkloadTrace::generate(&gen);
        g.bench_function(format!("xgene2_300s_{}", config.label()), |b| {
            b.iter(|| {
                let chip = presets::xgene2().build();
                let mut driver = config.driver(&chip);
                let mut system = System::new(
                    chip,
                    avfs_workloads::PerfModel::xgene2(),
                    SystemConfig::default(),
                );
                black_box(system.run(&trace, driver.as_mut()))
            })
        });
    }
    g.finish();
}

/// A realistic 32-process view for the replan microbenchmark.
fn full_view() -> SystemView {
    let chip = presets::xgene3().build();
    let processes = (0..32u64)
        .map(|i| ProcessView {
            pid: Pid(i),
            threads: 1,
            state: ProcessState::Running,
            assigned: {
                let mut cs = CoreSet::EMPTY;
                cs.insert(CoreId::new(i as u16));
                cs
            },
            l3c_per_mcycle: Some(if i % 2 == 0 { 200.0 } else { 15_000.0 }),
            class: Some(if i % 2 == 0 {
                IntensityClass::CpuIntensive
            } else {
                IntensityClass::MemoryIntensive
            }),
            arrived_at: SimTime::ZERO,
            stalled_until: None,
        })
        .collect();
    SystemView {
        now: SimTime::from_secs(10),
        spec: chip.spec().clone(),
        voltage: chip.voltage(),
        pmd_steps: vec![avfs_chip::FreqStep::MAX; 16],
        governor: GovernorMode::Userspace,
        droop_alert: false,
        processes,
    }
}

fn bench_daemon_replan(c: &mut Criterion) {
    let chip = presets::xgene3().build();
    let view = full_view();
    c.bench_function("daemon/replan_32_processes", |b| {
        let mut daemon = Daemon::optimal(&chip);
        // Initialize once.
        let _ = daemon.on_event(&view, &SysEvent::MonitorTick);
        b.iter(|| black_box(daemon.on_event(&view, &SysEvent::ProcessFinished(Pid(999)))))
    });
    // The same hot path with a hub observer attached: the difference to
    // the null-path number above is the full telemetry cost (lock +
    // registries + journal); `tests/observer_guard.rs` asserts the null
    // path stays within noise of an uninstrumented-equivalent loop.
    c.bench_function("daemon/replan_32_processes_hub", |b| {
        let mut daemon = Daemon::builder(&chip)
            .observer(avfs_telemetry::Telemetry::hub())
            .build();
        let _ = daemon.on_event(&view, &SysEvent::MonitorTick);
        b.iter(|| black_box(daemon.on_event(&view, &SysEvent::ProcessFinished(Pid(999)))))
    });
}

fn bench_workload_generation(c: &mut Criterion) {
    c.bench_function("generator/one_hour_trace_32_cores", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let cfg = avfs_workloads::GeneratorConfig::paper_default(32, seed);
            black_box(avfs_workloads::WorkloadTrace::generate(&cfg))
        })
    });
}

criterion_group!(
    benches,
    bench_tables_3_4,
    bench_fig14_15,
    bench_single_config_run,
    bench_daemon_replan,
    bench_workload_generation
);
criterion_main!(benches);
