//! Benchmarks for the energy/performance trade-off harnesses behind
//! Figures 7, 8, 9, 11, and 12.

use avfs_experiments::characterization::{CharConfig, ThreadAlloc};
use avfs_experiments::energy::{fig11, fig12, fig7, steady_run, VoltageMode};
use avfs_experiments::perfchar::{fig8, fig9};
use avfs_experiments::{Machine, Scale};
use avfs_workloads::Benchmark;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig07/clustered_vs_spreaded_25_benchmarks", |b| {
        b.iter(|| black_box(fig7()))
    });
}

fn bench_fig8_fig9(c: &mut Criterion) {
    c.bench_function("fig08/contention_ratios_both_machines", |b| {
        b.iter(|| {
            (
                black_box(fig8(Machine::XGene2, Scale::Quick)),
                black_box(fig8(Machine::XGene3, Scale::Quick)),
            )
        })
    });
    c.bench_function("fig09/l3c_rates_xgene3", |b| {
        b.iter(|| black_box(fig9(Machine::XGene3, Scale::Quick)))
    });
}

fn bench_fig11_fig12(c: &mut Criterion) {
    c.bench_function("fig11/energy_tables_both_machines", |b| {
        b.iter(|| {
            (
                black_box(fig11(Machine::XGene2)),
                black_box(fig11(Machine::XGene3)),
            )
        })
    });
    c.bench_function("fig12/ed2p_tables_both_machines", |b| {
        b.iter(|| {
            (
                black_box(fig12(Machine::XGene2)),
                black_box(fig12(Machine::XGene3)),
            )
        })
    });
}

fn bench_steady_run(c: &mut Criterion) {
    let config = CharConfig {
        threads: 32,
        alloc: ThreadAlloc::Spreaded,
        step: avfs_chip::FreqStep::HALF,
    };
    c.bench_function("steady_run/single_operating_point", |b| {
        b.iter(|| {
            black_box(steady_run(
                Machine::XGene3,
                Benchmark::NpbCg,
                &config,
                VoltageMode::SafeVmin,
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_fig7,
    bench_fig8_fig9,
    bench_fig11_fig12,
    bench_steady_run
);
criterion_main!(benches);
