//! Event-throughput benches with a persistent baseline (`BENCH_9.json`).
//!
//! Custom harness (no criterion): measures end-to-end event throughput —
//! simulator events/sec under the Optimal daemon, fleet epochs/sec at
//! 4 nodes × 8 workers, characterization-campaign cells/sec on the
//! X-Gene 2 preset, and daemon replans/sec with the decision cache
//! on vs off — plus per-component microbenches (calendar-queue ops/sec,
//! power-LUT evaluations/sec) so a regression localizes to the layer
//! that caused it, and verifies the cache is *transparent* (telemetry
//! JSONL digests byte-identical cache-on vs cache-off on both presets).
//!
//! Modes:
//!
//! * default — measure and print the JSON report to stdout;
//! * `--write` — also persist the report to `BENCH_9.json` at the repo
//!   root (the committed baseline the smoke gate compares against);
//! * `--smoke` — quick re-measure, compared against the committed
//!   `BENCH_9.json`; exits non-zero if any throughput metric regressed
//!   by more than 20%;
//! * `--compare <baseline.json>` — A/B mode: measure, then print a
//!   per-metric delta table against the given baseline file (no gate).

use avfs_chip::presets::{self};
use avfs_chip::topology::{CoreId, CoreSet};
use avfs_chip::{Chip, FreqStep};
use avfs_core::daemon::Daemon;
use avfs_fleet::{EnergyAware, Fleet, NodeConfig, NodeKind};
use avfs_sched::driver::{Driver, ProcessView, SysEvent, SystemView};
use avfs_sched::governor::GovernorMode;
use avfs_sched::process::{Pid, ProcessState};
use avfs_sched::system::System;
use avfs_sim::time::{SimDuration, SimTime};
use avfs_telemetry::Telemetry;
use avfs_workloads::classify::IntensityClass;
use avfs_workloads::generator::{GeneratorConfig, WorkloadTrace};
use avfs_workloads::PerfModel;
use std::path::PathBuf;
use std::time::Instant;

/// Smoke gate: fail when a throughput metric drops below this fraction
/// of the committed baseline.
const SMOKE_FLOOR: f64 = 0.80;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn trace(cores: usize, seed: u64, secs: u64) -> WorkloadTrace {
    let mut cfg = GeneratorConfig::paper_default(cores, seed);
    cfg.duration = SimDuration::from_secs(secs);
    cfg.job_scale = if cores >= 32 { 0.15 } else { 0.2 };
    WorkloadTrace::generate(&cfg)
}

fn preset_chip(name: &str) -> (Chip, PerfModel) {
    match name {
        "xgene2" => (presets::xgene2().build(), PerfModel::xgene2()),
        _ => (presets::xgene3().build(), PerfModel::xgene3()),
    }
}

/// Simulator events/sec: one full Optimal run driven through the
/// incremental stepping API so [`avfs_sched::RunState::iterations`]
/// counts every event-loop iteration. Best wall time of `reps`.
fn sim_events_per_sec(preset: &str, reps: usize) -> (f64, u64) {
    let t = trace(8, 5, 300);
    let mut best = f64::MAX;
    let mut events = 0u64;
    for _ in 0..reps {
        let (chip, perf) = preset_chip(preset);
        let mut daemon = Daemon::optimal(&chip);
        let mut system = System::builder(chip, perf).build();
        let t0 = Instant::now();
        let mut st = system.begin_run(&mut daemon);
        for a in &t.arrivals {
            system.step_until(&mut st, &mut daemon, a.at);
            system.inject_arrival(&mut st, &mut daemon, a.bench, a.threads, a.scale);
        }
        system.run_to_completion(&mut st, &mut daemon);
        events = st.iterations();
        let _ = system.finish_run(st);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (events as f64 / best, events)
}

/// Fleet epochs/sec on the issue's reference shape: 4 heterogeneous
/// nodes, 8 workers, 1 s epochs, energy-aware routing.
fn fleet_epochs_per_sec(reps: usize) -> (f64, u64) {
    let t = trace(32, 7, 120);
    let mut best = f64::MAX;
    let mut epochs = 0u64;
    for _ in 0..reps {
        let fleet = Fleet::builder()
            .node(NodeConfig::new(NodeKind::XGene2, 101))
            .node(NodeConfig::new(NodeKind::XGene2, 102))
            .node(NodeConfig::new(NodeKind::XGene3, 103))
            .node(NodeConfig::new(NodeKind::XGene3, 104))
            .workers(8)
            .build();
        let t0 = Instant::now();
        let summary = fleet.run(&t, &mut EnergyAware::new());
        let wall = t0.elapsed().as_secs_f64();
        // 1 s epochs: the epoch count is the drain time in whole seconds.
        epochs = summary.cluster_makespan.as_secs_f64().ceil() as u64;
        best = best.min(wall);
    }
    (epochs as f64 / best, epochs)
}

/// Characterization-campaign cells/sec: a full measured-margin campaign
/// on the X-Gene 2 preset (36 cells, ~4-5k stress probes), compiled to
/// a policy table to keep the whole pipeline on the measured path.
/// Best wall time of `reps`.
fn campaign_cells_per_sec(reps: usize) -> (f64, u64) {
    use avfs_characterize::{Campaign, CampaignConfig, TableCompiler};
    let campaign = Campaign::new(CampaignConfig::new(7));
    let mut best = f64::MAX;
    let mut cells = 0u64;
    for _ in 0..reps {
        let mut chip = presets::xgene2().build();
        let t0 = Instant::now();
        let map = campaign.run(&mut chip).unwrap_or_else(|e| {
            panic!("campaign aborted on a fault-free chip: {e}");
        });
        let table = TableCompiler::default()
            .compile(&map)
            .unwrap_or_else(|e| panic!("margin map failed to compile: {e}"));
        let wall = t0.elapsed().as_secs_f64();
        std::hint::black_box(table);
        cells = map.cells.len() as u64;
        best = best.min(wall);
    }
    (cells as f64 / best, cells)
}

/// Calendar-queue ops/sec: a hold-model churn (schedule one, pop one)
/// over a standing population, with deterministic pseudo-random
/// horizons spanning ties, in-wheel buckets, and the overflow level.
fn queue_ops_per_sec(reps: usize) -> f64 {
    use avfs_sim::EventQueue;
    const POPULATION: u64 = 1_024;
    const CHURN: u64 = 1_000_000;
    let mut best = f64::MAX;
    for _ in 0..reps {
        let mut q = EventQueue::new();
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut horizon = |now: u64| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // 0..128 ms ahead: ties (coarse grain), buckets, overflow.
            now + (x >> 33) % 128_000_000
        };
        let mut now = 0u64;
        for i in 0..POPULATION {
            q.schedule(SimTime::from_nanos(horizon(now)), i);
        }
        let t0 = Instant::now();
        for i in 0..CHURN {
            q.schedule(SimTime::from_nanos(horizon(now)), i);
            let e = q.pop().expect("standing population");
            now = now.max(e.time.as_nanos());
            std::hint::black_box(e.seq);
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (2 * CHURN) as f64 / best
}

/// Power-LUT evaluations/sec: table-path `power_w` over a rotating set
/// of in-domain operating points on the X-Gene 2 preset.
fn power_lut_evals_per_sec(reps: usize) -> f64 {
    use avfs_chip::power::{PmdLoad, PowerInputs};
    use avfs_chip::voltage::Millivolts;
    const EVALS: u64 = 1_000_000;
    let chip = presets::xgene2().build();
    let spec = chip.spec().clone();
    let lut = chip.power_lut();
    let step_mhz: Vec<u32> = FreqStep::all()
        .map(|s| s.frequency(spec.fmax()).as_mhz())
        .collect();
    let mut best = f64::MAX;
    for _ in 0..reps {
        let mut inputs = PowerInputs {
            voltage: Millivolts::new(spec.nominal_mv),
            pmd_loads: vec![PmdLoad::IDLE; spec.pmds() as usize],
            mem_traffic: 0.4,
        };
        let t0 = Instant::now();
        let mut acc = 0.0f64;
        for i in 0..EVALS {
            let i = i as usize;
            let mv = spec.vreg_floor_mv + (i % 64) as u32 * 5;
            inputs.voltage = Millivolts::new(mv.min(spec.nominal_mv));
            for (p, load) in inputs.pmd_loads.iter_mut().enumerate() {
                *load = PmdLoad {
                    freq_mhz: step_mhz[(i + p) % step_mhz.len()],
                    active_cores: ((i + p) % (spec.cores_per_pmd as usize + 1)) as u8,
                    activity: 0.75,
                };
            }
            acc += lut.power_w(&inputs);
        }
        std::hint::black_box(acc);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    EVALS as f64 / best
}

/// A realistic 32-process view for the replan-rate measurement (the
/// same shape as the criterion `daemon/replan_32_processes` bench).
fn full_view(chip: &Chip) -> SystemView {
    let processes = (0..32u64)
        .map(|i| ProcessView {
            pid: Pid(i),
            threads: 1,
            state: ProcessState::Running,
            assigned: {
                let mut cs = CoreSet::EMPTY;
                cs.insert(CoreId::new(i as u16));
                cs
            },
            l3c_per_mcycle: Some(if i % 2 == 0 { 200.0 } else { 15_000.0 }),
            class: Some(if i % 2 == 0 {
                IntensityClass::CpuIntensive
            } else {
                IntensityClass::MemoryIntensive
            }),
            arrived_at: SimTime::ZERO,
            stalled_until: None,
        })
        .collect();
    SystemView {
        now: SimTime::from_secs(10),
        spec: chip.spec().clone(),
        voltage: chip.voltage(),
        pmd_steps: vec![FreqStep::MAX; 16],
        governor: GovernorMode::Userspace,
        droop_alert: false,
        processes,
    }
}

/// Replans/sec on a recurring 32-process view, with the decision cache
/// on or off. Returns the rate and the cache's `(hits, misses)`.
fn replans_per_sec(cache: bool, iters: u32) -> (f64, (u64, u64)) {
    let chip = presets::xgene3().build();
    let view = full_view(&chip);
    let mut daemon = Daemon::optimal(&chip);
    daemon.set_decision_cache(cache);
    let _ = daemon.on_event(&view, &SysEvent::MonitorTick);
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(daemon.on_event(&view, &SysEvent::ProcessFinished(Pid(999))));
    }
    let wall = t0.elapsed().as_secs_f64();
    (f64::from(iters) / wall, daemon.decision_cache_stats())
}

/// Byte-identity: the telemetry journal of a cached Optimal run equals
/// the forced-miss journal on `preset`. Returns the cache's hit count.
fn cache_transparent(preset: &str) -> (bool, u64, u64) {
    let run = |cache: bool| {
        let telemetry = Telemetry::hub();
        let (chip, perf) = preset_chip(preset);
        let mut daemon = Daemon::optimal(&chip);
        daemon.set_decision_cache(cache);
        daemon.set_telemetry(telemetry.clone());
        let mut system = System::builder(chip, perf)
            .observer(telemetry.clone())
            .build();
        let metrics = system.run(&trace(8, 42, 120), &mut daemon);
        let jsonl = telemetry.export_jsonl().unwrap_or_default();
        (jsonl, metrics, daemon.decision_cache_stats())
    };
    let (j_on, m_on, (hits, misses)) = run(true);
    let (j_off, m_off, _) = run(false);
    let equal = j_on == j_off && m_on.energy_j.to_bits() == m_off.energy_j.to_bits();
    (equal, hits, misses)
}

struct Measured {
    sim_eps_xgene2: f64,
    sim_events_xgene2: u64,
    sim_eps_xgene3: f64,
    sim_events_xgene3: u64,
    fleet_eps: f64,
    fleet_epochs: u64,
    campaign_cps: f64,
    campaign_cells: u64,
    replans_cache_on: f64,
    replans_cache_off: f64,
    queue_ops: f64,
    power_lut_evals: f64,
    cache_hits: u64,
    cache_misses: u64,
    digest_equal_xgene2: bool,
    digest_equal_xgene3: bool,
}

fn measure(reps: usize) -> Measured {
    let (sim_eps_xgene2, sim_events_xgene2) = sim_events_per_sec("xgene2", reps);
    let (sim_eps_xgene3, sim_events_xgene3) = sim_events_per_sec("xgene3", reps);
    let (fleet_eps, fleet_epochs) = fleet_epochs_per_sec(reps);
    let (campaign_cps, campaign_cells) = campaign_cells_per_sec(reps);
    let (replans_cache_on, _) = replans_per_sec(true, 20_000);
    let (replans_cache_off, _) = replans_per_sec(false, 20_000);
    let queue_ops = queue_ops_per_sec(reps);
    let power_lut_evals = power_lut_evals_per_sec(reps);
    let (digest_equal_xgene2, hits2, misses2) = cache_transparent("xgene2");
    let (digest_equal_xgene3, hits3, misses3) = cache_transparent("xgene3");
    Measured {
        sim_eps_xgene2,
        sim_events_xgene2,
        sim_eps_xgene3,
        sim_events_xgene3,
        fleet_eps,
        fleet_epochs,
        campaign_cps,
        campaign_cells,
        replans_cache_on,
        replans_cache_off,
        queue_ops,
        power_lut_evals,
        cache_hits: hits2 + hits3,
        cache_misses: misses2 + misses3,
        digest_equal_xgene2,
        digest_equal_xgene3,
    }
}

/// Every throughput metric as `(key, value)` — one source of truth for
/// the report, the smoke gate, and the `--compare` delta table.
fn metric_table(m: &Measured) -> [(&'static str, f64); 8] {
    [
        ("sim_events_per_sec_xgene2", m.sim_eps_xgene2),
        ("sim_events_per_sec_xgene3", m.sim_eps_xgene3),
        ("fleet_epochs_per_sec_4n8w", m.fleet_eps),
        ("campaign_cells_per_sec_xgene2", m.campaign_cps),
        ("daemon_replans_per_sec_cache_on", m.replans_cache_on),
        ("daemon_replans_per_sec_cache_off", m.replans_cache_off),
        ("queue_ops_per_sec", m.queue_ops),
        ("power_lut_evals_per_sec", m.power_lut_evals),
    ]
}

fn render_json(m: &Measured) -> String {
    let hit_rate = m.cache_hits as f64 / (m.cache_hits + m.cache_misses).max(1) as f64;
    let mut out = String::from("{\n  \"schema\": \"avfs-bench-9/v1\",\n  \"metrics\": {\n");
    let metrics = metric_table(m);
    for (i, (key, value)) in metrics.iter().enumerate() {
        let sep = if i + 1 < metrics.len() { "," } else { "" };
        out.push_str(&format!("    \"{key}\": {value:.0}{sep}\n"));
    }
    out.push_str(&format!(
        "  }},\n  \
         \"events\": {{\"sim_xgene2\": {}, \"sim_xgene3\": {}, \"fleet_epochs\": {}, \"campaign_cells\": {}}},\n  \
         \"speedup\": {{\"daemon_replan_cache\": {:.2}}},\n  \
         \"cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.3}}},\n  \
         \"identity\": {{\"telemetry_digest_equal_xgene2\": {}, \
         \"telemetry_digest_equal_xgene3\": {}}}\n}}\n",
        m.sim_events_xgene2,
        m.sim_events_xgene3,
        m.fleet_epochs,
        m.campaign_cells,
        m.replans_cache_on / m.replans_cache_off,
        m.cache_hits,
        m.cache_misses,
        hit_rate,
        m.digest_equal_xgene2,
        m.digest_equal_xgene3,
    ));
    out
}

/// Pulls `"key": <number>` out of the committed baseline (the report's
/// key set is static and flat, so a scan beats a JSON parser here).
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn smoke(m: &Measured, baseline: &str) -> Result<(), String> {
    let mut failures = Vec::new();
    for (key, now) in metric_table(m) {
        let Some(was) = extract_number(baseline, key) else {
            failures.push(format!("{key}: missing from baseline"));
            continue;
        };
        let floor = was * SMOKE_FLOOR;
        if now < floor {
            failures.push(format!(
                "{key}: {now:.0}/s is below {:.0}% of the baseline {was:.0}/s",
                SMOKE_FLOOR * 100.0
            ));
        } else {
            println!("smoke ok: {key} {now:.0}/s (baseline {was:.0}/s)");
        }
    }
    if !m.digest_equal_xgene2 || !m.digest_equal_xgene3 {
        failures.push("telemetry digest diverged under caching".to_string());
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

/// `--compare` A/B mode: per-metric deltas against an arbitrary
/// baseline report (e.g. one written on another branch with
/// `scripts/bench.sh --write`). Informational — never fails.
fn compare(m: &Measured, baseline: &str, label: &str) {
    println!("A/B vs {label}:");
    for (key, now) in metric_table(m) {
        match extract_number(baseline, key) {
            Some(was) if was > 0.0 => {
                let delta = (now / was - 1.0) * 100.0;
                println!("  {key}: {was:.0}/s -> {now:.0}/s ({delta:+.1}%)");
            }
            _ => println!("  {key}: (missing from baseline) -> {now:.0}/s"),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // `cargo bench` passes `--bench`; ignore everything we don't know.
    let write = args.iter().any(|a| a == "--write");
    let smoke_mode = args.iter().any(|a| a == "--smoke");
    // Cargo runs bench binaries from the package root, so resolve
    // relative baselines against the repo root when they don't exist
    // as given (lets `scripts/bench.sh --compare BENCH_8.json` work).
    let compare_path = args
        .windows(2)
        .find(|w| w[0] == "--compare")
        .map(|w| PathBuf::from(&w[1]))
        .map(|p| {
            if p.is_relative() && !p.exists() {
                repo_root().join(&p)
            } else {
                p
            }
        });
    let baseline_path = repo_root().join("BENCH_9.json");

    let m = measure(if smoke_mode || compare_path.is_some() {
        2
    } else {
        3
    });
    assert!(
        m.digest_equal_xgene2 && m.digest_equal_xgene3,
        "decision cache changed the telemetry journal"
    );
    assert!(m.cache_hits > 0, "decision cache never hit");

    let report = render_json(&m);
    print!("{report}");

    if let Some(path) = &compare_path {
        let baseline = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("no baseline at {}: {e}", path.display()));
        compare(&m, &baseline, &path.display().to_string());
    } else if smoke_mode {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("no committed {}: {e}", baseline_path.display()));
        if let Err(failures) = smoke(&m, &baseline) {
            eprintln!("bench smoke gate FAILED:\n{failures}");
            std::process::exit(1);
        }
        println!("bench smoke gate passed");
    } else if write {
        std::fs::write(&baseline_path, &report)
            .unwrap_or_else(|e| panic!("writing {}: {e}", baseline_path.display()));
        println!("wrote {}", baseline_path.display());
    }
}
