//! Steady-state allocation gate.
//!
//! Installs a counting `#[global_allocator]`, drives a full system
//! (simulator + Optimal daemon) to steady state — all jobs admitted,
//! classifications settled, scratch buffers and the calendar queue at
//! their working capacity — and then asserts that a multi-second window
//! of event-loop stepping performs **zero heap allocations**: every
//! slice boundary, monitor tick, replan (decision-cache hit), and
//! governor pass runs entirely out of recycled buffers.
//!
//! The power-trace sampler is set to a cadence beyond the window
//! because its output series is an unbounded accumulator (amortized
//! growth is inherent to producing output, not to stepping the loop).
//! Everything else runs at the default paper cadences.

use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};

use avfs_chip::presets;
use avfs_core::daemon::Daemon;
use avfs_sched::system::{System, SystemConfig};
use avfs_sim::time::{SimDuration, SimTime};
use avfs_workloads::{Benchmark, PerfModel};

/// Number of heap allocations since process start (alloc + realloc +
/// alloc_zeroed; deallocations are free and uncounted).
static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to the system allocator unchanged;
// the counter is a relaxed atomic with no effect on layout or aliasing.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SystemAlloc.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn main() {
    // Long-running mixed workload: six jobs spanning both intensity
    // classes, scaled so none finishes inside the measured window.
    let jobs: [(Benchmark, usize); 6] = [
        (Benchmark::NpbEp, 2),
        (Benchmark::NpbCg, 1),
        (Benchmark::NpbLu, 2),
        (Benchmark::NpbMg, 1),
        (Benchmark::NpbIs, 1),
        (Benchmark::NpbFt, 1),
    ];

    let chip = presets::xgene2().build();
    let mut daemon = Daemon::optimal(&chip);
    // A monitor window well below the paper's 400 ms densifies the
    // gated event stream: every tick is a full monitor-refresh +
    // replan + governor pass, the allocation-riskiest event kind.
    let config = SystemConfig {
        sample_interval: SimDuration::from_secs(3_600),
        monitor_interval: SimDuration::from_millis(50),
        ..SystemConfig::default()
    };
    let mut system = System::builder(chip, PerfModel::xgene2())
        .config(config)
        .build();

    let mut st = system.begin_run(&mut daemon);
    for (bench, threads) in jobs {
        system.inject_arrival(&mut st, &mut daemon, bench, threads, 500.0);
    }

    // Warm-up: settle admissions, classifications, the decision cache,
    // and every scratch buffer's capacity.
    system.step_until(&mut st, &mut daemon, SimTime::from_secs(10));

    let events_before = st.iterations();
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    system.step_until(&mut st, &mut daemon, SimTime::from_secs(70));
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    let events = st.iterations() - events_before;

    println!("alloc gate: {events} events, {allocs} allocations in steady state");
    assert!(
        events > 1_000,
        "window too small to be a meaningful gate ({events} events)"
    );
    assert_eq!(
        allocs, 0,
        "steady-state event loop allocated {allocs} times over {events} events"
    );
    println!("alloc gate passed: zero allocations per event in steady state");
}
