//! Experiment harnesses reproducing every table and figure of the paper.
//!
//! Each module regenerates one (or one family of) paper artifact(s) and
//! returns [`report::Table`]s with the same rows/series the paper plots:
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`tables`] | Table I (platform parameters), Table II (droop classes ↔ Vmin) |
//! | [`characterization`] | Fig. 3 (safe Vmin per benchmark/threads/frequency), Fig. 4 (single/two-core safe regions), Fig. 5 (pfail curves) |
//! | [`droops`] | Fig. 6 (droop detections per magnitude band) |
//! | [`perfchar`] | Fig. 8 (contention slowdown), Fig. 9 (L3C access rates) |
//! | [`factors`] | Fig. 10 (Vmin factor decomposition) |
//! | [`energy`] | Fig. 7 (clustered vs spreaded energy), Fig. 11 (energy), Fig. 12 (ED2P) |
//! | [`server_eval`] | Fig. 14 (power trace), Fig. 15 (load trace), Tables III/IV (four configurations) |
//! | [`ablations`] | beyond-paper sweeps: fail-safe off, classification threshold, guardband width, migration cost |
//! | [`characterize`] | beyond-paper measured-margin campaigns: reclaimed savings vs a conservative preset, mid-run drift drill, stale-table degradation curve |
//! | [`resilience`] | beyond-paper fault-injection sweep: savings-vs-fault-rate degradation curve and recovery counters |
//! | [`fleet_resilience`] | beyond-paper cluster fault tolerance: node-failure degradation curve, crash drill, bit-identity gates |
//! | [`telemetry_report`] | beyond-paper: `--trace` journal and metrics rendered as summary tables |
//!
//! Every harness takes a [`Scale`] so integration tests can run the same
//! code path in seconds while `cargo run -p avfs-experiments --bin exp`
//! regenerates the full-size artifacts.

pub mod ablations;
pub mod characterization;
pub mod characterize;
pub mod droops;
pub mod energy;
pub mod factors;
pub mod fleet;
pub mod fleet_resilience;
mod json;
pub mod perfchar;
pub mod report;
pub mod resilience;
pub mod server_eval;
pub mod tables;
pub mod telemetry_report;

use serde::{Deserialize, Serialize};

/// Which machine an experiment targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Machine {
    /// 8-core X-Gene 2.
    XGene2,
    /// 32-core X-Gene 3.
    XGene3,
}

impl Machine {
    /// Both machines, in paper order.
    pub const BOTH: [Machine; 2] = [Machine::XGene2, Machine::XGene3];

    /// The chip preset builder for this machine.
    pub fn chip_builder(self) -> avfs_chip::presets::ChipBuilder {
        match self {
            Machine::XGene2 => avfs_chip::presets::xgene2(),
            Machine::XGene3 => avfs_chip::presets::xgene3(),
        }
    }

    /// The matching performance model.
    pub fn perf_model(self) -> avfs_workloads::PerfModel {
        match self {
            Machine::XGene2 => avfs_workloads::PerfModel::xgene2(),
            Machine::XGene3 => avfs_workloads::PerfModel::xgene3(),
        }
    }

    /// The machine's name as the paper writes it.
    pub fn name(self) -> &'static str {
        match self {
            Machine::XGene2 => "X-Gene 2",
            Machine::XGene3 => "X-Gene 3",
        }
    }
}

impl std::fmt::Display for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Experiment size: full paper-scale campaigns or a fast subset that
/// exercises the identical code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// Seconds-scale runs for tests and smoke checks.
    Quick,
    /// The paper's dimensions (1000-run Vmin campaigns, 1-hour traces).
    Paper,
}

impl Scale {
    /// Vmin-campaign runs per voltage level (paper: 1000).
    pub fn vmin_runs(self) -> u32 {
        match self {
            Scale::Quick => 50,
            Scale::Paper => 1000,
        }
    }

    /// Unsafe-region sweep runs per voltage level (paper: 60).
    pub fn sweep_runs(self) -> u32 {
        match self {
            Scale::Quick => 20,
            Scale::Paper => 60,
        }
    }

    /// Server-evaluation window.
    pub fn server_window(self) -> avfs_sim::time::SimDuration {
        match self {
            Scale::Quick => avfs_sim::time::SimDuration::from_secs(600),
            Scale::Paper => avfs_sim::time::SimDuration::from_secs(3_600),
        }
    }

    /// Cycles observed per droop measurement (paper reads counters over
    /// long steady runs).
    pub fn droop_cycles(self) -> u64 {
        match self {
            Scale::Quick => 50_000_000,
            Scale::Paper => 1_000_000_000,
        }
    }
}
