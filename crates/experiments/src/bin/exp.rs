//! Experiment runner: regenerates the paper's tables and figures.
//!
//! ```text
//! exp [--quick] [--smoke] [--csv DIR] [--seed N] [--trace FILE] <id>...
//! exp all                # every paper artifact (see note below)
//! exp table3 table4      # just the headline tables
//! exp resilience --smoke # short seeded fault soak (CI gate)
//! exp fleet --smoke      # quick cluster eval + determinism gate
//! exp resilience --smoke --trace out.jsonl  # + trace journal & summary
//! ```
//!
//! Artifact ids: `table1 table2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10
//! fig11 fig12 fig14 fig15 table3 table4 ablations resilience fleet
//! fleet-resilience characterize`.
//!
//! `all` intentionally excludes the slow ids — `ablations`,
//! `resilience`, `fleet`, `fleet-resilience`, and `characterize` —
//! which run long sweeps, whole-cluster simulations, or measurement
//! campaigns; request those explicitly. Unknown ids are rejected before
//! anything runs, with a nonzero exit and the closest matches.
//!
//! `--smoke` implies `--quick` and trims the resilience sweep to its
//! rate-0 anchor plus the 5% acceptance point on one machine; the
//! resilience id exits nonzero if any run fails its acceptance checks
//! (all jobs drained, safe end state, strictly positive savings). The
//! fleet id likewise exits nonzero when a policy run breaks job
//! conservation, operates unsafely, loses to round-robin on energy, or
//! diverges across worker counts. The characterize id trims to one
//! machine under `--smoke` and exits nonzero unless measured tables
//! reclaim strictly more undervolt depth than the conservative preset
//! while covering the hidden ground truth, and the drift drill swaps in
//! a re-proven table with zero unsafe windows.
//!
//! `--trace FILE` attaches a telemetry hub to the experiments that
//! support it (`table3`, `table4`, `fig14`, `fig15`, `resilience`,
//! `fleet`), writes the trace journal to FILE as JSONL — byte-identical
//! across identical seeded invocations — and appends the `telemetry
//! summary` tables (action mix, per-interval monitor summary,
//! fault/recovery timeline) to the output. For `fleet` the journal is
//! the energy-aware run's merged, node-tagged cluster journal; for
//! `fleet-resilience` it is the crash drill's. With several traced ids,
//! the last one's journal wins the file; trace one id per invocation.

use avfs_chip::vmin::DroopClass;
use avfs_experiments::report::Table;
use avfs_experiments::{
    ablations, characterization, characterize, droops, energy, factors, fleet, fleet_resilience,
    perfchar, resilience, server_eval, tables, telemetry_report, Machine, Scale,
};
use avfs_telemetry::Telemetry;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    scale: Scale,
    csv_dir: Option<PathBuf>,
    seed: u64,
    smoke: bool,
    trace: Option<PathBuf>,
    ids: Vec<String>,
}

const ALL_IDS: [&str; 16] = [
    "table1", "table2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12", "fig14", "fig15", "table3", "table4",
];

/// Ids `all` deliberately leaves out: long sweeps and whole-cluster
/// simulations that would dominate an `exp all` run.
const SLOW_IDS: [&str; 5] = [
    "ablations",
    "resilience",
    "fleet",
    "fleet-resilience",
    "characterize",
];

/// Levenshtein distance, for `did you mean` suggestions on unknown ids.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// The rejection message for an id nothing matches: nearest known ids
/// when any are plausible, the full list otherwise.
fn unknown_id_error(id: &str) -> String {
    let known: Vec<&str> = ALL_IDS
        .iter()
        .chain(SLOW_IDS.iter())
        .copied()
        .chain(std::iter::once("all"))
        .collect();
    let mut near: Vec<&str> = known
        .iter()
        .copied()
        .filter(|k| edit_distance(id, k) <= 2)
        .collect();
    near.sort_unstable();
    if near.is_empty() {
        format!(
            "unknown experiment id `{id}` (known ids: {})",
            known.join(" ")
        )
    } else {
        format!(
            "unknown experiment id `{id}` — did you mean {}?",
            near.join(", ")
        )
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        scale: Scale::Paper,
        csv_dir: None,
        seed: 2024,
        smoke: false,
        trace: None,
        ids: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.scale = Scale::Quick,
            "--smoke" => {
                opts.scale = Scale::Quick;
                opts.smoke = true;
            }
            "--csv" => {
                let dir = args.next().ok_or("--csv needs a directory")?;
                opts.csv_dir = Some(PathBuf::from(dir));
            }
            "--seed" => {
                let seed = args.next().ok_or("--seed needs a value")?;
                opts.seed = seed.parse().map_err(|e| format!("bad seed: {e}"))?;
            }
            "--trace" => {
                let path = args.next().ok_or("--trace needs a file path")?;
                opts.trace = Some(PathBuf::from(path));
            }
            // `all` is the paper reproduction set only: the slow ids
            // (ablations, resilience, fleet) must be requested by name.
            "all" => opts.ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            "--help" | "-h" => {
                println!(
                    "usage: exp [--quick] [--smoke] [--csv DIR] [--seed N] [--trace FILE] <id>...\n  ids: {} {} all\n  `all` runs the paper artifacts and intentionally excludes the slow\n  ids ({}); request those explicitly.",
                    ALL_IDS.join(" "),
                    SLOW_IDS.join(" "),
                    SLOW_IDS.join(", ")
                );
                std::process::exit(0);
            }
            id if ALL_IDS.contains(&id) || SLOW_IDS.contains(&id) => {
                opts.ids.push(id.to_string());
            }
            unknown => return Err(unknown_id_error(unknown)),
        }
    }
    if opts.ids.is_empty() {
        return Err("no experiment ids given (try `exp all` or `exp --help`)".into());
    }
    Ok(opts)
}

fn emit(tables: Vec<Table>, csv_dir: &Option<PathBuf>) {
    for t in tables {
        println!("{t}");
        if let Some(dir) = csv_dir {
            if let Err(e) = t.write_csv(dir) {
                eprintln!("warning: could not write {}.csv: {e}", t.id);
            }
            if let Err(e) = t.write_json(dir) {
                eprintln!("warning: could not write {}.json: {e}", t.id);
            }
        }
    }
}

/// Ids that accept a telemetry hub when `--trace` is given.
const TRACED_IDS: [&str; 7] = [
    "table3",
    "table4",
    "fig14",
    "fig15",
    "resilience",
    "fleet",
    "fleet-resilience",
];

/// Runs `run` with a hub-backed telemetry handle when `--trace` is set
/// (null otherwise); afterwards writes the JSONL journal and appends the
/// `telemetry summary` tables.
fn run_traced(
    opts: &Options,
    machine: Machine,
    run: impl FnOnce(&Telemetry) -> Result<Vec<Table>, String>,
) -> Result<Vec<Table>, String> {
    let telemetry = match &opts.trace {
        Some(_) => Telemetry::hub(),
        None => Telemetry::null(),
    };
    let mut out = run(&telemetry)?;
    if let Some(path) = &opts.trace {
        let jsonl = telemetry.export_jsonl().unwrap_or_default();
        std::fs::write(path, &jsonl)
            .map_err(|e| format!("cannot write trace to {}: {e}", path.display()))?;
        eprintln!(
            "trace journal: {} events -> {}",
            jsonl.lines().count(),
            path.display()
        );
        if let Some(snapshot) = telemetry.snapshot() {
            let journal: Vec<_> = telemetry
                .with_hub(|h| h.journal().cloned().collect())
                .unwrap_or_default();
            let nominal = machine.chip_builder().build().nominal_voltage();
            out.extend(telemetry_report::summary(&snapshot, &journal, nominal));
        }
    }
    Ok(out)
}

fn run_id(id: &str, opts: &Options) -> Result<Vec<Table>, String> {
    let scale = opts.scale;
    let seed = opts.seed;
    if opts.trace.is_some() && !TRACED_IDS.contains(&id) {
        eprintln!("note: --trace has no effect for `{id}`");
    }
    Ok(match id {
        "table1" => vec![tables::table1()],
        "table2" => vec![tables::table2(), tables::table2_policy()],
        "fig3" => Machine::BOTH
            .iter()
            .map(|&m| characterization::fig3(m, scale))
            .collect(),
        "fig4" => vec![characterization::fig4(scale)],
        "fig5" => Machine::BOTH
            .iter()
            .map(|&m| characterization::fig5(m, scale))
            .collect(),
        "fig6" => vec![
            droops::fig6(DroopClass::D55, scale),
            droops::fig6(DroopClass::D45, scale),
        ],
        "fig7" => vec![energy::fig7()],
        "fig8" => Machine::BOTH
            .iter()
            .map(|&m| perfchar::fig8(m, scale))
            .collect(),
        "fig9" => vec![perfchar::fig9(Machine::XGene3, scale)],
        "fig10" => Machine::BOTH.iter().map(|&m| factors::fig10(m)).collect(),
        "fig11" => Machine::BOTH.iter().map(|&m| energy::fig11(m)).collect(),
        "fig12" => Machine::BOTH.iter().map(|&m| energy::fig12(m)).collect(),
        "fig14" => run_traced(opts, Machine::XGene3, |tel| {
            let results = server_eval::evaluate_with_observer(Machine::XGene3, scale, seed, tel);
            Ok(vec![server_eval::fig14(&results, 60)])
        })?,
        "fig15" => run_traced(opts, Machine::XGene3, |tel| {
            let results = server_eval::evaluate_with_observer(Machine::XGene3, scale, seed, tel);
            Ok(vec![server_eval::fig15(&results, 60)])
        })?,
        "table3" => run_traced(opts, Machine::XGene2, |tel| {
            Ok(vec![
                server_eval::table3_4_with_observer(Machine::XGene2, scale, seed, tel).0,
            ])
        })?,
        "table4" => run_traced(opts, Machine::XGene3, |tel| {
            Ok(vec![
                server_eval::table3_4_with_observer(Machine::XGene3, scale, seed, tel).0,
            ])
        })?,
        "resilience" => {
            let rates: &[f64] = if opts.smoke {
                &resilience::SMOKE_RATES
            } else {
                &resilience::FULL_RATES
            };
            let machines: &[Machine] = if opts.smoke {
                &[Machine::XGene2]
            } else {
                &Machine::BOTH
            };
            // With --trace, the journal covers the last machine swept.
            let mut out = Vec::new();
            for &m in machines {
                out.extend(run_traced(opts, m, |tel| {
                    let results = resilience::sweep_with_observer(m, scale, seed, rates, tel);
                    results
                        .validate()
                        .map_err(|e| format!("resilience acceptance failed on {m}: {e}"))?;
                    Ok(vec![
                        resilience::degradation_curve(&results),
                        resilience::recovery_stats(&results),
                    ])
                })?);
            }
            out
        }
        "fleet" => {
            let results = fleet::evaluate(scale, seed);
            fleet::validate(&results).map_err(|e| format!("fleet acceptance failed: {e}"))?;
            if let Some(path) = &opts.trace {
                // The merged, node-tagged journal of the energy-aware
                // run (byte-identical across worker counts).
                let journal = results.energy_aware().journal.clone().unwrap_or_default();
                std::fs::write(path, &journal)
                    .map_err(|e| format!("cannot write trace to {}: {e}", path.display()))?;
                eprintln!(
                    "fleet journal: {} events -> {}",
                    journal.lines().count(),
                    path.display()
                );
            }
            vec![
                fleet::policy_table(&results),
                fleet::node_table(&results),
                fleet::determinism_table(&results),
            ]
        }
        "fleet-resilience" => {
            let rates: &[f64] = if opts.smoke {
                &fleet_resilience::SMOKE_RATES
            } else {
                &fleet_resilience::FULL_RATES
            };
            let results = fleet_resilience::evaluate(scale, seed, rates);
            results
                .validate()
                .map_err(|e| format!("fleet-resilience acceptance failed: {e}"))?;
            if let Some(path) = &opts.trace {
                // The crash drill's merged, node-tagged journal
                // (byte-identical across worker counts).
                let journal = results.drill.journal.clone().unwrap_or_default();
                std::fs::write(path, &journal)
                    .map_err(|e| format!("cannot write trace to {}: {e}", path.display()))?;
                eprintln!(
                    "fleet-resilience journal: {} events -> {}",
                    journal.lines().count(),
                    path.display()
                );
            }
            vec![
                fleet_resilience::degradation_curve(&results),
                fleet_resilience::drill_table(&results),
                fleet_resilience::identity_table(&results),
            ]
        }
        "characterize" => {
            let machines: &[Machine] = if opts.smoke {
                &[Machine::XGene2]
            } else {
                &Machine::BOTH
            };
            let results = characterize::evaluate(machines, seed)?;
            results
                .validate()
                .map_err(|e| format!("characterize acceptance failed: {e}"))?;
            let mut out = vec![characterize::reclaim_table(&results)];
            out.extend(results.drills.iter().map(characterize::drill_table));
            out.extend(results.curves.iter().map(characterize::curve_table));
            out
        }
        "ablations" => {
            let mut out = Vec::new();
            for m in Machine::BOTH {
                out.push(ablations::fail_safe_ablation(m, scale, seed));
                out.push(ablations::guardband_sweep(m, scale, seed));
                out.push(ablations::threshold_sweep(m, scale, seed));
                out.push(ablations::migration_cost_sweep(m, scale, seed));
                out.push(ablations::cross_specimen(m, scale, seed));
            }
            out
        }
        other => return Err(format!("unknown experiment id `{other}`")),
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    for id in opts.ids.clone() {
        eprintln!("== running {id} ({:?} scale) ==", opts.scale);
        match run_id(&id, &opts) {
            Ok(tables) => emit(tables, &opts.csv_dir),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
