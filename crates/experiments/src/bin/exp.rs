//! Experiment runner: regenerates the paper's tables and figures.
//!
//! ```text
//! exp [--quick] [--smoke] [--csv DIR] [--seed N] <id>...
//! exp all                # every artifact
//! exp table3 table4      # just the headline tables
//! exp resilience --smoke # short seeded fault soak (CI gate)
//! ```
//!
//! Artifact ids: `table1 table2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10
//! fig11 fig12 fig14 fig15 table3 table4 ablations resilience`.
//!
//! `--smoke` implies `--quick` and trims the resilience sweep to its
//! rate-0 anchor plus the 5% acceptance point on one machine; the
//! resilience id exits nonzero if any run fails its acceptance checks
//! (all jobs drained, safe end state, strictly positive savings).

use avfs_chip::vmin::DroopClass;
use avfs_experiments::report::Table;
use avfs_experiments::{
    ablations, characterization, droops, energy, factors, perfchar, resilience, server_eval,
    tables, Machine, Scale,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    scale: Scale,
    csv_dir: Option<PathBuf>,
    seed: u64,
    smoke: bool,
    ids: Vec<String>,
}

const ALL_IDS: [&str; 16] = [
    "table1", "table2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12", "fig14", "fig15", "table3", "table4",
];

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        scale: Scale::Paper,
        csv_dir: None,
        seed: 2024,
        smoke: false,
        ids: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.scale = Scale::Quick,
            "--smoke" => {
                opts.scale = Scale::Quick;
                opts.smoke = true;
            }
            "--csv" => {
                let dir = args.next().ok_or("--csv needs a directory")?;
                opts.csv_dir = Some(PathBuf::from(dir));
            }
            "--seed" => {
                let seed = args.next().ok_or("--seed needs a value")?;
                opts.seed = seed.parse().map_err(|e| format!("bad seed: {e}"))?;
            }
            "all" => opts.ids.extend(
                ALL_IDS
                    .iter()
                    .map(|s| s.to_string())
                    .chain(["ablations".into(), "resilience".into()]),
            ),
            "--help" | "-h" => {
                println!(
                    "usage: exp [--quick] [--smoke] [--csv DIR] [--seed N] <id>...\n  ids: {} ablations resilience all",
                    ALL_IDS.join(" ")
                );
                std::process::exit(0);
            }
            id => opts.ids.push(id.to_string()),
        }
    }
    if opts.ids.is_empty() {
        return Err("no experiment ids given (try `exp all` or `exp --help`)".into());
    }
    Ok(opts)
}

fn emit(tables: Vec<Table>, csv_dir: &Option<PathBuf>) {
    for t in tables {
        println!("{t}");
        if let Some(dir) = csv_dir {
            if let Err(e) = t.write_csv(dir) {
                eprintln!("warning: could not write {}.csv: {e}", t.id);
            }
            if let Err(e) = t.write_json(dir) {
                eprintln!("warning: could not write {}.json: {e}", t.id);
            }
        }
    }
}

fn run_id(id: &str, opts: &Options) -> Result<Vec<Table>, String> {
    let scale = opts.scale;
    let seed = opts.seed;
    Ok(match id {
        "table1" => vec![tables::table1()],
        "table2" => vec![tables::table2(), tables::table2_policy()],
        "fig3" => Machine::BOTH
            .iter()
            .map(|&m| characterization::fig3(m, scale))
            .collect(),
        "fig4" => vec![characterization::fig4(scale)],
        "fig5" => Machine::BOTH
            .iter()
            .map(|&m| characterization::fig5(m, scale))
            .collect(),
        "fig6" => vec![
            droops::fig6(DroopClass::D55, scale),
            droops::fig6(DroopClass::D45, scale),
        ],
        "fig7" => vec![energy::fig7()],
        "fig8" => Machine::BOTH
            .iter()
            .map(|&m| perfchar::fig8(m, scale))
            .collect(),
        "fig9" => vec![perfchar::fig9(Machine::XGene3, scale)],
        "fig10" => Machine::BOTH.iter().map(|&m| factors::fig10(m)).collect(),
        "fig11" => Machine::BOTH.iter().map(|&m| energy::fig11(m)).collect(),
        "fig12" => Machine::BOTH.iter().map(|&m| energy::fig12(m)).collect(),
        "fig14" => {
            let results = server_eval::evaluate(Machine::XGene3, scale, seed);
            vec![server_eval::fig14(&results, 60)]
        }
        "fig15" => {
            let results = server_eval::evaluate(Machine::XGene3, scale, seed);
            vec![server_eval::fig15(&results, 60)]
        }
        "table3" => vec![server_eval::table3_4(Machine::XGene2, scale, seed).0],
        "table4" => vec![server_eval::table3_4(Machine::XGene3, scale, seed).0],
        "resilience" => {
            let rates: &[f64] = if opts.smoke {
                &resilience::SMOKE_RATES
            } else {
                &resilience::FULL_RATES
            };
            let machines: &[Machine] = if opts.smoke {
                &[Machine::XGene2]
            } else {
                &Machine::BOTH
            };
            let mut out = Vec::new();
            for &m in machines {
                let results = resilience::sweep(m, scale, seed, rates);
                results
                    .validate()
                    .map_err(|e| format!("resilience acceptance failed on {m}: {e}"))?;
                out.push(resilience::degradation_curve(&results));
                out.push(resilience::recovery_stats(&results));
            }
            out
        }
        "ablations" => {
            let mut out = Vec::new();
            for m in Machine::BOTH {
                out.push(ablations::fail_safe_ablation(m, scale, seed));
                out.push(ablations::guardband_sweep(m, scale, seed));
                out.push(ablations::threshold_sweep(m, scale, seed));
                out.push(ablations::migration_cost_sweep(m, scale, seed));
                out.push(ablations::cross_specimen(m, scale, seed));
            }
            out
        }
        other => return Err(format!("unknown experiment id `{other}`")),
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    for id in opts.ids.clone() {
        eprintln!("== running {id} ({:?} scale) ==", opts.scale);
        match run_id(&id, &opts) {
            Ok(tables) => emit(tables, &opts.csv_dir),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
