//! Beyond-paper ablations of the design choices DESIGN.md calls out.
//!
//! * [`fail_safe_ablation`] — what happens if the daemon applies voltage
//!   *after* placement instead of the paper's raise-before ordering:
//!   unsafe transition windows appear (and failures, when injection is
//!   enabled).
//! * [`guardband_sweep`] — how the Optimal savings scale with the width
//!   of the factory guardband.
//! * [`threshold_sweep`] — sensitivity of the Optimal savings to the
//!   CPU/memory classification threshold around the paper's 3000
//!   L3C/1M-cycles.
//! * [`migration_cost_sweep`] — robustness of the placement policy to
//!   the cost of a process migration.
//! * [`cross_specimen`] — one characterized policy table deployed on
//!   other chip specimens (static-variation re-draws): quantifies why
//!   the paper characterizes each server individually.

use crate::report::{Cell, Table};
use crate::{Machine, Scale};
use avfs_core::daemon::Daemon;
use avfs_sched::metrics::RunMetrics;
use avfs_sched::system::{System, SystemConfig};
use avfs_sim::time::SimDuration;
use avfs_workloads::generator::{GeneratorConfig, WorkloadTrace};

fn quick_trace(machine: Machine, scale: Scale, seed: u64) -> WorkloadTrace {
    let cores = machine.chip_builder().spec().cores as usize;
    let mut gen = GeneratorConfig::paper_default(cores, seed);
    gen.duration = scale.server_window();
    gen.job_scale = match scale {
        Scale::Quick => 0.25,
        Scale::Paper => 1.0,
    };
    WorkloadTrace::generate(&gen)
}

fn run_with(
    machine: Machine,
    trace: &WorkloadTrace,
    mut daemon: Daemon,
    config: SystemConfig,
) -> RunMetrics {
    let chip = machine.chip_builder().build();
    let mut system = System::new(chip, machine.perf_model(), config);
    system.run(trace, &mut daemon)
}

/// Fail-safe-ordering ablation: optimal daemon with and without the
/// raise-before-reconfigure rule, with failure injection enabled.
pub fn fail_safe_ablation(machine: Machine, scale: Scale, seed: u64) -> Table {
    let trace = quick_trace(machine, scale, seed);
    let chip = machine.chip_builder().build();
    let sys_config = SystemConfig {
        inject_failures: true,
        ..SystemConfig::default()
    };

    let safe = run_with(machine, &trace, Daemon::optimal(&chip), sys_config.clone());
    let mut unsafe_daemon = Daemon::optimal(&chip);
    unsafe_daemon.set_fail_safe_ordering(false);
    let unsafe_run = run_with(machine, &trace, unsafe_daemon, sys_config);

    let mut t = Table::new(
        &format!(
            "ablation-failsafe-{}",
            machine.name().to_lowercase().replace(' ', "")
        ),
        &format!("Ablation — fail-safe voltage ordering, {machine}"),
        &["variant", "energy (J)", "unsafe time (s)", "failures"],
    );
    t.push_row(vec![
        "raise-before (paper)".into(),
        Cell::f(safe.energy_j, 1),
        Cell::f(safe.unsafe_time_s, 3),
        Cell::Int(safe.failures as i64),
    ]);
    t.push_row(vec![
        "voltage-last (ablated)".into(),
        Cell::f(unsafe_run.energy_j, 1),
        Cell::f(unsafe_run.unsafe_time_s, 3),
        Cell::Int(unsafe_run.failures as i64),
    ]);
    t
}

/// Guardband-width sweep: shift every Vmin table entry and measure the
/// Optimal configuration's savings against the unshifted Baseline.
pub fn guardband_sweep(machine: Machine, scale: Scale, seed: u64) -> Table {
    let trace = quick_trace(machine, scale, seed);
    let mut t = Table::new(
        &format!(
            "ablation-guardband-{}",
            machine.name().to_lowercase().replace(' ', "")
        ),
        &format!("Ablation — savings vs guardband width, {machine}"),
        &[
            "guardband shift (mV)",
            "optimal energy (J)",
            "savings vs baseline (%)",
        ],
    );
    // Baseline on the stock chip.
    let base = {
        let chip = machine.chip_builder().build();
        let mut driver = avfs_sched::driver::DefaultPolicy::ondemand();
        let mut system = System::new(chip, machine.perf_model(), SystemConfig::default());
        system.run(&trace, &mut driver)
    };
    for shift in [-30i32, -15, 0, 15, 30] {
        let builder = machine.chip_builder().guardband_shift_mv(shift);
        let chip = builder.build();
        let mut daemon = Daemon::optimal(&chip);
        let mut system = System::new(chip, machine.perf_model(), SystemConfig::default());
        let m = system.run(&trace, &mut daemon);
        t.push_row(vec![
            Cell::Int(shift as i64),
            Cell::f(m.energy_j, 1),
            Cell::f(m.energy_savings_vs(&base) * 100.0, 1),
        ]);
    }
    t
}

/// Cross-specimen robustness: characterize the policy table on one chip
/// specimen, deploy the daemon on others with re-drawn static variation.
///
/// The paper characterizes each server individually; this sweep probes
/// what happens if a vendor shipped one table for the whole fleet. The
/// deployment stays safe as long as the characterized specimen's margins
/// cover the deployed specimen's weakest PMD — unsafe time appears
/// exactly when they do not, quantifying why per-chip characterization
/// matters (§III-A's chip-to-chip variation).
pub fn cross_specimen(machine: Machine, scale: Scale, seed: u64) -> Table {
    let trace = quick_trace(machine, scale, seed);
    // Characterize once, on the stock specimen.
    let reference_chip = machine.chip_builder().build();
    let mut t = Table::new(
        &format!(
            "ablation-specimen-{}",
            machine.name().to_lowercase().replace(' ', "")
        ),
        &format!("Ablation — one policy table deployed across chip specimens, {machine}"),
        &[
            "specimen seed",
            "energy (J)",
            "unsafe time (s)",
            "weakest PMD offset (mV)",
        ],
    );
    for spec_seed in [0u64, 1, 2, 3, 4] {
        let builder = if spec_seed == 0 {
            machine.chip_builder() // the characterized specimen itself
        } else {
            machine.chip_builder().static_variation_seed(spec_seed)
        };
        let chip = builder.build();
        let worst_offset = chip
            .spec()
            .all_pmds()
            .map(|p| chip.vmin_model().pmd_offset_mv(p))
            .max()
            .unwrap_or(0);
        // Daemon carries the *reference* chip's characterization.
        let daemon = Daemon::optimal(&reference_chip);
        let mut system = System::new(chip, machine.perf_model(), SystemConfig::default());
        let mut boxed: Box<dyn avfs_sched::driver::Driver> = Box::new(daemon);
        let m = system.run(&trace, boxed.as_mut());
        t.push_row(vec![
            Cell::Int(spec_seed as i64),
            Cell::f(m.energy_j, 1),
            Cell::f(m.unsafe_time_s, 3),
            Cell::Int(worst_offset as i64),
        ]);
    }
    t
}

/// Classification-threshold sweep: how sensitive the Optimal savings are
/// to the L3C-per-1M-cycles cut-off (the paper picks 3000 from Figure 9).
pub fn threshold_sweep(machine: Machine, scale: Scale, seed: u64) -> Table {
    let trace = quick_trace(machine, scale, seed);
    let mut t = Table::new(
        &format!(
            "ablation-threshold-{}",
            machine.name().to_lowercase().replace(' ', "")
        ),
        &format!("Ablation — Optimal vs classification threshold, {machine}"),
        &[
            "threshold (L3C/1Mcyc)",
            "energy (J)",
            "time (s)",
            "migrations",
        ],
    );
    for threshold in [500.0f64, 1_500.0, 3_000.0, 6_000.0, 12_000.0] {
        let chip = machine.chip_builder().build();
        let daemon = Daemon::optimal(&chip);
        let config = SystemConfig {
            l3c_threshold: threshold,
            ..SystemConfig::default()
        };
        let m = run_with(machine, &trace, daemon, config);
        t.push_row(vec![
            Cell::f(threshold, 0),
            Cell::f(m.energy_j, 1),
            Cell::f(m.makespan.as_secs_f64(), 1),
            Cell::Int(m.migrations as i64),
        ]);
    }
    t
}

/// Migration-cost sweep: the Optimal savings as the per-migration pause
/// grows from free to very expensive.
pub fn migration_cost_sweep(machine: Machine, scale: Scale, seed: u64) -> Table {
    let trace = quick_trace(machine, scale, seed);
    let mut t = Table::new(
        &format!(
            "ablation-migration-{}",
            machine.name().to_lowercase().replace(' ', "")
        ),
        &format!("Ablation — Optimal vs migration pause, {machine}"),
        &["pause (ms)", "energy (J)", "time (s)", "migrations"],
    );
    for pause_ms in [0u64, 2, 20, 200] {
        let chip = machine.chip_builder().build();
        let daemon = Daemon::optimal(&chip);
        let config = SystemConfig {
            migration_pause: SimDuration::from_millis(pause_ms),
            ..SystemConfig::default()
        };
        let m = run_with(machine, &trace, daemon, config);
        t.push_row(vec![
            Cell::Int(pause_ms as i64),
            Cell::f(m.energy_j, 1),
            Cell::f(m.makespan.as_secs_f64(), 1),
            Cell::Int(m.migrations as i64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_safe_prevents_unsafe_time() {
        let t = fail_safe_ablation(Machine::XGene3, Scale::Quick, 11);
        let safe_unsafe = t.value("raise-before (paper)", "unsafe time (s)").unwrap();
        let ablated_unsafe = t
            .value("voltage-last (ablated)", "unsafe time (s)")
            .unwrap();
        assert_eq!(safe_unsafe, 0.0);
        assert!(ablated_unsafe > 0.0, "ablation produced no unsafe time");
    }

    #[test]
    fn wider_guardband_means_more_savings() {
        let t = guardband_sweep(Machine::XGene2, Scale::Quick, 13);
        let col = t.column("savings vs baseline (%)");
        // Shifting Vmin down (more headroom) increases savings;
        // monotone across the sweep.
        for w in col.windows(2) {
            assert!(
                w[1] <= w[0] + 0.5,
                "savings should fall as Vmin rises: {col:?}"
            );
        }
        assert!(col.first().unwrap() > col.last().unwrap());
    }

    #[test]
    fn threshold_extremes_change_behaviour() {
        // With an absurdly high threshold nothing classifies as
        // memory-intensive, so the daemon slows nothing: faster but less
        // saving than the paper threshold.
        let t = threshold_sweep(Machine::XGene2, Scale::Quick, 19);
        let energies = t.column("energy (J)");
        let times = t.column("time (s)");
        // Paper threshold (index 2) saves at least as much energy as the
        // never-memory extreme (last row).
        assert!(energies[2] <= energies[4] * 1.02, "{energies:?}");
        // The never-memory extreme is the fastest configuration.
        let min_time = times.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(times[4] <= min_time + 1.0, "{times:?}");
    }

    #[test]
    fn own_specimen_is_safe_others_may_not_be() {
        let t = cross_specimen(Machine::XGene2, Scale::Quick, 23);
        // The characterized specimen itself (seed 0) is always safe.
        let own = t.rows[0][2].as_f64().unwrap();
        assert_eq!(own, 0.0);
        // Specimens with a weaker PMD than the reference's margin may go
        // unsafe; either way the column must be present and non-negative.
        for row in &t.rows {
            assert!(row[2].as_f64().unwrap() >= 0.0);
        }
    }

    #[test]
    fn migration_cost_is_tolerable() {
        let t = migration_cost_sweep(Machine::XGene2, Scale::Quick, 17);
        let times = t.column("time (s)");
        // 2 ms pauses (the paper's "equal impact as a process migration")
        // must not move the makespan meaningfully vs free migrations.
        let ratio = times[1] / times[0];
        assert!(ratio < 1.01, "2ms pause inflated makespan by {ratio}");
        // Very expensive migrations are visible but not catastrophic.
        let ratio_extreme = times[3] / times[0];
        assert!(ratio_extreme < 1.25, "200ms pause ratio {ratio_extreme}");
    }
}
