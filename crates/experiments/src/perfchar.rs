//! Workload characterization: Figures 8 and 9.

use crate::report::{Cell, Table};
use crate::{Machine, Scale};
use avfs_workloads::catalog::Benchmark;
use avfs_workloads::classify::{classify, IntensityClass, L3C_THRESHOLD_PER_MCYCLE};

/// Figure 8: relative performance under full-chip contention — the ratio
/// of solo execution time to per-instance time with one copy per core.
pub fn fig8(machine: Machine, _scale: Scale) -> Table {
    let chip = machine.chip_builder().build();
    let perf = machine.perf_model();
    let copies = chip.spec().cores as usize;
    let mut table = Table {
        id: format!("fig08-{}", machine.name().to_lowercase().replace(' ', "")),
        title: format!("Figure 8 — relative performance (solo time / contended time), {machine}"),
        headers: vec![
            "benchmark".into(),
            "ratio".into(),
            "mem fraction".into(),
            "class".into(),
        ],
        rows: Vec::new(),
    };
    let mut rows: Vec<(Benchmark, f64)> = Benchmark::characterized()
        .into_iter()
        .map(|b| {
            (
                b,
                machine_contention_ratio(&perf, b, copies, chip.spec().fmax_mhz),
            )
        })
        .collect();
    // The paper plots benchmarks ordered from CPU- to memory-intensive.
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (bench, ratio) in rows {
        let p = bench.profile();
        table.push_row(vec![
            bench.name().into(),
            Cell::f(ratio, 3),
            Cell::f(p.mem_fraction, 2),
            classify(p.l3c_per_mcycle).to_string().into(),
        ]);
    }
    table
}

fn machine_contention_ratio(
    perf: &avfs_workloads::PerfModel,
    bench: Benchmark,
    copies: usize,
    fmax: u32,
) -> f64 {
    perf.contention_ratio(&bench.profile(), copies, fmax)
}

/// Figure 9: L3-cache access rate per 1 M cycles for the three threading
/// configurations (X-Gene 3 in the paper).
pub fn fig9(machine: Machine, _scale: Scale) -> Table {
    let chip = machine.chip_builder().build();
    let perf = machine.perf_model();
    let cores = chip.spec().cores as usize;
    let thread_configs = [cores, cores / 2, cores / 4];
    let mut headers = vec!["benchmark".to_string()];
    headers.extend(thread_configs.iter().map(|t| format!("{t}T")));
    headers.push("class".to_string());
    let mut table = Table {
        id: format!("fig09-{}", machine.name().to_lowercase().replace(' ', "")),
        title: format!(
            "Figure 9 — L3C accesses per 1M cycles (threshold {L3C_THRESHOLD_PER_MCYCLE}), {machine}"
        ),
        headers,
        rows: Vec::new(),
    };
    for bench in Benchmark::characterized() {
        let profile = bench.profile();
        let mut row: Vec<Cell> = vec![bench.name().into()];
        let mut final_class = IntensityClass::CpuIntensive;
        for &threads in &thread_configs {
            // Aggregate pressure of `threads` copies/threads of the same
            // program at max frequency.
            let pressure = perf.pressure_of(&profile) * threads as f64;
            let mult =
                perf.mem_contention_mult(pressure) * perf.l2_share_mult(Some(profile.mem_fraction));
            let rate = perf.observed_l3c_rate(&profile, mult);
            final_class = classify(rate);
            row.push(Cell::f(rate, 0));
        }
        row.push(final_class.to_string().into());
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_extremes_match_the_paper() {
        let t = fig8(Machine::XGene3, Scale::Quick);
        // namd and EP near 1.0 (top of the sorted table).
        let namd = t.value("namd", "ratio").unwrap();
        let ep = t.value("EP", "ratio").unwrap();
        assert!(namd > 0.95 && ep > 0.9, "namd {namd}, EP {ep}");
        // CG, FT, milc far below 1.
        for b in ["CG", "FT", "milc"] {
            let r = t.value(b, "ratio").unwrap();
            assert!(r < 0.5, "{b}: {r}");
        }
        // Sorted: first row is the most CPU-intensive.
        assert_eq!(t.rows[0][0], Cell::Text("namd".into()));
    }

    #[test]
    fn fig9_classes_are_consistent_across_threading() {
        let t = fig9(Machine::XGene3, Scale::Quick);
        for bench in ["namd", "EP", "swaptions"] {
            for col in ["32T", "16T", "8T"] {
                let rate = t.value(bench, col).unwrap();
                assert!(rate < L3C_THRESHOLD_PER_MCYCLE, "{bench}@{col}: {rate}");
            }
        }
        for bench in ["CG", "FT", "milc", "mcf", "lbm"] {
            for col in ["32T", "16T", "8T"] {
                let rate = t.value(bench, col).unwrap();
                assert!(rate >= L3C_THRESHOLD_PER_MCYCLE, "{bench}@{col}: {rate}");
            }
        }
    }

    #[test]
    fn fig9_has_both_classes() {
        let t = fig9(Machine::XGene2, Scale::Quick);
        let classes: Vec<String> = t
            .rows
            .iter()
            .map(|r| r.last().unwrap().to_string())
            .collect();
        assert!(classes.iter().any(|c| c == "CPU-intensive"));
        assert!(classes.iter().any(|c| c == "memory-intensive"));
    }
}
