//! Figure 10: decomposition of the safe-Vmin dependence.
//!
//! The paper quantifies, on the X-Gene 2, how much each factor moves the
//! safe Vmin: clock division ≈12 %, one clock-skipping step ≈3 %, core
//! allocation ≈4 %, workload ≤1 % (in multicore execution). This harness
//! recomputes those percentages from the calibrated Vmin surface.

use crate::report::{Cell, Table};
use crate::Machine;
use avfs_chip::freq::FreqVminClass;
use avfs_chip::vmin::VminQuery;

/// Figure 10: the magnitude of each Vmin factor, percent of the
/// max-frequency safe Vmin.
pub fn fig10(machine: Machine) -> Table {
    let chip = machine.chip_builder().build();
    let model = chip.vmin_model();
    let pmds = chip.spec().pmds() as usize;
    let cores = chip.spec().cores as usize;

    let q_base = VminQuery {
        freq_class: FreqVminClass::Max,
        utilized_pmds: pmds,
        active_threads: cores,
        workload_sensitivity: 0.0,
    };
    let v_max = model.safe_vmin(&q_base).as_mv() as f64;

    // Frequency: one skipping step (max → half speed).
    let v_reduced = model
        .safe_vmin(&VminQuery {
            freq_class: FreqVminClass::Reduced,
            ..q_base
        })
        .as_mv() as f64;
    // Clock division (below half speed, where the chip supports it).
    let v_divided = model
        .safe_vmin(&VminQuery {
            freq_class: FreqVminClass::Divided,
            ..q_base
        })
        .as_mv() as f64;
    // Core allocation: full chip vs half the PMDs at the same threads.
    let v_half_pmds = model
        .safe_vmin(&VminQuery {
            utilized_pmds: (pmds / 2).max(1),
            active_threads: cores / 2,
            ..q_base
        })
        .as_mv() as f64;
    // Workload: the spread across benchmarks in multicore execution.
    let v_wl_hi = model
        .safe_vmin(&VminQuery {
            workload_sensitivity: 1.0,
            ..q_base
        })
        .as_mv() as f64;
    let v_wl_lo = model
        .safe_vmin(&VminQuery {
            workload_sensitivity: -1.0,
            ..q_base
        })
        .as_mv() as f64;

    let pct = |delta: f64| delta / v_max * 100.0;
    let mut table = Table {
        id: format!("fig10-{}", machine.name().to_lowercase().replace(' ', "")),
        title: format!("Figure 10 — magnitude of Vmin dependence, {machine}"),
        headers: vec!["factor".into(), "Vmin reduction (%)".into()],
        rows: Vec::new(),
    };
    table.push_row(vec![
        "clock division (total below half speed)".into(),
        Cell::f(pct(v_max - v_divided), 1),
    ]);
    table.push_row(vec![
        "frequency (one clock-skipping step)".into(),
        Cell::f(pct(v_max - v_reduced), 1),
    ]);
    table.push_row(vec![
        "core allocation (full vs half PMDs)".into(),
        Cell::f(pct(v_max - v_half_pmds), 1),
    ]);
    table.push_row(vec![
        "workload (multicore spread)".into(),
        Cell::f(pct(v_wl_hi - v_wl_lo), 1),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xgene2_percentages_match_figure10() {
        let t = fig10(Machine::XGene2);
        let division = t
            .value(
                "clock division (total below half speed)",
                "Vmin reduction (%)",
            )
            .unwrap();
        let skip = t
            .value("frequency (one clock-skipping step)", "Vmin reduction (%)")
            .unwrap();
        let alloc = t
            .value("core allocation (full vs half PMDs)", "Vmin reduction (%)")
            .unwrap();
        let workload = t
            .value("workload (multicore spread)", "Vmin reduction (%)")
            .unwrap();
        // Paper: division ≈ 12–15 %, skipping ≈ 3 %, allocation ≈ 4 %,
        // workload ≤ 1 %.
        assert!((10.0..=17.0).contains(&division), "division {division}");
        assert!((2.0..=4.5).contains(&skip), "skip {skip}");
        assert!((2.5..=5.5).contains(&alloc), "alloc {alloc}");
        assert!(workload <= 1.5, "workload {workload}");
        // Ordering: division > allocation > workload.
        assert!(division > alloc && alloc > workload);
    }

    #[test]
    fn xgene3_division_gives_nothing_extra() {
        // X-Gene 3 shows no benefit below half speed (§II-B): division
        // equals the skipping step.
        let t = fig10(Machine::XGene3);
        let division = t
            .value(
                "clock division (total below half speed)",
                "Vmin reduction (%)",
            )
            .unwrap();
        let skip = t
            .value("frequency (one clock-skipping step)", "Vmin reduction (%)")
            .unwrap();
        assert!((division - skip).abs() < 0.2, "{division} vs {skip}");
    }
}
