//! Beyond-paper characterization experiment: what measuring the margin
//! buys over presetting it, and what drift costs a table that never
//! re-measures.
//!
//! Three artifacts per machine:
//!
//! * **Reclaimed savings** — an `avfs-characterize` campaign measures
//!   the chip's margin map and compiles it with the default guardband;
//!   the foil is the model-derived characterization padded with a
//!   conservative static margin (what a vendor ships when it cannot
//!   afford per-part measurement). The measured table must undervolt
//!   strictly deeper on average while still covering the hidden ground
//!   truth in every measured cell.
//! * **Drift drill** — a daemon deployed on the measured table runs
//!   busy windows, the silicon ages mid-run, the droop guard absorbs the
//!   shift while the [`Recharacterizer`] waits for an idle window, and a
//!   fresh campaign swaps in a re-proven table. Zero unsafe windows
//!   end to end, exactly one swap.
//! * **Drift-degradation curve** — the same stale table replayed
//!   against progressively drifted ground truth: violations must start
//!   at zero, grow monotonically, and be strictly positive by the end
//!   of the sweep — the quantitative case for recharacterizing at all.

use crate::report::{Cell, Table};
use crate::Machine;
use avfs_characterize::{
    Campaign, CampaignConfig, GuardbandPolicy, MarginMap, Recharacterizer, TableCompiler,
};
use avfs_chip::chip::Chip;
use avfs_chip::freq::FreqVminClass;
use avfs_chip::topology::{CoreSet, PmdId};
use avfs_chip::vmin::{DroopClass, VminDrift, VminQuery};
use avfs_core::daemon::Daemon;
use avfs_core::recharacterize::RecharacterizeTrigger;
use avfs_core::PolicyTable;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;

/// Vmin drift magnitudes swept by the degradation curve, mV.
pub const DRIFT_SWEEP_MV: [i32; 6] = [0, 5, 10, 15, 20, 25];

/// The drift the drill injects mid-run, mV. Must sit inside the droop
/// guard's emergency margin so the stale table stays safe while the
/// trigger waits for an idle window.
pub const DRILL_DRIFT_MV: i32 = 15;

/// Frequency classes in policy-table row order.
const FREQ_CLASSES: [FreqVminClass; 3] = [
    FreqVminClass::Divided,
    FreqVminClass::Reduced,
    FreqVminClass::Max,
];

/// The static extra margin the conservative preset foil ships with, mV.
/// Chosen per machine to represent a vendor guardband generous enough to
/// absorb part-to-part spread without measurement.
fn conservative_extra(machine: Machine) -> u32 {
    match machine {
        Machine::XGene2 => 30,
        Machine::XGene3 => 25,
    }
}

/// Measured-vs-preset comparison for one machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReclaimEntry {
    /// Which machine.
    pub machine: String,
    /// Measured cells in the campaign's margin map.
    pub cells: u64,
    /// Stress probes the campaign spent.
    pub probes: u64,
    /// The conservative foil's static extra margin, mV.
    pub conservative_extra_mv: u32,
    /// Mean undervolt depth (nominal − cell) of the measured table over
    /// the measured cells, mV.
    pub measured_depth_mv: f64,
    /// Mean undervolt depth of the conservative preset over the same
    /// cells, mV.
    pub conservative_depth_mv: f64,
    /// Depth the measured table reclaims per cell on average, mV.
    pub reclaimed_mv: f64,
    /// Smallest `compiled − truth` slack over the measured cells, mV
    /// (negative iff the measured table undercuts the hidden truth).
    pub min_truth_slack_mv: i64,
}

/// One monitor window of the drift drill.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DrillWindow {
    /// Window index.
    pub index: usize,
    /// Drill phase: `steady`, `drifted`, or `recharacterized`.
    pub phase: String,
    /// Whether the machine was busy (all cores) or idle this window.
    pub busy: bool,
    /// Whether the droop guard was engaged.
    pub droop_guard: bool,
    /// Rail voltage the daemon chose, mV.
    pub voltage_mv: u32,
    /// The chip's true current safe Vmin for the active set, mV.
    pub true_vmin_mv: u32,
    /// The rail covered the true safe Vmin all window.
    pub safe: bool,
    /// A recharacterization pass completed and swapped the table here.
    pub swapped: bool,
}

/// Drift drill results for one machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DrillResults {
    /// Which machine.
    pub machine: String,
    /// Injected drift, mV.
    pub drift_mv: i32,
    /// Every monitor window, in order.
    pub windows: Vec<DrillWindow>,
    /// Completed table swaps.
    pub swaps: u64,
    /// Windows where the rail sat below the true safe Vmin.
    pub unsafe_windows: usize,
    /// Rail requests the chip rejected.
    pub rail_errors: usize,
    /// Static safe voltage of the stale table at max frequency, mV.
    pub stale_static_mv: u32,
    /// Static safe voltage of the swapped-in table, mV.
    pub fresh_static_mv: u32,
    /// Smallest `chosen − drifted truth` slack of the post-swap chooser
    /// over the whole policy domain (no droop guard), mV.
    pub post_swap_slack_mv: i64,
}

/// One point of the drift-degradation curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftPoint {
    /// Ground-truth drift, mV.
    pub drift_mv: i32,
    /// Measured cells whose stale compiled voltage undercuts the
    /// drifted truth.
    pub stale_violations: u64,
    /// Worst undercut depth (drifted truth − compiled), mV; negative
    /// when every cell still covers the truth.
    pub max_undercut_mv: i64,
}

/// Stale-table degradation curve for one machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftCurve {
    /// Which machine.
    pub machine: String,
    /// One point per swept drift, in sweep order.
    pub points: Vec<DriftPoint>,
}

/// Everything `exp characterize` produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CharacterizeResults {
    /// Campaign seed.
    pub seed: u64,
    /// Measured-vs-preset comparison, one entry per machine.
    pub reclaim: Vec<ReclaimEntry>,
    /// Drift drill, one per machine.
    pub drills: Vec<DrillResults>,
    /// Stale-table degradation, one curve per machine.
    pub curves: Vec<DriftCurve>,
}

impl CharacterizeResults {
    /// Checks the experiment's acceptance properties.
    ///
    /// # Errors
    ///
    /// Returns the first violated property: a measured table that fails
    /// to reclaim savings or undercuts the truth, a drill window that
    /// went unsafe or a drill that did not swap exactly once, or a
    /// degradation curve that is non-monotone, starts dirty, or never
    /// degrades.
    pub fn validate(&self) -> Result<(), String> {
        for r in &self.reclaim {
            if r.cells == 0 {
                return Err(format!("{}: campaign measured no cells", r.machine));
            }
            if r.min_truth_slack_mv < 0 {
                return Err(format!(
                    "{}: measured table undercuts the hidden truth by {} mV",
                    r.machine, -r.min_truth_slack_mv
                ));
            }
            if r.reclaimed_mv <= 0.0 {
                return Err(format!(
                    "{}: measured table reclaimed {:.2} mV/cell — not strictly more than the conservative preset",
                    r.machine, r.reclaimed_mv
                ));
            }
        }
        for d in &self.drills {
            if d.unsafe_windows > 0 {
                return Err(format!(
                    "{} drill: {} window(s) ran below the true safe Vmin",
                    d.machine, d.unsafe_windows
                ));
            }
            if d.rail_errors > 0 {
                return Err(format!(
                    "{} drill: {} rail request(s) rejected",
                    d.machine, d.rail_errors
                ));
            }
            if d.swaps != 1 {
                return Err(format!(
                    "{} drill: {} table swaps, expected exactly 1",
                    d.machine, d.swaps
                ));
            }
            if d.fresh_static_mv <= d.stale_static_mv {
                return Err(format!(
                    "{} drill: fresh table static {} mV did not absorb the drift (stale {} mV)",
                    d.machine, d.fresh_static_mv, d.stale_static_mv
                ));
            }
            if d.post_swap_slack_mv < 0 {
                return Err(format!(
                    "{} drill: post-swap chooser undercuts the drifted truth by {} mV",
                    d.machine, -d.post_swap_slack_mv
                ));
            }
        }
        for c in &self.curves {
            let counts: Vec<u64> = c.points.iter().map(|p| p.stale_violations).collect();
            match counts.first() {
                Some(0) => {}
                _ => {
                    return Err(format!(
                        "{} curve: stale table dirty before any drift: {counts:?}",
                        c.machine
                    ))
                }
            }
            if counts.windows(2).any(|w| w[0] > w[1]) {
                return Err(format!(
                    "{} curve: violations not monotone in drift: {counts:?}",
                    c.machine
                ));
            }
            if counts.last().copied().unwrap_or(0) == 0 {
                return Err(format!(
                    "{} curve: stale table never degraded across {:?} mV of drift",
                    c.machine,
                    DRIFT_SWEEP_MV.last()
                ));
            }
        }
        Ok(())
    }
}

/// The true worst-case safe Vmin of a measured cell's region on `chip`:
/// the genuinely weakest `utilized` PMDs, worst-case workload.
fn cell_truth(chip: &Chip, freq_class: FreqVminClass, utilized: usize, threads: usize) -> u32 {
    let model = chip.vmin_model();
    let mut by_weakness: Vec<PmdId> = (0..chip.spec().pmds()).map(PmdId::new).collect();
    by_weakness.sort_by_key(|&p| Reverse(model.pmd_offset_mv(p)));
    model
        .safe_vmin_on(
            &VminQuery {
                freq_class,
                utilized_pmds: utilized,
                active_threads: threads,
                workload_sensitivity: 1.0,
            },
            &by_weakness[..utilized],
        )
        .as_mv()
}

/// Runs the campaign once and compares the compiled table to the
/// conservative preset over the measured cells. Returns the entry plus
/// the map and table for reuse by the degradation curve.
fn reclaim_entry(
    machine: Machine,
    seed: u64,
) -> Result<(ReclaimEntry, MarginMap, PolicyTable), String> {
    let mut chip = machine.chip_builder().build();
    let map = Campaign::new(CampaignConfig::new(seed))
        .run(&mut chip)
        .map_err(|e| format!("{machine}: campaign aborted on a fault-free chip: {e}"))?;
    let table = TableCompiler::default()
        .compile(&map)
        .map_err(|e| format!("{machine}: margin map failed to compile: {e}"))?;
    let extra = conservative_extra(machine);
    let conservative = avfs_characterize::preset_conservative(
        chip.vmin_model(),
        GuardbandPolicy { margin_mv: extra },
    )
    .map_err(|e| format!("{machine}: conservative preset failed to build: {e}"))?;

    let nominal = f64::from(chip.nominal_voltage().as_mv());
    let mut measured_depth = 0.0;
    let mut conservative_depth = 0.0;
    let mut min_slack = i64::MAX;
    for cell in &map.cells {
        let fc = FREQ_CLASSES[cell.freq_row];
        let dc = DroopClass::ALL[cell.droop_index];
        let compiled = table.cell(fc, dc, cell.bucket);
        measured_depth += nominal - f64::from(compiled);
        conservative_depth += nominal - f64::from(conservative.cell(fc, dc, cell.bucket));
        let truth = cell_truth(&chip, fc, cell.utilized_pmds, cell.threads);
        min_slack = min_slack.min(i64::from(compiled) - i64::from(truth));
    }
    let n = map.cells.len().max(1) as f64;
    let entry = ReclaimEntry {
        machine: machine.name().to_string(),
        cells: map.cells.len() as u64,
        probes: map.cells.iter().map(|c| c.probes).sum(),
        conservative_extra_mv: extra,
        measured_depth_mv: measured_depth / n,
        conservative_depth_mv: conservative_depth / n,
        reclaimed_mv: (measured_depth - conservative_depth) / n,
        min_truth_slack_mv: if map.cells.is_empty() { 0 } else { min_slack },
    };
    Ok((entry, map, table))
}

/// Replays the stale compiled table against progressively drifted
/// ground truth.
fn drift_curve(machine: Machine, map: &MarginMap, stale: &PolicyTable) -> DriftCurve {
    let points = DRIFT_SWEEP_MV
        .iter()
        .map(|&drift| {
            let mut chip = machine.chip_builder().build();
            if drift > 0 {
                chip.apply_vmin_drift(VminDrift::aging(drift));
            }
            let mut violations = 0u64;
            let mut max_undercut = i64::MIN;
            for cell in &map.cells {
                let fc = FREQ_CLASSES[cell.freq_row];
                let truth = cell_truth(&chip, fc, cell.utilized_pmds, cell.threads);
                let compiled = stale.cell(fc, DroopClass::ALL[cell.droop_index], cell.bucket);
                let undercut = i64::from(truth) - i64::from(compiled);
                max_undercut = max_undercut.max(undercut);
                if undercut > 0 {
                    violations += 1;
                }
            }
            DriftPoint {
                drift_mv: drift,
                stale_violations: violations,
                max_undercut_mv: if map.cells.is_empty() {
                    0
                } else {
                    max_undercut
                },
            }
        })
        .collect();
    DriftCurve {
        machine: machine.name().to_string(),
        points,
    }
}

/// The post-swap chooser proven against the drifted truth over the
/// whole policy domain (no droop guard, no pessimization): smallest
/// `chosen − truth` slack.
fn post_swap_slack(chip: &Chip, daemon: &Daemon) -> i64 {
    let spec = chip.spec();
    let pmds = usize::from(spec.pmds());
    let per_pmd = usize::from(spec.cores) / pmds;
    let mut min_slack = i64::MAX;
    for fc in FREQ_CLASSES {
        for utilized in 1..=pmds {
            for threads in utilized..=utilized * per_pmd {
                let truth = cell_truth(chip, fc, utilized, threads);
                let chosen = daemon
                    .chosen_voltage(fc, utilized, threads, false, false)
                    .as_mv();
                min_slack = min_slack.min(i64::from(chosen) - i64::from(truth));
            }
        }
    }
    min_slack
}

/// Drives one monitor window: the daemon picks a voltage for the active
/// set, the rail moves, safety is judged against the chip's own ground
/// truth, and the window is fed to the recharacterization trigger.
#[allow(clippy::too_many_arguments)]
fn run_window(
    chip: &mut Chip,
    daemon: &mut Daemon,
    recharacterizer: &mut Recharacterizer,
    active: CoreSet,
    droop_guard: bool,
    phase: &str,
    results: &mut DrillResults,
) {
    let busy = !active.is_empty();
    let voltage = if busy {
        let utilized = active.utilized_pmds(chip.spec());
        let fc = chip.freq_vmin_class(&utilized);
        daemon.chosen_voltage(fc, utilized.len(), active.len(), droop_guard, false)
    } else {
        chip.nominal_voltage()
    };
    if chip.set_voltage(voltage).is_err() {
        results.rail_errors += 1;
    }
    let true_vmin = chip.current_safe_vmin(active);
    let safe = chip.is_voltage_safe_for(active);
    if !safe {
        results.unsafe_windows += 1;
    }
    let mut swapped = false;
    if recharacterizer.observe_window(droop_guard, !busy)
        && recharacterizer.recharacterize(chip, daemon).is_ok()
    {
        results.swaps += 1;
        swapped = true;
    }
    results.windows.push(DrillWindow {
        index: results.windows.len(),
        phase: phase.to_string(),
        busy,
        droop_guard,
        voltage_mv: voltage.as_mv(),
        true_vmin_mv: true_vmin.as_mv(),
        safe,
        swapped,
    });
}

/// The drift drill on one machine: measured table in a live daemon,
/// mid-run aging, guard-covered degradation, idle-window
/// recharacterization, re-proven table after the swap.
fn drill(machine: Machine, seed: u64) -> Result<DrillResults, String> {
    let mut chip = machine.chip_builder().build();
    let map = Campaign::new(CampaignConfig::new(seed))
        .run(&mut chip)
        .map_err(|e| format!("{machine}: drill campaign aborted: {e}"))?;
    let table = TableCompiler::default()
        .compile(&map)
        .map_err(|e| format!("{machine}: drill map failed to compile: {e}"))?;
    let mut daemon = Daemon::builder(&chip).table(table).build();
    let mut recharacterizer = Recharacterizer::new(
        CampaignConfig::new(seed.wrapping_add(1)),
        GuardbandPolicy::default(),
        RecharacterizeTrigger::new(3, 8),
    );
    let mut results = DrillResults {
        machine: machine.name().to_string(),
        drift_mv: DRILL_DRIFT_MV,
        windows: Vec::new(),
        swaps: 0,
        unsafe_windows: 0,
        rail_errors: 0,
        stale_static_mv: daemon
            .policy_table()
            .static_safe_voltage(FreqVminClass::Max)
            .as_mv(),
        fresh_static_mv: 0,
        post_swap_slack_mv: 0,
    };
    let all_cores = CoreSet::first_n(chip.spec().cores);

    // Phase 1 — steady state on the measured table.
    for _ in 0..4 {
        run_window(
            &mut chip,
            &mut daemon,
            &mut recharacterizer,
            all_cores,
            false,
            "steady",
            &mut results,
        );
    }
    // The machine drains; the silicon ages while the rail idles at
    // nominal.
    run_window(
        &mut chip,
        &mut daemon,
        &mut recharacterizer,
        CoreSet::EMPTY,
        false,
        "steady",
        &mut results,
    );
    chip.apply_vmin_drift(VminDrift::aging(DRILL_DRIFT_MV));

    // Phase 2 — the drifted truth sits above the stale table; the droop
    // guard's emergency margin keeps the busy windows covered while the
    // trigger accumulates its streak, then fires on the idle window.
    for _ in 0..3 {
        run_window(
            &mut chip,
            &mut daemon,
            &mut recharacterizer,
            all_cores,
            true,
            "drifted",
            &mut results,
        );
    }
    run_window(
        &mut chip,
        &mut daemon,
        &mut recharacterizer,
        CoreSet::EMPTY,
        true,
        "drifted",
        &mut results,
    );

    // Phase 3 — the swapped-in table absorbed the drift; the guard
    // disengages and the windows stay safe without it.
    for _ in 0..4 {
        run_window(
            &mut chip,
            &mut daemon,
            &mut recharacterizer,
            all_cores,
            false,
            "recharacterized",
            &mut results,
        );
    }

    results.fresh_static_mv = daemon
        .policy_table()
        .static_safe_voltage(FreqVminClass::Max)
        .as_mv();
    results.post_swap_slack_mv = post_swap_slack(&chip, &daemon);
    Ok(results)
}

/// Runs the full experiment on the given machines.
///
/// # Errors
///
/// Returns the first campaign or compile failure — on a fault-free
/// chip either is itself an acceptance failure.
pub fn evaluate(machines: &[Machine], seed: u64) -> Result<CharacterizeResults, String> {
    let mut reclaim = Vec::new();
    let mut drills = Vec::new();
    let mut curves = Vec::new();
    for &machine in machines {
        let (entry, map, table) = reclaim_entry(machine, seed)?;
        curves.push(drift_curve(machine, &map, &table));
        reclaim.push(entry);
        drills.push(drill(machine, seed)?);
    }
    Ok(CharacterizeResults {
        seed,
        reclaim,
        drills,
        curves,
    })
}

fn slug(machine_name: &str) -> String {
    machine_name.to_lowercase().replace(' ', "")
}

/// Measured-vs-preset table: one row per machine.
pub fn reclaim_table(results: &CharacterizeResults) -> Table {
    let mut t = Table::new(
        "characterize-reclaim",
        "Characterization — undervolt depth reclaimed by measured tables vs conservative preset",
        &[
            "machine",
            "cells",
            "probes",
            "preset extra (mV)",
            "measured depth (mV)",
            "preset depth (mV)",
            "reclaimed (mV/cell)",
            "min truth slack (mV)",
        ],
    );
    for r in &results.reclaim {
        t.push_row(vec![
            Cell::Text(r.machine.clone()),
            r.cells.into(),
            r.probes.into(),
            r.conservative_extra_mv.into(),
            Cell::f(r.measured_depth_mv, 1),
            Cell::f(r.conservative_depth_mv, 1),
            Cell::f(r.reclaimed_mv, 1),
            Cell::Int(r.min_truth_slack_mv),
        ]);
    }
    t
}

/// The drift drill window by window.
pub fn drill_table(results: &DrillResults) -> Table {
    let mut t = Table::new(
        &format!("characterize-drill-{}", slug(&results.machine)),
        &format!(
            "Characterization — {} mV drift drill ({} swaps, {} unsafe windows), {}",
            results.drift_mv, results.swaps, results.unsafe_windows, results.machine
        ),
        &[
            "window",
            "phase",
            "busy",
            "droop guard",
            "voltage (mV)",
            "true Vmin (mV)",
            "safe",
            "swapped",
        ],
    );
    for w in &results.windows {
        t.push_row(vec![
            w.index.into(),
            Cell::Text(w.phase.clone()),
            Cell::Int(i64::from(w.busy)),
            Cell::Int(i64::from(w.droop_guard)),
            w.voltage_mv.into(),
            w.true_vmin_mv.into(),
            Cell::Int(i64::from(w.safe)),
            Cell::Int(i64::from(w.swapped)),
        ]);
    }
    t
}

/// The stale-table degradation curve.
pub fn curve_table(curve: &DriftCurve) -> Table {
    let mut t = Table::new(
        &format!("characterize-drift-curve-{}", slug(&curve.machine)),
        &format!(
            "Characterization — stale-table violations vs ground-truth drift, {}",
            curve.machine
        ),
        &["drift (mV)", "stale violations", "max undercut (mV)"],
    );
    for p in &curve.points {
        t.push_row(vec![
            Cell::Int(i64::from(p.drift_mv)),
            p.stale_violations.into(),
            Cell::Int(p.max_undercut_mv),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xgene2_evaluates_clean_and_tables_roundtrip() {
        let results = evaluate(&[Machine::XGene2], 2024).expect("campaigns run");
        results.validate().expect("acceptance");
        let drill = &results.drills[0];
        assert_eq!(drill.swaps, 1);
        assert!(drill.windows.iter().all(|w| w.safe));
        // The swap landed on the drifted phase's idle window.
        let swap_window = drill
            .windows
            .iter()
            .find(|w| w.swapped)
            .expect("a window swapped");
        assert_eq!(swap_window.phase, "drifted");
        assert!(!swap_window.busy);
        for t in [
            reclaim_table(&results),
            drill_table(drill),
            curve_table(&results.curves[0]),
        ] {
            let parsed = Table::from_json(&t.to_json()).expect("parses");
            assert_eq!(parsed, t);
        }
    }

    #[test]
    fn both_machines_reclaim_savings_at_the_default_seed() {
        let results = evaluate(&Machine::BOTH, 2024).expect("campaigns run");
        results.validate().expect("acceptance");
        for r in &results.reclaim {
            assert!(r.reclaimed_mv > 0.0, "{}: {}", r.machine, r.reclaimed_mv);
            assert!(r.min_truth_slack_mv >= 0);
        }
    }

    #[test]
    fn evaluation_is_deterministic() {
        let a = evaluate(&[Machine::XGene2], 7).expect("first");
        let b = evaluate(&[Machine::XGene2], 7).expect("second");
        assert_eq!(
            a.reclaim[0].measured_depth_mv.to_bits(),
            b.reclaim[0].measured_depth_mv.to_bits()
        );
        assert_eq!(a.drills[0].fresh_static_mv, b.drills[0].fresh_static_mv);
        assert_eq!(
            a.curves[0]
                .points
                .iter()
                .map(|p| p.stale_violations)
                .collect::<Vec<_>>(),
            b.curves[0]
                .points
                .iter()
                .map(|p| p.stale_violations)
                .collect::<Vec<_>>()
        );
    }
}
