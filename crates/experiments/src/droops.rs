//! Figure 6: voltage-droop detections per magnitude band.
//!
//! The paper's key §IV-A evidence: configurations utilizing all 16 PMDs
//! (32T, 16T-spreaded) produce droops in the [55, 65) mV band for *every*
//! program, while 16T-clustered (8 PMDs) produces almost none there —
//! and one band down the same pattern repeats between 16T-clustered /
//! 8T-spreaded and 8T-clustered.

use crate::characterization::{CharConfig, ThreadAlloc};
use crate::report::{Cell, Table};
use crate::{Machine, Scale};
use avfs_chip::freq::FreqStep;
use avfs_chip::vmin::DroopClass;
use avfs_sim::RngStream;
use avfs_workloads::catalog::Benchmark;

/// The Figure 6 configurations (X-Gene 3 at 3 GHz).
pub fn fig6_configs() -> Vec<CharConfig> {
    vec![
        CharConfig {
            threads: 32,
            alloc: ThreadAlloc::Clustered,
            step: FreqStep::MAX,
        },
        CharConfig {
            threads: 16,
            alloc: ThreadAlloc::Spreaded,
            step: FreqStep::MAX,
        },
        CharConfig {
            threads: 16,
            alloc: ThreadAlloc::Clustered,
            step: FreqStep::MAX,
        },
        CharConfig {
            threads: 8,
            alloc: ThreadAlloc::Spreaded,
            step: FreqStep::MAX,
        },
        CharConfig {
            threads: 8,
            alloc: ThreadAlloc::Clustered,
            step: FreqStep::MAX,
        },
    ]
}

/// Figure 6: droop detections per 1 M cycles in the `band` magnitude
/// band, per benchmark and configuration.
pub fn fig6(band: DroopClass, scale: Scale) -> Table {
    let chip = Machine::XGene3.chip_builder().build();
    let configs = fig6_configs();
    let (lo, hi) = band.magnitude_band_mv();
    let mut headers = vec!["benchmark".to_string()];
    headers.extend(configs.iter().map(|c| c.label(chip.spec())));
    let mut table = Table {
        id: format!("fig06-band{lo}"),
        title: format!(
            "Figure 6 — droop detections per 1M cycles in [{lo}mV,{hi}mV), X-Gene 3 @3GHz"
        ),
        headers,
        rows: Vec::new(),
    };
    let mut rng = RngStream::from_root(61, "fig6");
    let cycles = scale.droop_cycles();
    for bench in Benchmark::characterized() {
        let profile = bench.profile();
        let mut row: Vec<Cell> = vec![bench.name().into()];
        for config in &configs {
            let utilized = config.alloc.utilized_pmds(chip.spec(), config.threads);
            let class = chip.vmin_model().droop_class(utilized);
            let counts = chip
                .droop_model()
                .sample(class, profile.activity, cycles, &mut rng);
            let per_mcycle = counts.in_band(band) as f64 / (cycles as f64 / 1e6);
            row.push(Cell::f(per_mcycle, 2));
        }
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_band_signature() {
        // [55,65): 32T and 16T-spreaded show droops, 16T-clustered ~none.
        let t = fig6(DroopClass::D55, Scale::Quick);
        for bench in ["namd", "CG", "EP"] {
            let full = t.value(bench, "32T@3.0GHz").unwrap();
            let spread = t.value(bench, "16T(spreaded)@3.0GHz").unwrap();
            let clust = t.value(bench, "16T(clustered)@3.0GHz").unwrap();
            assert!(full > 10.0, "{bench}: {full}");
            assert!(spread > 10.0, "{bench}: {spread}");
            assert!(clust < full / 20.0, "{bench}: clustered {clust}");
        }
    }

    #[test]
    fn mid_band_signature() {
        // [45,55): 16T-clustered and 8T-spreaded show droops, 8T-clustered ~none.
        let t = fig6(DroopClass::D45, Scale::Quick);
        for bench in ["milc", "FT"] {
            let c16 = t.value(bench, "16T(clustered)@3.0GHz").unwrap();
            let s8 = t.value(bench, "8T(spreaded)@3.0GHz").unwrap();
            let c8 = t.value(bench, "8T(clustered)@3.0GHz").unwrap();
            assert!(c16 > 10.0);
            assert!(s8 > 10.0);
            assert!(c8 < c16 / 20.0, "{bench}: 8T clustered {c8}");
        }
    }

    #[test]
    fn pattern_is_workload_independent() {
        // Every benchmark shows the same qualitative signature — the
        // paper's workload-independence claim.
        let t = fig6(DroopClass::D55, Scale::Quick);
        for row in &t.rows {
            let full = row[1].as_f64().unwrap();
            let clust16 = row[3].as_f64().unwrap();
            assert!(full > clust16, "row {:?}", row[0]);
        }
    }
}
