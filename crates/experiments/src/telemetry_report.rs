//! The `telemetry summary` report: renders a captured metrics snapshot
//! and trace journal as [`report::Table`]s — the action mix, the
//! per-interval monitor summary, and the fault/recovery timeline.
//!
//! The inputs come from a [`Telemetry::hub`]-backed run (`exp <id>
//! --trace out.jsonl`); everything here is a pure function of the
//! captured data, so the tables are as deterministic as the journal.
//!
//! [`Telemetry::hub`]: avfs_telemetry::Telemetry::hub

use crate::report::{Cell, Table};
use avfs_chip::voltage::Millivolts;
use avfs_telemetry::{MetricsSnapshot, TraceEvent, TraceKind, Value};
use std::collections::BTreeMap;

/// Counters shown by [`action_mix`], in display order: what the
/// scheduler dispatched, what the daemon decided, what the mailbox saw.
const ACTION_MIX_COUNTERS: [&str; 18] = [
    "sched.events",
    "sched.actions.applied",
    "sched.actions.rejected",
    "sched.fault_notices",
    "daemon.invocations",
    "daemon.plans",
    "daemon.pins",
    "daemon.deferred_pins",
    "daemon.voltage_raises",
    "daemon.voltage_lowers",
    "daemon.mailbox_faults",
    "daemon.retries",
    "daemon.safe_mode_entries",
    "daemon.safe_mode_exits",
    "daemon.watchdog_fires",
    "daemon.droop_emergencies",
    "chip.mailbox.requests",
    "chip.mailbox.voltage_sets",
]
// (injected_* counters are omitted: fault injection already has its own
// table in the resilience report.)
;

/// One `Value` rendered the way the JSONL export renders it (minus the
/// string quotes), for human-readable detail columns.
fn fmt_value(v: &Value) -> String {
    match v {
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::F64(x) if x.is_finite() => x.to_string(),
        Value::F64(_) => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Str(s) => (*s).to_string(),
        Value::Text(s) => s.clone(),
        // `Value` is same-crate non-exhaustive-by-convention; render
        // anything new via Debug rather than failing the report.
        #[allow(unreachable_patterns)]
        other => format!("{other:?}"),
    }
}

/// The named field of one trace event, if present.
fn field<'a>(event: &'a TraceEvent, name: &str) -> Option<&'a Value> {
    event
        .fields
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v)
}

/// A numeric field of one trace event (u64 or f64), if present.
fn numeric_field(event: &TraceEvent, name: &str) -> Option<f64> {
    match field(event, name)? {
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        Value::F64(x) => Some(*x),
        _ => None,
    }
}

/// The action mix: every dispatch/decision counter the run recorded,
/// one row per counter in [`ACTION_MIX_COUNTERS`] order.
pub fn action_mix(snapshot: &MetricsSnapshot) -> Table {
    let mut t = Table::new(
        "telemetry-action-mix",
        "Telemetry — action mix (dispatch and decision counters)",
        &["counter", "count"],
    );
    for name in ACTION_MIX_COUNTERS {
        t.push_row(vec![name.into(), snapshot.counter(name).into()]);
    }
    t
}

/// Per-interval monitor summary: mean power, mean rail voltage, and the
/// mean undervolt below `nominal`, bucketed from the journal's
/// `monitor_sample` events into `bucket_s`-second intervals.
pub fn interval_summary(journal: &[TraceEvent], nominal: Millivolts, bucket_s: u64) -> Table {
    let mut t = Table::new(
        "telemetry-intervals",
        &format!("Telemetry — per-interval monitor summary ({bucket_s} s buckets)"),
        &[
            "t (s)",
            "samples",
            "mean power (W)",
            "mean voltage (mV)",
            "mean undervolt (mV)",
        ],
    );
    let bucket_s = bucket_s.max(1);
    // bucket start (s) -> (samples, sum power, sum voltage)
    let mut buckets: BTreeMap<u64, (u64, f64, f64)> = BTreeMap::new();
    for event in journal {
        if event.kind != TraceKind::MonitorSample {
            continue;
        }
        let (Some(power), Some(voltage)) = (
            numeric_field(event, "power_w"),
            numeric_field(event, "voltage_mv"),
        ) else {
            continue;
        };
        let start = event.at.as_nanos() / 1_000_000_000 / bucket_s * bucket_s;
        let slot = buckets.entry(start).or_insert((0, 0.0, 0.0));
        slot.0 += 1;
        slot.1 += power;
        slot.2 += voltage;
    }
    for (start, (samples, power_sum, voltage_sum)) in buckets {
        let n = samples as f64;
        let mean_v = voltage_sum / n;
        t.push_row(vec![
            Cell::Int(start as i64),
            samples.into(),
            Cell::f(power_sum / n, 2),
            Cell::f(mean_v, 1),
            Cell::f(f64::from(nominal.as_mv()) - mean_v, 1),
        ]);
    }
    t
}

/// The fault/recovery timeline: every mailbox fault, recovery-machine
/// transition, droop-guard flip, and watchdog rescue in journal order.
pub fn fault_timeline(journal: &[TraceEvent]) -> Table {
    let mut t = Table::new(
        "telemetry-fault-timeline",
        "Telemetry — fault and recovery timeline",
        &["seq", "t (s)", "kind", "detail"],
    );
    for event in journal {
        let relevant = matches!(
            event.kind,
            TraceKind::Init
                | TraceKind::MailboxFault
                | TraceKind::RecoveryTransition
                | TraceKind::DroopGuard
                | TraceKind::Watchdog
        );
        if !relevant {
            continue;
        }
        let detail = event
            .fields
            .iter()
            .map(|(name, value)| format!("{name}={}", fmt_value(value)))
            .collect::<Vec<_>>()
            .join(" ");
        t.push_row(vec![
            event.seq.into(),
            Cell::f(event.at.as_nanos() as f64 / 1e9, 3),
            event.kind.as_str().into(),
            detail.as_str().into(),
        ]);
    }
    t
}

/// The full `telemetry summary`: action mix, per-interval monitor
/// summary (60 s buckets), and the fault/recovery timeline.
pub fn summary(
    snapshot: &MetricsSnapshot,
    journal: &[TraceEvent],
    nominal: Millivolts,
) -> Vec<Table> {
    vec![
        action_mix(snapshot),
        interval_summary(journal, nominal, 60),
        fault_timeline(journal),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience;
    use crate::{Machine, Scale};
    use avfs_telemetry::Telemetry;

    fn traced_smoke() -> (MetricsSnapshot, Vec<TraceEvent>) {
        let telemetry = Telemetry::hub();
        let results = resilience::sweep_with_observer(
            Machine::XGene2,
            Scale::Quick,
            7,
            &resilience::SMOKE_RATES,
            &telemetry,
        );
        results.validate().expect("smoke sweep validates");
        let snapshot = telemetry.snapshot().expect("hub snapshot");
        let journal = telemetry
            .with_hub(|h| h.journal().cloned().collect())
            .expect("hub journal");
        (snapshot, journal)
    }

    #[test]
    fn summary_tables_reflect_a_traced_run() {
        let (snapshot, journal) = traced_smoke();
        assert!(!journal.is_empty(), "traced run recorded nothing");

        let mix = action_mix(&snapshot);
        assert_eq!(mix.rows.len(), ACTION_MIX_COUNTERS.len());
        assert!(mix.value("daemon.invocations", "count").unwrap() > 0.0);
        assert!(mix.value("sched.events", "count").unwrap() > 0.0);

        let nominal = Millivolts::new(980);
        let intervals = interval_summary(&journal, nominal, 60);
        assert!(!intervals.rows.is_empty(), "no monitor samples bucketed");

        let timeline = fault_timeline(&journal);
        // The two Init markers (one per swept rate) are always present.
        assert!(timeline.rows.len() >= 2, "{timeline}");

        assert_eq!(summary(&snapshot, &journal, nominal).len(), 3);
    }
}
