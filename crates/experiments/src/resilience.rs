//! Beyond-paper resilience experiment: energy savings vs injected fault
//! rate.
//!
//! The same server trace replays under the Optimal daemon while the chip
//! injects seeded faults (mailbox refusals/drops/latency spikes, PMU
//! glitches, droop excursions, migration hangs) at increasing
//! per-operation rates. The output is a degradation curve — savings vs
//! the fault-free ondemand baseline should decay gracefully toward, and
//! never below, zero — plus the daemon's own recovery counters, so a run
//! shows not just *that* it survived but *how* (retries, safe-mode
//! round-trips, watchdog rescues, droop guardband engagements).

use crate::report::{Cell, Table};
use crate::{Machine, Scale};
use avfs_chip::fault::{FaultPlan, FaultStats};
use avfs_chip::topology::CoreSet;
use avfs_core::configs::EvalConfig;
use avfs_core::daemon::{Daemon, DaemonStats};
use avfs_sched::metrics::RunMetrics;
use avfs_sched::system::{System, SystemConfig};
use avfs_telemetry::{Telemetry, TraceKind, Value};
use avfs_workloads::generator::{GeneratorConfig, WorkloadTrace};
use serde::{Deserialize, Serialize};

/// Fault rates swept by the full experiment.
pub const FULL_RATES: [f64; 6] = [0.0, 0.01, 0.02, 0.05, 0.10, 0.20];

/// Short sweep for the CI soak (`exp resilience --smoke`): the
/// bit-identical anchor at rate 0 and the acceptance point at 5%.
pub const SMOKE_RATES: [f64; 2] = [0.0, 0.05];

/// One Optimal-daemon run under an armed fault plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResilienceRun {
    /// Per-operation fault rate of every category.
    pub rate: f64,
    /// Run metrics under injection.
    pub metrics: RunMetrics,
    /// The daemon's recovery counters after the run.
    pub daemon: DaemonStats,
    /// What the chip actually injected.
    pub injected: FaultStats,
    /// Rail voltage when the run ended, mV.
    pub end_voltage_mv: u32,
    /// The run ended inside the rail window at a voltage safe for the
    /// (drained) machine.
    pub end_state_ok: bool,
}

/// Results of the fault-rate sweep on one machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResilienceResults {
    /// Which machine.
    pub machine: String,
    /// The fault-free ondemand baseline the savings are measured against.
    pub baseline: RunMetrics,
    /// One run per swept rate, in sweep order.
    pub runs: Vec<ResilienceRun>,
}

impl ResilienceResults {
    /// Savings of run `i` vs the nominal baseline, as a fraction.
    pub fn savings(&self, i: usize) -> f64 {
        self.runs[i].metrics.energy_savings_vs(&self.baseline)
    }

    /// Checks the sweep's acceptance properties: every run drained the
    /// whole trace, ended in a safe rail state, and kept strictly
    /// positive savings over the nominal baseline.
    pub fn validate(&self) -> Result<(), String> {
        let jobs = self.baseline.completed.len();
        for (i, run) in self.runs.iter().enumerate() {
            if run.metrics.completed.len() != jobs {
                return Err(format!(
                    "rate {}: completed {} jobs, baseline completed {jobs}",
                    run.rate,
                    run.metrics.completed.len()
                ));
            }
            if !run.end_state_ok {
                return Err(format!(
                    "rate {}: ended outside the safe rail window at {} mV",
                    run.rate, run.end_voltage_mv
                ));
            }
            let savings = self.savings(i);
            if savings <= 0.0 {
                return Err(format!(
                    "rate {}: savings {:.2}% not strictly positive",
                    run.rate,
                    savings * 100.0
                ));
            }
        }
        Ok(())
    }
}

/// The generated server trace every run of the sweep replays.
fn trace_for(machine: Machine, scale: Scale, seed: u64) -> WorkloadTrace {
    let cores = machine.chip_builder().spec().cores as usize;
    let mut gen = GeneratorConfig::paper_default(cores, seed);
    gen.duration = scale.server_window();
    if scale == Scale::Quick {
        gen.job_scale = 0.25;
    }
    WorkloadTrace::generate(&gen)
}

/// Runs the Optimal daemon over `trace` with `plan` armed (or not).
#[cfg(test)]
fn run_optimal(machine: Machine, trace: &WorkloadTrace, plan: Option<FaultPlan>) -> RunMetrics {
    let mut chip = machine.chip_builder().build();
    chip.set_fault_plan(plan);
    let mut daemon = Daemon::optimal(&chip);
    let mut system = System::new(chip, machine.perf_model(), SystemConfig::default());
    system.run(trace, &mut daemon)
}

/// Runs the fault-rate sweep: one fault-free ondemand baseline, then the
/// Optimal daemon once per rate with a seeded plan armed.
pub fn sweep(machine: Machine, scale: Scale, seed: u64, rates: &[f64]) -> ResilienceResults {
    sweep_with_observer(machine, scale, seed, rates, &Telemetry::null())
}

/// [`sweep`] with a telemetry handle installed into every faulted run's
/// chip, scheduler, and daemon. Each run opens with an `Init` trace
/// carrying its fault rate; the hub's monotone clock means later runs'
/// events stamp at or after earlier runs' (the journal is still
/// byte-identical across identical seeded invocations). The fault-free
/// baseline is not instrumented — the journal stays a fault/recovery
/// record.
pub fn sweep_with_observer(
    machine: Machine,
    scale: Scale,
    seed: u64,
    rates: &[f64],
    telemetry: &Telemetry,
) -> ResilienceResults {
    let trace = trace_for(machine, scale, seed);

    let baseline = {
        let chip = machine.chip_builder().build();
        let mut driver = EvalConfig::Baseline.driver(&chip);
        let mut system = System::new(chip, machine.perf_model(), SystemConfig::default());
        system.run(&trace, driver.as_mut())
    };

    let runs = rates
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            let mut chip = machine.chip_builder().build();
            chip.set_fault_plan(Some(FaultPlan::uniform(seed.wrapping_add(i as u64), rate)));
            telemetry.trace(TraceKind::Init, || {
                vec![
                    ("experiment", Value::from("resilience")),
                    ("machine", Value::from(machine.name())),
                    ("rate", Value::from(rate)),
                ]
            });
            let mut daemon = Daemon::optimal(&chip);
            daemon.set_telemetry(telemetry.clone());
            let mut system = System::builder(chip, machine.perf_model())
                .config(SystemConfig::default())
                .observer(telemetry.clone())
                .build();
            let metrics = system.run(&trace, &mut daemon);
            let chip = system.chip();
            let end_state_ok = chip.voltage() <= chip.nominal_voltage()
                && chip.is_voltage_safe_for(CoreSet::EMPTY);
            ResilienceRun {
                rate,
                metrics,
                daemon: daemon.stats(),
                injected: chip.fault_stats(),
                end_voltage_mv: chip.voltage().as_mv(),
                end_state_ok,
            }
        })
        .collect();

    ResilienceResults {
        machine: machine.name().to_string(),
        baseline,
        runs,
    }
}

fn slug(machine_name: &str) -> String {
    machine_name.to_lowercase().replace(' ', "")
}

/// The degradation curve: energy and savings vs fault rate, one row per
/// swept rate.
pub fn degradation_curve(results: &ResilienceResults) -> Table {
    let mut t = Table::new(
        &format!("resilience-curve-{}", slug(&results.machine)),
        &format!(
            "Resilience — energy savings vs fault rate (Optimal vs fault-free Baseline {:.1} J), {}",
            results.baseline.energy_j, results.machine
        ),
        &[
            "fault rate",
            "Energy (J)",
            "Savings (%)",
            "Time (s)",
            "Unsafe time (s)",
            "Voltage changes",
            "Migrations",
            "End state OK",
        ],
    );
    for (i, run) in results.runs.iter().enumerate() {
        t.push_row(vec![
            Cell::f(run.rate, 2),
            Cell::f(run.metrics.energy_j, 1),
            Cell::f(results.savings(i) * 100.0, 1),
            Cell::f(run.metrics.makespan.as_secs_f64(), 0),
            Cell::f(run.metrics.unsafe_time_s, 3),
            run.metrics.voltage_changes.into(),
            run.metrics.migrations.into(),
            Cell::Int(run.end_state_ok as i64),
        ]);
    }
    t
}

/// The recovery counters: what was injected and how the daemon absorbed
/// it, one row per swept rate.
pub fn recovery_stats(results: &ResilienceResults) -> Table {
    let mut t = Table::new(
        &format!("resilience-recovery-{}", slug(&results.machine)),
        &format!(
            "Resilience — injected faults and recovery activity, {}",
            results.machine
        ),
        &[
            "fault rate",
            "injected",
            "mailbox",
            "PMU glitches",
            "migration hangs",
            "droop excursions",
            "retries",
            "backoff (us)",
            "safe entries",
            "safe exits",
            "watchdog fires",
            "droop guards",
        ],
    );
    for run in &results.runs {
        t.push_row(vec![
            Cell::f(run.rate, 2),
            run.injected.total().into(),
            run.injected.mailbox_total().into(),
            run.injected.pmu_glitches.into(),
            run.injected.migration_hangs.into(),
            run.injected.droop_excursions.into(),
            run.daemon.retries.into(),
            run.daemon.backoff_us.into(),
            run.daemon.safe_mode_entries.into(),
            run.daemon.safe_mode_exits.into(),
            run.daemon.watchdog_fires.into(),
            run.daemon.droop_emergencies.into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_zero_is_bit_identical_to_the_unfaulted_optimal_run() {
        let trace = trace_for(Machine::XGene2, Scale::Quick, 7);
        let plain = run_optimal(Machine::XGene2, &trace, None);
        let results = sweep(Machine::XGene2, Scale::Quick, 7, &[0.0]);
        let armed = &results.runs[0];
        assert_eq!(
            armed.metrics.energy_j.to_bits(),
            plain.energy_j.to_bits(),
            "armed zero-rate plan changed the energy: {} vs {}",
            armed.metrics.energy_j,
            plain.energy_j
        );
        assert_eq!(armed.metrics.voltage_changes, plain.voltage_changes);
        assert_eq!(armed.metrics.migrations, plain.migrations);
        assert_eq!(armed.injected.total(), 0);
        assert_eq!(armed.daemon.mailbox_faults, 0);
        assert_eq!(armed.daemon.safe_mode_entries, 0);
        results.validate().expect("zero-rate sweep validates");
    }

    #[test]
    fn five_percent_faults_degrade_gracefully() {
        let results = sweep(Machine::XGene2, Scale::Quick, 7, &SMOKE_RATES);
        results.validate().expect("smoke sweep validates");
        let faulted = &results.runs[1];
        assert!(
            faulted.injected.total() > 0,
            "5% plan injected nothing: {:?}",
            faulted.injected
        );
        assert!(
            faulted.daemon.mailbox_faults > 0 || faulted.daemon.droop_emergencies > 0,
            "daemon never observed a fault: {:?}",
            faulted.daemon
        );
        // Strictly positive savings, and no better than the clean run.
        let clean = results.savings(0);
        let under_faults = results.savings(1);
        assert!(under_faults > 0.0, "savings {under_faults}");
        assert!(
            under_faults <= clean + 0.02,
            "faults should not improve savings: {under_faults} vs {clean}"
        );
    }

    #[test]
    fn sweep_is_deterministic_and_tables_roundtrip() {
        let a = sweep(Machine::XGene2, Scale::Quick, 11, &[0.05]);
        let b = sweep(Machine::XGene2, Scale::Quick, 11, &[0.05]);
        assert_eq!(
            a.runs[0].metrics.energy_j.to_bits(),
            b.runs[0].metrics.energy_j.to_bits()
        );
        assert_eq!(a.runs[0].daemon, b.runs[0].daemon);
        assert_eq!(a.runs[0].injected, b.runs[0].injected);

        let curve = degradation_curve(&a);
        let recovery = recovery_stats(&a);
        assert_eq!(curve.rows.len(), 1);
        assert_eq!(recovery.rows.len(), 1);
        // The JSON export of the recovery stats round-trips through the
        // shared report schema.
        for t in [&curve, &recovery] {
            let parsed = Table::from_json(&t.to_json()).expect("parses");
            assert_eq!(&parsed, t);
        }
    }
}
