//! Result tables: the common output format of every experiment harness.

use crate::json::{self, Json};
use serde::{Deserialize, Serialize};
use std::fmt;

pub use crate::json::JsonError;
use std::io::Write as _;
use std::path::Path;

/// One value in a result table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Cell {
    /// Text (benchmark names, configuration labels).
    Text(String),
    /// Integer quantity.
    Int(i64),
    /// Floating-point quantity with a display precision.
    Float {
        /// The value.
        value: f64,
        /// Digits after the decimal point when rendered.
        precision: u8,
    },
}

impl Cell {
    /// A float cell with the given precision.
    pub fn f(value: f64, precision: u8) -> Cell {
        Cell::Float { value, precision }
    }

    /// The numeric value, if this cell is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Cell::Text(_) => None,
            Cell::Int(v) => Some(*v as f64),
            Cell::Float { value, .. } => Some(*value),
        }
    }

    /// Appends this cell's externally-tagged JSON form to `out`.
    fn json_into(&self, out: &mut String) {
        match self {
            Cell::Text(s) => {
                out.push_str("{ \"Text\": ");
                json::escape_into(out, s);
                out.push_str(" }");
            }
            Cell::Int(v) => {
                out.push_str(&format!("{{ \"Int\": {v} }}"));
            }
            Cell::Float { value, precision } => {
                out.push_str("{ \"Float\": { \"value\": ");
                if value.is_finite() {
                    out.push_str(&format!("{value}"));
                } else {
                    out.push_str("null");
                }
                out.push_str(&format!(", \"precision\": {precision} }} }}"));
            }
        }
    }

    /// Reads a cell back from its externally-tagged JSON form.
    fn from_json_value(v: &Json) -> Result<Cell, JsonError> {
        let shape_err = || JsonError {
            msg: "expected a Text/Int/Float cell object".to_string(),
            offset: 0,
        };
        if let Some(s) = v.get("Text").and_then(Json::as_str) {
            return Ok(Cell::Text(s.to_string()));
        }
        if let Some(i) = v.get("Int").and_then(Json::as_i64) {
            return Ok(Cell::Int(i));
        }
        if let Some(f) = v.get("Float") {
            let value = f
                .get("value")
                .and_then(Json::as_f64)
                .ok_or_else(shape_err)?;
            let precision = f
                .get("precision")
                .and_then(Json::as_i64)
                .and_then(|p| u8::try_from(p).ok())
                .ok_or_else(shape_err)?;
            return Ok(Cell::Float { value, precision });
        }
        Err(shape_err())
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Text(s) => f.write_str(s),
            Cell::Int(v) => write!(f, "{v}"),
            Cell::Float { value, precision } => {
                write!(f, "{value:.*}", *precision as usize)
            }
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Cell {
        Cell::Text(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Cell {
        Cell::Text(s)
    }
}

impl From<i64> for Cell {
    fn from(v: i64) -> Cell {
        Cell::Int(v)
    }
}

impl From<u32> for Cell {
    fn from(v: u32) -> Cell {
        Cell::Int(v as i64)
    }
}

impl From<usize> for Cell {
    fn from(v: usize) -> Cell {
        Cell::Int(v as i64)
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Cell {
        Cell::Int(v as i64)
    }
}

/// A labelled result table corresponding to one paper artifact (or one
/// panel of it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Identifier, e.g. `"fig03-xgene2"`.
    pub id: String,
    /// Human title, e.g. `"Figure 3 — safe Vmin (X-Gene 2)"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Table {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<Cell>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {} in table {}",
            row.len(),
            self.headers.len(),
            self.id
        );
        self.rows.push(row);
    }

    /// Looks up a row by the text in its first column.
    pub fn row_by_label(&self, label: &str) -> Option<&[Cell]> {
        self.rows
            .iter()
            .find(|r| matches!(r.first(), Some(Cell::Text(s)) if s == label))
            .map(|r| r.as_slice())
    }

    /// The numeric value at `(row_label, column_header)`, if present.
    pub fn value(&self, row_label: &str, column: &str) -> Option<f64> {
        let col = self.headers.iter().position(|h| h == column)?;
        self.row_by_label(row_label)?.get(col)?.as_f64()
    }

    /// All numeric values of a column, skipping non-numeric cells.
    pub fn column(&self, column: &str) -> Vec<f64> {
        let Some(col) = self.headers.iter().position(|h| h == column) else {
            return Vec::new();
        };
        self.rows
            .iter()
            .filter_map(|r| r.get(col)?.as_f64())
            .collect()
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str("| ");
        out.push_str(&self.headers.join(" | "));
        out.push_str(" |\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(
                &row.iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(" | "),
            );
            out.push_str(" |\n");
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = self
            .headers
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(
                &row.iter()
                    .map(|c| escape(&c.to_string()))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `dir/<id>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating the directory or file.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut f = std::fs::File::create(dir.join(format!("{}.csv", self.id)))?;
        f.write_all(self.to_csv().as_bytes())
    }

    /// Serializes the table (id, title, headers, typed rows) as
    /// pretty-printed JSON — the machine-readable companion to the CSV.
    ///
    /// Cells use serde's externally-tagged enum shape (`{"Int": 3}`,
    /// `{"Float": {"value": 0.5, "precision": 2}}`), so artifacts
    /// written by earlier revisions parse identically. Non-finite
    /// floats, which JSON cannot represent, serialize as `null` values.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"id\": ");
        json::escape_into(&mut out, &self.id);
        out.push_str(",\n  \"title\": ");
        json::escape_into(&mut out, &self.title);
        out.push_str(",\n  \"headers\": [");
        for (i, h) in self.headers.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            json::escape_into(&mut out, h);
        }
        out.push_str("\n  ],\n  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(if i == 0 { "\n    [" } else { ",\n    [" });
            for (j, cell) in row.iter().enumerate() {
                out.push_str(if j == 0 { "\n      " } else { ",\n      " });
                cell.json_into(&mut out);
            }
            out.push_str("\n    ]");
        }
        out.push_str("\n  ]\n}");
        out
    }

    /// Writes the JSON rendering to `dir/<id>.json`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating the directory or file.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut f = std::fs::File::create(dir.join(format!("{}.json", self.id)))?;
        f.write_all(self.to_json().as_bytes())
    }

    /// Parses a table back from its JSON rendering.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when the input is not well-formed JSON
    /// or does not have the table shape.
    pub fn from_json(input: &str) -> Result<Table, JsonError> {
        let doc = json::parse(input)?;
        let field_err = |what: &str| JsonError {
            msg: format!("table JSON is missing or mistypes `{what}`"),
            offset: 0,
        };
        let id = doc
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| field_err("id"))?
            .to_string();
        let title = doc
            .get("title")
            .and_then(Json::as_str)
            .ok_or_else(|| field_err("title"))?
            .to_string();
        let headers = doc
            .get("headers")
            .and_then(Json::as_arr)
            .ok_or_else(|| field_err("headers"))?
            .iter()
            .map(|h| {
                h.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| field_err("headers"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let rows = doc
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or_else(|| field_err("rows"))?
            .iter()
            .map(|row| {
                row.as_arr()
                    .ok_or_else(|| field_err("rows"))?
                    .iter()
                    .map(Cell::from_json_value)
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Table {
            id,
            title,
            headers,
            rows,
        })
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("t1", "Sample", &["name", "value", "pct"]);
        t.push_row(vec!["alpha".into(), Cell::Int(3), Cell::f(12.345, 1)]);
        t.push_row(vec!["beta".into(), Cell::Int(-1), Cell::f(0.5, 2)]);
        t
    }

    #[test]
    fn lookup_by_label_and_column() {
        let t = sample();
        assert_eq!(t.value("alpha", "value"), Some(3.0));
        assert_eq!(t.value("beta", "pct"), Some(0.5));
        assert_eq!(t.value("gamma", "pct"), None);
        assert_eq!(t.value("alpha", "nope"), None);
        assert_eq!(t.column("value"), vec![3.0, -1.0]);
    }

    #[test]
    fn markdown_rendering() {
        let md = sample().to_markdown();
        assert!(md.contains("### Sample"));
        assert!(md.contains("| name | value | pct |"));
        assert!(md.contains("| alpha | 3 | 12.3 |"));
    }

    #[test]
    fn csv_rendering_escapes() {
        let mut t = Table::new("t2", "X", &["a", "b"]);
        t.push_row(vec!["with,comma".into(), Cell::Int(1)]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\",1"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("t3", "X", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn json_roundtrip_preserves_typed_cells() {
        let t = sample();
        let back = Table::from_json(&t.to_json()).expect("roundtrip");
        assert_eq!(t, back);
        // Typed cells survive (not stringified).
        assert_eq!(back.value("alpha", "pct"), Some(12.345));
    }

    #[test]
    fn float_precision_renders() {
        assert_eq!(Cell::f(1.23456, 3).to_string(), "1.235");
        assert_eq!(Cell::f(2.0, 0).to_string(), "2");
    }
}
