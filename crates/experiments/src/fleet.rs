//! Cluster-level evaluation: the `exp fleet` artifact.
//!
//! Beyond the paper: a ≥4-node mixed X-Gene 2/3 cluster replays one
//! generated server workload through the avfs-fleet front door under
//! each built-in routing policy, with every node running the paper's
//! Optimal daemon, and compares cluster energy/makespan against a
//! default-governor baseline cluster (Baseline nodes, round-robin
//! routing). The energy-aware run executes twice — with 1 and 8 worker
//! threads — and the experiment checks the two runs are byte-identical,
//! turning the fleet determinism contract into a release gate.

use crate::report::{Cell, Table};
use crate::Scale;
use avfs_core::configs::EvalConfig;
use avfs_fleet::{
    EnergyAware, Fleet, FleetConfig, FleetSummary, LeastQueued, NodeConfig, NodeKind, RoundRobin,
    RoutingPolicy,
};
use avfs_workloads::generator::{GeneratorConfig, WorkloadTrace};

/// Total cores across the default cluster (2×8 + 2×32).
const CLUSTER_CORES: usize = 80;

/// The default cluster: two X-Gene 2 and two X-Gene 3 nodes, seeds
/// derived per node so their stochastic models are independent.
pub fn node_configs(seed: u64, eval: EvalConfig) -> Vec<NodeConfig> {
    [
        NodeKind::XGene2,
        NodeKind::XGene2,
        NodeKind::XGene3,
        NodeKind::XGene3,
    ]
    .iter()
    .enumerate()
    .map(|(i, &kind)| {
        let node_seed = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(i as u64);
        let mut nc = NodeConfig::new(kind, node_seed);
        nc.eval = eval;
        nc
    })
    .collect()
}

fn fleet_config(seed: u64, eval: EvalConfig, workers: usize, telemetry: bool) -> FleetConfig {
    let mut cfg = FleetConfig::new(node_configs(seed, eval));
    cfg.workers = workers;
    cfg.telemetry = telemetry;
    cfg
}

/// One server workload sized for the whole cluster's core count; the
/// same trace replays under every policy, which is what makes the rows
/// comparable.
pub fn cluster_trace(scale: Scale, seed: u64) -> WorkloadTrace {
    let mut gen = GeneratorConfig::paper_default(CLUSTER_CORES, seed);
    gen.duration = scale.server_window();
    if scale == Scale::Quick {
        gen.job_scale = 0.25;
    }
    WorkloadTrace::generate(&gen)
}

/// Results of the cluster evaluation.
#[derive(Debug, Clone)]
pub struct FleetEvalResults {
    /// Baseline cluster: Baseline nodes, round-robin routing.
    pub baseline: FleetSummary,
    /// Optimal-daemon cluster under each policy: round-robin,
    /// least-queued, energy-aware (this order).
    pub runs: Vec<FleetSummary>,
    /// Fingerprints of the energy-aware run at 1 and 8 workers.
    pub determinism: (String, String),
    /// Whether the 1- and 8-worker journals matched byte for byte.
    pub journals_match: bool,
}

impl FleetEvalResults {
    /// The summary for a policy by name.
    pub fn policy(&self, name: &str) -> Option<&FleetSummary> {
        self.runs.iter().find(|s| s.policy == name)
    }

    /// The energy-aware run (8-worker instance; byte-identical to the
    /// 1-worker one by [`validate`]).
    pub fn energy_aware(&self) -> &FleetSummary {
        &self.runs[2]
    }
}

/// Runs the full cluster evaluation: baseline cluster, the three
/// policies over Optimal-daemon nodes, and the worker-count determinism
/// pair.
pub fn evaluate(scale: Scale, seed: u64) -> FleetEvalResults {
    let trace = cluster_trace(scale, seed);
    let run = |eval: EvalConfig, workers: usize, telemetry: bool, p: &mut dyn RoutingPolicy| {
        Fleet::builder()
            .config(fleet_config(seed, eval, workers, telemetry))
            .build()
            .run(&trace, p)
    };

    let baseline = run(EvalConfig::Baseline, 4, false, &mut RoundRobin::new());
    let rr = run(EvalConfig::Optimal, 4, false, &mut RoundRobin::new());
    let lq = run(EvalConfig::Optimal, 4, false, &mut LeastQueued::new());
    let ea1 = run(EvalConfig::Optimal, 1, true, &mut EnergyAware::new());
    let ea8 = run(EvalConfig::Optimal, 8, true, &mut EnergyAware::new());

    let determinism = (ea1.fingerprint(), ea8.fingerprint());
    let journals_match = ea1.journal == ea8.journal;
    FleetEvalResults {
        baseline,
        runs: vec![rr, lq, ea8],
        determinism,
        journals_match,
    }
}

/// Acceptance checks for the `fleet` artifact. Returns the first
/// violated expectation.
pub fn validate(results: &FleetEvalResults) -> Result<(), String> {
    let all = std::iter::once(&results.baseline).chain(results.runs.iter());
    for s in all {
        if !s.conserves_jobs() {
            return Err(format!(
                "{}: job conservation broke ({:?}, completed={})",
                s.policy, s.admission, s.completed
            ));
        }
        if s.failures != 0 || s.unsafe_time_s > 0.0 {
            return Err(format!(
                "{}: unsafe operation (failures={}, unsafe_time={}s)",
                s.policy, s.failures, s.unsafe_time_s
            ));
        }
    }
    let rr = &results.runs[0];
    let ea = results.energy_aware();
    if ea.cluster_energy_j >= rr.cluster_energy_j {
        return Err(format!(
            "energy-aware did not beat round-robin on cluster energy \
             ({:.1} J vs {:.1} J)",
            ea.cluster_energy_j, rr.cluster_energy_j
        ));
    }
    let penalty = ea.time_penalty_vs(rr);
    if penalty > 8.0 {
        return Err(format!(
            "energy-aware perf cost vs round-robin exceeds the paper-scale \
             bound: {penalty:.2}% > 8%"
        ));
    }
    if results.determinism.0 != results.determinism.1 {
        return Err(format!(
            "worker-count determinism broke:\n--- workers=1\n{}\n--- workers=8\n{}",
            results.determinism.0, results.determinism.1
        ));
    }
    if !results.journals_match {
        return Err("worker-count determinism broke: journals differ".into());
    }
    Ok(())
}

/// The per-policy comparison table (savings vs the baseline cluster).
pub fn policy_table(results: &FleetEvalResults) -> Table {
    let mut t = Table::new(
        "fleet-policies",
        "Cluster energy/performance by routing policy (2x X-Gene 2 + 2x X-Gene 3, Optimal daemon per node; baseline = default governors, round-robin)",
        &[
            "policy",
            "energy (J)",
            "makespan (s)",
            "energy savings (%)",
            "time penalty (%)",
            "completed",
            "shed",
            "migrations",
            "volt changes",
            "safe-mode entries",
        ],
    );
    let row = |s: &FleetSummary, label: &str| -> Vec<Cell> {
        vec![
            Cell::from(label.to_string()),
            Cell::f(s.cluster_energy_j, 1),
            Cell::f(s.cluster_makespan.as_secs_f64(), 1),
            Cell::f(s.energy_savings_vs(&results.baseline), 2),
            Cell::f(s.time_penalty_vs(&results.baseline), 2),
            Cell::from(s.completed),
            Cell::from(s.admission.shed()),
            Cell::from(s.migrations),
            Cell::from(s.voltage_changes),
            Cell::from(s.daemon.safe_mode_entries),
        ]
    };
    t.push_row(row(&results.baseline, "baseline (ondemand)"));
    for s in &results.runs {
        t.push_row(row(s, s.policy));
    }
    t
}

/// Per-node split of the energy-aware run: where the router actually
/// sent CPU- vs memory-intensive work.
pub fn node_table(results: &FleetEvalResults) -> Table {
    let mut t = Table::new(
        "fleet-nodes",
        "Energy-aware routing: per-node placement and energy",
        &[
            "node",
            "kind",
            "cores",
            "admitted",
            "cpu jobs",
            "mem jobs",
            "energy (J)",
            "makespan (s)",
            "volt changes",
        ],
    );
    for n in &results.energy_aware().nodes {
        t.push_row(vec![
            Cell::from(n.id.to_string()),
            Cell::from(n.kind.to_string()),
            Cell::from(n.cores),
            Cell::from(n.admitted),
            Cell::from(n.cpu_jobs),
            Cell::from(n.mem_jobs),
            Cell::f(n.metrics.energy_j, 1),
            Cell::f(n.metrics.makespan.as_secs_f64(), 1),
            Cell::from(n.metrics.voltage_changes),
        ]);
    }
    t
}

/// The determinism gate as a table: FNV-1a digests of the 1- and
/// 8-worker fingerprints (equal rows = byte-identical runs).
pub fn determinism_table(results: &FleetEvalResults) -> Table {
    let mut t = Table::new(
        "fleet-determinism",
        "Worker-count determinism (energy-aware run)",
        &["workers", "summary digest", "journal"],
    );
    let digest = |s: &str| format!("{:016x}", fnv1a(s.as_bytes()));
    let journal_note = if results.journals_match {
        "byte-identical"
    } else {
        "DIVERGED"
    };
    t.push_row(vec![
        Cell::from(1usize),
        Cell::from(digest(&results.determinism.0)),
        Cell::from(journal_note),
    ]);
    t.push_row(vec![
        Cell::from(8usize),
        Cell::from(digest(&results.determinism.1)),
        Cell::from(journal_note),
    ]);
    t
}

/// FNV-1a, for compact fingerprint digests in the table output.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fleet_eval_validates() {
        let results = evaluate(Scale::Quick, 2024);
        validate(&results).unwrap_or_else(|e| panic!("fleet validation failed: {e}"));
        // The baseline comparison is the headline: the daemon cluster
        // must save energy against default governors under every policy.
        for s in &results.runs {
            assert!(
                s.energy_savings_vs(&results.baseline) > 0.0,
                "{}: no savings vs baseline cluster",
                s.policy
            );
        }
    }
}
