//! Safe-Vmin characterization: Figures 3, 4, and 5.
//!
//! These harnesses replay the paper's §III methodology against the chip
//! model: descend the rail voltage step by step, execute each benchmark
//! many times per level, and record the lowest all-pass voltage (the
//! safe Vmin) and the failure probabilities below it.

use crate::report::{Cell, Table};
use crate::{Machine, Scale};
use avfs_chip::chip::Chip;
use avfs_chip::freq::FreqStep;
use avfs_chip::topology::{ChipSpec, PmdId};
use avfs_chip::vmin::VminQuery;
use avfs_chip::voltage::Millivolts;
use avfs_sim::RngStream;
use avfs_workloads::catalog::Benchmark;

/// How threads are laid out over PMDs in a characterization run (§II-B,
/// Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadAlloc {
    /// Consecutive cores: both cores of each PMD occupied.
    Clustered,
    /// One thread per PMD.
    Spreaded,
}

impl ThreadAlloc {
    /// Number of PMDs utilized by `threads` threads on `spec`.
    pub fn utilized_pmds(self, spec: &ChipSpec, threads: usize) -> usize {
        match self {
            ThreadAlloc::Clustered => threads.div_ceil(2).min(spec.pmds() as usize),
            ThreadAlloc::Spreaded => threads.min(spec.pmds() as usize),
        }
    }

    /// Short label, as in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            ThreadAlloc::Clustered => "clustered",
            ThreadAlloc::Spreaded => "spreaded",
        }
    }
}

/// One characterization configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CharConfig {
    /// Active threads.
    pub threads: usize,
    /// Core allocation.
    pub alloc: ThreadAlloc,
    /// Frequency step for all utilized PMDs.
    pub step: FreqStep,
}

impl CharConfig {
    /// Column label like `"8T(spreaded)@1.2GHz"`.
    pub fn label(&self, spec: &ChipSpec) -> String {
        let ghz = self.step.frequency(spec.fmax()).as_ghz();
        if self.threads == spec.cores as usize {
            format!("{}T@{:.1}GHz", self.threads, ghz)
        } else {
            format!("{}T({})@{:.1}GHz", self.threads, self.alloc.label(), ghz)
        }
    }

    /// The Vmin query describing this configuration for `bench`.
    pub fn query(&self, chip: &Chip, bench: Benchmark) -> VminQuery {
        VminQuery {
            freq_class: chip.behavior().vmin_class(self.step),
            utilized_pmds: self.alloc.utilized_pmds(chip.spec(), self.threads),
            active_threads: self.threads,
            workload_sensitivity: bench.profile().vmin_sensitivity,
        }
    }
}

/// Descends the voltage in 5 mV steps, sampling `runs` executions per
/// level, and returns the last level at which all runs passed — the
/// paper's safe-Vmin procedure (§III-A).
pub fn vmin_search(
    chip: &Chip,
    bench: Benchmark,
    config: &CharConfig,
    runs: u32,
    rng: &mut RngStream,
) -> Millivolts {
    let q = config.query(chip, bench);
    let model_safe = chip.vmin_model().safe_vmin(&q);
    let droop = chip.vmin_model().droop_class(q.utilized_pmds.max(1));
    let mut v = chip.nominal_voltage();
    let step = Millivolts::new(5);
    loop {
        let next = v.saturating_sub(step);
        let any_failure = (0..runs).any(|_| {
            chip.failure_model()
                .sample_outcome(next, model_safe, droop, rng)
                .is_failure()
        });
        if any_failure || next.as_mv() <= chip.spec().vreg_floor_mv {
            return v;
        }
        v = next;
    }
}

/// The Figure 3 configurations for a machine.
pub fn fig3_configs(machine: Machine) -> Vec<CharConfig> {
    let steps_xg2 = [FreqStep::MAX, FreqStep::HALF, FreqStep::new(3).unwrap()];
    let steps_xg3 = [FreqStep::MAX, FreqStep::HALF];
    let mut out = Vec::new();
    match machine {
        Machine::XGene2 => {
            for step in steps_xg2 {
                for threads in [8usize, 4, 2] {
                    out.push(CharConfig {
                        threads,
                        alloc: ThreadAlloc::Spreaded,
                        step,
                    });
                }
            }
        }
        Machine::XGene3 => {
            for step in steps_xg3 {
                for threads in [32usize, 16, 8] {
                    out.push(CharConfig {
                        threads,
                        alloc: ThreadAlloc::Spreaded,
                        step,
                    });
                }
            }
        }
    }
    out
}

/// Figure 3: the complete safe-Vmin characterization for one machine.
pub fn fig3(machine: Machine, scale: Scale) -> Table {
    let chip = machine.chip_builder().build();
    let configs = fig3_configs(machine);
    let mut headers = vec!["benchmark".to_string()];
    headers.extend(configs.iter().map(|c| c.label(chip.spec())));
    let mut table = Table {
        id: format!("fig03-{}", machine.name().to_lowercase().replace(' ', "")),
        title: format!("Figure 3 — safe Vmin (mV), {machine}"),
        headers,
        rows: Vec::new(),
    };
    let mut rng = RngStream::from_root(31, "fig3");
    for bench in Benchmark::characterized() {
        let mut row: Vec<Cell> = vec![bench.name().into()];
        for config in &configs {
            let v = vmin_search(&chip, bench, config, scale.vmin_runs(), &mut rng);
            row.push(Cell::Int(v.as_mv() as i64));
        }
        table.push_row(row);
    }
    table
}

/// Figure 4: single-core and two-core safe regions on the X-Gene 2 at
/// 2.4 GHz, exposing per-PMD static variation.
pub fn fig4(scale: Scale) -> Table {
    let chip = Machine::XGene2.chip_builder().build();
    let spec = chip.spec().clone();
    let mut table = Table::new(
        "fig04-xgene2",
        "Figure 4 — single/two-core safe Vmin per core (mV), X-Gene 2 @2.4GHz",
        &[
            "cores",
            "pmd",
            "safe Vmin (min over benchmarks)",
            "safe Vmin (max over benchmarks)",
            "crash point",
        ],
    );
    let mut rng = RngStream::from_root(41, "fig4");
    // Single-core rows (one per core) then two-core rows (one per PMD).
    let mut cases: Vec<(String, PmdId, usize)> = spec
        .all_cores()
        .map(|c| (format!("core{}", c.index()), spec.pmd_of(c), 1usize))
        .collect();
    cases.extend(spec.all_pmds().map(|p| {
        let cs = spec.cores_of(p);
        (
            format!("cores{},{}", cs[0].index(), cs[1].index()),
            p,
            2usize,
        )
    }));
    for (label, pmd, threads) in cases {
        let mut lo = u32::MAX;
        let mut hi = 0u32;
        let mut crash = 0u32;
        for bench in Benchmark::characterized() {
            let q = VminQuery {
                freq_class: avfs_chip::freq::FreqVminClass::Max,
                utilized_pmds: 1,
                active_threads: threads,
                workload_sensitivity: bench.profile().vmin_sensitivity,
            };
            let model_safe = chip.vmin_model().safe_vmin_on(&q, &[pmd]);
            // Verify by campaign: descend with the per-PMD safe value.
            let droop = chip.vmin_model().droop_class(1);
            let mut v = chip.nominal_voltage();
            loop {
                let next = v.saturating_sub(Millivolts::new(5));
                let fail = (0..scale.sweep_runs()).any(|_| {
                    chip.failure_model()
                        .sample_outcome(next, model_safe, droop, &mut rng)
                        .is_failure()
                });
                if fail {
                    break;
                }
                v = next;
            }
            lo = lo.min(v.as_mv());
            hi = hi.max(v.as_mv());
            crash = crash.max(chip.vmin_model().crash_point(model_safe).as_mv());
        }
        table.push_row(vec![
            label.into(),
            Cell::Int(pmd.index() as i64),
            Cell::Int(lo as i64),
            Cell::Int(hi as i64),
            Cell::Int(crash as i64),
        ]);
    }
    table
}

/// The Figure 5 configurations for a machine (thread scaling × allocation
/// at max frequency, plus reduced-frequency full-chip lines).
pub fn fig5_configs(machine: Machine) -> Vec<CharConfig> {
    match machine {
        Machine::XGene2 => vec![
            CharConfig {
                threads: 8,
                alloc: ThreadAlloc::Clustered,
                step: FreqStep::MAX,
            },
            CharConfig {
                threads: 4,
                alloc: ThreadAlloc::Spreaded,
                step: FreqStep::MAX,
            },
            CharConfig {
                threads: 4,
                alloc: ThreadAlloc::Clustered,
                step: FreqStep::MAX,
            },
            CharConfig {
                threads: 8,
                alloc: ThreadAlloc::Clustered,
                step: FreqStep::HALF,
            },
            CharConfig {
                threads: 8,
                alloc: ThreadAlloc::Clustered,
                step: FreqStep::new(3).unwrap(),
            },
        ],
        Machine::XGene3 => vec![
            CharConfig {
                threads: 32,
                alloc: ThreadAlloc::Clustered,
                step: FreqStep::MAX,
            },
            CharConfig {
                threads: 16,
                alloc: ThreadAlloc::Spreaded,
                step: FreqStep::MAX,
            },
            CharConfig {
                threads: 16,
                alloc: ThreadAlloc::Clustered,
                step: FreqStep::MAX,
            },
            CharConfig {
                threads: 8,
                alloc: ThreadAlloc::Spreaded,
                step: FreqStep::MAX,
            },
            CharConfig {
                threads: 8,
                alloc: ThreadAlloc::Clustered,
                step: FreqStep::MAX,
            },
            CharConfig {
                threads: 32,
                alloc: ThreadAlloc::Clustered,
                step: FreqStep::HALF,
            },
        ],
    }
}

/// Figure 5: cumulative probability of failure versus voltage, averaged
/// over the 25 characterized benchmarks.
pub fn fig5(machine: Machine, scale: Scale) -> Table {
    let chip = machine.chip_builder().build();
    let configs = fig5_configs(machine);
    let mut headers = vec!["voltage (mV)".to_string()];
    headers.extend(configs.iter().map(|c| c.label(chip.spec())));
    let mut table = Table {
        id: format!("fig05-{}", machine.name().to_lowercase().replace(' ', "")),
        title: format!("Figure 5 — probability of failure vs voltage, {machine}"),
        headers,
        rows: Vec::new(),
    };
    let mut rng = RngStream::from_root(51, "fig5");
    let benches = Benchmark::characterized();
    // Sweep from nominal down past the deepest crash point.
    let floor = configs
        .iter()
        .map(|c| {
            let q = c.query(&chip, Benchmark::SpecNamd);
            chip.vmin_model()
                .crash_point(chip.vmin_model().safe_vmin(&q))
                .as_mv()
        })
        .min()
        .unwrap_or(chip.spec().vreg_floor_mv)
        .saturating_sub(20);
    let mut v = chip.nominal_voltage().as_mv();
    while v >= floor {
        let voltage = Millivolts::new(v);
        let mut row: Vec<Cell> = vec![Cell::Int(v as i64)];
        for config in &configs {
            let mut pfail_sum = 0.0;
            for &bench in &benches {
                let q = config.query(&chip, bench);
                let safe = chip.vmin_model().safe_vmin(&q);
                let droop = chip.vmin_model().droop_class(q.utilized_pmds.max(1));
                pfail_sum += chip.failure_model().empirical_pfail(
                    voltage,
                    safe,
                    droop,
                    scale.sweep_runs(),
                    &mut rng,
                );
            }
            row.push(Cell::f(pfail_sum / benches.len() as f64, 3));
        }
        table.push_row(row);
        v -= 10;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_utilized_pmds() {
        let spec = Machine::XGene3.chip_builder().spec().clone();
        assert_eq!(ThreadAlloc::Clustered.utilized_pmds(&spec, 16), 8);
        assert_eq!(ThreadAlloc::Spreaded.utilized_pmds(&spec, 16), 16);
        assert_eq!(ThreadAlloc::Spreaded.utilized_pmds(&spec, 64), 16);
        assert_eq!(ThreadAlloc::Clustered.utilized_pmds(&spec, 1), 1);
    }

    #[test]
    fn vmin_search_finds_the_model_value() {
        let chip = Machine::XGene3.chip_builder().build();
        let config = CharConfig {
            threads: 32,
            alloc: ThreadAlloc::Clustered,
            step: FreqStep::MAX,
        };
        let mut rng = RngStream::from_root(1, "t");
        let found = vmin_search(&chip, Benchmark::NpbEp, &config, 200, &mut rng);
        let q = config.query(&chip, Benchmark::NpbEp);
        let model = chip.vmin_model().safe_vmin(&q);
        // The campaign lands within one 5 mV step of the model value
        // (sampling can pass a barely-unsafe level only with tiny pfail).
        let diff = (found - model).abs();
        assert!(diff <= 10, "found {found}, model {model}");
    }

    #[test]
    fn fig3_has_25_rows_and_expected_columns() {
        let t = fig3(Machine::XGene2, Scale::Quick);
        assert_eq!(t.rows.len(), 25);
        assert_eq!(t.headers.len(), 10); // benchmark + 3 threads × 3 freqs
    }

    #[test]
    fn fig3_multicore_workload_spread_is_small() {
        // The paper's headline: at max threads/max frequency the spread
        // across benchmarks is ~1 % of nominal.
        let t = fig3(Machine::XGene3, Scale::Quick);
        let col = t.column("32T@3.0GHz");
        let max = col.iter().cloned().fold(f64::MIN, f64::max);
        let min = col.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min <= 15.0, "spread {}mV", max - min);
    }

    #[test]
    fn fig5_pfail_monotone_in_voltage() {
        let t = fig5(Machine::XGene2, Scale::Quick);
        // For each configuration column the average pfail must not
        // decrease as voltage drops (allowing small sampling noise).
        for col in &t.headers[1..] {
            let vals = t.column(col);
            for w in vals.windows(2) {
                assert!(w[1] >= w[0] - 0.08, "{col}: {} -> {}", w[0], w[1]);
            }
        }
    }
}
