//! Energy and ED2P trade-offs: Figures 7, 11, and 12.
//!
//! These harnesses evaluate steady-state multicore runs analytically —
//! N threads/copies of one benchmark on one machine at one frequency,
//! allocation, and voltage — and report per-instance-normalized energy
//! (§II-B) and ED2P (§V-B). Per the paper's methodology, Figure 7 runs
//! at nominal voltage (isolating the allocation effect) while Figures 11
//! and 12 run each configuration at its safe Vmin.

use crate::characterization::{CharConfig, ThreadAlloc};
use crate::report::{Cell, Table};
use crate::Machine;
use avfs_chip::freq::FreqStep;
use avfs_chip::power::{PmdLoad, PowerInputs};
use avfs_chip::voltage::Millivolts;
use avfs_workloads::catalog::Benchmark;
use serde::{Deserialize, Serialize};

/// Voltage policy for a steady-state evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VoltageMode {
    /// The chip's nominal voltage.
    Nominal,
    /// The configuration's safe Vmin (per Figure 3 / Table II).
    SafeVmin,
}

/// One evaluated operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunPoint {
    /// Execution time of the (parallel or replicated) run, seconds.
    pub time_s: f64,
    /// Average PCP power, watts.
    pub power_w: f64,
    /// Energy normalized per instance (§II-B): total for parallel jobs,
    /// total/N for N single-thread copies, joules.
    pub energy_j: f64,
    /// ED2P with the per-instance energy, J·s².
    pub ed2p: f64,
    /// The voltage the run used.
    pub voltage: Millivolts,
}

/// Evaluates a steady multicore run of `bench` analytically.
pub fn steady_run(
    machine: Machine,
    bench: Benchmark,
    config: &CharConfig,
    voltage_mode: VoltageMode,
) -> RunPoint {
    let chip = machine.chip_builder().build();
    let perf = machine.perf_model();
    let spec = chip.spec().clone();
    let profile = bench.profile();

    let freq = config.step.frequency(spec.fmax());
    let ratio = freq.as_mhz() as f64 / spec.fmax_mhz as f64;
    let work = perf.thread_work(&profile, config.threads);

    // Contention: all threads run the same program.
    let pressure = perf.pressure_at(&profile, ratio) * config.threads as f64;
    let utilized = config.alloc.utilized_pmds(&spec, config.threads);
    let pairs_share_l2 = match config.alloc {
        ThreadAlloc::Clustered => config.threads >= 2,
        ThreadAlloc::Spreaded => config.threads > spec.pmds() as usize,
    };
    let l2_mult = perf.l2_share_mult(pairs_share_l2.then_some(profile.mem_fraction));
    let mem_mult = perf.mem_contention_mult(pressure) * l2_mult;

    let time_s = perf.exec_time_s(&work, freq.as_mhz(), mem_mult);
    let activity = perf.effective_activity(&profile, &work, freq.as_mhz(), mem_mult);

    // Voltage per the mode.
    let voltage = match voltage_mode {
        VoltageMode::Nominal => chip.nominal_voltage(),
        VoltageMode::SafeVmin => chip.vmin_model().safe_vmin(&config.query(&chip, bench)),
    };

    // Per-PMD loads.
    let mut loads = vec![PmdLoad::IDLE; spec.pmds() as usize];
    let mut remaining = config.threads;
    for load in loads.iter_mut().take(utilized) {
        let per_pmd = match config.alloc {
            ThreadAlloc::Clustered => 2.min(remaining),
            ThreadAlloc::Spreaded => {
                // One per PMD on the first lap; extras double up.
                if config.threads <= spec.pmds() as usize {
                    1
                } else {
                    2.min(remaining)
                }
            }
        };
        *load = PmdLoad {
            freq_mhz: freq.as_mhz(),
            active_cores: per_pmd as u8,
            activity,
        };
        remaining -= per_pmd;
    }
    let inputs = PowerInputs {
        voltage,
        pmd_loads: loads,
        mem_traffic: (pressure / perf.mem_capacity).min(1.0),
    };
    let power_w = chip.power_model().power_w(&inputs);

    let total_energy = power_w * time_s;
    let energy_j = if profile.parallel {
        total_energy
    } else {
        total_energy / config.threads as f64
    };
    RunPoint {
        time_s,
        power_w,
        energy_j,
        ed2p: energy_j * time_s * time_s,
        voltage,
    }
}

/// Figure 7: energy at 4 threads, clustered vs spreaded, X-Gene 2 at
/// 2.4 GHz and nominal voltage, for all 25 benchmarks (sorted from
/// CPU-intensive to memory-intensive, as the paper plots them).
pub fn fig7() -> Table {
    let mut table = Table::new(
        "fig07-xgene2",
        "Figure 7 — energy (J) of 4T clustered vs spreaded, X-Gene 2 @2.4GHz",
        &[
            "benchmark",
            "clustered (J)",
            "spreaded (J)",
            "difference (%)",
            "mem fraction",
        ],
    );
    let mut rows: Vec<(Benchmark, f64, f64)> = Benchmark::characterized()
        .into_iter()
        .map(|bench| {
            let mk = |alloc| CharConfig {
                threads: 4,
                alloc,
                step: FreqStep::MAX,
            };
            let clustered = steady_run(
                Machine::XGene2,
                bench,
                &mk(ThreadAlloc::Clustered),
                VoltageMode::Nominal,
            );
            let spreaded = steady_run(
                Machine::XGene2,
                bench,
                &mk(ThreadAlloc::Spreaded),
                VoltageMode::Nominal,
            );
            (bench, clustered.energy_j, spreaded.energy_j)
        })
        .collect();
    rows.sort_by(|a, b| {
        a.0.profile()
            .mem_fraction
            .partial_cmp(&b.0.profile().mem_fraction)
            .unwrap()
    });
    for (bench, clustered, spreaded) in rows {
        // Paper convention: positive % = spreaded is the better (lower
        // energy is clustered... no —) the red line shows
        // (clustered − spreaded)/spreaded: positive = clustered needs
        // more energy = memory-intensive side.
        let diff_pct = (clustered - spreaded) / spreaded * 100.0;
        table.push_row(vec![
            bench.name().into(),
            Cell::f(clustered, 1),
            Cell::f(spreaded, 1),
            Cell::f(diff_pct, 1),
            Cell::f(bench.profile().mem_fraction, 2),
        ]);
    }
    table
}

/// The five benchmarks of Figures 11/12, CPU- to memory-intensive.
pub fn fig11_benchmarks() -> [Benchmark; 5] {
    [
        Benchmark::SpecNamd,
        Benchmark::NpbEp,
        Benchmark::SpecMilc,
        Benchmark::NpbCg,
        Benchmark::NpbFt,
    ]
}

fn fig11_configs(machine: Machine) -> Vec<CharConfig> {
    let (threads, steps): (Vec<usize>, Vec<FreqStep>) = match machine {
        Machine::XGene2 => (
            vec![8, 4, 2],
            vec![FreqStep::MAX, FreqStep::HALF, FreqStep::new(3).unwrap()],
        ),
        Machine::XGene3 => (vec![32, 16, 8], vec![FreqStep::MAX, FreqStep::HALF]),
    };
    let mut out = Vec::new();
    for step in steps {
        for &t in &threads {
            out.push(CharConfig {
                threads: t,
                alloc: ThreadAlloc::Spreaded,
                step,
            });
        }
    }
    out
}

fn fig11_12_table(machine: Machine, ed2p: bool) -> Table {
    let chip = machine.chip_builder().build();
    let configs = fig11_configs(machine);
    let mut headers = vec!["benchmark".to_string()];
    headers.extend(configs.iter().map(|c| c.label(chip.spec())));
    let (metric, fig) = if ed2p {
        ("ED2P (J·s²)", 12)
    } else {
        ("energy (J)", 11)
    };
    let mut table = Table {
        id: format!(
            "fig{fig}-{}",
            machine.name().to_lowercase().replace(' ', "")
        ),
        title: format!("Figure {fig} — {metric} at safe Vmin, {machine}"),
        headers,
        rows: Vec::new(),
    };
    for bench in fig11_benchmarks() {
        let mut row: Vec<Cell> = vec![bench.name().into()];
        for config in &configs {
            let point = steady_run(machine, bench, config, VoltageMode::SafeVmin);
            row.push(if ed2p {
                Cell::f(point.ed2p, 0)
            } else {
                Cell::f(point.energy_j, 1)
            });
        }
        table.push_row(row);
    }
    table
}

/// Figure 11: energy per configuration at safe Vmin.
pub fn fig11(machine: Machine) -> Table {
    fig11_12_table(machine, false)
}

/// Figure 12: ED2P per configuration at safe Vmin.
pub fn fig12(machine: Machine) -> Table {
    fig11_12_table(machine, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_sign_pattern_matches_the_paper() {
        let t = fig7();
        // CPU-intensive end: clustered is better (negative difference).
        let namd = t.value("namd", "difference (%)").unwrap();
        let ep = t.value("EP", "difference (%)").unwrap();
        assert!(namd < -4.0, "namd {namd}");
        assert!(ep < -4.0, "EP {ep}");
        // Memory-intensive end: spreaded is better (positive difference).
        let cg = t.value("CG", "difference (%)").unwrap();
        let milc = t.value("milc", "difference (%)").unwrap();
        assert!(cg > 3.0, "CG {cg}");
        assert!(milc > 3.0, "milc {milc}");
        // The paper's range: roughly −10 % … +15 %.
        for v in t.column("difference (%)") {
            assert!((-15.0..=20.0).contains(&v), "diff {v}");
        }
    }

    #[test]
    fn fig7_has_a_crossover() {
        // Sorted by memory intensity, the sign flips once from negative
        // (clustered better) to positive (spreaded better).
        let t = fig7();
        let diffs = t.column("difference (%)");
        assert!(diffs.first().unwrap() < &0.0);
        assert!(diffs.last().unwrap() > &0.0);
    }

    #[test]
    fn fig11_xgene2_division_saves_energy_for_everyone() {
        // Paper: X-Gene 2 at 0.9 GHz reports significant energy savings
        // for all cases (deep Vmin via clock division).
        let t = fig11(Machine::XGene2);
        for bench in ["namd", "EP", "milc", "CG", "FT"] {
            let e_max = t.value(bench, "8T@2.4GHz").unwrap();
            let e_div = t.value(bench, "8T@0.9GHz").unwrap();
            assert!(e_div < e_max, "{bench}: {e_div} !< {e_max}");
        }
    }

    #[test]
    fn fig11_memory_wins_at_half_speed_cpu_does_not() {
        let t = fig11(Machine::XGene3);
        // Memory-intensive: lower frequency → lower energy.
        for bench in ["milc", "CG", "FT"] {
            let e_max = t.value(bench, "32T@3.0GHz").unwrap();
            let e_half = t.value(bench, "32T@1.5GHz").unwrap();
            assert!(e_half < e_max, "{bench}: {e_half} !< {e_max}");
        }
        // CPU-intensive: max frequency gives the best energy.
        for bench in ["namd", "EP"] {
            let e_max = t.value(bench, "32T@3.0GHz").unwrap();
            let e_half = t.value(bench, "32T@1.5GHz").unwrap();
            assert!(e_max < e_half, "{bench}: {e_max} !< {e_half}");
        }
    }

    #[test]
    fn fig12_ed2p_crossover() {
        let t = fig12(Machine::XGene3);
        // CPU-intensive: ED2P at max frequency is the lowest.
        for bench in ["namd", "EP"] {
            let at_max = t.value(bench, "32T@3.0GHz").unwrap();
            let at_half = t.value(bench, "32T@1.5GHz").unwrap();
            assert!(at_max < at_half, "{bench}");
        }
        // Memory-intensive: frequency is inversely proportional to ED2P
        // efficiency.
        for bench in ["CG", "FT", "milc"] {
            let at_max = t.value(bench, "32T@3.0GHz").unwrap();
            let at_half = t.value(bench, "32T@1.5GHz").unwrap();
            assert!(at_half < at_max, "{bench}");
        }
    }

    #[test]
    fn steady_run_uses_lower_voltage_at_lower_frequency() {
        let config_max = CharConfig {
            threads: 8,
            alloc: ThreadAlloc::Clustered,
            step: FreqStep::MAX,
        };
        let config_div = CharConfig {
            step: FreqStep::new(3).unwrap(),
            ..config_max
        };
        let at_max = steady_run(
            Machine::XGene2,
            Benchmark::NpbLu,
            &config_max,
            VoltageMode::SafeVmin,
        );
        let at_div = steady_run(
            Machine::XGene2,
            Benchmark::NpbLu,
            &config_div,
            VoltageMode::SafeVmin,
        );
        assert!(at_div.voltage < at_max.voltage);
        assert!(at_max.voltage < Millivolts::new(980));
    }

    #[test]
    fn spec_energy_is_per_instance() {
        // Doubling copies of a SPEC benchmark (ignoring contention
        // changes) must roughly double total power but keep per-instance
        // energy in the same ballpark.
        let c2 = CharConfig {
            threads: 2,
            alloc: ThreadAlloc::Spreaded,
            step: FreqStep::MAX,
        };
        let c4 = CharConfig { threads: 4, ..c2 };
        let p2 = steady_run(
            Machine::XGene3,
            Benchmark::SpecGamess,
            &c2,
            VoltageMode::Nominal,
        );
        let p4 = steady_run(
            Machine::XGene3,
            Benchmark::SpecGamess,
            &c4,
            VoltageMode::Nominal,
        );
        assert!(p4.power_w > p2.power_w * 1.3);
        assert!(p4.energy_j < p2.energy_j * 1.5);
    }
}
