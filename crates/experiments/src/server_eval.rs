//! The system-level evaluation (§VI-B): Figures 14/15 and Tables III/IV.
//!
//! One random server workload per machine is generated and replayed under
//! the four configurations (Baseline / Safe Vmin / Placement / Optimal);
//! the same trace replays under every configuration, which is what makes
//! the rows comparable.

use crate::report::{Cell, Table};
use crate::{Machine, Scale};
use avfs_core::configs::EvalConfig;
use avfs_sched::metrics::RunMetrics;
use avfs_sched::system::{System, SystemConfig};
use avfs_sim::time::SimDuration;
use avfs_telemetry::{Telemetry, TraceKind, Value};
use avfs_workloads::generator::{GeneratorConfig, WorkloadTrace};
use serde::{Deserialize, Serialize};

/// Results of the four-configuration evaluation on one machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalResults {
    /// Which machine.
    pub machine: String,
    /// Metrics per configuration, in [`EvalConfig::ALL`] order.
    pub runs: Vec<(String, RunMetrics)>,
}

impl EvalResults {
    /// The Baseline run's metrics.
    pub fn baseline(&self) -> &RunMetrics {
        &self.runs[0].1
    }

    /// Metrics of a configuration by its table label.
    pub fn config(&self, label: &str) -> Option<&RunMetrics> {
        self.runs
            .iter()
            .find(|(name, _)| name == label)
            .map(|(_, m)| m)
    }
}

/// Runs the §VI-B evaluation for one machine: the same generated trace
/// under all four configurations.
pub fn evaluate(machine: Machine, scale: Scale, seed: u64) -> EvalResults {
    evaluate_with_observer(machine, scale, seed, &Telemetry::null())
}

/// [`evaluate`] with a telemetry handle installed into the **Optimal**
/// run's chip, scheduler, and daemon (the paper's headline
/// configuration; instrumenting all four would interleave their
/// journals on one monotone clock). The run opens with an `Init` trace.
pub fn evaluate_with_observer(
    machine: Machine,
    scale: Scale,
    seed: u64,
    telemetry: &Telemetry,
) -> EvalResults {
    let cores = machine.chip_builder().spec().cores as usize;
    let mut gen = GeneratorConfig::paper_default(cores, seed);
    gen.duration = scale.server_window();
    if scale == Scale::Quick {
        gen.job_scale = 0.25;
    }
    let trace = WorkloadTrace::generate(&gen);
    let runs = EvalConfig::ALL
        .iter()
        .map(|&cfg| {
            let chip = machine.chip_builder().build();
            let run_telemetry = if cfg == EvalConfig::Optimal {
                telemetry.clone()
            } else {
                Telemetry::null()
            };
            run_telemetry.trace(TraceKind::Init, || {
                vec![
                    ("experiment", Value::from("server_eval")),
                    ("machine", Value::from(machine.name())),
                    ("config", Value::from(cfg.label())),
                ]
            });
            let mut driver = cfg.driver_with_observer(&chip, run_telemetry.clone());
            let mut system = System::builder(chip, machine.perf_model())
                .config(SystemConfig::default())
                .observer(run_telemetry)
                .build();
            let metrics = system.run(&trace, driver.as_mut());
            (cfg.label().to_string(), metrics)
        })
        .collect();
    EvalResults {
        machine: machine.name().to_string(),
        runs,
    }
}

/// Tables III/IV: time, average power, energy, savings, and ED2P for the
/// four configurations.
pub fn table3_4(machine: Machine, scale: Scale, seed: u64) -> (Table, EvalResults) {
    table3_4_with_observer(machine, scale, seed, &Telemetry::null())
}

/// [`table3_4`] over [`evaluate_with_observer`]: the Optimal run reports
/// through `telemetry`.
pub fn table3_4_with_observer(
    machine: Machine,
    scale: Scale,
    seed: u64,
    telemetry: &Telemetry,
) -> (Table, EvalResults) {
    let results = evaluate_with_observer(machine, scale, seed, telemetry);
    let table_no = match machine {
        Machine::XGene2 => "III",
        Machine::XGene3 => "IV",
    };
    let mut t = Table::new(
        &format!(
            "table{}-{}",
            table_no.to_lowercase(),
            machine.name().to_lowercase().replace(' ', "")
        ),
        &format!("Table {table_no} — {machine} results for the 4 configurations"),
        &["metric", "Baseline", "Safe Vmin", "Placement", "Optimal"],
    );
    let base = results.baseline().clone();
    let row = |name: &str, f: &dyn Fn(&RunMetrics) -> Cell| {
        let mut cells: Vec<Cell> = vec![name.into()];
        for (_, m) in &results.runs {
            cells.push(f(m));
        }
        cells
    };
    t.push_row(row("Time (s)", &|m| Cell::f(m.makespan.as_secs_f64(), 0)));
    t.push_row(row("Avg. Power (W)", &|m| Cell::f(m.avg_power_w, 2)));
    t.push_row(row("Energy (J)", &|m| Cell::f(m.energy_j, 1)));
    t.push_row(row("Energy Savings (%)", &|m| {
        Cell::f(m.energy_savings_vs(&base) * 100.0, 1)
    }));
    t.push_row(row("ED2P (J·s²)", &|m| Cell::f(m.ed2p(), 0)));
    t.push_row(row("ED2P Savings (%)", &|m| {
        Cell::f(m.ed2p_savings_vs(&base) * 100.0, 1)
    }));
    t.push_row(row("Time penalty (%)", &|m| {
        Cell::f(m.time_penalty_vs(&base) * 100.0, 2)
    }));
    t.push_row(row("Unsafe time (s)", &|m| Cell::f(m.unsafe_time_s, 3)));
    t.push_row(row("Migrations", &|m| Cell::Int(m.migrations as i64)));
    t.push_row(row("Voltage changes", &|m| {
        Cell::Int(m.voltage_changes as i64)
    }));
    (t, results)
}

/// Figure 14: the 1 Hz average-power traces of Baseline vs Optimal,
/// resampled to `bucket_s`-second buckets for compact output.
pub fn fig14(results: &EvalResults, bucket_s: u64) -> Table {
    let base = results.baseline();
    let optimal = results.config("Optimal").expect("optimal run");
    let mut t = Table::new(
        &format!("fig14-{}", results.machine.to_lowercase().replace(' ', "")),
        &format!(
            "Figure 14 — average power (W), Baseline vs Optimal, {}",
            results.machine
        ),
        &["t (s)", "Baseline (W)", "Optimal (W)"],
    );
    let end = base
        .makespan
        .as_secs_f64()
        .max(optimal.makespan.as_secs_f64()) as u64;
    let step = SimDuration::from_secs(bucket_s);
    let start = avfs_sim::time::SimTime::ZERO;
    let horizon = avfs_sim::time::SimTime::from_secs(end);
    let b = base.power_trace.resample(start, horizon, step, 0.0);
    let o = optimal.power_trace.resample(start, horizon, step, 0.0);
    for (i, (pb, po)) in b.iter().zip(o.iter()).enumerate() {
        t.push_row(vec![
            Cell::Int((i as u64 * bucket_s) as i64),
            Cell::f(*pb, 2),
            Cell::f(*po, 2),
        ]);
    }
    t
}

/// Figure 15: system load (running threads) and CPU-/memory-intensive
/// process counts over time for the Optimal run.
pub fn fig15(results: &EvalResults, bucket_s: u64) -> Table {
    let optimal = results.config("Optimal").expect("optimal run");
    let mut t = Table::new(
        &format!("fig15-{}", results.machine.to_lowercase().replace(' ', "")),
        &format!(
            "Figure 15 — system load and process classes (Optimal run), {}",
            results.machine
        ),
        &[
            "t (s)",
            "running threads",
            "CPU-intensive procs",
            "memory-intensive procs",
        ],
    );
    let end = optimal.makespan.as_secs_f64() as u64;
    let step = SimDuration::from_secs(bucket_s);
    let start = avfs_sim::time::SimTime::ZERO;
    let horizon = avfs_sim::time::SimTime::from_secs(end);
    let load = optimal.load_trace.resample(start, horizon, step, 0.0);
    let cpu = optimal.cpu_class_trace.resample(start, horizon, step, 0.0);
    let mem = optimal.mem_class_trace.resample(start, horizon, step, 0.0);
    for i in 0..load.len() {
        t.push_row(vec![
            Cell::Int((i as u64 * bucket_s) as i64),
            Cell::f(load[i], 0),
            Cell::f(cpu[i], 0),
            Cell::f(mem[i], 0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_eval_reproduces_the_paper_shape() {
        let (t, results) = table3_4(Machine::XGene2, Scale::Quick, 7);
        // Optimal saves a substantial fraction of energy...
        let optimal_savings = t.value("Energy Savings (%)", "Optimal").unwrap();
        assert!(optimal_savings > 12.0, "optimal {optimal_savings}%");
        // ...with a small time penalty...
        let penalty = t.value("Time penalty (%)", "Optimal").unwrap();
        assert!((-0.5..=8.0).contains(&penalty), "penalty {penalty}%");
        // ...and zero unsafe time in every configuration.
        for cfg in ["Baseline", "Safe Vmin", "Placement", "Optimal"] {
            assert_eq!(t.value("Unsafe time (s)", cfg), Some(0.0), "{cfg}");
        }
        // Safe Vmin and Placement land between Baseline and Optimal.
        let sv = t.value("Energy Savings (%)", "Safe Vmin").unwrap();
        let pl = t.value("Energy Savings (%)", "Placement").unwrap();
        assert!(sv > 2.0 && sv < optimal_savings);
        assert!(pl > 0.0 && pl < optimal_savings);
        let _ = results;
    }

    #[test]
    fn same_trace_replays_under_all_configs() {
        let results = evaluate(Machine::XGene2, Scale::Quick, 3);
        // Every run completed the same number of jobs.
        let counts: Vec<usize> = results
            .runs
            .iter()
            .map(|(_, m)| m.completed.len())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
        assert!(counts[0] > 5);
    }

    #[test]
    fn traces_are_renderable() {
        let results = evaluate(Machine::XGene2, Scale::Quick, 5);
        let f14 = fig14(&results, 30);
        let f15 = fig15(&results, 30);
        assert!(f14.rows.len() > 5);
        assert!(f15.rows.len() > 5);
        // Optimal average power below baseline average power.
        let avg = |col: &str, t: &Table| {
            let v = t.column(col);
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(avg("Optimal (W)", &f14) < avg("Baseline (W)", &f14));
    }
}
