//! Tables I and II of the paper.

use crate::report::{Cell, Table};
use crate::Machine;
use avfs_chip::freq::FreqVminClass;
use avfs_chip::vmin::DroopClass;
use avfs_core::policy::PolicyTable;

/// Table I: basic parameters of X-Gene 2 and X-Gene 3.
pub fn table1() -> Table {
    let x2 = Machine::XGene2.chip_builder().build();
    let x3 = Machine::XGene3.chip_builder().build();
    let (s2, s3) = (x2.spec().clone(), x3.spec().clone());
    let mut t = Table::new(
        "table1",
        "Table I — basic parameters of X-Gene 2 and X-Gene 3",
        &["parameter", "X-Gene 2", "X-Gene 3"],
    );
    let mut row = |name: &str, a: String, b: String| {
        t.push_row(vec![name.into(), a.into(), b.into()]);
    };
    row(
        "CPU",
        format!("{} cores", s2.cores),
        format!("{} cores", s3.cores),
    );
    row(
        "Core clock",
        format!("{:.1} GHz", s2.fmax_mhz as f64 / 1000.0),
        format!("{:.1} GHz", s3.fmax_mhz as f64 / 1000.0),
    );
    row(
        "L1 I-cache",
        format!("{}KB per core", s2.l1i_kib),
        format!("{}KB per core", s3.l1i_kib),
    );
    row(
        "L1 D-cache",
        format!("{}KB per core", s2.l1d_kib),
        format!("{}KB per core", s3.l1d_kib),
    );
    row(
        "L2 cache",
        format!("{}KB per PMD", s2.l2_kib),
        format!("{}KB per PMD", s3.l2_kib),
    );
    row(
        "L3 cache",
        format!("{}MB", s2.l3_kib / 1024),
        format!("{}MB", s3.l3_kib / 1024),
    );
    row(
        "Technology",
        s2.technology.to_string(),
        s3.technology.to_string(),
    );
    row("TDP", format!("{} W", s2.tdp_w), format!("{} W", s3.tdp_w));
    row(
        "Nominal voltage",
        format!("{} mV", s2.nominal_mv),
        format!("{} mV", s3.nominal_mv),
    );
    t
}

/// Table II: correlation of droop magnitude with utilized PMDs and the
/// safe Vmin at 3 GHz and 1.5 GHz (X-Gene 3).
pub fn table2() -> Table {
    let chip = Machine::XGene3.chip_builder().build();
    let model = chip.vmin_model();
    let mut t = Table::new(
        "table2",
        "Table II — droop magnitude vs utilized PMDs and safe Vmin, X-Gene 3",
        &[
            "droop magnitude",
            "utilized PMDs",
            "thread scaling",
            "Vmin @3GHz (mV)",
            "Vmin @1.5GHz (mV)",
        ],
    );
    let rows = [
        (
            DroopClass::D25,
            "1, 2 PMDs",
            "1T, 2T, 4T(clustered)",
            2usize,
            4usize,
        ),
        (
            DroopClass::D35,
            "4 PMDs",
            "8T(clustered), 4T(spreaded)",
            4,
            8,
        ),
        (
            DroopClass::D45,
            "8 PMDs",
            "16T(clustered), 8T(spreaded)",
            8,
            16,
        ),
        (DroopClass::D55, "16 PMDs", "32T, 16T(spreaded)", 16, 32),
    ];
    for (class, pmds_label, scaling, pmds, threads) in rows {
        let q = |fc| avfs_chip::vmin::VminQuery {
            freq_class: fc,
            utilized_pmds: pmds,
            active_threads: threads,
            workload_sensitivity: 0.0,
        };
        t.push_row(vec![
            class.to_string().into(),
            pmds_label.into(),
            scaling.into(),
            Cell::Int(model.safe_vmin(&q(FreqVminClass::Max)).as_mv() as i64),
            Cell::Int(model.safe_vmin(&q(FreqVminClass::Reduced)).as_mv() as i64),
        ]);
    }
    t
}

/// The daemon-facing version of Table II: the characterized policy table
/// actually deployed (includes workload/static margins).
pub fn table2_policy() -> Table {
    let chip = Machine::XGene3.chip_builder().build();
    let policy = PolicyTable::from_characterization(chip.vmin_model());
    let mut t = Table::new(
        "table2-policy",
        "Table II (deployed policy) — characterized safe voltages with margins, X-Gene 3",
        &[
            "droop class",
            "policy Vmin @3GHz (mV)",
            "policy Vmin @1.5GHz (mV)",
        ],
    );
    for (class, pmds, threads) in [
        (DroopClass::D25, 2usize, 4usize),
        (DroopClass::D35, 4, 8),
        (DroopClass::D45, 8, 16),
        (DroopClass::D55, 16, 32),
    ] {
        t.push_row(vec![
            class.to_string().into(),
            Cell::Int(
                policy
                    .safe_voltage(FreqVminClass::Max, class, threads)
                    .as_mv() as i64,
            ),
            Cell::Int(
                policy
                    .safe_voltage(FreqVminClass::Reduced, class, threads)
                    .as_mv() as i64,
            ),
        ]);
        let _ = pmds;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper_verbatim() {
        let t = table1();
        let row = |label: &str| {
            t.row_by_label(label)
                .map(|r| (r[1].to_string(), r[2].to_string()))
                .unwrap()
        };
        assert_eq!(row("CPU"), ("8 cores".into(), "32 cores".into()));
        assert_eq!(row("Core clock"), ("2.4 GHz".into(), "3.0 GHz".into()));
        assert_eq!(row("L3 cache"), ("8MB".into(), "32MB".into()));
        assert_eq!(row("TDP"), ("35 W".into(), "125 W".into()));
        assert_eq!(row("Nominal voltage"), ("980 mV".into(), "870 mV".into()));
        assert_eq!(
            row("L2 cache"),
            ("256KB per PMD".into(), "256KB per PMD".into())
        );
    }

    #[test]
    fn table2_matches_the_paper_verbatim() {
        let t = table2();
        let cases = [
            ("[25mV,35mV)", 780.0, 770.0),
            ("[35mV,45mV)", 800.0, 780.0),
            ("[45mV,55mV)", 810.0, 790.0),
            ("[55mV,65mV)", 830.0, 820.0),
        ];
        for (label, at3, at15) in cases {
            assert_eq!(t.value(label, "Vmin @3GHz (mV)"), Some(at3), "{label}");
            assert_eq!(t.value(label, "Vmin @1.5GHz (mV)"), Some(at15), "{label}");
        }
    }

    #[test]
    fn deployed_policy_is_at_or_above_table2() {
        let raw = table2();
        let deployed = table2_policy();
        for (label, _, _) in [
            ("[25mV,35mV)", 0, 0),
            ("[35mV,45mV)", 0, 0),
            ("[45mV,55mV)", 0, 0),
            ("[55mV,65mV)", 0, 0),
        ] {
            let raw_v = raw.value(label, "Vmin @3GHz (mV)").unwrap();
            let dep_v = deployed.value(label, "policy Vmin @3GHz (mV)").unwrap();
            assert!(dep_v >= raw_v, "{label}: {dep_v} < {raw_v}");
            assert!(dep_v <= raw_v + 25.0, "{label}: margin too large");
        }
    }
}
