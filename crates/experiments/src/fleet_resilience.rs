//! Fleet fault tolerance under load: the `exp fleet-resilience` artifact.
//!
//! Beyond the paper: the same mixed X-Gene 2/3 cluster as `exp fleet`,
//! but with nodes that fail. Four self-validating pieces:
//!
//! 1. **Rate-0 anchor** — a run with an *armed* all-zero
//!    [`NodeFaultPlan`] must be bit-identical (fingerprint and merged
//!    journal) to a run with no plan at all: arming the resilience
//!    machinery costs nothing when nothing fails.
//! 2. **Degradation curve** — sweeping the node-failure rate, how much
//!    of the daemon cluster's energy savings (vs a default-governor
//!    baseline cluster) survives as crashes/stalls/degrades pile up,
//!    with job conservation and exactly-once delivery asserted at every
//!    point.
//! 3. **Crash drill** — a scripted crash of one node in four: at least
//!    90% of submitted jobs must still complete via health-gated
//!    re-dispatch, with zero lost and zero duplicated jobs.
//! 4. **Determinism under failure** — the crash drill at 1 and 8
//!    workers must produce byte-identical summaries and journals.

use crate::fleet::{cluster_trace, node_configs};
use crate::report::{Cell, Table};
use crate::Scale;
use avfs_core::configs::EvalConfig;
use avfs_fleet::{
    EnergyAware, Fleet, FleetConfig, FleetSummary, NodeFaultKind, NodeFaultPlan, NodeId,
    RoundRobin, ScriptedFault,
};

/// Node-fault rates swept by the full artifact (per category, per node,
/// per epoch; the quick window is ~600 epochs, so 0.002 already crashes
/// most of the cluster).
pub const FULL_RATES: [f64; 4] = [0.0, 0.0005, 0.001, 0.002];

/// The trimmed sweep `--smoke` runs: the rate-0 anchor plus one failing
/// point.
pub const SMOKE_RATES: [f64; 2] = [0.0, 0.001];

/// Which epoch the scripted crash drill kills its node.
const DRILL_CRASH_EPOCH: u64 = 6;

/// Everything the artifact measured.
#[derive(Debug, Clone)]
pub struct FleetResilienceResults {
    /// Default-governor cluster (Baseline nodes, round-robin, no
    /// faults): the savings reference.
    pub governor: FleetSummary,
    /// Optimal cluster, energy-aware routing, *no* fault plan — the
    /// pre-resilience code path.
    pub unarmed: FleetSummary,
    /// Same run with an armed all-zero plan; must match `unarmed`
    /// byte for byte.
    pub armed_zero: FleetSummary,
    /// Whether the unarmed and armed-zero journals matched exactly.
    pub zero_journals_match: bool,
    /// The degradation sweep: (rate, summary) per point, rate 0 first.
    pub sweep: Vec<(f64, FleetSummary)>,
    /// The scripted 1-of-4 crash drill (8-worker instance).
    pub drill: FleetSummary,
    /// Fingerprints of the crash drill at 1 and 8 workers.
    pub determinism: (String, String),
    /// Whether the 1- and 8-worker drill journals matched exactly.
    pub drill_journals_match: bool,
}

fn config(
    seed: u64,
    eval: EvalConfig,
    workers: usize,
    telemetry: bool,
    plan: Option<NodeFaultPlan>,
) -> FleetConfig {
    let mut cfg = FleetConfig::new(node_configs(seed, eval));
    cfg.workers = workers;
    cfg.telemetry = telemetry;
    cfg.audit = true;
    cfg.fault_plan = plan;
    cfg
}

/// The scripted drill plan: one X-Gene 3 node (the energy-aware
/// router's busiest target) dies mid-run.
fn drill_plan() -> NodeFaultPlan {
    NodeFaultPlan::scripted(vec![ScriptedFault {
        epoch: DRILL_CRASH_EPOCH,
        node: NodeId(3),
        kind: NodeFaultKind::Crash,
    }])
}

/// Runs the whole artifact.
pub fn evaluate(scale: Scale, seed: u64, rates: &[f64]) -> FleetResilienceResults {
    let trace = cluster_trace(scale, seed);
    let run = |eval: EvalConfig, workers: usize, telemetry: bool, plan: Option<NodeFaultPlan>| {
        Fleet::builder()
            .config(config(seed, eval, workers, telemetry, plan))
            .build()
            .run(&trace, &mut EnergyAware::new())
    };

    let governor = Fleet::builder()
        .config(config(seed, EvalConfig::Baseline, 4, false, None))
        .build()
        .run(&trace, &mut RoundRobin::new());
    let unarmed = run(EvalConfig::Optimal, 8, true, None);
    let armed_zero = run(
        EvalConfig::Optimal,
        8,
        true,
        Some(NodeFaultPlan::uniform(seed, 0.0)),
    );
    let zero_journals_match = unarmed.journal == armed_zero.journal;

    let mut sweep = Vec::with_capacity(rates.len());
    for &rate in rates {
        let s = if rate > 0.0 {
            run(
                EvalConfig::Optimal,
                8,
                false,
                Some(NodeFaultPlan::uniform(seed, rate)),
            )
        } else {
            armed_zero.clone()
        };
        sweep.push((rate, s));
    }

    let drill1 = run(EvalConfig::Optimal, 1, true, Some(drill_plan()));
    let drill8 = run(EvalConfig::Optimal, 8, true, Some(drill_plan()));
    let determinism = (drill1.fingerprint(), drill8.fingerprint());
    let drill_journals_match = drill1.journal == drill8.journal;

    FleetResilienceResults {
        governor,
        unarmed,
        armed_zero,
        zero_journals_match,
        sweep,
        drill: drill8,
        determinism,
        drill_journals_match,
    }
}

impl FleetResilienceResults {
    /// Acceptance checks; returns the first violated expectation.
    pub fn validate(&self) -> Result<(), String> {
        if self.unarmed.fingerprint() != self.armed_zero.fingerprint() {
            return Err(format!(
                "armed all-zero fault plan changed the run:\n--- unarmed\n{}\n--- armed\n{}",
                self.unarmed.fingerprint(),
                self.armed_zero.fingerprint()
            ));
        }
        if !self.zero_journals_match {
            return Err("armed all-zero fault plan changed the telemetry journal".into());
        }
        for (rate, s) in
            std::iter::once((0.0, &self.drill)).chain(self.sweep.iter().map(|(r, s)| (*r, s)))
        {
            if !s.conserves_jobs() {
                return Err(format!(
                    "rate {rate}: job conservation broke \
                     (admission={:?} completed={} redispatch={:?} lost={} dups={})",
                    s.admission, s.completed, s.redispatch, s.lost_jobs, s.duplicate_completions
                ));
            }
            let failed = s.failed_audits();
            if !failed.is_empty() {
                return Err(format!(
                    "rate {rate}: per-epoch conservation broke at {} boundaries, first: {:?}",
                    failed.len(),
                    failed[0]
                ));
            }
        }
        let d = &self.drill;
        if d.faults.crashes != 1 {
            return Err(format!(
                "crash drill applied {} crashes, expected exactly 1",
                d.faults.crashes
            ));
        }
        if d.redispatch.drained == 0 || d.redispatch.reassigned == 0 {
            return Err(format!(
                "crash drill stranded no work — the drill is vacuous: {:?}",
                d.redispatch
            ));
        }
        let completed = d.completed as f64;
        let submitted = d.admission.submitted as f64;
        if completed < 0.9 * submitted {
            return Err(format!(
                "crash drill completed only {completed}/{submitted} jobs (< 90%)"
            ));
        }
        if self.determinism.0 != self.determinism.1 {
            return Err(format!(
                "crash drill diverged across worker counts:\n--- workers=1\n{}\n--- workers=8\n{}",
                self.determinism.0, self.determinism.1
            ));
        }
        if !self.drill_journals_match {
            return Err("crash drill journals differ across worker counts".into());
        }
        Ok(())
    }
}

/// The savings-vs-node-failure-rate degradation curve.
pub fn degradation_curve(results: &FleetResilienceResults) -> Table {
    let mut t = Table::new(
        "fleet-resilience-curve",
        "Cluster energy savings vs node-failure rate (energy-aware routing, Optimal daemon per node; savings vs default-governor cluster)",
        &[
            "fault rate (/node/epoch)",
            "crashes",
            "stalls",
            "degrades",
            "submitted",
            "completed",
            "shed",
            "reassigned",
            "exhausted",
            "energy (J)",
            "savings (%)",
            "lost",
            "dup",
        ],
    );
    for (rate, s) in &results.sweep {
        t.push_row(vec![
            Cell::f(*rate, 4),
            Cell::from(s.faults.crashes),
            Cell::from(s.faults.stalls),
            Cell::from(s.faults.degrades),
            Cell::from(s.admission.submitted),
            Cell::from(s.completed),
            Cell::from(s.admission.shed()),
            Cell::from(s.redispatch.reassigned),
            Cell::from(s.redispatch.exhausted),
            Cell::f(s.cluster_energy_j, 1),
            Cell::f(s.energy_savings_vs(&results.governor), 2),
            Cell::from(s.lost_jobs),
            Cell::from(s.duplicate_completions),
        ]);
    }
    t
}

/// The crash drill, node by node: who died, who was fenced, where the
/// stranded work went.
pub fn drill_table(results: &FleetResilienceResults) -> Table {
    let mut t = Table::new(
        "fleet-resilience-drill",
        "Scripted 1-of-4 node crash: health states and exactly-once re-dispatch",
        &[
            "node",
            "kind",
            "health",
            "dead",
            "fenced epochs",
            "admitted",
            "completed",
            "drained",
        ],
    );
    for n in &results.drill.nodes {
        t.push_row(vec![
            Cell::from(n.id.to_string()),
            Cell::from(n.kind.to_string()),
            Cell::from(n.health.as_str()),
            Cell::from(u64::from(n.dead)),
            Cell::from(n.fenced_epochs),
            Cell::from(n.admitted),
            Cell::from(n.completed),
            Cell::from(n.drained_jobs),
        ]);
    }
    let d = &results.drill;
    t.push_row(vec![
        Cell::from("cluster"),
        Cell::from(format!(
            "gate rejections={} max generation={}",
            d.routed_to_fenced, d.redispatch.max_generation
        )),
        Cell::from(""),
        Cell::from(d.faults.crashes),
        Cell::from(""),
        Cell::from(d.admission.admitted),
        Cell::from(d.completed),
        Cell::from(d.redispatch.drained),
    ]);
    t
}

/// The two bit-identity gates as a table: unarmed vs armed-zero, and
/// the crash drill across worker counts.
pub fn identity_table(results: &FleetResilienceResults) -> Table {
    let mut t = Table::new(
        "fleet-resilience-identity",
        "Bit-identity gates (equal digests = byte-identical runs)",
        &["comparison", "left digest", "right digest", "journals"],
    );
    let digest = |s: &str| format!("{:016x}", fnv1a(s.as_bytes()));
    t.push_row(vec![
        Cell::from("no plan vs armed zero-rate plan"),
        Cell::from(digest(&results.unarmed.fingerprint())),
        Cell::from(digest(&results.armed_zero.fingerprint())),
        Cell::from(if results.zero_journals_match {
            "byte-identical"
        } else {
            "DIVERGED"
        }),
    ]);
    t.push_row(vec![
        Cell::from("crash drill workers 1 vs 8"),
        Cell::from(digest(&results.determinism.0)),
        Cell::from(digest(&results.determinism.1)),
        Cell::from(if results.drill_journals_match {
            "byte-identical"
        } else {
            "DIVERGED"
        }),
    ]);
    t
}

/// FNV-1a, for compact digests in the identity table.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fleet_resilience_validates() {
        let results = evaluate(Scale::Quick, 2024, &SMOKE_RATES);
        results
            .validate()
            .unwrap_or_else(|e| panic!("fleet-resilience acceptance failed: {e}"));
        // The curve is the headline: at rate 0 the cluster must still
        // beat the governor baseline on energy.
        assert!(
            results.sweep[0].1.energy_savings_vs(&results.governor) > 0.0,
            "no savings at rate 0"
        );
    }
}
