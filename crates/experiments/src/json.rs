//! Minimal JSON reader used by [`crate::report::Table::from_json`].
//!
//! The experiment tables are the only serialized artifact in the
//! workspace, and their JSON shape is fixed, so a full serde stack is
//! unnecessary (and the build environment has no crates registry to
//! fetch one from). This module parses arbitrary well-formed JSON into
//! a small value tree; numbers keep their raw text so `i64` cells
//! round-trip exactly.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text for lossless conversion.
    Num(String),
    /// A string (escapes already decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Exact integer value, if this is an integral number in `i64` range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Floating-point value; `null` reads as NaN (the writer emits
    /// `null` for non-finite floats, which JSON cannot represent).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset in the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset where it went wrong.
    pub offset: usize,
}

impl JsonError {
    fn new(msg: impl Into<String>, offset: usize) -> JsonError {
        JsonError {
            msg: msg.into(),
            offset,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a [`JsonError`] describing the first malformed construct.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        s: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.s.len() {
        return Err(JsonError::new("trailing characters after value", p.pos));
    }
    Ok(value)
}

/// Appends `s` to `out` as a quoted JSON string with escapes.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.s.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(
                format!("expected '{}'", char::from(b)),
                self.pos,
            ))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), JsonError> {
        if self.s[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(JsonError::new(format!("expected '{kw}'"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_keyword("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Json::Bool(false)),
            Some(b'n') => self.eat_keyword("null").map(|()| Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(JsonError::new("unexpected character", self.pos)),
            None => Err(JsonError::new("unexpected end of input", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(JsonError::new("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::new("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::new("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::new("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(JsonError::new("invalid escape", self.pos - 1)),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(JsonError::new("control character in string", self.pos));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.s.len() && (self.s[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.s[start..self.pos])
                        .map_err(|_| JsonError::new("invalid UTF-8", start))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        if end > self.s.len() {
            return Err(JsonError::new("truncated \\u escape", self.pos));
        }
        let hex = std::str::from_utf8(&self.s[self.pos..end])
            .map_err(|_| JsonError::new("invalid \\u escape", self.pos))?;
        let v = u16::from_str_radix(hex, 16)
            .map_err(|_| JsonError::new("invalid \\u escape", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let at = self.pos;
        let first = self.hex4()?;
        if (0xd800..0xdc00).contains(&first) {
            // High surrogate: must be followed by \uDC00–\uDFFF.
            self.eat(b'\\')?;
            self.eat(b'u')?;
            let second = self.hex4()?;
            if !(0xdc00..0xe000).contains(&second) {
                return Err(JsonError::new("unpaired surrogate", at));
            }
            let code = 0x10000 + ((u32::from(first) - 0xd800) << 10) + (u32::from(second) - 0xdc00);
            char::from_u32(code).ok_or_else(|| JsonError::new("invalid surrogate pair", at))
        } else {
            char::from_u32(u32::from(first)).ok_or_else(|| JsonError::new("unpaired surrogate", at))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            saw_digit = true;
            self.pos += 1;
        }
        if !saw_digit {
            return Err(JsonError::new("expected digit", self.pos));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::new("expected exponent digit", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let raw = std::str::from_utf8(&self.s[start..self.pos])
            .map_err(|_| JsonError::new("invalid number", start))?;
        Ok(Json::Num(raw.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": [1, -2.5, "x", true, null], "b": {"c": 1e3}}"#).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_i64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_str(), Some("x"));
        assert_eq!(a[3], Json::Bool(true));
        assert_eq!(a[4], Json::Null);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_f64(), Some(1000.0));
    }

    #[test]
    fn escapes_roundtrip() {
        let mut quoted = String::new();
        escape_into(&mut quoted, "line\n\"q\" \\ tab\t\u{1}");
        let back = parse(&quoted).unwrap();
        assert_eq!(back.as_str(), Some("line\n\"q\" \\ tab\t\u{1}"));
    }

    #[test]
    fn unicode_escapes_decode() {
        // \u escapes (BMP and a surrogate pair), then raw multibyte UTF-8.
        assert_eq!(parse("\"\\u00e9\"").unwrap().as_str(), Some("é"));
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap().as_str(), Some("😀"));
        assert_eq!(parse(r#""é😀""#).unwrap().as_str(), Some("é😀"));
        assert!(parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn large_integers_are_exact() {
        let v = parse("9223372036854775807").unwrap();
        assert_eq!(v.as_i64(), Some(i64::MAX));
        let v = parse("-9223372036854775808").unwrap();
        assert_eq!(v.as_i64(), Some(i64::MIN));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "01x", "\"abc", "1 2", "{'a':1}"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
