//! Equivalence proof: the calendar-queue [`EventQueue`] pops the exact
//! sequence a binary heap ordered by `(time, seq)` would, including FIFO
//! among heavy timestamp ties and across every level boundary (near-level
//! late inserts, bucket edges, and the overflow horizon).

use std::collections::BinaryHeap;

use avfs_sim::events::{Event, EventQueue};
use avfs_sim::time::SimTime;
use proptest::prelude::*;

/// Adversarial timestamp palette: massed ties, bucket-width edges
/// (1 ms buckets), the wheel horizon (64 ms), and deep overflow — so
/// generated schedules constantly straddle level boundaries.
const PALETTE: [u64; 16] = [
    0,
    1,
    7,
    7, // doubled: even the palette draw itself ties
    999_999,
    1_000_000,
    1_000_001,
    5_000_000,
    63_999_999,
    64_000_000,
    64_000_001,
    100_000_000,
    999_999_999,
    1_000_000_000,
    1_000_000_000,
    3_600_000_000_000,
];

proptest! {
    /// Any interleaving of schedule / pop / pop_due / peek produces
    /// bit-identical results from the calendar queue and a reference
    /// max-heap over reverse-`(time, seq)`-ordered events.
    #[test]
    fn calendar_queue_matches_binary_heap(
        ops in collection::vec((0u8..8, 0usize..16), 1..400),
    ) {
        let mut q = EventQueue::new();
        let mut heap: BinaryHeap<Event<u64>> = BinaryHeap::new();
        let mut next_seq = 0u64;
        let mut payload = 0u64;
        let mut now_ns = 0u64;
        for &(op, sel) in &ops {
            match op {
                // Weighted toward scheduling so queues actually fill.
                0..=4 => {
                    let time = SimTime::from_nanos(PALETTE[sel % PALETTE.len()]);
                    let seq = q.schedule(time, payload);
                    prop_assert_eq!(seq, next_seq);
                    heap.push(Event { time, seq, payload });
                    next_seq += 1;
                    payload += 1;
                }
                5 => prop_assert_eq!(q.pop(), heap.pop()),
                6 => {
                    now_ns = now_ns.saturating_add(PALETTE[sel % PALETTE.len()] / 8);
                    let now = SimTime::from_nanos(now_ns);
                    let expected = match heap.peek() {
                        Some(e) if e.time <= now => heap.pop(),
                        _ => None,
                    };
                    prop_assert_eq!(q.pop_due(now), expected);
                }
                _ => prop_assert_eq!(q.peek_time(), heap.peek().map(|e| e.time)),
            }
            prop_assert_eq!(q.len(), heap.len());
            prop_assert_eq!(q.is_empty(), heap.is_empty());
        }
        // Drain both to the end: every remaining event identical.
        while let Some(expected) = heap.pop() {
            prop_assert_eq!(q.pop(), Some(expected));
        }
        prop_assert_eq!(q.pop(), None);
    }
}

/// A directed worst case on top of the property: thousands of events on
/// one instant interleaved with events pinning every other level.
#[test]
fn massed_ties_across_levels_stay_fifo() {
    let mut q = EventQueue::new();
    let mut heap: BinaryHeap<Event<u32>> = BinaryHeap::new();
    let tie = SimTime::from_millis(32);
    for i in 0..4_000u32 {
        let time = match i % 5 {
            0..=2 => tie,
            3 => SimTime::from_millis(u64::from(i) % 70),
            _ => SimTime::from_secs(1 + u64::from(i) % 3),
        };
        let seq = q.schedule(time, i);
        heap.push(Event {
            time,
            seq,
            payload: i,
        });
    }
    while let Some(expected) = heap.pop() {
        assert_eq!(q.pop(), Some(expected));
    }
    assert!(q.is_empty());
}
