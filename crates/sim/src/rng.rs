//! Deterministic random-number streams.
//!
//! Every stochastic model in the workspace (droop events, failure outcomes,
//! workload arrivals, static process variation) draws from an
//! [`RngStream`]. Streams are derived from a root seed plus a label, so
//! independent models never share state and adding a new consumer cannot
//! perturb existing ones — the classic "random stream per model" discipline
//! from simulation practice.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A named, deterministic random stream.
///
/// ```
/// use avfs_sim::RngStream;
///
/// let mut a = RngStream::from_root(7, "workload-gen");
/// let mut b = RngStream::from_root(7, "workload-gen");
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // A different label yields an independent stream.
/// let mut c = RngStream::from_root(7, "droop-model");
/// let _ = c.next_u64(); // deterministic, but unrelated to `a`
/// ```
#[derive(Debug, Clone)]
pub struct RngStream {
    rng: SmallRng,
}

/// Stable 64-bit FNV-1a hash, used to fold stream labels into seeds.
///
/// We hand-roll this instead of using `std::hash` because `DefaultHasher`
/// is not guaranteed stable across Rust releases, and seeds must be.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// SplitMix64 step; used to decorrelate seed material.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RngStream {
    /// Derives a stream from a root seed and a label.
    pub fn from_root(root_seed: u64, label: &str) -> Self {
        let mixed = splitmix64(root_seed ^ fnv1a_64(label.as_bytes()));
        RngStream {
            rng: SmallRng::seed_from_u64(mixed),
        }
    }

    /// Derives a sub-stream, e.g. one per run index or per core.
    pub fn substream(&self, index: u64) -> Self {
        // Independent of this stream's current position: derive from a
        // snapshot of nothing but the index (streams are forked eagerly).
        let mut probe = self.clone();
        let base = probe.next_u64();
        RngStream {
            rng: SmallRng::seed_from_u64(splitmix64(base ^ splitmix64(index))),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform range is empty: [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_u64 range is empty: [{lo}, {hi}]");
        self.rng.gen_range(lo..=hi)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive: {mean}");
        // Inverse CDF; 1-u avoids ln(0).
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Standard normal draw (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "negative std dev: {std_dev}");
        mean + std_dev * self.standard_normal()
    }

    /// Poisson draw with the given mean (Knuth's method; fine for small
    /// means, which is all the droop model needs).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is negative or not finite.
    pub fn poisson(&mut self, mean: f64) -> u64 {
        assert!(
            mean.is_finite() && mean >= 0.0,
            "invalid poisson mean: {mean}"
        );
        if mean == 0.0 {
            return 0;
        }
        if mean > 64.0 {
            // Normal approximation for large means keeps this O(1).
            return self.normal(mean, mean.sqrt()).round().max(0.0) as u64;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.next_f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Picks an index in `[0, len)` uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn pick_index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick from an empty range");
        self.rng.gen_range(0..len)
    }

    /// Picks a uniformly random element of a slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.pick_index(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = RngStream::from_root(1, "x");
        let mut b = RngStream::from_root(1, "x");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn labels_decorrelate() {
        let mut a = RngStream::from_root(1, "x");
        let mut b = RngStream::from_root(1, "y");
        // Not a proof of independence, but identical prefixes would indicate
        // the label is ignored.
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn substreams_are_deterministic() {
        let root = RngStream::from_root(9, "model");
        let mut s1 = root.substream(3);
        let mut s2 = root.substream(3);
        assert_eq!(s1.next_u64(), s2.next_u64());
        let mut s3 = root.substream(4);
        assert_ne!(s1.next_u64(), s3.next_u64());
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut r = RngStream::from_root(2, "u");
        for _ in 0..1000 {
            let v = r.uniform(5.0, 6.0);
            assert!((5.0..6.0).contains(&v));
        }
    }

    #[test]
    fn chance_edges() {
        let mut r = RngStream::from_root(3, "c");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = RngStream::from_root(4, "e");
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean was {mean}");
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut r = RngStream::from_root(5, "p");
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.poisson(3.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean was {mean}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_path() {
        let mut r = RngStream::from_root(6, "p2");
        let n = 5_000;
        let sum: u64 = (0..n).map(|_| r.poisson(100.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean was {mean}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = RngStream::from_root(7, "n");
        let n = 20_000;
        let vals: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = vals.iter().sum::<f64>() / n as f64;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.3, "var was {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = RngStream::from_root(8, "s");
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pick_covers_all_indices() {
        let mut r = RngStream::from_root(10, "pick");
        let items = [0usize, 1, 2, 3];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*r.pick(&items)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fnv_is_stable() {
        // Golden values: must never change, or every seed shifts.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn pick_from_empty_panics() {
        let mut r = RngStream::from_root(11, "bad");
        let empty: [u8; 0] = [];
        let _ = r.pick(&empty);
    }
}
