//! Time-series recording for experiment traces.
//!
//! [`TimeSeries`] stores `(time, value)` samples and supports resampling to
//! a fixed cadence, which is how the 1-second power/load traces of
//! Figures 14 and 15 are produced.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// An append-only series of `(time, value)` samples with non-decreasing
/// times.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    times: Vec<SimTime>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the last recorded sample.
    pub fn push(&mut self, time: SimTime, value: f64) {
        if let Some(&last) = self.times.last() {
            assert!(time >= last, "series time went backwards: {time} < {last}");
        }
        self.times.push(time);
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Iterates over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// The value in effect at `t`, treating the series as piecewise
    /// constant (last sample at or before `t`). `None` before the first
    /// sample.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.times.partition_point(|&x| x <= t) {
            0 => None,
            n => Some(self.values[n - 1]),
        }
    }

    /// Resamples the series to a fixed `step` cadence over `[start, end]`,
    /// holding the last value (zero-order hold). Times before the first
    /// sample yield `fill`.
    pub fn resample(&self, start: SimTime, end: SimTime, step: SimDuration, fill: f64) -> Vec<f64> {
        assert!(!step.is_zero(), "resample step must be positive");
        let mut out = Vec::new();
        let mut t = start;
        while t <= end {
            out.push(self.value_at(t).unwrap_or(fill));
            t += step;
        }
        out
    }

    /// Simple mean of the recorded values (not time-weighted).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Largest recorded value, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.max(v),
            })
        })
    }

    /// The last sample, or `None` when empty.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        match (self.times.last(), self.values.last()) {
            (Some(&t), Some(&v)) => Some((t, v)),
            _ => None,
        }
    }

    /// Raw access to the value column.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Raw access to the time column.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }
}

impl Extend<(SimTime, f64)> for TimeSeries {
    fn extend<I: IntoIterator<Item = (SimTime, f64)>>(&mut self, iter: I) {
        for (t, v) in iter {
            self.push(t, v);
        }
    }
}

impl FromIterator<(SimTime, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (SimTime, f64)>>(iter: I) -> Self {
        let mut s = TimeSeries::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn push_and_iterate() {
        let s: TimeSeries = [(secs(0), 1.0), (secs(1), 2.0)].into_iter().collect();
        assert_eq!(s.len(), 2);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![(secs(0), 1.0), (secs(1), 2.0)]);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn rejects_backwards_time() {
        let mut s = TimeSeries::new();
        s.push(secs(2), 1.0);
        s.push(secs(1), 2.0);
    }

    #[test]
    fn value_at_is_zero_order_hold() {
        let s: TimeSeries = [(secs(1), 10.0), (secs(3), 30.0)].into_iter().collect();
        assert_eq!(s.value_at(secs(0)), None);
        assert_eq!(s.value_at(secs(1)), Some(10.0));
        assert_eq!(s.value_at(secs(2)), Some(10.0));
        assert_eq!(s.value_at(secs(3)), Some(30.0));
        assert_eq!(s.value_at(secs(9)), Some(30.0));
    }

    #[test]
    fn resample_fills_before_first_sample() {
        let s: TimeSeries = [(secs(2), 5.0)].into_iter().collect();
        let r = s.resample(secs(0), secs(4), SimDuration::from_secs(1), 0.0);
        assert_eq!(r, vec![0.0, 0.0, 5.0, 5.0, 5.0]);
    }

    #[test]
    fn mean_max_last() {
        let s: TimeSeries = [(secs(0), 1.0), (secs(1), 3.0)].into_iter().collect();
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.max(), Some(3.0));
        assert_eq!(s.last(), Some((secs(1), 3.0)));
        assert_eq!(TimeSeries::new().max(), None);
    }
}
