//! Streaming statistics used by the experiment harnesses.
//!
//! * [`OnlineStats`] — Welford mean/variance/min/max without storing samples.
//! * [`TimeWeighted`] — time-weighted average of a piecewise-constant signal
//!   (the power and load traces of Figures 14/15).
//! * [`Histogram`] — fixed-bin histogram (the droop-magnitude bins of
//!   Figure 6 and the pfail voltage sweeps of Figure 5).

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Welford's online mean/variance plus min/max.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0.0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

/// Time-weighted average of a piecewise-constant signal.
///
/// Feed it `(time, new_value)` change points; it integrates the previous
/// value over the elapsed span. Used for average power and average load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    integral: f64,
    started: bool,
    start_time: SimTime,
}

impl TimeWeighted {
    /// Creates an accumulator starting at `t0` with initial value `v0`.
    pub fn new(t0: SimTime, v0: f64) -> Self {
        TimeWeighted {
            last_time: t0,
            last_value: v0,
            integral: 0.0,
            started: true,
            start_time: t0,
        }
    }

    /// Records that the signal changed to `value` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the previous change point.
    pub fn set(&mut self, time: SimTime, value: f64) {
        assert!(
            time >= self.last_time,
            "time went backwards: {time} < {}",
            self.last_time
        );
        let dt = (time - self.last_time).as_secs_f64();
        self.integral += self.last_value * dt;
        self.last_time = time;
        self.last_value = value;
    }

    /// Integral of the signal from the start through `time` (value·seconds).
    pub fn integral_through(&self, time: SimTime) -> f64 {
        let dt = time.saturating_since(self.last_time).as_secs_f64();
        self.integral + self.last_value * dt
    }

    /// Time-weighted mean from the start through `time`.
    pub fn mean_through(&self, time: SimTime) -> f64 {
        let span = time.saturating_since(self.start_time).as_secs_f64();
        if span <= 0.0 {
            self.last_value
        } else {
            self.integral_through(time) / span
        }
    }

    /// The current value of the signal.
    pub fn current(&self) -> f64 {
        self.last_value
    }
}

/// A fixed-width-bin histogram over `[lo, hi)` with overflow/underflow bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `nbins` equal bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `nbins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "invalid histogram range [{lo}, {hi})");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            // Floating point can land exactly on bins.len() for x just below hi.
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// `[lo, hi)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Number of bins (excluding under/overflow).
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples, including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

/// A simple fixed-window moving average over scalar samples.
///
/// Used to render the 1-minute moving average of Figure 15.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MovingAverage {
    window: usize,
    buf: Vec<f64>,
    next: usize,
    filled: bool,
}

impl MovingAverage {
    /// Creates a moving average over the last `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        MovingAverage {
            window,
            buf: Vec::with_capacity(window),
            next: 0,
            filled: false,
        }
    }

    /// Pushes a sample and returns the current average.
    pub fn push(&mut self, x: f64) -> f64 {
        if self.buf.len() < self.window {
            self.buf.push(x);
            if self.buf.len() == self.window {
                self.filled = true;
            }
        } else {
            self.buf[self.next] = x;
            self.next = (self.next + 1) % self.window;
        }
        self.value()
    }

    /// The current average over the samples seen (up to the window size).
    pub fn value(&self) -> f64 {
        if self.buf.is_empty() {
            0.0
        } else {
            self.buf.iter().sum::<f64>() / self.buf.len() as f64
        }
    }

    /// Whether a full window of samples has been seen.
    pub fn is_warm(&self) -> bool {
        self.filled
    }
}

/// Helper: duration-weighted mean of `(duration, value)` pairs.
pub fn weighted_mean(pairs: &[(SimDuration, f64)]) -> f64 {
    let total: f64 = pairs.iter().map(|(d, _)| d.as_secs_f64()).sum();
    if total <= 0.0 {
        return 0.0;
    }
    pairs.iter().map(|(d, v)| d.as_secs_f64() * v).sum::<f64>() / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let s: OnlineStats = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let mut a: OnlineStats = (0..100).map(|i| i as f64).collect();
        let b: OnlineStats = (100..250).map(|i| (i as f64).sqrt()).collect();
        let all: OnlineStats = (0..100)
            .map(|i| i as f64)
            .chain((100..250).map(|i| (i as f64).sqrt()))
            .collect();
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 10.0);
        tw.set(SimTime::from_secs(10), 20.0); // 10s at 10.0
        tw.set(SimTime::from_secs(20), 0.0); // 10s at 20.0
                                             // Through t=30: 10s at 10 + 10s at 20 + 10s at 0 = 300 over 30s.
        assert!((tw.mean_through(SimTime::from_secs(30)) - 10.0).abs() < 1e-12);
        assert!((tw.integral_through(SimTime::from_secs(30)) - 300.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn time_weighted_rejects_backwards_time() {
        let mut tw = TimeWeighted::new(SimTime::from_secs(5), 1.0);
        tw.set(SimTime::from_secs(4), 2.0);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 9.99, 10.0, -0.1] {
            h.push(x);
        }
        assert_eq!(h.bin_count(0), 2); // 0.0, 1.9
        assert_eq!(h.bin_count(1), 1); // 2.0
        assert_eq!(h.bin_count(4), 1); // 9.99
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 6);
        assert_eq!(h.bin_edges(1), (2.0, 4.0));
    }

    #[test]
    fn moving_average_window() {
        let mut ma = MovingAverage::new(3);
        assert_eq!(ma.push(3.0), 3.0);
        assert_eq!(ma.push(6.0), 4.5);
        assert!(!ma.is_warm());
        assert_eq!(ma.push(9.0), 6.0);
        assert!(ma.is_warm());
        // Window slides: oldest (3.0) replaced by 12.0 -> (6+9+12)/3 = 9.
        assert_eq!(ma.push(12.0), 9.0);
    }

    #[test]
    fn weighted_mean_of_pairs() {
        let pairs = [
            (SimDuration::from_secs(1), 10.0),
            (SimDuration::from_secs(3), 2.0),
        ];
        assert!((weighted_mean(&pairs) - 4.0).abs() < 1e-12);
        assert_eq!(weighted_mean(&[]), 0.0);
    }
}
