//! A deterministic pending-event set.
//!
//! [`EventQueue`] orders events by `(time, sequence number)` so that two
//! events scheduled for the same instant pop in insertion order. This keeps
//! simulations reproducible regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: a payload tagged with its due time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event<T> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonic insertion index; breaks ties at equal times.
    pub seq: u64,
    /// The user payload.
    pub payload: T,
}

// BinaryHeap is a max-heap; reverse the ordering to pop the earliest event.
impl<T: Eq> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T: Eq> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered queue of simulation events.
///
/// ```
/// use avfs_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "b");
/// q.schedule(SimTime::from_secs(1), "a");
/// q.schedule(SimTime::from_secs(2), "c");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
/// assert_eq!(order, ["a", "b", "c"]); // FIFO among same-time events
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T: Eq> {
    heap: BinaryHeap<Event<T>>,
    next_seq: u64,
}

impl<T: Eq> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time`. Returns the event's sequence
    /// number, which can be used to correlate with popped events.
    pub fn schedule(&mut self, time: SimTime, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, payload });
        seq
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<T>> {
        self.heap.pop()
    }

    /// The due time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest event only if it is due at or before
    /// `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<Event<T>> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<T: Eq> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Eq> Extend<(SimTime, T)> for EventQueue<T> {
    fn extend<I: IntoIterator<Item = (SimTime, T)>>(&mut self, iter: I) {
        for (time, payload) in iter {
            self.schedule(time, payload);
        }
    }
}

impl<T: Eq> FromIterator<(SimTime, T)> for EventQueue<T> {
    fn from_iter<I: IntoIterator<Item = (SimTime, T)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3u32);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(7);
        for i in 0..100u32 {
            q.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "late");
        q.schedule(SimTime::from_secs(1), "early");
        assert_eq!(
            q.pop_due(SimTime::from_secs(2)).map(|e| e.payload),
            Some("early")
        );
        assert_eq!(q.pop_due(SimTime::from_secs(2)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn collect_from_iterator() {
        let q: EventQueue<u8> = [(SimTime::from_secs(1), 1u8), (SimTime::ZERO, 0)]
            .into_iter()
            .collect();
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::ZERO));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 1u8);
        q.clear();
        assert!(q.is_empty());
    }
}
