//! A deterministic pending-event set.
//!
//! [`EventQueue`] orders events by `(time, sequence number)` so that two
//! events scheduled for the same instant pop in insertion order. This keeps
//! simulations reproducible regardless of queue internals.
//!
//! The queue is a bucketed calendar queue (a timing wheel with an overflow
//! level) rather than a binary heap: events landing inside the wheel's
//! sliding window go straight into a coarse time bucket, and a bucket is
//! sorted only once, when the wheel reaches it. In steady state — where
//! events are scheduled a short, bounded horizon ahead of the cursor, as
//! the simulator's slice/arrival/monitor events are — both `schedule` and
//! `pop` reuse long-lived buffers and allocate nothing.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::VecDeque;

/// A scheduled event: a payload tagged with its due time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event<T> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonic insertion index; breaks ties at equal times.
    pub seq: u64,
    /// The user payload.
    pub payload: T,
}

// Reversed `(time, seq)` order so the soonest event is the maximum: kept
// for callers (and the equivalence tests) that put events in a max-heap.
// The queue itself no longer relies on it.
impl<T: Eq> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T: Eq> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Number of buckets in the wheel's sliding window.
const NUM_BUCKETS: usize = 64;
/// Width of one bucket in nanoseconds (1 ms — the simulator's natural
/// event spacing is slice boundaries and monitor windows in the
/// millisecond range).
const BUCKET_WIDTH_NS: u64 = 1_000_000;

/// A time-ordered queue of simulation events.
///
/// Three levels, nearest first:
///
/// - `near`: events before the wheel origin, sorted ascending by
///   `(time, seq)` and drained from the front;
/// - `buckets`: [`NUM_BUCKETS`] unsorted buckets of width
///   [`BUCKET_WIDTH_NS`]; bucket `i` covers times in
///   `[origin + i·w, origin + (i+1)·w)`;
/// - `overflow`: unsorted events at or past the wheel end.
///
/// When `near` runs dry the wheel advances to its first non-empty bucket,
/// sorts it into `near`, rotates the drained buckets to the back (keeping
/// their capacity), and pulls newly in-window overflow events into the
/// wheel. When the whole wheel is empty it jumps directly to the earliest
/// overflow time.
///
/// ```
/// use avfs_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "b");
/// q.schedule(SimTime::from_secs(1), "a");
/// q.schedule(SimTime::from_secs(2), "c");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
/// assert_eq!(order, ["a", "b", "c"]); // FIFO among same-time events
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T: Eq> {
    near: VecDeque<Event<T>>,
    buckets: Vec<Vec<Event<T>>>,
    overflow: Vec<Event<T>>,
    /// Wheel origin: exclusive upper bound on times stored in `near`,
    /// inclusive lower bound of bucket 0.
    origin_ns: u64,
    len: usize,
    next_seq: u64,
}

impl<T: Eq> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            near: VecDeque::new(),
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            origin_ns: 0,
            len: 0,
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time`. Returns the event's sequence
    /// number, which can be used to correlate with popped events.
    pub fn schedule(&mut self, time: SimTime, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let ev = Event { time, seq, payload };
        let t = time.as_nanos();
        if t < self.origin_ns {
            // Late insert behind the wheel: merge into the sorted near
            // level. `seq` exceeds every stored seq, so the slot right
            // after the last equal-time event preserves FIFO.
            let pos = self.near.partition_point(|e| e.time.as_nanos() <= t);
            self.near.insert(pos, ev);
        } else {
            match Self::bucket_index(self.origin_ns, t) {
                Some(i) => self.buckets[i].push(ev),
                None => self.overflow.push(ev),
            }
        }
        self.len += 1;
        seq
    }

    /// Bucket index for time `t`, or `None` when `t` lies at or past the
    /// wheel end (overflow level).
    fn bucket_index(origin_ns: u64, t: u64) -> Option<usize> {
        let i = t.checked_sub(origin_ns)? / BUCKET_WIDTH_NS;
        (i < NUM_BUCKETS as u64).then_some(i as usize)
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<T>> {
        while self.near.is_empty() {
            if !self.advance() {
                return None;
            }
        }
        self.len -= 1;
        self.near.pop_front()
    }

    /// Moves the next batch of events into `near`. Returns `false` when
    /// nothing is pending beyond `near`.
    fn advance(&mut self) -> bool {
        if let Some(b) = self.buckets.iter().position(|bk| !bk.is_empty()) {
            let mut drained = std::mem::take(&mut self.buckets[b]);
            drained.sort_unstable_by_key(|e| (e.time, e.seq));
            self.near.extend(drained.drain(..));
            // Hand the capacity back, then rotate the now-empty buckets
            // 0..=b to the back of the window and slide the origin past
            // them.
            self.buckets[b] = drained;
            self.origin_ns = self
                .origin_ns
                .saturating_add((b as u64 + 1) * BUCKET_WIDTH_NS);
            self.buckets.rotate_left(b + 1);
            self.pull_overflow();
            return true;
        }
        // The wheel is empty: jump the window to the earliest overflow
        // event (if any), then let the caller loop into the bucket branch.
        let Some(min_t) = self.overflow.iter().map(|e| e.time.as_nanos()).min() else {
            return false;
        };
        self.origin_ns = min_t;
        self.pull_overflow();
        debug_assert!(!self.buckets[0].is_empty(), "jump lands in bucket 0");
        true
    }

    /// Moves overflow events that now fall inside the wheel window into
    /// their buckets. Order within overflow is irrelevant: buckets are
    /// sorted by `(time, seq)` when drained.
    fn pull_overflow(&mut self) {
        let mut i = 0;
        while i < self.overflow.len() {
            let t = self.overflow[i].time.as_nanos();
            match Self::bucket_index(self.origin_ns, t) {
                Some(b) => {
                    let ev = self.overflow.swap_remove(i);
                    self.buckets[b].push(ev);
                }
                None => i += 1,
            }
        }
    }

    /// The due time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        // Levels are disjoint time ranges: everything in `near` precedes
        // every bucket, buckets precede each other in index order, and
        // overflow lies past the wheel end.
        if let Some(e) = self.near.front() {
            return Some(e.time);
        }
        if let Some(bk) = self.buckets.iter().find(|bk| !bk.is_empty()) {
            return bk.iter().map(|e| e.time).min();
        }
        self.overflow.iter().map(|e| e.time).min()
    }

    /// Removes and returns the earliest event only if it is due at or before
    /// `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<Event<T>> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all pending events (sequence numbering continues).
    pub fn clear(&mut self) {
        self.near.clear();
        for bk in &mut self.buckets {
            bk.clear();
        }
        self.overflow.clear();
        self.origin_ns = 0;
        self.len = 0;
    }
}

impl<T: Eq> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Eq> Extend<(SimTime, T)> for EventQueue<T> {
    fn extend<I: IntoIterator<Item = (SimTime, T)>>(&mut self, iter: I) {
        for (time, payload) in iter {
            self.schedule(time, payload);
        }
    }
}

impl<T: Eq> FromIterator<(SimTime, T)> for EventQueue<T> {
    fn from_iter<I: IntoIterator<Item = (SimTime, T)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3u32);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(7);
        for i in 0..100u32 {
            q.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "late");
        q.schedule(SimTime::from_secs(1), "early");
        assert_eq!(
            q.pop_due(SimTime::from_secs(2)).map(|e| e.payload),
            Some("early")
        );
        assert_eq!(q.pop_due(SimTime::from_secs(2)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn collect_from_iterator() {
        let q: EventQueue<u8> = [(SimTime::from_secs(1), 1u8), (SimTime::ZERO, 0)]
            .into_iter()
            .collect();
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::ZERO));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 1u8);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn late_insert_behind_the_wheel_pops_next() {
        let mut q = EventQueue::new();
        // Advance the wheel well past 1 ms...
        q.schedule(SimTime::from_millis(40), "far");
        assert_eq!(q.pop().map(|e| e.payload), Some("far"));
        // ...then schedule behind the origin: it must still pop first.
        q.schedule(SimTime::from_millis(50), "next");
        q.schedule(SimTime::from_millis(1), "behind");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        assert_eq!(q.pop().map(|e| e.payload), Some("behind"));
        assert_eq!(q.pop().map(|e| e.payload), Some("next"));
    }

    #[test]
    fn overflow_interleaves_with_bucket_events() {
        let mut q = EventQueue::new();
        // Past the initial 64 ms window: overflow level.
        q.schedule(SimTime::from_millis(100), 100u32);
        q.schedule(SimTime::from_secs(3), 3000);
        // In-window events.
        q.schedule(SimTime::from_millis(5), 5);
        q.schedule(SimTime::from_millis(70), 70);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, [5, 70, 100, 3000]);
    }
}
