//! Virtual time for the discrete-event simulation.
//!
//! Time is kept in integer nanoseconds so that event ordering is exact and
//! platform-independent. [`SimTime`] is a point on the simulation clock;
//! [`SimDuration`] is a span between two points. Both are thin `u64`
//! newtypes ([C-NEWTYPE]) with saturating construction helpers.
//!
//! Cycle/time conversions used throughout the chip model live here as free
//! functions so that the chip crate and the scheduler agree on rounding.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds (saturating).
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us.saturating_mul(1_000))
    }

    /// Creates a time from milliseconds (saturating).
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000_000))
    }

    /// Creates a time from whole seconds (saturating).
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s.saturating_mul(1_000_000_000))
    }

    /// Creates a time from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time in seconds: {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since the start of the run.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since the start of the run.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds since the start of the run.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Advances by `d`, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds (saturating).
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us.saturating_mul(1_000))
    }

    /// Creates a duration from milliseconds (saturating).
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    /// Creates a duration from whole seconds (saturating).
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(1_000_000_000))
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "invalid duration in seconds: {s}"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True for the zero-length span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the duration by a non-negative factor, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid duration scale: {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// Number of clock cycles elapsed at `freq_mhz` over `d`.
///
/// Rounds down; a zero frequency yields zero cycles.
pub fn cycles_in(d: SimDuration, freq_mhz: u32) -> u64 {
    // cycles = ns * MHz / 1000, computed in u128 to avoid overflow.
    (d.as_nanos() as u128 * freq_mhz as u128 / 1_000) as u64
}

/// The duration needed to retire `cycles` cycles at `freq_mhz`.
///
/// Rounds up so that work never finishes "early" due to truncation.
///
/// # Panics
///
/// Panics if `freq_mhz` is zero.
pub fn duration_of_cycles(cycles: u64, freq_mhz: u32) -> SimDuration {
    assert!(freq_mhz > 0, "zero frequency has no finite duration");
    let ns = (cycles as u128 * 1_000).div_ceil(freq_mhz as u128);
    SimDuration::from_nanos(ns as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_millis(), 1_500);
        let d = t - SimTime::from_secs(1);
        assert_eq!(d.as_millis(), 500);
        assert_eq!((d * 4).as_millis(), 2_000);
        assert_eq!((d / 5).as_millis(), 100);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn secs_f64_roundtrip() {
        let t = SimTime::from_secs_f64(1.25);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
        let d = SimDuration::from_secs_f64(0.75);
        assert!((d.as_secs_f64() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn cycle_conversions_are_consistent() {
        // 1 ms at 2400 MHz = 2.4M cycles.
        assert_eq!(cycles_in(SimDuration::from_millis(1), 2_400), 2_400_000);
        // And converting those cycles back yields the same 1 ms.
        assert_eq!(
            duration_of_cycles(2_400_000, 2_400),
            SimDuration::from_millis(1)
        );
    }

    #[test]
    fn duration_of_cycles_rounds_up() {
        // 1 cycle at 3 GHz is 1/3 ns, which must round up to 1 ns.
        assert_eq!(duration_of_cycles(1, 3_000).as_nanos(), 1);
    }

    #[test]
    #[should_panic(expected = "zero frequency")]
    fn duration_of_cycles_rejects_zero_freq() {
        let _ = duration_of_cycles(100, 0);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(10).mul_f64(0.25);
        assert_eq!(d.as_millis(), 2_500);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", SimTime::ZERO).is_empty());
        assert!(!format!("{}", SimDuration::ZERO).is_empty());
    }
}
