//! Deterministic discrete-event simulation kernel for the AVFS reproduction.
//!
//! This crate provides the time base, event scheduling, random-number
//! streams, and streaming statistics shared by every other crate in the
//! workspace. The whole reproduction is a *simulation* of two ARMv8
//! micro-servers (see the workspace `DESIGN.md`), so determinism is a hard
//! requirement: every stochastic model draws from a [`rng::RngStream`]
//! derived from a root seed, and two runs with the same seed produce
//! bit-identical results.
//!
//! # Quick tour
//!
//! ```
//! use avfs_sim::time::SimTime;
//! use avfs_sim::events::EventQueue;
//! use avfs_sim::rng::RngStream;
//!
//! // Virtual time.
//! let t = SimTime::from_millis(500);
//! assert_eq!(t.as_micros(), 500_000);
//!
//! // An event queue carrying user-defined payloads.
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule(SimTime::from_millis(10), "later");
//! q.schedule(SimTime::from_millis(5), "sooner");
//! assert_eq!(q.pop().map(|e| e.payload), Some("sooner"));
//!
//! // Deterministic random streams.
//! let mut rng = RngStream::from_root(42, "droop-model");
//! let a = rng.next_f64();
//! let mut rng2 = RngStream::from_root(42, "droop-model");
//! assert_eq!(a, rng2.next_f64());
//! ```

pub mod events;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;

pub use events::{Event, EventQueue};
pub use rng::RngStream;
pub use series::TimeSeries;
pub use stats::{Histogram, OnlineStats, TimeWeighted};
pub use time::{SimDuration, SimTime};
