//! The replan decision cache is *transparent*: a run with the cache
//! enabled (the default) is byte-identical — journal, counters, and
//! run metrics down to float bits — to the same run with every lookup
//! forced down the full planning path.

use avfs_chip::presets;
use avfs_core::daemon::{Daemon, DaemonStats};
use avfs_sched::system::{System, SystemConfig};
use avfs_sched::RunMetrics;
use avfs_sim::time::SimDuration;
use avfs_telemetry::Telemetry;
use avfs_workloads::generator::{GeneratorConfig, WorkloadTrace};
use avfs_workloads::PerfModel;
use proptest::prelude::*;

/// Which chip preset a case runs on.
#[derive(Debug, Clone, Copy)]
enum Preset {
    XGene2,
    XGene3,
}

/// One traced Optimal run; returns the journal, the daemon counters,
/// the run metrics, and the cache's `(hits, misses)`.
fn traced_run(
    preset: Preset,
    seed: u64,
    secs: u64,
    cache: bool,
) -> (String, DaemonStats, RunMetrics, (u64, u64)) {
    let telemetry = Telemetry::hub();
    let mut cfg = GeneratorConfig::paper_default(8, seed);
    cfg.duration = SimDuration::from_secs(secs);
    cfg.job_scale = 0.2;
    let trace = WorkloadTrace::generate(&cfg);
    let (chip, perf) = match preset {
        Preset::XGene2 => (presets::xgene2().build(), PerfModel::xgene2()),
        Preset::XGene3 => (presets::xgene3().build(), PerfModel::xgene3()),
    };
    let mut daemon = Daemon::optimal(&chip);
    daemon.set_decision_cache(cache);
    daemon.set_telemetry(telemetry.clone());
    let mut system = System::builder(chip, perf)
        .config(SystemConfig::default())
        .observer(telemetry.clone())
        .build();
    let metrics = system.run(&trace, &mut daemon);
    let jsonl = telemetry.export_jsonl().expect("hub journal");
    let stats = daemon.stats();
    (jsonl, stats, metrics, daemon.decision_cache_stats())
}

/// Bit-exact metric comparison (floats via `to_bits`).
fn assert_metrics_identical(a: &RunMetrics, b: &RunMetrics) {
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
    assert_eq!(a.avg_power_w.to_bits(), b.avg_power_w.to_bits());
    assert_eq!(a.unsafe_time_s.to_bits(), b.unsafe_time_s.to_bits());
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.migrations, b.migrations);
    assert_eq!(a.voltage_changes, b.voltage_changes);
    assert_eq!(a.failures, b.failures);
}

#[test]
fn cache_is_transparent_on_both_presets() {
    for preset in [Preset::XGene2, Preset::XGene3] {
        let (j_on, s_on, m_on, (hits, misses)) = traced_run(preset, 42, 300, true);
        let (j_off, s_off, m_off, off_stats) = traced_run(preset, 42, 300, false);
        assert_eq!(j_on, j_off, "{preset:?}: journal diverged under caching");
        assert_eq!(s_on, s_off, "{preset:?}: counters diverged under caching");
        assert_metrics_identical(&m_on, &m_off);
        assert!(
            hits > 0,
            "{preset:?}: cache never hit (hits={hits} misses={misses})"
        );
        assert_eq!(off_stats, (0, 0), "disabled cache must not count");
    }
}

proptest! {
    /// Across arbitrary seeds, the cached run's observable output is
    /// byte-identical to the forced-miss run's.
    #[test]
    fn cache_never_changes_observable_output(seed in 0u64..10_000) {
        let (j_on, s_on, m_on, _) = traced_run(Preset::XGene2, seed, 90, true);
        let (j_off, s_off, m_off, _) = traced_run(Preset::XGene2, seed, 90, false);
        prop_assert_eq!(j_on, j_off);
        prop_assert_eq!(s_on, s_off);
        prop_assert_eq!(m_on.energy_j.to_bits(), m_off.energy_j.to_bits());
        prop_assert_eq!(m_on.makespan, m_off.makespan);
        prop_assert_eq!(m_on.migrations, m_off.migrations);
        prop_assert_eq!(m_on.voltage_changes, m_off.voltage_changes);
    }
}
