//! Telemetry integration properties: the trace journal is a
//! deterministic function of the seeded run, and the daemon's counter
//! snapshots are monotone across invocations.

use avfs_chip::fault::FaultPlan;
use avfs_chip::presets;
use avfs_chip::voltage::Millivolts;
use avfs_chip::FreqStep;
use avfs_core::daemon::{Daemon, DaemonStats};
use avfs_sched::driver::{Driver, FaultNotice, SysEvent, SystemView};
use avfs_sched::governor::GovernorMode;
use avfs_sched::process::{Pid, ProcessState};
use avfs_sched::system::{System, SystemConfig};
use avfs_sim::time::{SimDuration, SimTime};
use avfs_telemetry::Telemetry;
use avfs_workloads::generator::{GeneratorConfig, WorkloadTrace};
use avfs_workloads::PerfModel;
use proptest::prelude::*;

/// One traced Optimal run over a seeded workload with a seeded fault
/// plan armed; returns the JSONL journal and the final daemon stats.
fn traced_run(seed: u64, rate: f64) -> (String, DaemonStats, Telemetry) {
    let telemetry = Telemetry::hub();
    let mut cfg = GeneratorConfig::paper_default(8, seed);
    cfg.duration = SimDuration::from_secs(180);
    cfg.job_scale = 0.2;
    let trace = WorkloadTrace::generate(&cfg);
    let mut chip = presets::xgene2().build();
    chip.set_fault_plan(Some(FaultPlan::uniform(seed, rate)));
    let mut daemon = Daemon::optimal(&chip);
    daemon.set_telemetry(telemetry.clone());
    let mut system = System::builder(chip, PerfModel::xgene2())
        .config(SystemConfig::default())
        .observer(telemetry.clone())
        .build();
    let _ = system.run(&trace, &mut daemon);
    let jsonl = telemetry.export_jsonl().expect("hub journal");
    (jsonl, daemon.stats(), telemetry)
}

#[test]
fn identical_seeded_runs_emit_byte_identical_journals() {
    let (a, stats_a, _) = traced_run(7, 0.05);
    let (b, stats_b, _) = traced_run(7, 0.05);
    assert!(!a.is_empty(), "traced run recorded nothing");
    assert!(a.lines().count() > 50, "suspiciously small journal");
    assert_eq!(a, b, "identical seeded runs diverged");
    assert_eq!(stats_a, stats_b);
    // A different seed produces a different journal (the trace actually
    // depends on the run, not just on the instrumentation points).
    let (c, _, _) = traced_run(8, 0.05);
    assert_ne!(a, c);
}

#[test]
fn hub_counters_agree_with_the_daemon_stats_snapshot() {
    let (_, stats, telemetry) = traced_run(11, 0.05);
    let snapshot = telemetry.snapshot().expect("hub snapshot");
    assert!(stats.invocations > 0);
    assert_eq!(snapshot.counter("daemon.invocations"), stats.invocations);
    assert_eq!(snapshot.counter("daemon.plans"), stats.plans);
    assert_eq!(snapshot.counter("daemon.pins"), stats.pins);
    assert_eq!(
        snapshot.counter("daemon.mailbox_faults"),
        stats.mailbox_faults
    );
    assert_eq!(snapshot.counter("daemon.retries"), stats.retries);
    assert_eq!(
        snapshot.counter("daemon.safe_mode_entries"),
        stats.safe_mode_entries
    );
    // The backoff histogram observes exactly the retries.
    if stats.retries > 0 {
        let h = snapshot
            .histogram("daemon.backoff_us")
            .expect("backoff histogram");
        assert_eq!(h.count, stats.retries);
        assert_eq!(h.sum, stats.backoff_us);
    }
}

/// `a <= b` field-wise over every counter.
fn stats_le(a: &DaemonStats, b: &DaemonStats) -> bool {
    a.invocations <= b.invocations
        && a.plans <= b.plans
        && a.pins <= b.pins
        && a.voltage_raises <= b.voltage_raises
        && a.voltage_lowers <= b.voltage_lowers
        && a.deferred_pins <= b.deferred_pins
        && a.mailbox_faults <= b.mailbox_faults
        && a.retries <= b.retries
        && a.backoff_us <= b.backoff_us
        && a.safe_mode_entries <= b.safe_mode_entries
        && a.safe_mode_exits <= b.safe_mode_exits
        && a.watchdog_fires <= b.watchdog_fires
        && a.droop_emergencies <= b.droop_emergencies
}

/// A small synthetic view to poke the daemon with.
fn view_at(now_s: u64, with_proc: bool) -> SystemView {
    let chip = presets::xgene2().build();
    let processes = if with_proc {
        vec![avfs_sched::driver::ProcessView {
            pid: Pid(1),
            threads: 2,
            state: ProcessState::Waiting,
            assigned: avfs_chip::topology::CoreSet::EMPTY,
            l3c_per_mcycle: None,
            class: None,
            arrived_at: SimTime::ZERO,
            stalled_until: None,
        }]
    } else {
        Vec::new()
    };
    SystemView {
        now: SimTime::from_secs(now_s),
        spec: chip.spec().clone(),
        voltage: chip.voltage(),
        pmd_steps: vec![FreqStep::MAX; chip.spec().pmds() as usize],
        governor: GovernorMode::Userspace,
        droop_alert: false,
        processes,
    }
}

proptest! {
    #[test]
    fn counter_snapshots_are_monotone_across_invocations(
        seed in 0u64..1_000,
        steps in 1usize..32,
    ) {
        let chip = presets::xgene2().build();
        let mut daemon = Daemon::optimal(&chip);
        let mut prev = daemon.stats();
        prop_assert_eq!(prev, DaemonStats::default());
        for i in 0..steps {
            let pick = seed.wrapping_add(i as u64) % 4;
            let event = match pick {
                0 => SysEvent::MonitorTick,
                1 => SysEvent::ProcessArrived(Pid(1)),
                2 => SysEvent::ProcessFinished(Pid(1)),
                _ => SysEvent::OperationFault(FaultNotice::VoltageRefused(
                    Millivolts::new(800),
                )),
            };
            let view = view_at(i as u64, pick == 1);
            let _ = daemon.on_event(&view, &event);
            let cur = daemon.stats();
            prop_assert!(
                stats_le(&prev, &cur),
                "counters regressed at step {}: {} -> {}",
                i,
                prev,
                cur
            );
            prop_assert!(cur.invocations == prev.invocations + 1);
            prev = cur;
        }
    }
}
