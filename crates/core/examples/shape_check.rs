use avfs_chip::presets;
use avfs_core::configs::EvalConfig;
use avfs_sched::system::{System, SystemConfig};
use avfs_sim::time::SimDuration;
use avfs_workloads::{GeneratorConfig, PerfModel, WorkloadTrace};

fn main() {
    for (name, builder, perf, cores) in [
        ("X-Gene 2", presets::xgene2(), PerfModel::xgene2(), 8u16),
        ("X-Gene 3", presets::xgene3(), PerfModel::xgene3(), 32),
    ] {
        let mut gen = GeneratorConfig::paper_default(cores as usize, 2024);
        gen.duration = SimDuration::from_secs(3600);
        let trace = WorkloadTrace::generate(&gen);
        println!("== {name}: {} jobs ==", trace.len());
        let mut base = None;
        for cfg in EvalConfig::ALL {
            let chip = builder.build();
            let mut driver = cfg.driver(&chip);
            let mut sys = System::new(chip, perf.clone(), SystemConfig::default());
            let m = sys.run(&trace, driver.as_mut());
            let (es, tp, ed) = match &base {
                None => (0.0, 0.0, 0.0),
                Some(b) => (
                    m.energy_savings_vs(b) * 100.0,
                    m.time_penalty_vs(b) * 100.0,
                    m.ed2p_savings_vs(b) * 100.0,
                ),
            };
            println!("{:10} time {:7.1}s  avgP {:6.2}W  E {:9.0}J  savings {:5.1}%  tpen {:5.2}%  ed2p-sav {:5.1}%  unsafe {:.3}s rej {}",
                cfg.label(), m.makespan.as_secs_f64(), m.avg_power_w, m.energy_j, es, tp, ed, m.unsafe_time_s, sys.rejected_actions());
            if base.is_none() {
                base = Some(m);
            }
        }
    }
}
