//! The four evaluation configurations of §VI-B as ready-made drivers.
//!
//! * **Baseline** — default kernel placement, `ondemand` governor,
//!   nominal voltage: the system as shipped.
//! * **SafeVmin** — same scheduling, but the rail follows the
//!   characterized Table II voltages: isolates the guardband's cost.
//! * **Placement** — the daemon steers placement and per-PMD frequency
//!   at nominal voltage: isolates the allocation/frequency policy.
//! * **Optimal** — everything on: the paper's headline configuration.

use crate::daemon::Daemon;
use avfs_chip::chip::Chip;
use avfs_sched::driver::{DefaultPolicy, Driver};
use avfs_telemetry::Telemetry;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the paper's four evaluation configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvalConfig {
    /// Default placement + ondemand + nominal voltage.
    Baseline,
    /// Default placement + ondemand + characterized voltage.
    SafeVmin,
    /// Daemon placement/frequency + nominal voltage.
    Placement,
    /// Daemon placement/frequency + characterized voltage.
    Optimal,
}

impl EvalConfig {
    /// All four configurations in the paper's table order.
    pub const ALL: [EvalConfig; 4] = [
        EvalConfig::Baseline,
        EvalConfig::SafeVmin,
        EvalConfig::Placement,
        EvalConfig::Optimal,
    ];

    /// Builds the driver implementing this configuration for `chip`.
    /// The driver is `Send` so cluster-level callers (avfs-fleet) can
    /// step nodes from a scoped worker pool.
    pub fn driver(self, chip: &Chip) -> Box<dyn Driver + Send> {
        self.driver_with_observer(chip, Telemetry::null())
    }

    /// Builds the driver with a telemetry handle installed. The baseline
    /// policy makes no decisions worth tracing, so it ignores the
    /// observer; the three daemon configurations report through it.
    pub fn driver_with_observer(self, chip: &Chip, telemetry: Telemetry) -> Box<dyn Driver + Send> {
        let with = |mut d: Daemon| {
            d.set_telemetry(telemetry.clone());
            Box::new(d) as Box<dyn Driver + Send>
        };
        match self {
            EvalConfig::Baseline => Box::new(DefaultPolicy::ondemand()),
            EvalConfig::SafeVmin => with(Daemon::safe_vmin_only(chip)),
            EvalConfig::Placement => with(Daemon::placement_only(chip)),
            EvalConfig::Optimal => with(Daemon::optimal(chip)),
        }
    }

    /// The label used in Tables III/IV.
    pub fn label(self) -> &'static str {
        match self {
            EvalConfig::Baseline => "Baseline",
            EvalConfig::SafeVmin => "Safe Vmin",
            EvalConfig::Placement => "Placement",
            EvalConfig::Optimal => "Optimal",
        }
    }
}

impl fmt::Display for EvalConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_chip::presets;

    #[test]
    fn drivers_have_expected_names() {
        let chip = presets::xgene2().build();
        assert_eq!(EvalConfig::Baseline.driver(&chip).name(), "baseline");
        assert_eq!(EvalConfig::SafeVmin.driver(&chip).name(), "safe-vmin");
        assert_eq!(EvalConfig::Placement.driver(&chip).name(), "placement");
        assert_eq!(EvalConfig::Optimal.driver(&chip).name(), "optimal");
    }

    #[test]
    fn labels_match_paper_tables() {
        let labels: Vec<&str> = EvalConfig::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels, ["Baseline", "Safe Vmin", "Placement", "Optimal"]);
    }
}
