//! The Placement part of the daemon (Figure 13) as a system driver.
//!
//! The daemon reacts to the three event kinds of §VI-A — process issued,
//! process finished, process re-classified — by recomputing the target
//! layout ([`crate::allocation::plan_layout`]), the per-PMD frequency
//! program (CPU PMDs at full speed, memory PMDs at the reduced step), and
//! the rail voltage (from the characterized [`PolicyTable`]).
//!
//! **Fail-safe ordering.** Because the rail is chip-wide and the safe
//! Vmin depends on what is about to run, the daemon computes a
//! *transition* voltage that is safe for the current configuration, the
//! target configuration, and every intermediate step (the union of
//! utilized PMDs at the worse frequency class). If that exceeds the
//! current voltage it is raised *before* any placement or frequency
//! action; the final (possibly lower) voltage is applied only *after*
//! the new configuration is in place. This is the paper's "first
//! increase the voltage to the next safe Vmin level, then decrease
//! according to utilized PMDs" rule, and it is what keeps
//! `unsafe_time_s == 0` in every evaluation run.

use crate::allocation::{plan_layout_into, LayoutScratch, PlanProc, PmdRole};
use crate::monitor::ClassTracker;
use crate::policy::PolicyTable;
use crate::recovery::{FaultDecision, Recovery, RecoveryConfig, RecoveryState};
use avfs_chip::chip::Chip;
use avfs_chip::freq::{CppcBehavior, FreqStep, FreqVminClass};
use avfs_chip::topology::{ChipSpec, CoreSet, PmdId};
use avfs_chip::voltage::Millivolts;
use avfs_sched::driver::{Action, Driver, SysEvent, SystemView};
use avfs_sched::governor::GovernorMode;
use avfs_sched::process::{Pid, ProcessState};
use avfs_telemetry::{CounterRegistry, Telemetry, TraceKind, Value};
use avfs_workloads::classify::IntensityClass;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Daemon tuning knobs; the constructors on [`Daemon`] pick the paper's
/// values per chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DaemonConfig {
    /// Steer placement and per-PMD frequency (the Placement part).
    pub control_placement: bool,
    /// Steer the rail voltage from the policy table.
    pub control_voltage: bool,
    /// Frequency step for memory-intensive PMDs (chip-specific: the
    /// deepest step whose Vmin class pays — 3/8 on X-Gene 2 thanks to
    /// clock division, 4/8 on X-Gene 3).
    pub mem_step: FreqStep,
    /// Step parked on idle PMDs.
    pub idle_step: FreqStep,
    /// Apply the fail-safe raise-before / lower-after ordering. Disabling
    /// this (ablation) applies voltage last unconditionally and produces
    /// unsafe transitions.
    pub fail_safe_ordering: bool,
    /// Extra voltage guard added on top of the characterized table, mV.
    pub extra_margin_mv: u32,
    /// Do not bother lowering voltage for gains smaller than this, mV
    /// (limits SLIMpro traffic; raises are always applied).
    pub lower_hysteresis_mv: u32,
    /// Fault-recovery tuning (retry/backoff, safe-mode thresholds,
    /// migration watchdog, droop guardband).
    pub recovery: RecoveryConfig,
}

/// Metric names of the daemon's counter registry, in slot order (the
/// same names appear in a shared `TelemetryHub` when one is attached,
/// so external tooling can key on them).
pub const DAEMON_COUNTERS: [&str; 13] = [
    "daemon.invocations",
    "daemon.plans",
    "daemon.pins",
    "daemon.voltage_raises",
    "daemon.voltage_lowers",
    "daemon.deferred_pins",
    "daemon.mailbox_faults",
    "daemon.retries",
    "daemon.backoff_us",
    "daemon.safe_mode_entries",
    "daemon.safe_mode_exits",
    "daemon.watchdog_fires",
    "daemon.droop_emergencies",
];

/// Registry slots, one per [`DAEMON_COUNTERS`] name.
#[derive(Debug, Clone, Copy)]
enum Dc {
    Invocations = 0,
    Plans,
    Pins,
    VoltageRaises,
    VoltageLowers,
    DeferredPins,
    MailboxFaults,
    Retries,
    BackoffUs,
    SafeModeEntries,
    SafeModeExits,
    WatchdogFires,
    DroopEmergencies,
}

/// Counters describing what the daemon has done.
///
/// Since the telemetry redesign this is a point-in-time *snapshot*
/// derived from the daemon's metrics registry (see [`Daemon::stats`]),
/// not a hand-maintained struct — every field mirrors one
/// [`DAEMON_COUNTERS`] slot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DaemonStats {
    /// Driver invocations.
    pub invocations: u64,
    /// Replans that produced at least one action.
    pub plans: u64,
    /// Pin actions emitted.
    pub pins: u64,
    /// Voltage raises emitted.
    pub voltage_raises: u64,
    /// Voltage lowers emitted.
    pub voltage_lowers: u64,
    /// Pins dropped because a conflict could not be sequenced this event.
    pub deferred_pins: u64,
    /// Fault notices received (mailbox refusals and drops combined).
    pub mailbox_faults: u64,
    /// Retries issued in response to fault notices.
    pub retries: u64,
    /// Total accounted retry backoff, microseconds.
    pub backoff_us: u64,
    /// Safe-mode entries (consecutive-fault threshold trips).
    pub safe_mode_entries: u64,
    /// Safe-mode exits (probation windows completed cleanly).
    pub safe_mode_exits: u64,
    /// Hung migrations rescued by the watchdog.
    pub watchdog_fires: u64,
    /// Droop-alert guardband engagements.
    pub droop_emergencies: u64,
}

impl fmt::Display for DaemonStats {
    /// One `key=value` line in [`DAEMON_COUNTERS`] order — greppable in
    /// logs and stable across runs with equal counters.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invocations={} plans={} pins={} voltage_raises={} voltage_lowers={} \
             deferred_pins={} mailbox_faults={} retries={} backoff_us={} \
             safe_mode_entries={} safe_mode_exits={} watchdog_fires={} droop_emergencies={}",
            self.invocations,
            self.plans,
            self.pins,
            self.voltage_raises,
            self.voltage_lowers,
            self.deferred_pins,
            self.mailbox_faults,
            self.retries,
            self.backoff_us,
            self.safe_mode_entries,
            self.safe_mode_exits,
            self.watchdog_fires,
            self.droop_emergencies
        )
    }
}

/// Reusable buffers for the replan pipeline, so steady-state control
/// events allocate nothing for planner inputs, the layout, or the
/// frequency program.
#[derive(Debug, Clone, Default)]
struct PlanScratch {
    procs: Vec<PlanProc>,
    layout: LayoutScratch,
    steps: Vec<FreqStep>,
    /// Canonical plan order: rank → view index (see
    /// [`Daemon::canonical_order`]).
    order: Vec<usize>,
    /// Target assignments in canonical order, fed to pin sequencing.
    targets: Vec<(Pid, CoreSet)>,
}

/// A memoized *placement* decision: the fingerprint of everything the
/// layout/frequency planner reads, and the plan it produced. Pins are
/// stored by the process's *canonical rank* (its position in
/// [`Daemon::canonical_order`] — the shape-sorted order the whole
/// planning pipeline runs in), never by raw pid or view position: the
/// plan depends on processes only through their shapes, so a cached
/// plan replays correctly after pid churn permutes the view. The
/// voltage program is deliberately *not* cached: it depends on the
/// entering rail voltage (which varies with the previous configuration
/// even when the placement state recurs) and is cheap table lookups —
/// recomputing it live keeps the key small and the hit rate high.
#[derive(Debug, Clone)]
struct CachedPlan {
    key: u64,
    /// Ordered pins, as (canonical rank, target cores).
    pins: Vec<(usize, CoreSet)>,
    /// Full per-PMD frequency program.
    steps: Vec<FreqStep>,
    /// Cores busy under the target layout (stranded included).
    target_busy: CoreSet,
    /// `deferred_pins` delta the sequencing pass recorded, replayed on
    /// hits so the counter surface stays byte-identical.
    deferred: u64,
}

/// Entries kept in the decision cache. Control state rarely revisits
/// more than a handful of distinct configurations between invalidations,
/// so a small linear-scan cache wins over a map.
const DECISION_CACHE_CAP: usize = 32;

impl avfs_sched::Report for DaemonStats {
    /// The `Display` line doubles as the fingerprint: all fields are
    /// integers, so textual equality is bit equality.
    fn fingerprint(&self) -> String {
        self.to_string()
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"invocations\":{},\"plans\":{},\"pins\":{},\"voltage_raises\":{},\
             \"voltage_lowers\":{},\"deferred_pins\":{},\"mailbox_faults\":{},\
             \"retries\":{},\"backoff_us\":{},\"safe_mode_entries\":{},\
             \"safe_mode_exits\":{},\"watchdog_fires\":{},\"droop_emergencies\":{}}}",
            self.invocations,
            self.plans,
            self.pins,
            self.voltage_raises,
            self.voltage_lowers,
            self.deferred_pins,
            self.mailbox_faults,
            self.retries,
            self.backoff_us,
            self.safe_mode_entries,
            self.safe_mode_exits,
            self.watchdog_fires,
            self.droop_emergencies,
        )
    }

    fn summary_table(&self) -> Vec<(&'static str, String)> {
        vec![
            ("invocations", self.invocations.to_string()),
            ("plans", self.plans.to_string()),
            ("pins", self.pins.to_string()),
            ("voltage_raises", self.voltage_raises.to_string()),
            ("voltage_lowers", self.voltage_lowers.to_string()),
            ("deferred_pins", self.deferred_pins.to_string()),
            ("mailbox_faults", self.mailbox_faults.to_string()),
            ("retries", self.retries.to_string()),
            ("backoff_us", self.backoff_us.to_string()),
            ("safe_mode_entries", self.safe_mode_entries.to_string()),
            ("safe_mode_exits", self.safe_mode_exits.to_string()),
            ("watchdog_fires", self.watchdog_fires.to_string()),
            ("droop_emergencies", self.droop_emergencies.to_string()),
        ]
    }
}

/// The online monitoring + placement daemon.
#[derive(Debug, Clone)]
pub struct Daemon {
    spec: ChipSpec,
    behavior: CppcBehavior,
    table: PolicyTable,
    config: DaemonConfig,
    tracker: ClassTracker,
    initialized: bool,
    registry: CounterRegistry,
    telemetry: Telemetry,
    recovery: Recovery,
    droop_guard: bool,
    name: String,
    plan_scratch: PlanScratch,
    cache: Vec<CachedPlan>,
    cache_enabled: bool,
    cache_hits: u64,
    cache_misses: u64,
}

impl Daemon {
    /// Builds a daemon for `chip` with explicit knobs and no observer
    /// attached. The policy table is produced by the characterization
    /// procedure of [`PolicyTable`].
    pub fn new(chip: &Chip, config: DaemonConfig) -> Self {
        Daemon::construct(chip, config, Telemetry::null())
    }

    /// Starts a [`DaemonBuilder`] — the blessed construction path when
    /// anything beyond the preset configurations is needed:
    ///
    /// ```
    /// use avfs_chip::presets;
    /// use avfs_core::daemon::Daemon;
    ///
    /// let chip = presets::xgene2().build();
    /// let daemon = Daemon::builder(&chip).build();
    /// assert_eq!(daemon.name_owned(), "optimal");
    /// ```
    pub fn builder(chip: &Chip) -> DaemonBuilder<'_> {
        DaemonBuilder {
            config: DaemonConfig {
                control_placement: true,
                control_voltage: true,
                mem_step: Self::mem_step_for(chip),
                idle_step: FreqStep::MIN,
                fail_safe_ordering: true,
                extra_margin_mv: 0,
                lower_hysteresis_mv: 5,
                recovery: RecoveryConfig::default(),
            },
            chip,
            telemetry: Telemetry::null(),
            table: None,
        }
    }

    /// Builds a daemon that reports its decisions through `telemetry`.
    /// The daemon owns its counter registry either way; the observer
    /// additionally receives counter mirrors and span-style trace events
    /// for every decision point (replans, recovery transitions, the
    /// droop guard, the migration watchdog).
    #[deprecated(
        since = "0.8.0",
        note = "use Daemon::builder(chip).config(config).observer(telemetry).build()"
    )]
    pub fn with_observer(chip: &Chip, config: DaemonConfig, telemetry: Telemetry) -> Self {
        Daemon::construct(chip, config, telemetry)
    }

    fn construct(chip: &Chip, config: DaemonConfig, telemetry: Telemetry) -> Self {
        let name = match (config.control_placement, config.control_voltage) {
            (true, true) => "optimal",
            (true, false) => "placement",
            (false, true) => "safe-vmin",
            (false, false) => "baseline-daemon",
        };
        let recovery = Recovery::new(config.recovery.clone(), 0x0DAE_0501);
        Daemon {
            spec: chip.spec().clone(),
            behavior: chip.behavior(),
            table: PolicyTable::from_characterization(chip.vmin_model()),
            config,
            tracker: ClassTracker::new(),
            initialized: false,
            registry: CounterRegistry::new(&DAEMON_COUNTERS),
            telemetry,
            recovery,
            droop_guard: false,
            name: name.to_string(),
            plan_scratch: PlanScratch::default(),
            cache: Vec::new(),
            cache_enabled: true,
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// The chip-appropriate memory-PMD step: the deepest step that still
    /// buys a Vmin class (3/8 under clock division, otherwise 4/8).
    pub fn mem_step_for(chip: &Chip) -> FreqStep {
        match chip.behavior() {
            CppcBehavior::DivisionBelowHalf => FreqStep::new_clamped(3),
            // NoBenefitBelowHalf and any future firmware behaviour: going
            // below half speed buys no voltage, so stop at half.
            _ => FreqStep::HALF,
        }
    }

    /// The paper's **Optimal** configuration: placement + frequency +
    /// voltage control.
    pub fn optimal(chip: &Chip) -> Self {
        Daemon::new(
            chip,
            DaemonConfig {
                control_placement: true,
                control_voltage: true,
                mem_step: Self::mem_step_for(chip),
                idle_step: FreqStep::MIN,
                fail_safe_ordering: true,
                extra_margin_mv: 0,
                lower_hysteresis_mv: 5,
                recovery: RecoveryConfig::default(),
            },
        )
    }

    /// The paper's **Placement** configuration: placement + frequency at
    /// nominal voltage.
    pub fn placement_only(chip: &Chip) -> Self {
        let mut d = Daemon::optimal(chip);
        d.config.control_voltage = false;
        d.name = "placement".to_string();
        d
    }

    /// The paper's **Safe Vmin** configuration: kernel placement +
    /// ondemand governor, voltage driven from the characterized table.
    pub fn safe_vmin_only(chip: &Chip) -> Self {
        let mut d = Daemon::optimal(chip);
        d.config.control_placement = false;
        d.name = "safe-vmin".to_string();
        d
    }

    /// Activity counters, snapshotted from the metrics registry.
    pub fn stats(&self) -> DaemonStats {
        DaemonStats {
            invocations: self.registry.get(Dc::Invocations as usize),
            plans: self.registry.get(Dc::Plans as usize),
            pins: self.registry.get(Dc::Pins as usize),
            voltage_raises: self.registry.get(Dc::VoltageRaises as usize),
            voltage_lowers: self.registry.get(Dc::VoltageLowers as usize),
            deferred_pins: self.registry.get(Dc::DeferredPins as usize),
            mailbox_faults: self.registry.get(Dc::MailboxFaults as usize),
            retries: self.registry.get(Dc::Retries as usize),
            backoff_us: self.registry.get(Dc::BackoffUs as usize),
            safe_mode_entries: self.registry.get(Dc::SafeModeEntries as usize),
            safe_mode_exits: self.registry.get(Dc::SafeModeExits as usize),
            watchdog_fires: self.registry.get(Dc::WatchdogFires as usize),
            droop_emergencies: self.registry.get(Dc::DroopEmergencies as usize),
        }
    }

    /// Installs (or replaces) the telemetry handle.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The telemetry handle in use (null unless an observer was
    /// attached).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Adds `delta` to one registry slot and mirrors it to the observer.
    fn count(&mut self, c: Dc, delta: u64) {
        let idx = c as usize;
        self.registry.add(idx, delta);
        self.telemetry.counter_add(DAEMON_COUNTERS[idx], delta);
    }

    /// Increments one registry slot.
    fn bump(&mut self, c: Dc) {
        self.count(c, 1);
    }

    /// Where the fault-recovery machine currently stands.
    pub fn recovery_state(&self) -> RecoveryState {
        self.recovery.state()
    }

    /// True while the droop-alert guardband is engaged.
    pub fn droop_guard_active(&self) -> bool {
        self.droop_guard
    }

    /// The voltage guard in effect: the configured margin, plus the
    /// droop-emergency bump while an excursion is alerting.
    fn margin_mv(&self) -> u32 {
        self.config.extra_margin_mv
            + if self.droop_guard {
                self.config.recovery.droop_emergency_mv
            } else {
                0
            }
    }

    /// The voltage the policy chooses for one configuration cell: the
    /// characterized table entry for (`freq_class`, `utilized_pmds`,
    /// `threads`), raised by the margin in effect (`droop_guard` adds
    /// the droop-emergency bump), capped at nominal — or pinned to
    /// nominal outright while recovery is degraded (`pessimize`).
    ///
    /// This is the *exact* chooser `replan` and the lazy ablated path
    /// use, factored out as a pure function of the daemon's static
    /// configuration so `avfs-analyze prove-policy` can sweep it over
    /// the entire finite policy domain.
    pub fn chosen_voltage(
        &self,
        freq_class: FreqVminClass,
        utilized_pmds: usize,
        threads: usize,
        droop_guard: bool,
        pessimize: bool,
    ) -> Millivolts {
        if pessimize {
            // Safe mode / probation: no undervolting until the mailbox
            // has proven itself through a clean window.
            return self.table.nominal();
        }
        let margin = self.config.extra_margin_mv
            + if droop_guard {
                self.config.recovery.droop_emergency_mv
            } else {
                0
            };
        self.table
            .safe_voltage_for_pmds(freq_class, utilized_pmds.max(1), threads.max(1))
            .offset(margin as i32)
            .min(self.table.nominal())
    }

    /// Deterministic fingerprint of the daemon's control-relevant
    /// mutable state: the init latch, the droop guard, the recovery
    /// machine, and the class tracker. Activity counters and telemetry
    /// are observational and deliberately excluded — two daemons with
    /// equal fingerprints plan identically on equal views.
    pub fn control_fingerprint(&self) -> u64 {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(h: u64, v: u64) -> u64 {
            (h ^ v).wrapping_mul(FNV_PRIME)
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        h = mix(h, u64::from(self.initialized));
        h = mix(h, u64::from(self.droop_guard));
        h = mix(h, self.recovery.fingerprint());
        for (pid, class) in self.tracker.entries() {
            h = mix(h, pid.0);
            h = mix(
                h,
                match class {
                    IntensityClass::CpuIntensive => 0,
                    IntensityClass::MemoryIntensive => 1,
                },
            );
        }
        h
    }

    /// The daemon's configuration name as an owned string (used by the
    /// threaded service handle).
    pub fn name_owned(&self) -> String {
        self.name.clone()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DaemonConfig {
        &self.config
    }

    /// Enables or disables the fail-safe raise-before ordering (ablation
    /// knob; disabling it makes transitions unsafe on purpose).
    pub fn set_fail_safe_ordering(&mut self, enabled: bool) {
        self.config.fail_safe_ordering = enabled;
        self.cache.clear();
    }

    /// Overrides the memory-PMD frequency step (threshold/step sweeps).
    pub fn set_mem_step(&mut self, step: FreqStep) {
        self.config.mem_step = step;
        self.cache.clear();
    }

    /// The policy table currently driving voltage decisions.
    pub fn policy_table(&self) -> &PolicyTable {
        &self.table
    }

    /// Atomically replaces the policy table (the recharacterization swap
    /// seam): all memoized decisions are dropped so the very next replan
    /// reads the new table, and the swap is traced as a
    /// [`TraceKind::TableSwap`].
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::PmdCountMismatch`] when the table was
    /// characterized for a different chip shape; the old table stays in
    /// place.
    pub fn swap_table(&mut self, table: PolicyTable) -> Result<(), crate::policy::PolicyError> {
        let chip_pmds = self.spec.pmds() as usize;
        if table.pmds() != chip_pmds {
            return Err(crate::policy::PolicyError::PmdCountMismatch {
                table_pmds: table.pmds(),
                chip_pmds,
            });
        }
        let static_max_mv = table.static_safe_voltage(FreqVminClass::Max).as_mv();
        self.table = table;
        self.cache.clear();
        self.telemetry.counter_inc("daemon.table_swaps");
        self.telemetry.trace(TraceKind::TableSwap, || {
            vec![
                ("pmds", Value::from(chip_pmds as u64)),
                ("static_max_mv", Value::from(u64::from(static_max_mv))),
            ]
        });
        Ok(())
    }

    // ------------------------------------------------------------------

    /// The frequency-class of a step program restricted to utilized PMDs.
    fn freq_class_of(&self, steps: &[FreqStep], utilized: &[PmdId]) -> FreqVminClass {
        self.behavior.vmin_class_of_steps(
            utilized
                .iter()
                .filter_map(|p| steps.get(p.index()).copied()),
        )
    }

    /// Computes the full action list for the current view.
    ///
    /// Only meaningful with placement control; the Safe Vmin
    /// configuration sets its single static voltage at initialization
    /// and never replans.
    fn replan(&mut self, view: &SystemView) -> Vec<Action> {
        let mut actions = Vec::new();
        if !self.config.control_placement {
            return actions;
        }

        // --- Target layout & frequency program (memoized). ---
        // The scratch buffers persist across replans (taken out of self
        // so the planner can borrow them while `self` stays usable).
        let mut scratch = std::mem::take(&mut self.plan_scratch);
        self.canonical_order(view, &mut scratch.order);
        let key = self.decision_key(view, &scratch.order);
        let hit = if self.cache_enabled {
            self.cache.iter().position(|e| e.key == key)
        } else {
            None
        };
        let (pins, target_busy) = if let Some(idx) = hit {
            self.cache_hits += 1;
            let entry = &self.cache[idx];
            scratch.steps.clear();
            scratch.steps.extend_from_slice(&entry.steps);
            let pins: Vec<(Pid, CoreSet)> = entry
                .pins
                .iter()
                .map(|&(rank, cores)| (view.processes[scratch.order[rank]].pid, cores))
                .collect();
            let deferred = entry.deferred;
            let target_busy = entry.target_busy;
            // LRU: move the hit entry to the back; eviction takes the
            // front, so recurring configurations survive one-off visits.
            self.cache[idx..].rotate_left(1);
            // The sequencing pass counts deferrals unconditionally (even
            // zero), so the replay must touch the counter at the same
            // point for the cached journal to stay byte-identical.
            self.count(Dc::DeferredPins, deferred);
            (pins, target_busy)
        } else {
            // The whole fresh pipeline runs in canonical order, so its
            // decisions are a function of the fingerprinted shapes alone
            // — the property the rank-encoded replay above relies on.
            scratch.procs.clear();
            scratch.procs.extend(scratch.order.iter().map(|&i| {
                let p = &view.processes[i];
                PlanProc {
                    pid: p.pid,
                    threads: p.threads,
                    class: self.tracker.class_of(p.pid),
                }
            }));
            plan_layout_into(&self.spec, &scratch.procs, &mut scratch.layout);
            // Running processes the layout could not re-fit (fragmentation
            // under oversubscription: a wide process cannot be packed around
            // a newly placed narrow one) keep executing on their current
            // cores. The program must keep those PMDs clocked and the rail
            // above their Vmin, or the final undervolt would dip below what
            // the cores that never vacated require.
            let stranded = view
                .processes
                .iter()
                .filter(|p| {
                    p.state == ProcessState::Running
                        && scratch.layout.assignment_of(p.pid).is_none()
                })
                .fold(CoreSet::EMPTY, |acc, p| acc.union(p.assigned));
            scratch.steps.clear();
            for (i, role) in scratch.layout.pmd_roles().iter().enumerate() {
                let planned = match role {
                    PmdRole::Cpu => FreqStep::MAX,
                    PmdRole::Mem => self.config.mem_step,
                    PmdRole::Idle => self.config.idle_step,
                };
                let hosts_stranded = self
                    .spec
                    .cores_of_iter(PmdId::new(i as u16))
                    .any(|c| stranded.contains(c));
                scratch.steps.push(if hosts_stranded {
                    // Never throttle a core a stranded process runs on.
                    view.pmd_steps
                        .get(i)
                        .map_or(planned, |&current| planned.max(current))
                } else {
                    planned
                });
            }
            // Sequencing consumes targets in canonical order too: the
            // emitted pin *order* must be shape-determined for the
            // rank-encoded replay to reproduce it on a permuted view.
            scratch.targets.clear();
            for &i in &scratch.order {
                let pid = view.processes[i].pid;
                if let Some(cores) = scratch.layout.assignment_of(pid) {
                    scratch.targets.push((pid, cores));
                }
            }
            let deferred_before = self.registry.get(Dc::DeferredPins as usize);
            let pins = self.sequence_pins(view, &scratch.targets);
            let deferred = self.registry.get(Dc::DeferredPins as usize) - deferred_before;
            let target_busy = scratch.layout.busy_cores().union(stranded);
            if self.cache_enabled {
                self.cache_misses += 1;
                // Pins re-encoded by canonical rank; every pinned pid
                // comes from the view, so the lookup cannot fail.
                let encoded: Option<Vec<(usize, CoreSet)>> = pins
                    .iter()
                    .map(|&(pid, cores)| {
                        scratch
                            .order
                            .iter()
                            .position(|&i| view.processes[i].pid == pid)
                            .map(|rank| (rank, cores))
                    })
                    .collect();
                if let Some(encoded) = encoded {
                    if self.cache.len() >= DECISION_CACHE_CAP {
                        self.cache.remove(0);
                    }
                    self.cache.push(CachedPlan {
                        key,
                        pins: encoded,
                        steps: scratch.steps.clone(),
                        target_busy,
                        deferred,
                    });
                }
            }
            (pins, target_busy)
        };
        let new_steps = &scratch.steps;

        // --- Voltage program. ---
        if self.config.control_voltage && !self.config.fail_safe_ordering {
            // Ablated mode: placement happens now; voltage is only
            // reconciled at the next monitoring tick (see
            // `lazy_voltage_action`), leaving a real unsafe window after
            // widening reconfigurations — the hazard the paper's
            // ordering rule exists to prevent.
            self.push_reconfig(&mut actions, view, &pins, new_steps);
        } else if self.config.control_voltage {
            let current_busy = view.busy_cores();
            let current_util = current_busy.utilized_pmds(&self.spec);
            let target_util = target_busy.utilized_pmds(&self.spec);
            let union_util: Vec<PmdId> = {
                let union = current_busy.union(target_busy);
                union.utilized_pmds(&self.spec)
            };

            let threads_now: usize = view
                .processes
                .iter()
                .filter(|p| p.state == ProcessState::Running)
                .map(|p| p.threads)
                .sum();
            let threads_target = target_busy.len();
            let margin_threads = threads_now.min(threads_target).max(1);

            // Frequency class: worst of the current program on current
            // PMDs and the new program on target PMDs.
            let fc_now = self.freq_class_of(&view.pmd_steps, &current_util);
            let fc_target = self.freq_class_of(new_steps, &target_util);
            let fc_transition = fc_now.max(fc_target);

            let pessimize = self.recovery.pessimize_voltage();
            let transition_v = self.chosen_voltage(
                fc_transition,
                union_util.len(),
                margin_threads,
                self.droop_guard,
                pessimize,
            );
            let final_v = self.chosen_voltage(
                fc_target,
                target_util.len(),
                threads_target,
                self.droop_guard,
                pessimize,
            );

            if self.config.fail_safe_ordering && transition_v > view.voltage {
                actions.push(Action::SetVoltage(transition_v));
                self.bump(Dc::VoltageRaises);
            }

            self.push_reconfig(&mut actions, view, &pins, new_steps);

            // Settle to the final voltage.
            let settle_from = if self.config.fail_safe_ordering {
                transition_v.max(view.voltage)
            } else {
                view.voltage
            };
            if final_v > settle_from
                || settle_from - final_v >= self.config.lower_hysteresis_mv as i64
            {
                actions.push(Action::SetVoltage(final_v));
                if final_v < settle_from {
                    self.bump(Dc::VoltageLowers);
                } else {
                    self.bump(Dc::VoltageRaises);
                }
            }
        } else {
            self.push_reconfig(&mut actions, view, &pins, new_steps);
        }

        if !actions.is_empty() {
            self.bump(Dc::Plans);
            let n_actions = actions.len();
            let recovery = self.recovery.state().as_str();
            let droop_guard = self.droop_guard;
            self.telemetry.trace(TraceKind::Replan, || {
                vec![
                    ("actions", Value::from(n_actions)),
                    ("recovery", Value::from(recovery)),
                    ("droop_guard", Value::from(droop_guard)),
                ]
            });
        }
        self.plan_scratch = scratch;
        actions
    }

    /// The canonical planning order: view indices sorted by process
    /// *shape* — run state (running first), current placement bits,
    /// width, tracked class. The fingerprint hashes shapes in this
    /// order and the fresh pipeline plans in it, so two views whose
    /// shape multisets match produce identical rank-indexed plans even
    /// when pid churn permutes the view. Equal-shape processes are
    /// interchangeable (running processes always differ in placement
    /// bits; tied waiting processes have the same width and class), so
    /// the tie order within the sort cannot affect the plan.
    fn canonical_order(&self, view: &SystemView, order: &mut Vec<usize>) {
        order.clear();
        order.extend(0..view.processes.len());
        order.sort_unstable_by_key(|&i| {
            let p = &view.processes[i];
            let state_rank: u8 = match p.state {
                ProcessState::Running => 0,
                ProcessState::Waiting => 1,
                ProcessState::Finished => 2,
            };
            let class_rank: u8 = match self.tracker.class_of(p.pid) {
                IntensityClass::CpuIntensive => 0,
                IntensityClass::MemoryIntensive => 1,
            };
            (state_rank, p.assigned.bits(), p.threads, class_rank)
        });
    }

    /// Fingerprint of everything the *placement* planner reads: the
    /// per-PMD step program (stranded cores are never throttled below
    /// their current step) and each process's shape in canonical order
    /// — threads, run state, current placement, and tracked class. Pids
    /// are deliberately excluded, and shapes are hashed in
    /// [`Self::canonical_order`] rather than view order: the plan
    /// depends on processes only through their shapes, so a cached
    /// decision stays valid across pid churn *and* across churn-induced
    /// permutations of the view. The rail voltage, droop guard, and
    /// recovery posture feed only the voltage program, which is
    /// recomputed live on every replan — hashing them would sink the
    /// hit rate (the entering voltage varies with the *previous*
    /// configuration even when the placement state recurs). The
    /// daemon's own config is not hashed; its setters invalidate the
    /// cache instead.
    fn decision_key(&self, view: &SystemView, order: &[usize]) -> u64 {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(h: u64, v: u64) -> u64 {
            (h ^ v).wrapping_mul(FNV_PRIME)
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        h = mix(h, view.pmd_steps.len() as u64);
        for &step in &view.pmd_steps {
            h = mix(h, u64::from(step.numerator()));
        }
        h = mix(h, view.processes.len() as u64);
        for &i in order {
            let p = &view.processes[i];
            h = mix(h, p.threads as u64);
            h = mix(
                h,
                match p.state {
                    ProcessState::Waiting => 0,
                    ProcessState::Running => 1,
                    ProcessState::Finished => 2,
                },
            );
            h = mix(h, p.assigned.bits());
            h = mix(
                h,
                match self.tracker.class_of(p.pid) {
                    IntensityClass::CpuIntensive => 0,
                    IntensityClass::MemoryIntensive => 1,
                },
            );
        }
        h
    }

    /// Enables or disables the replan decision cache (enabled by
    /// default). Disabling clears it, forcing every subsequent replan
    /// down the full planning path.
    pub fn set_decision_cache(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
        if !enabled {
            self.cache.clear();
        }
    }

    /// `(hits, misses)` observed by the decision cache. Diagnostic only:
    /// not part of [`DaemonStats`] or any telemetry surface, so cached
    /// and uncached runs stay byte-identical everywhere else.
    pub fn decision_cache_stats(&self) -> (u64, u64) {
        (self.cache_hits, self.cache_misses)
    }

    /// Emits pins and frequency-step changes (only the deltas).
    fn push_reconfig(
        &mut self,
        actions: &mut Vec<Action>,
        view: &SystemView,
        pins: &[(Pid, CoreSet)],
        new_steps: &[FreqStep],
    ) {
        // Frequency raises are applied before placement widens onto those
        // PMDs; lowering order is harmless (both covered by the
        // transition voltage anyway).
        if self.config.control_placement {
            for (i, (&new, &old)) in new_steps.iter().zip(view.pmd_steps.iter()).enumerate() {
                if new != old {
                    actions.push(Action::SetPmdStep(PmdId::new(i as u16), new));
                }
            }
        }
        for &(pid, cores) in pins {
            actions.push(Action::PinProcess(pid, cores));
            self.bump(Dc::Pins);
        }
    }

    /// Ablated-mode voltage reconciliation: set the voltage the *current*
    /// configuration needs, with no awareness of in-flight transitions.
    fn lazy_voltage_action(&mut self, view: &SystemView) -> Vec<Action> {
        if !self.config.control_voltage || !self.config.control_placement {
            return Vec::new();
        }
        let busy = view.busy_cores();
        let util = busy.utilized_pmds(&self.spec);
        let fc = self.freq_class_of(&view.pmd_steps, &util);
        let target = self.chosen_voltage(
            fc,
            util.len(),
            busy.len(),
            self.droop_guard,
            self.recovery.pessimize_voltage(),
        );
        if target == view.voltage {
            return Vec::new();
        }
        if target > view.voltage {
            self.bump(Dc::VoltageRaises);
        } else {
            self.bump(Dc::VoltageLowers);
        }
        vec![Action::SetVoltage(target)]
    }

    /// Orders pin actions so each lands on cores free at its turn;
    /// conflicting pins are deferred to the next event.
    fn sequence_pins(
        &mut self,
        view: &SystemView,
        target: &[(Pid, CoreSet)],
    ) -> Vec<(Pid, CoreSet)> {
        // Current occupancy per process.
        let mut occupancy: BTreeMap<Pid, CoreSet> = view
            .processes
            .iter()
            .filter(|p| p.state == ProcessState::Running)
            .map(|p| (p.pid, p.assigned))
            .collect();
        let mut pending: Vec<(Pid, CoreSet)> = target
            .iter()
            .filter(|(pid, cores)| occupancy.get(pid).copied().unwrap_or(CoreSet::EMPTY) != *cores)
            .copied()
            .collect();
        let mut ordered = Vec::new();
        // Greedy passes: apply any pin whose target is free of *other*
        // processes' current cores.
        for _ in 0..pending.len().max(1) {
            let mut progressed = false;
            pending.retain(|&(pid, cores)| {
                let others = occupancy
                    .iter()
                    .filter(|(&q, _)| q != pid)
                    .fold(CoreSet::EMPTY, |acc, (_, &cs)| acc.union(cs));
                if cores.intersection(others).is_empty() {
                    ordered.push((pid, cores));
                    occupancy.insert(pid, cores);
                    progressed = true;
                    false
                } else {
                    true
                }
            });
            if !progressed {
                break;
            }
        }
        self.count(Dc::DeferredPins, pending.len() as u64);
        ordered
    }

    // --- Fault recovery -----------------------------------------------

    /// Safe-mode posture: hold (or restore) the nominal voltage. Nothing
    /// else moves — the aborted batch left the old configuration in
    /// place, and the old configuration is covered by the current rail
    /// voltage thanks to the fail-safe ordering.
    fn safe_mode_actions(&mut self, view: &SystemView) -> Vec<Action> {
        let mut actions = Vec::new();
        if self.config.control_voltage && view.voltage < self.table.nominal() {
            actions.push(Action::SetVoltage(self.table.nominal()));
            self.bump(Dc::VoltageRaises);
        }
        actions
    }

    /// Tracks the chip's droop alert. Engaging or releasing the guard
    /// returns `true` so the caller replans with the new margin; the
    /// static safe-vmin configuration (which never replans) re-emits its
    /// voltage here directly.
    fn update_droop_guard(&mut self, view: &SystemView, actions: &mut Vec<Action>) -> bool {
        if view.droop_alert == self.droop_guard {
            return false;
        }
        self.droop_guard = view.droop_alert;
        self.cache.clear();
        if self.droop_guard {
            self.bump(Dc::DroopEmergencies);
        }
        let engaged = self.droop_guard;
        let margin_mv = self.margin_mv();
        self.telemetry.trace(TraceKind::DroopGuard, || {
            vec![
                ("engaged", Value::from(engaged)),
                ("margin_mv", Value::from(margin_mv)),
            ]
        });
        if self.config.control_voltage && !self.config.control_placement {
            let v = self
                .table
                .static_safe_voltage(FreqVminClass::Max)
                .offset(self.margin_mv() as i32)
                .min(self.table.nominal());
            if v != view.voltage {
                if v > view.voltage {
                    self.bump(Dc::VoltageRaises);
                } else {
                    self.bump(Dc::VoltageLowers);
                }
                actions.push(Action::SetVoltage(v));
            }
        }
        true
    }

    /// Rescues migrations whose stall end sits implausibly far in the
    /// future (a hung migration): re-pinning the same cores restarts the
    /// move with the normal pause.
    fn watchdog_actions(&mut self, view: &SystemView) -> Vec<Action> {
        if !self.config.control_placement {
            return Vec::new();
        }
        let timeout = self.config.recovery.watchdog_timeout;
        let mut actions = Vec::new();
        for p in &view.processes {
            if let Some(stall) = p.stalled_until {
                if stall.saturating_since(view.now) > timeout {
                    actions.push(Action::PinProcess(p.pid, p.assigned));
                    self.bump(Dc::WatchdogFires);
                    let pid = p.pid.0;
                    let stalled_ns = stall.as_nanos();
                    self.telemetry.trace(TraceKind::Watchdog, || {
                        vec![
                            ("pid", Value::from(pid)),
                            ("stalled_until_ns", Value::from(stalled_ns)),
                        ]
                    });
                }
            }
        }
        actions
    }

    /// Responds to one fault notice per the recovery machine: bounded
    /// jittered retry while below the threshold, nominal-voltage safe
    /// mode at and beyond it.
    fn on_operation_fault(
        &mut self,
        view: &SystemView,
        notice: avfs_sched::driver::FaultNotice,
    ) -> Vec<Action> {
        self.bump(Dc::MailboxFaults);
        // A fault reshapes everything downstream (retry budget, safe
        // mode, pessimized voltage) — drop all memoized decisions.
        self.cache.clear();
        let before = self.recovery.state();
        let decision = self.recovery.on_fault();
        self.trace_recovery_transition(before, "fault");
        match decision {
            FaultDecision::Retry { backoff_us } => {
                self.bump(Dc::Retries);
                self.count(Dc::BackoffUs, backoff_us);
                self.telemetry
                    .histogram_observe("daemon.backoff_us", backoff_us);
                if self.config.control_placement {
                    // A replan against the fresh view recomputes exactly
                    // the deltas the aborted batch left outstanding
                    // (including the failed voltage request itself).
                    self.replan(view)
                } else if self.config.control_voltage {
                    // Static configuration: re-issue the lost request.
                    vec![Action::SetVoltage(notice.requested())]
                } else {
                    Vec::new()
                }
            }
            FaultDecision::EnterSafeMode => {
                self.bump(Dc::SafeModeEntries);
                self.safe_mode_actions(view)
            }
            FaultDecision::HoldSafe => self.safe_mode_actions(view),
        }
    }

    /// Emits a `RecoveryTransition` trace if the recovery machine moved
    /// away from `before` (called right after feeding it an event).
    fn trace_recovery_transition(&mut self, before: RecoveryState, cause: &'static str) {
        let after = self.recovery.state();
        if before != after {
            self.telemetry.trace(TraceKind::RecoveryTransition, || {
                vec![
                    ("from", Value::from(before.as_str())),
                    ("to", Value::from(after.as_str())),
                    ("cause", Value::from(cause)),
                ]
            });
        }
    }
}

/// Builder for [`Daemon`] — the single blessed construction path.
///
/// Starts from the paper's **Optimal** configuration for the chip
/// (placement + frequency + voltage control, chip-appropriate memory
/// step); override pieces with [`config`](DaemonBuilder::config) and
/// attach an observer with [`observer`](DaemonBuilder::observer).
#[derive(Debug)]
pub struct DaemonBuilder<'c> {
    chip: &'c Chip,
    config: DaemonConfig,
    telemetry: Telemetry,
    table: Option<PolicyTable>,
}

impl DaemonBuilder<'_> {
    /// Replaces the full configuration.
    #[must_use]
    pub fn config(mut self, config: DaemonConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a telemetry observer (counter mirrors + decision
    /// traces).
    #[must_use]
    pub fn observer(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Drives voltage from a supplied policy table — typically one
    /// compiled from a measured margin map by `avfs-characterize` —
    /// instead of the model-derived characterization default.
    ///
    /// # Panics
    ///
    /// `build` panics if the table's PMD count disagrees with the chip's.
    #[must_use]
    pub fn table(mut self, table: PolicyTable) -> Self {
        self.table = Some(table);
        self
    }

    /// Builds the daemon.
    pub fn build(self) -> Daemon {
        let mut daemon = Daemon::construct(self.chip, self.config, self.telemetry);
        if let Some(table) = self.table {
            assert_eq!(
                table.pmds(),
                daemon.spec.pmds() as usize,
                "policy table / chip PMD count mismatch"
            );
            // Direct install, not `swap_table`: nothing ran yet, so a
            // construction-time table is not a traced swap event.
            daemon.table = table;
        }
        daemon
    }
}

impl Driver for Daemon {
    fn on_event(&mut self, view: &SystemView, event: &SysEvent) -> Vec<Action> {
        self.telemetry.advance_to(view.now);
        self.bump(Dc::Invocations);
        let mut actions = Vec::new();
        if !self.initialized {
            self.initialized = true;
            let mode = if self.config.control_placement {
                GovernorMode::Userspace
            } else {
                GovernorMode::Ondemand
            };
            actions.push(Action::SetGovernor(mode));
            if self.config.control_voltage && !self.config.control_placement {
                // The Safe Vmin configuration: one static undervolt to
                // the table's universal safe value (§VI-B); ondemand
                // keeps scheduling, the guardband is simply removed.
                let v = self
                    .table
                    .static_safe_voltage(FreqVminClass::Max)
                    .offset(self.margin_mv() as i32)
                    .min(self.table.nominal());
                actions.push(Action::SetVoltage(v));
                self.bump(Dc::VoltageLowers);
            }
        }
        // Class flips reshape the layout, but need no cache invalidation:
        // every tracked class is part of the decision key, so a flip
        // changes the key and stale entries simply stop matching.
        self.tracker.refresh(view);
        if let SysEvent::OperationFault(notice) = event {
            actions.extend(self.on_operation_fault(view, *notice));
            return actions;
        }
        // Any non-fault event means the previous action batch applied
        // cleanly (faults are delivered synchronously) — feed the
        // recovery machine and pick up droop-alert changes.
        let before = self.recovery.state();
        let exited_safe_mode = self.recovery.on_clean_event();
        if before != self.recovery.state() {
            self.cache.clear();
        }
        self.trace_recovery_transition(before, "clean_window");
        if exited_safe_mode {
            self.bump(Dc::SafeModeExits);
        }
        let droop_changed = self.update_droop_guard(view, &mut actions);
        match event {
            SysEvent::ClassChanged(pid, class) => {
                self.tracker.set(*pid, *class);
                actions.extend(self.replan(view));
            }
            SysEvent::ProcessArrived(_) | SysEvent::ProcessFinished(_) => {
                actions.extend(self.replan(view));
            }
            SysEvent::MonitorTick => {
                // The monitoring part runs inside the kernel window; the
                // placement part is only invoked on the three real events
                // (§VI-A). Except right after initialization (settle the
                // idle chip), when the droop guard or safe-mode posture
                // changed (re-aim the voltage program), or when the
                // watchdog found a hung migration.
                actions.extend(self.watchdog_actions(view));
                if !actions.is_empty() || exited_safe_mode || droop_changed {
                    actions.extend(self.replan(view));
                }
                if !self.config.fail_safe_ordering {
                    actions.extend(self.lazy_voltage_action(view));
                }
            }
            // `OperationFault` returned above; `SysEvent` is
            // non-exhaustive, so any future event kind is a no-op here.
            _ => {}
        }
        actions
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_chip::presets;
    use avfs_chip::voltage::Millivolts;
    use avfs_sched::driver::ProcessView;
    use avfs_sim::time::SimTime;
    use avfs_workloads::classify::IntensityClass;

    fn xg3_chip() -> Chip {
        presets::xgene3().build()
    }

    fn mk_view(chip: &Chip, procs: Vec<ProcessView>) -> SystemView {
        SystemView {
            now: SimTime::ZERO,
            spec: chip.spec().clone(),
            voltage: chip.voltage(),
            pmd_steps: vec![FreqStep::MAX; chip.spec().pmds() as usize],
            governor: GovernorMode::Userspace,
            droop_alert: false,
            processes: procs,
        }
    }

    fn waiting(pid: u64, threads: usize) -> ProcessView {
        ProcessView {
            pid: Pid(pid),
            threads,
            state: ProcessState::Waiting,
            assigned: CoreSet::EMPTY,
            l3c_per_mcycle: None,
            class: None,
            arrived_at: SimTime::ZERO,
            stalled_until: None,
        }
    }

    fn running(pid: u64, cores: CoreSet, class: IntensityClass) -> ProcessView {
        ProcessView {
            pid: Pid(pid),
            threads: cores.len(),
            state: ProcessState::Running,
            assigned: cores,
            l3c_per_mcycle: Some(match class {
                IntensityClass::CpuIntensive => 200.0,
                IntensityClass::MemoryIntensive => 15_000.0,
            }),
            class: Some(class),
            arrived_at: SimTime::ZERO,
            stalled_until: None,
        }
    }

    fn cores(ids: &[u16]) -> CoreSet {
        ids.iter()
            .map(|&i| avfs_chip::topology::CoreId::new(i))
            .collect()
    }

    #[test]
    fn swap_table_takes_effect_immediately_and_checks_shape() {
        let chip = xg3_chip();
        let mut d = Daemon::optimal(&chip);
        let _ = d.on_event(&mk_view(&chip, vec![]), &SysEvent::MonitorTick);
        let before = d.chosen_voltage(FreqVminClass::Max, 16, 32, false, false);
        // A table measured on a drifted (+15 mV) chip chooses more volts.
        let drifted = chip
            .vmin_model()
            .with_drift(avfs_chip::vmin::VminDrift::aging(15));
        let table = PolicyTable::from_characterization(&drifted);
        d.swap_table(table).expect("matching shape");
        let after = d.chosen_voltage(FreqVminClass::Max, 16, 32, false, false);
        assert_eq!(after - before, 15);
        // A table for the wrong chip shape is refused, old table intact.
        let xg2 = presets::xgene2().build();
        let wrong = PolicyTable::from_characterization(xg2.vmin_model());
        assert_eq!(
            d.swap_table(wrong),
            Err(crate::policy::PolicyError::PmdCountMismatch {
                table_pmds: 4,
                chip_pmds: 16,
            })
        );
        assert_eq!(
            d.chosen_voltage(FreqVminClass::Max, 16, 32, false, false),
            after
        );
    }

    #[test]
    fn builder_installs_a_supplied_table() {
        let chip = xg3_chip();
        let drifted = chip
            .vmin_model()
            .with_drift(avfs_chip::vmin::VminDrift::aging(10));
        let table = PolicyTable::from_characterization(&drifted);
        let d = Daemon::builder(&chip).table(table.clone()).build();
        assert_eq!(d.policy_table(), &table);
    }

    #[test]
    fn first_event_switches_governor() {
        let chip = xg3_chip();
        let mut d = Daemon::optimal(&chip);
        let view = mk_view(&chip, vec![]);
        let acts = d.on_event(&view, &SysEvent::MonitorTick);
        assert!(matches!(
            acts.first(),
            Some(Action::SetGovernor(GovernorMode::Userspace))
        ));
        // Safe-vmin keeps ondemand.
        let mut sv = Daemon::safe_vmin_only(&chip);
        let acts = sv.on_event(&view, &SysEvent::MonitorTick);
        assert!(matches!(
            acts.first(),
            Some(Action::SetGovernor(GovernorMode::Ondemand))
        ));
    }

    #[test]
    fn arrival_raises_voltage_before_placement() {
        let chip = xg3_chip();
        let mut d = Daemon::optimal(&chip);
        let view0 = mk_view(&chip, vec![]);
        let _ = d.on_event(&view0, &SysEvent::MonitorTick); // init & settle

        // Rail sits low for an idle chip; a 4-thread arrival must raise
        // voltage before the pin lands.
        let mut view = mk_view(&chip, vec![waiting(1, 4)]);
        view.voltage = Millivolts::new(790);
        let acts = d.on_event(&view, &SysEvent::ProcessArrived(Pid(1)));
        let v_pos = acts
            .iter()
            .position(|a| matches!(a, Action::SetVoltage(v) if *v > Millivolts::new(790)));
        let pin_pos = acts
            .iter()
            .position(|a| matches!(a, Action::PinProcess(..)));
        assert!(v_pos.is_some(), "no raise in {acts:?}");
        assert!(pin_pos.is_some(), "no pin in {acts:?}");
        assert!(v_pos.unwrap() < pin_pos.unwrap(), "raise must precede pin");
    }

    #[test]
    fn finish_lowers_voltage_after_reconfig() {
        let chip = xg3_chip();
        let mut d = Daemon::optimal(&chip);
        let _ = d.on_event(&mk_view(&chip, vec![]), &SysEvent::MonitorTick);

        // One clustered cpu proc remains after another finished; the rail
        // still sits at the wider configuration's voltage.
        let mut view = mk_view(
            &chip,
            vec![running(1, cores(&[0, 1]), IntensityClass::CpuIntensive)],
        );
        view.voltage = Millivolts::new(830);
        let acts = d.on_event(&view, &SysEvent::ProcessFinished(Pid(9)));
        let lower = acts
            .iter()
            .filter_map(|a| match a {
                Action::SetVoltage(v) => Some(*v),
                _ => None,
            })
            .next_back();
        assert!(lower.is_some(), "expected a settle voltage in {acts:?}");
        assert!(lower.unwrap() < Millivolts::new(830));
        // And it must be the LAST action.
        assert!(matches!(acts.last(), Some(Action::SetVoltage(_))));
    }

    #[test]
    fn memory_class_gets_reduced_step_cpu_gets_max() {
        let chip = xg3_chip();
        let mut d = Daemon::placement_only(&chip);
        let _ = d.on_event(&mk_view(&chip, vec![]), &SysEvent::MonitorTick);
        let view = mk_view(
            &chip,
            vec![
                running(1, cores(&[0, 1]), IntensityClass::CpuIntensive),
                running(2, cores(&[30]), IntensityClass::MemoryIntensive),
            ],
        );
        let acts = d.on_event(
            &view,
            &SysEvent::ClassChanged(Pid(2), IntensityClass::MemoryIntensive),
        );
        // PMD15 (core 30) must be programmed to the mem step (HALF on XG3).
        assert!(
            acts.iter().any(|a| matches!(
                a,
                Action::SetPmdStep(p, s) if p.index() == 15 && *s == FreqStep::HALF
            )),
            "no mem-step action in {acts:?}"
        );
        // No voltage actions in placement-only mode.
        assert!(!acts.iter().any(|a| matches!(a, Action::SetVoltage(_))));
    }

    #[test]
    fn xgene2_mem_step_uses_clock_division() {
        let x2 = presets::xgene2().build();
        assert_eq!(Daemon::mem_step_for(&x2).numerator(), 3);
        let x3 = xg3_chip();
        assert_eq!(Daemon::mem_step_for(&x3), FreqStep::HALF);
    }

    #[test]
    fn replan_is_quiescent_when_nothing_changes() {
        let chip = xg3_chip();
        let mut d = Daemon::optimal(&chip);
        let _ = d.on_event(&mk_view(&chip, vec![]), &SysEvent::MonitorTick);

        // A view that already matches the daemon's plan: cpu proc
        // clustered on PMD0 at MAX, voltage settled.
        let mut view = mk_view(
            &chip,
            vec![running(1, cores(&[0, 1]), IntensityClass::CpuIntensive)],
        );
        view.pmd_steps = {
            let mut s = vec![FreqStep::MIN; 16];
            s[0] = FreqStep::MAX;
            s
        };
        view.voltage = d.table.safe_voltage_for_pmds(FreqVminClass::Max, 1, 2);
        let acts = d.on_event(&view, &SysEvent::MonitorTick);
        assert!(acts.is_empty(), "unexpected actions: {acts:?}");
    }

    #[test]
    fn sequencing_avoids_core_conflicts() {
        let chip = xg3_chip();
        let mut d = Daemon::optimal(&chip);
        let _ = d.on_event(&mk_view(&chip, vec![]), &SysEvent::MonitorTick);
        // A mem proc currently sits on PMD0 (where cpu procs belong); a
        // cpu proc arrives. The plan moves mem to the top and cpu to the
        // bottom; pins must sequence so no pin targets occupied cores.
        let view = mk_view(
            &chip,
            vec![
                running(1, cores(&[0]), IntensityClass::MemoryIntensive),
                waiting(2, 2),
            ],
        );
        let acts = d.on_event(&view, &SysEvent::ProcessArrived(Pid(2)));
        // Replay the pins over an occupancy map and check validity.
        let mut occupancy: BTreeMap<Pid, CoreSet> = [(Pid(1), cores(&[0]))].into_iter().collect();
        for a in &acts {
            if let Action::PinProcess(pid, cs) = a {
                let others = occupancy
                    .iter()
                    .filter(|(&q, _)| q != *pid)
                    .fold(CoreSet::EMPTY, |acc, (_, &c)| acc.union(c));
                assert!(
                    cs.intersection(others).is_empty(),
                    "pin {pid}->{cs} conflicts"
                );
                occupancy.insert(*pid, *cs);
            }
        }
        // Both processes placed.
        assert_eq!(occupancy.len(), 2);
    }

    #[test]
    fn safe_vmin_mode_sets_one_static_undervolt() {
        let chip = xg3_chip();
        let mut d = Daemon::safe_vmin_only(&chip);
        let view = mk_view(&chip, vec![]);
        let acts = d.on_event(&view, &SysEvent::MonitorTick);
        // Init: ondemand governor + one static voltage below nominal but
        // at or above the worst-case multicore Vmin (Table II: 830 mV).
        let v = acts
            .iter()
            .find_map(|a| match a {
                Action::SetVoltage(v) => Some(*v),
                _ => None,
            })
            .expect("static undervolt expected");
        assert!(v >= Millivolts::new(830) && v < Millivolts::new(870), "{v}");
        // Subsequent events are quiescent: no pins, no voltage churn.
        let view2 = mk_view(&chip, (1..=8).map(|i| waiting(i, 1)).collect());
        let acts2 = d.on_event(&view2, &SysEvent::ProcessArrived(Pid(8)));
        assert!(acts2.is_empty(), "unexpected actions: {acts2:?}");
    }

    #[test]
    fn static_undervolt_is_safe_for_any_allocation() {
        // The static Safe Vmin voltage must satisfy the chip's real safe
        // Vmin for every allocation width at full speed.
        let chip = xg3_chip();
        let d = Daemon::safe_vmin_only(&chip);
        let v = d.table.static_safe_voltage(FreqVminClass::Max);
        for n in 1..=32u16 {
            let busy = CoreSet::first_n(n);
            let mut c = presets::xgene3().build();
            c.set_voltage(v).unwrap();
            assert!(
                c.is_voltage_safe_for(busy),
                "static {v} unsafe for {n} cores"
            );
        }
    }

    #[test]
    fn stats_accumulate() {
        let chip = xg3_chip();
        let mut d = Daemon::optimal(&chip);
        let view = mk_view(&chip, vec![waiting(1, 2)]);
        let _ = d.on_event(&view, &SysEvent::ProcessArrived(Pid(1)));
        let s = d.stats();
        assert_eq!(s.invocations, 1);
        assert!(s.plans >= 1);
        assert!(s.pins >= 1);
    }

    #[test]
    fn names_identify_configs() {
        let chip = xg3_chip();
        assert_eq!(Daemon::optimal(&chip).name(), "optimal");
        assert_eq!(Daemon::placement_only(&chip).name(), "placement");
        assert_eq!(Daemon::safe_vmin_only(&chip).name(), "safe-vmin");
    }

    // --- Fault recovery -----------------------------------------------

    use avfs_sched::driver::FaultNotice;
    use avfs_sim::time::SimDuration;

    fn last_voltage(acts: &[Action]) -> Option<Millivolts> {
        acts.iter().rev().find_map(|a| match a {
            Action::SetVoltage(v) => Some(*v),
            _ => None,
        })
    }

    #[test]
    fn consecutive_faults_trip_safe_mode_at_threshold() {
        let chip = xg3_chip();
        let mut d = Daemon::optimal(&chip);
        let _ = d.on_event(&mk_view(&chip, vec![]), &SysEvent::MonitorTick);
        let mut view = mk_view(
            &chip,
            vec![running(1, cores(&[0, 1]), IntensityClass::CpuIntensive)],
        );
        view.voltage = Millivolts::new(800);
        let fault = SysEvent::OperationFault(FaultNotice::VoltageRefused(Millivolts::new(790)));
        let k = d.config().recovery.safe_mode_threshold;
        for i in 1..k {
            let _ = d.on_event(&view, &fault);
            assert_eq!(
                d.recovery_state(),
                RecoveryState::Optimized,
                "must still be optimized after fault {i} of k={k}"
            );
        }
        let acts = d.on_event(&view, &fault);
        assert_eq!(d.recovery_state(), RecoveryState::SafeMode);
        // The fallback raises the rail to nominal.
        assert_eq!(last_voltage(&acts), Some(d.table.nominal()));
        let s = d.stats();
        assert_eq!(s.mailbox_faults, u64::from(k));
        assert_eq!(s.retries, u64::from(k - 1));
        assert_eq!(s.safe_mode_entries, 1);
        assert!(s.backoff_us > 0, "retries must account backoff time");
    }

    #[test]
    fn probation_exit_restores_the_prefault_voltage_target() {
        let chip = xg3_chip();
        let mut d = Daemon::optimal(&chip);
        let _ = d.on_event(&mk_view(&chip, vec![]), &SysEvent::MonitorTick);
        let view = mk_view(
            &chip,
            vec![running(1, cores(&[0, 1]), IntensityClass::CpuIntensive)],
        );
        let prefault =
            last_voltage(&d.on_event(&view, &SysEvent::ProcessFinished(Pid(9)))).unwrap();
        assert!(prefault < d.table.nominal(), "expected an undervolt");

        let fault = SysEvent::OperationFault(FaultNotice::VoltageRefused(prefault));
        for _ in 0..d.config().recovery.safe_mode_threshold {
            let _ = d.on_event(&view, &fault);
        }
        assert_eq!(d.recovery_state(), RecoveryState::SafeMode);
        // While pessimizing, no undervolt is attempted (rail already
        // nominal in this view).
        let safe_acts = d.on_event(&view, &SysEvent::ProcessFinished(Pid(8)));
        assert_eq!(last_voltage(&safe_acts), None);

        // Burn through the safe-mode hold and the probation window with
        // clean events; the exit replan must re-aim the exact pre-fault
        // target.
        let total = d.config().recovery.safe_hold_events + d.config().recovery.probation_events;
        let mut last = None;
        for _ in 0..total {
            last = last_voltage(&d.on_event(&view, &SysEvent::ProcessFinished(Pid(7))));
        }
        assert_eq!(d.recovery_state(), RecoveryState::Optimized);
        assert_eq!(last, Some(prefault));
        assert_eq!(d.stats().safe_mode_exits, 1);
    }

    #[test]
    fn watchdog_rescues_hung_migrations_only() {
        let chip = xg3_chip();
        let mut d = Daemon::optimal(&chip);
        let _ = d.on_event(&mk_view(&chip, vec![]), &SysEvent::MonitorTick);
        let mut view = mk_view(
            &chip,
            vec![
                running(1, cores(&[0, 1]), IntensityClass::CpuIntensive),
                running(2, cores(&[2]), IntensityClass::CpuIntensive),
            ],
        );
        view.now = SimTime::from_secs(10);
        // Process 1's migration is wedged; process 2 is in a normal pause.
        view.processes[0].stalled_until = Some(SimTime::from_secs(3_600));
        view.processes[1].stalled_until = Some(view.now + SimDuration::from_millis(2));
        let acts = d.on_event(&view, &SysEvent::MonitorTick);
        assert!(
            acts.iter()
                .any(|a| matches!(a, Action::PinProcess(Pid(1), cs) if *cs == cores(&[0, 1]))),
            "expected a same-cores rescue pin in {acts:?}"
        );
        assert_eq!(d.stats().watchdog_fires, 1);
    }

    #[test]
    fn droop_alert_bumps_the_guardband_and_releases() {
        let chip = xg3_chip();
        let mut d = Daemon::optimal(&chip);
        let _ = d.on_event(&mk_view(&chip, vec![]), &SysEvent::MonitorTick);
        let view = mk_view(
            &chip,
            vec![running(1, cores(&[0, 1]), IntensityClass::CpuIntensive)],
        );
        let calm = last_voltage(&d.on_event(&view, &SysEvent::ProcessFinished(Pid(9)))).unwrap();

        let mut alert = view.clone();
        alert.droop_alert = true;
        let acts = d.on_event(&alert, &SysEvent::MonitorTick);
        assert!(d.droop_guard_active());
        assert_eq!(d.stats().droop_emergencies, 1);
        let bump = d.config().recovery.droop_emergency_mv as i32;
        assert_eq!(
            last_voltage(&acts),
            Some(calm.offset(bump).min(d.table.nominal()))
        );

        // Alert clears: the guard releases and the target settles back.
        let acts = d.on_event(&view, &SysEvent::MonitorTick);
        assert!(!d.droop_guard_active());
        assert_eq!(last_voltage(&acts), Some(calm));
    }

    #[test]
    fn static_config_retries_the_lost_request_verbatim() {
        let chip = xg3_chip();
        let mut d = Daemon::safe_vmin_only(&chip);
        let view = mk_view(&chip, vec![]);
        let target = last_voltage(&d.on_event(&view, &SysEvent::MonitorTick)).unwrap();
        let acts = d.on_event(
            &view,
            &SysEvent::OperationFault(FaultNotice::VoltageDropped(target)),
        );
        assert_eq!(last_voltage(&acts), Some(target));
        assert_eq!(d.stats().retries, 1);
    }
}
