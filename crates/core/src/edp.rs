//! Energy-delay metrics and the frequency-policy rationale (§V-B).
//!
//! The paper uses the energy-delay-squared product (`ED2P = E × D²`) to
//! compare configurations because plain energy rewards arbitrarily slow
//! systems. The helpers here estimate, from a process's memory share, how
//! a frequency reduction moves its delay, energy, and ED2P — the analytic
//! justification for the daemon's rule "reduce frequency only for
//! memory-intensive processes".

use serde::{Deserialize, Serialize};

/// Predicted relative effect of running a workload at a fraction of full
/// frequency (all quantities relative to the full-speed run).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingEstimate {
    /// Delay multiplier (≥ 1 for frequency reductions).
    pub delay: f64,
    /// Dynamic-energy multiplier (voltage effects not included).
    pub dynamic_energy: f64,
    /// ED2P multiplier combining both.
    pub ed2p: f64,
}

/// Estimates the effect of scaling core frequency to `freq_ratio`
/// (e.g. 0.5 for half speed) on a workload spending `mem_fraction` of its
/// full-speed time in memory stalls, with a dynamic-power share
/// `dyn_power_share` of total power and an optional voltage ratio
/// `volt_ratio` enabled by the lower frequency class.
///
/// The delay model is the core/memory split of §IV-B:
/// `D(r) = (1 - m) / r + m`. Power scales as `r·v²` for the dynamic share
/// and `v²..v³` for the static share (we use `v²` — conservative).
///
/// # Panics
///
/// Panics if `freq_ratio` is not in `(0, 1]` or `mem_fraction` not in
/// `[0, 1)`.
pub fn scaling_estimate(
    mem_fraction: f64,
    freq_ratio: f64,
    dyn_power_share: f64,
    volt_ratio: f64,
) -> ScalingEstimate {
    assert!(
        freq_ratio > 0.0 && freq_ratio <= 1.0,
        "freq ratio {freq_ratio} out of (0,1]"
    );
    assert!(
        (0.0..1.0).contains(&mem_fraction),
        "mem fraction {mem_fraction} out of [0,1)"
    );
    let delay = (1.0 - mem_fraction) / freq_ratio + mem_fraction;
    let v2 = volt_ratio * volt_ratio;
    let dyn_share = dyn_power_share.clamp(0.0, 1.0);
    // Power relative to full speed; energy = power × delay.
    let rel_power = dyn_share * freq_ratio * v2 + (1.0 - dyn_share) * v2;
    let energy = rel_power * delay;
    ScalingEstimate {
        delay,
        dynamic_energy: energy,
        ed2p: energy * delay * delay,
    }
}

/// True when reducing to `freq_ratio` is predicted to improve (reduce)
/// ED2P for a workload with the given memory share — the daemon's
/// frequency-policy test.
pub fn frequency_reduction_improves_ed2p(
    mem_fraction: f64,
    freq_ratio: f64,
    dyn_power_share: f64,
    volt_ratio: f64,
) -> bool {
    scaling_estimate(mem_fraction, freq_ratio, dyn_power_share, volt_ratio).ed2p < 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_bound_worsens_ed2p_at_half_speed() {
        // namd-like (m≈0.02): delay ≈ 1.96 → ED2P explodes even with a
        // voltage bonus.
        let est = scaling_estimate(0.02, 0.5, 0.7, 0.95);
        assert!(est.delay > 1.9);
        assert!(est.ed2p > 1.5, "ed2p {}", est.ed2p);
        assert!(!frequency_reduction_improves_ed2p(0.02, 0.5, 0.7, 0.95));
    }

    #[test]
    fn memory_bound_improves_ed2p_at_half_speed() {
        // CG-like under multicore contention: the effective memory share
        // rises to ~0.85 (Figure 8), and on X-Gene 2 the reduced class
        // enables a deep voltage cut (≈0.85 of the max-class Vmin). This
        // is exactly the regime where Figure 12's memory-intensive curves
        // invert.
        let est = scaling_estimate(0.85, 0.5, 0.7, 0.85);
        assert!(est.delay < 1.2);
        assert!(est.ed2p < 1.0, "ed2p {}", est.ed2p);
        assert!(frequency_reduction_improves_ed2p(0.85, 0.5, 0.7, 0.85));
    }

    #[test]
    fn full_speed_is_identity() {
        let est = scaling_estimate(0.3, 1.0, 0.7, 1.0);
        assert!((est.delay - 1.0).abs() < 1e-12);
        assert!((est.dynamic_energy - 1.0).abs() < 1e-12);
        assert!((est.ed2p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn voltage_bonus_helps_energy() {
        let without = scaling_estimate(0.5, 0.5, 0.7, 1.0);
        let with = scaling_estimate(0.5, 0.5, 0.7, 0.9);
        assert!(with.dynamic_energy < without.dynamic_energy);
        assert!(with.ed2p < without.ed2p);
        assert_eq!(with.delay, without.delay);
    }

    #[test]
    fn there_is_a_crossover_mem_fraction() {
        // Somewhere between namd and CG the half-speed decision flips —
        // the existence of the Figure 12 crossover (voltage ratio of the
        // X-Gene 2 divided class).
        let improves = |m: f64| frequency_reduction_improves_ed2p(m, 0.5, 0.7, 0.85);
        assert!(!improves(0.05));
        assert!(improves(0.85));
        let mut lo = 0.05;
        let mut hi = 0.85;
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if improves(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        // The crossover sits in a plausible mid-to-high range.
        assert!(lo > 0.2 && hi < 0.85, "crossover near {lo}");
    }

    #[test]
    #[should_panic(expected = "freq ratio")]
    fn rejects_zero_ratio() {
        let _ = scaling_estimate(0.5, 0.0, 0.7, 1.0);
    }
}
