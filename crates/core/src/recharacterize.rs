//! When to re-measure: the daemon-side recharacterization trigger.
//!
//! A policy table compiled from measurements goes stale when the silicon
//! drifts (aging, temperature). The observable symptom is *elevated
//! droop-guard engagement*: a drifted chip raises its true Vmin, droop
//! excursions bite closer to the programmed voltages, and the guard stays
//! engaged for sustained stretches instead of isolated blips.
//!
//! [`RecharacterizeTrigger`] watches exactly that signal, window by
//! window, and fires when the guard has been engaged for a sustained
//! streak *and* the chip is idle enough to give a campaign exclusive use
//! of the cores. The campaign itself lives in `avfs-characterize` (which
//! depends on this crate, not the other way around); the trigger is the
//! daemon-side scheduling seam.

use serde::{Deserialize, Serialize};

/// Decides when a drifted chip has earned an idle-window
/// recharacterization pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecharacterizeTrigger {
    /// Consecutive guard-engaged windows required before firing.
    sustain_windows: u32,
    /// Windows to stay quiet after firing (a fresh campaign needs time
    /// to land before the signal is trusted again).
    cooldown_windows: u32,
    /// Current guard-engaged streak.
    streak: u32,
    /// Remaining cooldown, counted down every observed window.
    cooldown_left: u32,
    /// Total times the trigger has fired.
    fires: u64,
}

impl RecharacterizeTrigger {
    /// A trigger that fires after `sustain_windows` consecutive
    /// guard-engaged monitor windows, then holds off for
    /// `cooldown_windows`.
    ///
    /// # Panics
    ///
    /// Panics if `sustain_windows` is zero (the trigger would fire on
    /// every isolated droop blip).
    pub fn new(sustain_windows: u32, cooldown_windows: u32) -> Self {
        assert!(sustain_windows > 0, "sustain must be at least one window");
        RecharacterizeTrigger {
            sustain_windows,
            cooldown_windows,
            streak: 0,
            cooldown_left: 0,
            fires: 0,
        }
    }

    /// Feeds one closed monitor window: whether the droop guard was
    /// engaged, and whether the chip is idle enough to characterize.
    /// Returns `true` when a recharacterization pass should start now.
    pub fn observe(&mut self, droop_guard_active: bool, idle: bool) -> bool {
        let in_cooldown = self.cooldown_left > 0;
        if in_cooldown {
            self.cooldown_left -= 1;
            // Streak accounting continues through cooldown so a guard
            // that never releases re-fires immediately afterwards.
        }
        if droop_guard_active {
            self.streak = self.streak.saturating_add(1);
        } else {
            self.streak = 0;
        }
        if self.streak >= self.sustain_windows && idle && !in_cooldown {
            self.fires += 1;
            self.cooldown_left = self.cooldown_windows;
            self.streak = 0;
            true
        } else {
            false
        }
    }

    /// Current consecutive guard-engaged window count.
    pub fn streak(&self) -> u32 {
        self.streak
    }

    /// How many times the trigger has fired.
    pub fn fires(&self) -> u64 {
        self.fires
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_only_on_a_sustained_streak_while_idle() {
        let mut t = RecharacterizeTrigger::new(3, 0);
        // Isolated blips never fire.
        for _ in 0..10 {
            assert!(!t.observe(true, true) | !t.observe(false, true));
        }
        // Sustained engagement fires on the third window — but only idle.
        let mut t = RecharacterizeTrigger::new(3, 0);
        assert!(!t.observe(true, true));
        assert!(!t.observe(true, true));
        assert!(!t.observe(true, false), "busy chip must not fire");
        assert!(t.observe(true, true), "idle + sustained must fire");
    }

    #[test]
    fn cooldown_suppresses_refires() {
        let mut t = RecharacterizeTrigger::new(2, 5);
        assert!(!t.observe(true, true));
        assert!(t.observe(true, true));
        // Guard still engaged (swap not landed yet): quiet for 5 windows.
        let mut fired = 0;
        for _ in 0..5 {
            if t.observe(true, true) {
                fired += 1;
            }
        }
        assert_eq!(fired, 0, "cooldown violated");
        assert!(t.observe(true, true), "re-fires after cooldown");
        assert_eq!(t.fires(), 2);
    }

    #[test]
    fn release_resets_the_streak() {
        let mut t = RecharacterizeTrigger::new(3, 0);
        assert!(!t.observe(true, true));
        assert!(!t.observe(true, true));
        assert!(!t.observe(false, true));
        assert_eq!(t.streak(), 0);
        assert!(!t.observe(true, true));
        assert!(!t.observe(true, true));
        assert!(t.observe(true, true));
    }
}
