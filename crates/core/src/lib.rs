//! The paper's contribution: an online monitoring + placement daemon for
//! balanced energy and performance on multicore CPUs.
//!
//! This crate implements §VI of *"Adaptive Voltage/Frequency Scaling and
//! Core Allocation for Balanced Energy and Performance on Multicore CPUs"*
//! (HPCA 2019) on top of the simulated substrate:
//!
//! * [`policy`] — the characterized safe-Vmin policy table (Table II):
//!   droop class from utilized PMDs × frequency class → safe voltage,
//!   with a worst-case workload margin;
//! * [`monitor`] — the Monitoring part: per-process L3C-rate tracking and
//!   CPU- vs memory-intensive classification (threshold 3000 per
//!   1 M cycles, Figure 9);
//! * [`allocation`] — the core-allocation planner: CPU-intensive
//!   processes *clustered* onto the fewest PMDs at full speed,
//!   memory-intensive processes *spreaded* across the remaining PMDs at
//!   reduced speed (Figures 7/11/12);
//! * [`daemon`] — the Placement part (Figure 13): reacts to process
//!   arrivals, completions, and class changes; migrates processes;
//!   programs per-PMD frequencies; and adjusts the rail voltage with the
//!   **fail-safe ordering** — raise voltage *before* any change that
//!   could raise the safe Vmin, lower it only afterwards;
//! * [`recovery`] — the fault-recovery machinery: bounded jittered retry
//!   for failed SLIMpro requests, the three-state safe-mode fallback
//!   (optimized → safe mode → probation), and the tuning knobs for the
//!   migration watchdog and droop-emergency guardband;
//! * [`configs`] — the four evaluation configurations of §VI-B
//!   (Baseline / Safe Vmin / Placement / Optimal) as ready-made drivers;
//! * [`edp`] — ED2P/EDP estimation helpers used by the frequency policy
//!   rationale.
//!
//! # Example
//!
//! ```
//! use avfs_chip::presets;
//! use avfs_core::configs::EvalConfig;
//! use avfs_sched::system::{System, SystemConfig};
//! use avfs_workloads::{GeneratorConfig, PerfModel, WorkloadTrace};
//! use avfs_sim::time::SimDuration;
//!
//! let mut gen = GeneratorConfig::paper_default(8, 1);
//! gen.duration = SimDuration::from_secs(120);
//! gen.job_scale = 0.15;
//! let trace = WorkloadTrace::generate(&gen);
//!
//! let chip = presets::xgene2().build();
//! let mut driver = EvalConfig::Optimal.driver(&chip);
//! let mut system = System::new(chip, PerfModel::xgene2(), SystemConfig::default());
//! let metrics = system.run(&trace, driver.as_mut());
//! assert_eq!(metrics.unsafe_time_s, 0.0); // fail-safe ordering held
//! ```

pub mod allocation;
pub mod configs;
pub mod daemon;
pub mod edp;
pub mod monitor;
pub mod policy;
pub mod recharacterize;
pub mod recovery;
pub mod service;

pub use configs::EvalConfig;
pub use daemon::{Daemon, DaemonConfig};
pub use policy::{PolicyError, PolicyTable};
pub use recovery::{Recovery, RecoveryConfig, RecoveryState};
