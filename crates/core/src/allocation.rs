//! The core-allocation planner.
//!
//! §IV-B and §V of the paper establish the placement rules the daemon
//! enforces:
//!
//! * **CPU-intensive** processes run at full speed, and clustering them
//!   onto the fewest PMDs costs them nothing (no shared-L2 pressure)
//!   while shrinking the utilized-PMD count — which lowers the droop
//!   class and with it the safe Vmin (Table II), and saves per-PMD clock
//!   power (Figure 7, left).
//! * **Memory-intensive** processes run at reduced speed (their time
//!   barely suffers, Figures 11/12) and are *spreaded* so no two share an
//!   L2 (Figure 7, right).
//!
//! [`plan_layout`] computes a full assignment from scratch: CPU threads
//! pack PMDs from the bottom of the chip, memory threads take one core
//! per PMD from the top, overflowing into second cores only when the
//! chip is too full to keep them exclusive. The layout is deterministic
//! in the process order, so replanning after an event only migrates
//! processes whose placement actually changed.

use avfs_chip::topology::{ChipSpec, CoreSet, PmdId};
use avfs_sched::process::Pid;
use avfs_workloads::classify::IntensityClass;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What a PMD is used for in a layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PmdRole {
    /// No threads assigned.
    Idle,
    /// Hosts at least one CPU-intensive thread (runs at full speed).
    Cpu,
    /// Hosts only memory-intensive threads (runs at the reduced step).
    Mem,
}

/// One process the planner must place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanProc {
    /// Process id (ordering key — keep stable across replans).
    pub pid: Pid,
    /// Thread count.
    pub threads: usize,
    /// Classification driving the placement rule.
    pub class: IntensityClass,
}

/// A complete placement decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layout {
    /// Core assignment per process.
    pub assignment: BTreeMap<Pid, CoreSet>,
    /// Role of each PMD.
    pub pmd_roles: Vec<PmdRole>,
    /// Processes that could not be placed (insufficient cores).
    pub unplaced: Vec<Pid>,
}

impl Layout {
    /// Number of PMDs with at least one assigned thread.
    pub fn utilized_pmds(&self) -> usize {
        self.pmd_roles
            .iter()
            .filter(|r| **r != PmdRole::Idle)
            .count()
    }

    /// Total placed threads.
    pub fn placed_threads(&self) -> usize {
        self.assignment.values().map(|cs| cs.len()).sum()
    }

    /// The union of all assigned cores.
    pub fn busy_cores(&self) -> CoreSet {
        self.assignment
            .values()
            .fold(CoreSet::EMPTY, |acc, cs| acc.union(*cs))
    }
}

/// Reusable planner state for [`plan_layout_into`].
///
/// Holding one of these across replans turns the planner allocation-free
/// on the steady state: the assignment/roles/unplaced buffers are cleared
/// and refilled in place instead of re-allocated per call. The filled
/// scratch exposes the same queries as [`Layout`] (borrowed, not owned);
/// callers that need an owned snapshot call [`LayoutScratch::to_layout`].
#[derive(Debug, Default, Clone)]
pub struct LayoutScratch {
    assignment: Vec<(Pid, CoreSet)>,
    pmd_roles: Vec<PmdRole>,
    unplaced: Vec<Pid>,
}

impl LayoutScratch {
    /// Core assignment per placed process, sorted by pid.
    pub fn assignment(&self) -> &[(Pid, CoreSet)] {
        &self.assignment
    }

    /// Assigned cores for `pid`, if it was placed.
    pub fn assignment_of(&self, pid: Pid) -> Option<CoreSet> {
        self.assignment
            .binary_search_by_key(&pid, |(p, _)| *p)
            .ok()
            .map(|i| self.assignment[i].1)
    }

    /// Role of each PMD.
    pub fn pmd_roles(&self) -> &[PmdRole] {
        &self.pmd_roles
    }

    /// Processes that could not be placed (insufficient cores).
    pub fn unplaced(&self) -> &[Pid] {
        &self.unplaced
    }

    /// Number of PMDs with at least one assigned thread.
    pub fn utilized_pmds(&self) -> usize {
        self.pmd_roles
            .iter()
            .filter(|r| **r != PmdRole::Idle)
            .count()
    }

    /// The union of all assigned cores.
    pub fn busy_cores(&self) -> CoreSet {
        self.assignment
            .iter()
            .fold(CoreSet::EMPTY, |acc, (_, cs)| acc.union(*cs))
    }

    /// Owned [`Layout`] snapshot of the current plan.
    pub fn to_layout(&self) -> Layout {
        Layout {
            assignment: self.assignment.iter().copied().collect(),
            pmd_roles: self.pmd_roles.clone(),
            unplaced: self.unplaced.clone(),
        }
    }
}

/// Plans a full layout for `procs` on `spec`.
///
/// Processes are placed in the given order (callers should pass a stable
/// order, e.g. by pid): CPU-intensive first packing cores bottom-up,
/// memory-intensive then taking one core per free PMD from the top,
/// doubling up only when unavoidable. A process whose threads do not fit
/// in the remaining cores is reported in [`Layout::unplaced`].
///
/// Convenience wrapper over [`plan_layout_into`] that allocates a fresh
/// scratch per call; hot paths (the daemon's replan loop) should hold a
/// [`LayoutScratch`] and call [`plan_layout_into`] directly.
pub fn plan_layout(spec: &ChipSpec, procs: &[PlanProc]) -> Layout {
    let mut scratch = LayoutScratch::default();
    plan_layout_into(spec, procs, &mut scratch);
    scratch.to_layout()
}

/// Plans a full layout for `procs` on `spec` into caller-provided scratch
/// buffers, allocating nothing once the scratch has warmed up.
///
/// Semantics are identical to [`plan_layout`] (it is implemented on top
/// of this); the scratch is fully overwritten, so stale contents never
/// leak into the new plan.
pub fn plan_layout_into(spec: &ChipSpec, procs: &[PlanProc], scratch: &mut LayoutScratch) {
    let pmds = spec.pmds() as usize;
    let mut taken = CoreSet::EMPTY;
    scratch.pmd_roles.clear();
    scratch.pmd_roles.resize(pmds, PmdRole::Idle);
    scratch.assignment.clear();
    scratch.unplaced.clear();
    let roles = &mut scratch.pmd_roles;
    let assignment = &mut scratch.assignment;
    let unplaced = &mut scratch.unplaced;

    // --- Pass 1: CPU-intensive, clustered bottom-up. ---
    for p in procs
        .iter()
        .filter(|p| p.class == IntensityClass::CpuIntensive)
    {
        let mut chosen = CoreSet::EMPTY;
        // Fill partially-used CPU PMDs first, then fresh PMDs bottom-up.
        'outer: for preferred_partial in [true, false] {
            for pmd_idx in 0..pmds {
                let pmd = PmdId::new(pmd_idx as u16);
                if roles.get(pmd_idx) == Some(&PmdRole::Mem) {
                    continue;
                }
                let cores = spec.cores_of(pmd);
                let used = cores.iter().filter(|&&c| taken.contains(c)).count();
                let partial = used > 0 && used < cores.len();
                if preferred_partial != partial {
                    continue;
                }
                for &core in &cores {
                    if chosen.len() == p.threads {
                        break 'outer;
                    }
                    if !taken.contains(core) && !chosen.contains(core) {
                        chosen.insert(core);
                    }
                }
                if chosen.len() == p.threads {
                    break 'outer;
                }
            }
        }
        if chosen.len() == p.threads {
            for c in chosen.iter() {
                taken.insert(c);
                roles[spec.pmd_of(c).index()] = PmdRole::Cpu;
            }
            assignment.push((p.pid, chosen));
        } else {
            unplaced.push(p.pid);
        }
    }

    // --- Pass 2: memory-intensive, spreaded top-down. ---
    for p in procs
        .iter()
        .filter(|p| p.class == IntensityClass::MemoryIntensive)
    {
        let mut chosen = CoreSet::EMPTY;
        // First sweep: one core per PMD with no threads yet (exclusive L2),
        // from the top of the chip. Second sweep: PMDs where only mem
        // threads live (keep away from CPU PMDs). Final sweep: anything.
        for sweep in 0..3 {
            for pmd_idx in (0..pmds).rev() {
                if chosen.len() == p.threads {
                    break;
                }
                let pmd = PmdId::new(pmd_idx as u16);
                let role = roles[pmd_idx];
                let cores = spec.cores_of(pmd);
                let used = cores
                    .iter()
                    .filter(|&&c| taken.contains(c) || chosen.contains(c))
                    .count();
                let eligible = match sweep {
                    0 => role != PmdRole::Cpu && used == 0,
                    1 => role != PmdRole::Cpu && used < cores.len(),
                    _ => used < cores.len(),
                };
                if !eligible {
                    continue;
                }
                // Take one core per PMD per sweep to keep spreading.
                if let Some(&core) = cores
                    .iter()
                    .find(|&&c| !taken.contains(c) && !chosen.contains(c))
                {
                    chosen.insert(core);
                }
            }
            if chosen.len() == p.threads {
                break;
            }
        }
        if chosen.len() == p.threads {
            for c in chosen.iter() {
                taken.insert(c);
                let idx = spec.pmd_of(c).index();
                if roles[idx] == PmdRole::Idle {
                    roles[idx] = PmdRole::Mem;
                }
            }
            assignment.push((p.pid, chosen));
        } else {
            unplaced.push(p.pid);
        }
    }

    // CPU pids and mem pids interleave across the two passes; restore the
    // pid order the lookup API promises.
    assignment.sort_unstable_by_key(|(pid, _)| *pid);
    debug_assert_layout(spec, procs, scratch);
}

/// Structural invariants every layout must satisfy; checked at the end of
/// [`plan_layout`] in debug builds and re-verified exhaustively by the
/// `avfs-analyze` invariant registry and race harness.
fn debug_assert_layout(spec: &ChipSpec, procs: &[PlanProc], layout: &LayoutScratch) {
    if cfg!(debug_assertions) {
        let mut seen = CoreSet::EMPTY;
        for (pid, cores) in &layout.assignment {
            debug_assert!(
                seen.intersection(*cores).is_empty(),
                "{pid} assignment {cores} overlaps another process"
            );
            debug_assert!(
                cores.iter().all(|c| spec.contains_core(c)),
                "{pid} assignment {cores} leaves the chip"
            );
            seen = seen.union(*cores);
        }
        for (pid, cores) in &layout.assignment {
            let threads = procs.iter().find(|p| p.pid == *pid).map(|p| p.threads);
            debug_assert!(
                threads == Some(cores.len()),
                "{pid} holds {} cores for {threads:?} threads",
                cores.len()
            );
        }
        for pmd in spec.all_pmds() {
            let busy = spec.cores_of(pmd).iter().any(|&c| seen.contains(c));
            debug_assert!(
                busy != (layout.pmd_roles[pmd.index()] == PmdRole::Idle),
                "{pmd} role {:?} disagrees with its occupancy",
                layout.pmd_roles[pmd.index()]
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_chip::presets;
    use avfs_chip::topology::CoreId;

    fn spec32() -> ChipSpec {
        presets::xgene3().spec().clone()
    }

    fn spec8() -> ChipSpec {
        presets::xgene2().spec().clone()
    }

    fn cpu(pid: u64, threads: usize) -> PlanProc {
        PlanProc {
            pid: Pid(pid),
            threads,
            class: IntensityClass::CpuIntensive,
        }
    }

    fn mem(pid: u64, threads: usize) -> PlanProc {
        PlanProc {
            pid: Pid(pid),
            threads,
            class: IntensityClass::MemoryIntensive,
        }
    }

    #[test]
    fn cpu_processes_cluster_onto_fewest_pmds() {
        let spec = spec32();
        let layout = plan_layout(&spec, &[cpu(1, 2), cpu(2, 2)]);
        // 4 CPU threads → exactly 2 PMDs utilized (clustered).
        assert_eq!(layout.utilized_pmds(), 2);
        assert!(layout.unplaced.is_empty());
        assert_eq!(layout.placed_threads(), 4);
        // And they're the bottom PMDs.
        assert_eq!(layout.pmd_roles[0], PmdRole::Cpu);
        assert_eq!(layout.pmd_roles[1], PmdRole::Cpu);
    }

    #[test]
    fn mem_processes_spread_one_per_pmd() {
        let spec = spec32();
        let layout = plan_layout(&spec, &[mem(1, 1), mem(2, 1), mem(3, 1), mem(4, 1)]);
        // 4 memory threads → 4 PMDs, each exclusive.
        assert_eq!(layout.utilized_pmds(), 4);
        for (pid, cores) in &layout.assignment {
            assert_eq!(cores.len(), 1, "{pid}");
        }
        // They occupy the top of the chip.
        assert_eq!(layout.pmd_roles[15], PmdRole::Mem);
        assert_eq!(layout.pmd_roles[0], PmdRole::Idle);
    }

    #[test]
    fn mixed_classes_use_disjoint_pmds() {
        let spec = spec32();
        let layout = plan_layout(&spec, &[cpu(1, 4), mem(2, 4)]);
        assert!(layout.unplaced.is_empty());
        // CPU threads on 2 PMDs (clustered), mem threads on 4 (spreaded).
        let cpu_pmds = layout
            .pmd_roles
            .iter()
            .filter(|r| **r == PmdRole::Cpu)
            .count();
        let mem_pmds = layout
            .pmd_roles
            .iter()
            .filter(|r| **r == PmdRole::Mem)
            .count();
        assert_eq!(cpu_pmds, 2);
        assert_eq!(mem_pmds, 4);
        // No core double-booked.
        assert_eq!(layout.busy_cores().len(), 8);
    }

    #[test]
    fn mem_threads_double_up_only_when_chip_is_tight() {
        let spec = spec8(); // 4 PMDs
                            // 6 memory threads on 4 PMDs: 4 exclusive + 2 doubled.
        let layout = plan_layout(&spec, &[mem(1, 6)]);
        assert!(layout.unplaced.is_empty());
        assert_eq!(layout.utilized_pmds(), 4);
        assert_eq!(layout.placed_threads(), 6);
    }

    #[test]
    fn overflow_reports_unplaced() {
        let spec = spec8();
        let layout = plan_layout(&spec, &[cpu(1, 8), mem(2, 1)]);
        assert_eq!(layout.unplaced, vec![Pid(2)]);
        assert_eq!(layout.placed_threads(), 8);
    }

    #[test]
    fn layout_is_deterministic_and_stable() {
        let spec = spec32();
        let procs = [cpu(3, 2), mem(5, 1), cpu(7, 1), mem(9, 2)];
        let a = plan_layout(&spec, &procs);
        let b = plan_layout(&spec, &procs);
        assert_eq!(a, b);
        // Removing an unrelated mem process must not move the cpu ones.
        let fewer = [cpu(3, 2), cpu(7, 1), mem(9, 2)];
        let c = plan_layout(&spec, &fewer);
        assert_eq!(a.assignment[&Pid(3)], c.assignment[&Pid(3)]);
        assert_eq!(a.assignment[&Pid(7)], c.assignment[&Pid(7)]);
    }

    #[test]
    fn cpu_fill_prefers_partial_pmds() {
        let spec = spec32();
        // 1-thread then 1-thread: both should land on PMD0 (clustered).
        let layout = plan_layout(&spec, &[cpu(1, 1), cpu(2, 1)]);
        assert_eq!(layout.utilized_pmds(), 1);
    }

    #[test]
    fn full_chip_layout_places_everything() {
        let spec = spec32();
        let procs: Vec<PlanProc> = (0..16)
            .map(|i| cpu(i, 1))
            .chain((16..32).map(|i| mem(i, 1)))
            .collect();
        let layout = plan_layout(&spec, &procs);
        assert!(layout.unplaced.is_empty());
        assert_eq!(layout.placed_threads(), 32);
        assert_eq!(layout.utilized_pmds(), 16);
    }

    #[test]
    fn mem_avoids_cpu_pmds_until_forced() {
        let spec = spec8();
        // 2 cpu threads on PMD0; 3 mem threads: PMDs 3,2,1 exclusive.
        let layout = plan_layout(&spec, &[cpu(1, 2), mem(2, 3)]);
        assert!(layout.unplaced.is_empty());
        assert_eq!(layout.pmd_roles[0], PmdRole::Cpu);
        for idx in [1usize, 2, 3] {
            assert_eq!(layout.pmd_roles[idx], PmdRole::Mem, "PMD{idx}");
        }
        // 4th mem thread would be forced next to a mem sibling, not the
        // CPU PMD.
        let layout2 = plan_layout(&spec, &[cpu(1, 2), mem(2, 4)]);
        assert!(layout2.unplaced.is_empty());
        let pmd0_cores: CoreSet = spec.cores_of(PmdId::new(0)).into_iter().collect();
        let mem_cores = layout2.assignment[&Pid(2)];
        assert!(mem_cores.intersection(pmd0_cores).is_empty());
    }

    #[test]
    fn single_core_helpers() {
        let spec = spec8();
        let layout = plan_layout(&spec, &[cpu(1, 1)]);
        assert_eq!(layout.busy_cores().len(), 1);
        assert!(layout.busy_cores().contains(CoreId::new(0)));
    }
}
