//! Self-healing machinery for the daemon's control loop.
//!
//! The real daemon talks to hardware that can misbehave: the SLIMpro
//! mailbox may refuse or lose a request, a migration may wedge in the
//! kernel, and a voltage-droop excursion may transiently raise the safe
//! Vmin. This module holds the pieces that keep the control loop live and
//! the chip safe through all of it:
//!
//! * **Bounded retry with exponential backoff.** A transient mailbox
//!   fault is retried up to a bound, with an exponentially growing,
//!   jittered backoff between attempts. In the simulator the backoff is
//!   *accounted* (the daemon reports how long it would have slept) rather
//!   than advancing simulated time — the fault feedback loop is
//!   synchronous within one event dispatch.
//! * **Safe-mode fallback.** After `safe_mode_threshold` *consecutive*
//!   faults (no intervening healthy event) the daemon stops optimizing:
//!   it requests the nominal voltage and plans as if no undervolt were
//!   available. Aborted action batches keep the old configuration, and
//!   the old configuration is always covered by the current rail voltage
//!   (fail-safe ordering), so holding position is safe.
//! * **Probation.** Safe mode is left in two stages: after a clean
//!   window the machine enters *probation* (still planning pessimistic
//!   voltages), and only after a further clean window does it resume
//!   optimized planning. A single fault during either stage drops it
//!   straight back to safe mode. Because the daemon's plan is a pure
//!   function of the system view, re-entry restores the exact pre-fault
//!   voltage/frequency targets.
//!
//! The three-state machine is deliberately independent of the daemon so
//! it can be tested exhaustively on its own (see also the property tests
//! in `avfs-analyze`).

use avfs_sim::rng::RngStream;
use avfs_sim::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Tuning knobs for the recovery machinery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Consecutive faults (no intervening healthy event) that trip the
    /// safe-mode fallback.
    pub safe_mode_threshold: u32,
    /// Base backoff before the first retry, microseconds.
    pub backoff_base_us: u64,
    /// Backoff doubles per consecutive fault up to `base << cap_exp`.
    pub backoff_cap_exp: u32,
    /// Healthy events required in safe mode before probation begins.
    pub safe_hold_events: u32,
    /// Healthy events required in probation before optimized planning
    /// resumes.
    pub probation_events: u32,
    /// A migration whose stall extends further than this past "now" is
    /// considered hung and gets rescued (re-pinned). Must exceed the
    /// system's normal migration pause.
    pub watchdog_timeout: SimDuration,
    /// Extra guardband added to every voltage target while a droop
    /// excursion is alerting, mV. Chosen to cover the excursion's Vmin
    /// bump (20 mV in the chip model) with margin.
    pub droop_emergency_mv: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            safe_mode_threshold: 3,
            backoff_base_us: 100,
            backoff_cap_exp: 6,
            safe_hold_events: 4,
            probation_events: 4,
            watchdog_timeout: SimDuration::from_millis(100),
            droop_emergency_mv: 25,
        }
    }
}

/// Where the control loop currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryState {
    /// Normal operation: full undervolting per the policy table.
    Optimized,
    /// Fault threshold tripped: nominal voltage, pessimistic planning.
    SafeMode,
    /// Clean window observed in safe mode: still planning pessimistic
    /// voltages, watching for a relapse before resuming optimization.
    Probation,
}

impl RecoveryState {
    /// Stable snake_case label used in telemetry traces and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            RecoveryState::Optimized => "optimized",
            RecoveryState::SafeMode => "safe_mode",
            RecoveryState::Probation => "probation",
        }
    }
}

impl fmt::Display for RecoveryState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What the daemon should do about one fault notice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Retry the failed intent after the given (accounted) backoff.
    Retry {
        /// Microseconds the daemon would sleep before this attempt.
        backoff_us: u64,
    },
    /// The consecutive-fault threshold tripped: fall back to nominal
    /// voltage and pessimistic planning.
    EnterSafeMode,
    /// Already in safe mode (or probation, which relapsed): keep
    /// requesting the safe nominal target.
    HoldSafe,
}

/// The three-state fault-recovery machine.
#[derive(Debug, Clone)]
pub struct Recovery {
    config: RecoveryConfig,
    state: RecoveryState,
    consecutive_faults: u32,
    clean_events: u32,
    rng: RngStream,
}

impl Recovery {
    /// A machine in the `Optimized` state; `seed` feeds the backoff
    /// jitter (deterministic per seed).
    pub fn new(config: RecoveryConfig, seed: u64) -> Self {
        Recovery {
            config,
            state: RecoveryState::Optimized,
            consecutive_faults: 0,
            clean_events: 0,
            rng: RngStream::from_root(seed, "daemon-recovery"),
        }
    }

    /// The current state.
    pub fn state(&self) -> RecoveryState {
        self.state
    }

    /// The configuration in effect.
    pub fn config(&self) -> &RecoveryConfig {
        &self.config
    }

    /// True while planning must pessimize voltage targets to nominal.
    pub fn pessimize_voltage(&self) -> bool {
        self.state != RecoveryState::Optimized
    }

    /// Consecutive faults recorded since the last healthy event.
    pub fn consecutive_faults(&self) -> u32 {
        self.consecutive_faults
    }

    /// Healthy events accumulated toward the next state transition.
    pub fn clean_events(&self) -> u32 {
        self.clean_events
    }

    /// Deterministic fingerprint of the machine's control-relevant state:
    /// the state itself plus both progress counters. The backoff-jitter
    /// stream is excluded on purpose — it only flavors the *accounted*
    /// backoff duration reported to telemetry, never a control decision,
    /// so two machines with equal fingerprints behave identically.
    pub fn fingerprint(&self) -> u64 {
        let tag: u64 = match self.state {
            RecoveryState::Optimized => 0,
            RecoveryState::SafeMode => 1,
            RecoveryState::Probation => 2,
        };
        tag | (u64::from(self.consecutive_faults) << 2) | (u64::from(self.clean_events) << 33)
    }

    /// Exponential backoff with ±25% jitter for the `n`-th consecutive
    /// fault (1-based).
    fn backoff_us(&mut self, nth: u32) -> u64 {
        let exp = (nth.saturating_sub(1)).min(self.config.backoff_cap_exp);
        let base = self.config.backoff_base_us << exp;
        // Jitter in [0.75, 1.25) de-synchronizes retry storms.
        let jitter = self.rng.uniform(0.75, 1.25);
        (base as f64 * jitter) as u64
    }

    /// Records one fault notice and decides the response.
    pub fn on_fault(&mut self) -> FaultDecision {
        self.clean_events = 0;
        match self.state {
            RecoveryState::Optimized => {
                self.consecutive_faults += 1;
                if self.consecutive_faults >= self.config.safe_mode_threshold {
                    self.state = RecoveryState::SafeMode;
                    FaultDecision::EnterSafeMode
                } else {
                    let backoff_us = self.backoff_us(self.consecutive_faults);
                    FaultDecision::Retry { backoff_us }
                }
            }
            RecoveryState::Probation => {
                // Relapse: straight back to safe mode, no second chances.
                self.state = RecoveryState::SafeMode;
                FaultDecision::HoldSafe
            }
            RecoveryState::SafeMode => FaultDecision::HoldSafe,
        }
    }

    /// Records one healthy (non-fault) event; returns `true` when the
    /// machine just re-entered `Optimized` (a safe-mode exit).
    pub fn on_clean_event(&mut self) -> bool {
        self.consecutive_faults = 0;
        match self.state {
            RecoveryState::Optimized => false,
            RecoveryState::SafeMode => {
                self.clean_events += 1;
                if self.clean_events >= self.config.safe_hold_events {
                    self.state = RecoveryState::Probation;
                    self.clean_events = 0;
                }
                false
            }
            RecoveryState::Probation => {
                self.clean_events += 1;
                if self.clean_events >= self.config.probation_events {
                    self.state = RecoveryState::Optimized;
                    self.clean_events = 0;
                    true
                } else {
                    false
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(k: u32) -> Recovery {
        Recovery::new(
            RecoveryConfig {
                safe_mode_threshold: k,
                ..RecoveryConfig::default()
            },
            7,
        )
    }

    #[test]
    fn defaults_are_sane() {
        let c = RecoveryConfig::default();
        assert!(c.safe_mode_threshold >= 1);
        assert!(c.watchdog_timeout > SimDuration::from_millis(2));
        assert!(c.droop_emergency_mv >= 20);
    }

    #[test]
    fn engages_safe_mode_at_exactly_k() {
        for k in 1..=6 {
            let mut r = machine(k);
            for i in 1..k {
                assert!(
                    matches!(r.on_fault(), FaultDecision::Retry { .. }),
                    "fault {i} of k={k} must retry"
                );
                assert_eq!(r.state(), RecoveryState::Optimized);
            }
            assert_eq!(r.on_fault(), FaultDecision::EnterSafeMode, "k={k}");
            assert_eq!(r.state(), RecoveryState::SafeMode);
        }
    }

    #[test]
    fn clean_event_resets_the_consecutive_count() {
        let mut r = machine(3);
        let _ = r.on_fault();
        let _ = r.on_fault();
        let _ = r.on_clean_event();
        // Two more faults are again below the threshold.
        assert!(matches!(r.on_fault(), FaultDecision::Retry { .. }));
        assert!(matches!(r.on_fault(), FaultDecision::Retry { .. }));
        assert_eq!(r.state(), RecoveryState::Optimized);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let mut r = machine(100);
        let mut last = 0u64;
        let mut samples = Vec::new();
        for _ in 0..12 {
            if let FaultDecision::Retry { backoff_us } = r.on_fault() {
                samples.push(backoff_us);
            }
        }
        // Mid-ladder samples grow roughly geometrically (jitter is ±25%,
        // doubling dominates it).
        for (i, &b) in samples.iter().enumerate() {
            if (1..=6).contains(&i) {
                assert!(b > last, "backoff must grow at step {i}: {samples:?}");
            }
            last = b;
        }
        // Capped: no sample exceeds base << cap * 1.25.
        let cap = (100u64 << 6) as f64 * 1.25;
        assert!(samples.iter().all(|&b| (b as f64) <= cap), "{samples:?}");
    }

    #[test]
    fn exit_requires_both_clean_windows() {
        let cfg = RecoveryConfig {
            safe_mode_threshold: 1,
            safe_hold_events: 2,
            probation_events: 3,
            ..RecoveryConfig::default()
        };
        let mut r = Recovery::new(cfg, 1);
        assert_eq!(r.on_fault(), FaultDecision::EnterSafeMode);
        assert!(!r.on_clean_event());
        assert_eq!(r.state(), RecoveryState::SafeMode);
        assert!(!r.on_clean_event());
        assert_eq!(r.state(), RecoveryState::Probation);
        assert!(!r.on_clean_event());
        assert!(!r.on_clean_event());
        assert!(r.on_clean_event(), "third probation event exits");
        assert_eq!(r.state(), RecoveryState::Optimized);
    }

    #[test]
    fn probation_relapse_returns_to_safe_mode() {
        let cfg = RecoveryConfig {
            safe_mode_threshold: 1,
            safe_hold_events: 1,
            probation_events: 5,
            ..RecoveryConfig::default()
        };
        let mut r = Recovery::new(cfg, 2);
        let _ = r.on_fault();
        let _ = r.on_clean_event();
        assert_eq!(r.state(), RecoveryState::Probation);
        assert_eq!(r.on_fault(), FaultDecision::HoldSafe);
        assert_eq!(r.state(), RecoveryState::SafeMode);
        assert!(r.pessimize_voltage());
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let mut a = machine(100);
        let mut b = machine(100);
        for _ in 0..8 {
            assert_eq!(a.on_fault(), b.on_fault());
        }
    }
}
