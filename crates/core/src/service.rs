//! The daemon as a service: running the Placement logic on its own
//! thread, the way the real `avfsd` runs as a userspace process.
//!
//! The simulator calls drivers synchronously, but on a real machine the
//! daemon is a separate process: the kernel-module sampler and the
//! process-event watcher feed it events, and it answers with placement /
//! V-F commands. [`DaemonService`] reproduces that deployment shape:
//!
//! * events flow in over a crossbeam channel;
//! * the daemon state lives behind a `parking_lot::Mutex` shared with a
//!   [`ServiceHandle`] that implements [`Driver`], so the simulator (or
//!   several simulators in tests) can talk to one long-lived daemon
//!   thread;
//! * shutting down is explicit and non-blocking-safe (dropping the
//!   handle never deadlocks the worker).
//!
//! This module is deliberately a thin concurrency shell: all policy
//! stays in [`Daemon`], which keeps the single-threaded driver and the
//! threaded service bit-for-bit identical in their decisions.

use crate::daemon::Daemon;
use avfs_sched::driver::{Action, Driver, SysEvent, SystemView};
use avfs_telemetry::Telemetry;
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A request to the daemon thread.
enum Request {
    /// Handle one event against a view; reply with the actions.
    Event {
        view: Box<SystemView>,
        event: SysEvent,
        reply: Sender<Vec<Action>>,
    },
    /// Stop the worker.
    Shutdown,
}

/// The daemon running on its own thread.
#[derive(Debug)]
pub struct DaemonService {
    tx: Sender<Request>,
    worker: Option<JoinHandle<()>>,
    daemon: Arc<Mutex<Daemon>>,
}

impl DaemonService {
    /// Spawns the service around a configured daemon.
    ///
    /// # Panics
    ///
    /// Panics if the worker thread cannot be created; use
    /// [`DaemonService::try_spawn`] to handle that case.
    pub fn spawn(daemon: Daemon) -> DaemonService {
        match Self::try_spawn(daemon) {
            Ok(service) => service,
            Err(e) => panic!("failed to spawn the daemon worker thread: {e}"),
        }
    }

    /// Spawns the service with `telemetry` installed into the daemon
    /// first, so decisions made on the worker thread report through the
    /// observer. The `Telemetry` handle is `Send` and hub-backed handles
    /// share one journal, so the caller can keep a clone and snapshot
    /// while the service runs.
    ///
    /// # Panics
    ///
    /// Panics if the worker thread cannot be created; use
    /// [`DaemonService::try_spawn`] to handle that case.
    pub fn spawn_with_observer(mut daemon: Daemon, telemetry: Telemetry) -> DaemonService {
        daemon.set_telemetry(telemetry);
        Self::spawn(daemon)
    }

    /// Spawns the service, surfacing thread-creation failure (resource
    /// exhaustion) as an error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the [`std::io::Error`] from the OS if the worker thread
    /// cannot be created.
    pub fn try_spawn(daemon: Daemon) -> std::io::Result<DaemonService> {
        let daemon = Arc::new(Mutex::new(daemon));
        let worker_daemon = Arc::clone(&daemon);
        let (tx, rx): (Sender<Request>, Receiver<Request>) = bounded(16);
        let worker = std::thread::Builder::new()
            .name("avfsd".to_string())
            .spawn(move || {
                while let Ok(req) = rx.recv() {
                    match req {
                        Request::Event { view, event, reply } => {
                            let actions = worker_daemon.lock().on_event(&view, &event);
                            // A dropped reply receiver just means the
                            // caller gave up; the daemon state is already
                            // updated either way.
                            let _ = reply.send(actions);
                        }
                        Request::Shutdown => break,
                    }
                }
            })?;
        Ok(DaemonService {
            tx,
            worker: Some(worker),
            daemon,
        })
    }

    /// A [`Driver`] handle that forwards events to the daemon thread and
    /// waits for its decisions. Multiple handles may coexist.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            tx: self.tx.clone(),
            name: self.daemon.lock().name_owned(),
        }
    }

    /// Snapshot of the daemon's activity counters.
    pub fn stats(&self) -> crate::daemon::DaemonStats {
        self.daemon.lock().stats()
    }

    /// Stops the worker thread and waits for it to exit.
    ///
    /// Idempotent; also invoked on drop.
    pub fn shutdown(&mut self) {
        let _ = self.tx.send(Request::Shutdown);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for DaemonService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A cloneable driver endpoint for a [`DaemonService`].
#[derive(Debug, Clone)]
pub struct ServiceHandle {
    tx: Sender<Request>,
    name: String,
}

impl Driver for ServiceHandle {
    fn on_event(&mut self, view: &SystemView, event: &SysEvent) -> Vec<Action> {
        let (reply_tx, reply_rx) = bounded(1);
        let sent = self.tx.send(Request::Event {
            view: Box::new(view.clone()),
            event: *event,
            reply: reply_tx,
        });
        if sent.is_err() {
            // Service already shut down: fail open with no actions, as a
            // real system would keep running without its daemon.
            return Vec::new();
        }
        reply_rx.recv().unwrap_or_default()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_chip::presets;
    use avfs_sched::system::{System, SystemConfig};
    use avfs_sim::time::SimDuration;
    use avfs_workloads::generator::{GeneratorConfig, WorkloadTrace};
    use avfs_workloads::PerfModel;

    fn small_trace(seed: u64) -> WorkloadTrace {
        let mut cfg = GeneratorConfig::paper_default(8, seed);
        cfg.duration = SimDuration::from_secs(120);
        cfg.job_scale = 0.15;
        WorkloadTrace::generate(&cfg)
    }

    #[test]
    fn threaded_daemon_matches_inline_daemon_exactly() {
        let trace = small_trace(7);

        // Inline driver.
        let chip = presets::xgene2().build();
        let mut inline = Daemon::optimal(&chip);
        let mut sys1 = System::new(
            presets::xgene2().build(),
            PerfModel::xgene2(),
            SystemConfig::default(),
        );
        let m1 = sys1.run(&trace, &mut inline);

        // Same daemon behind the service thread.
        let mut service = DaemonService::spawn(Daemon::optimal(&chip));
        let mut handle = service.handle();
        let mut sys2 = System::new(
            presets::xgene2().build(),
            PerfModel::xgene2(),
            SystemConfig::default(),
        );
        let m2 = sys2.run(&trace, &mut handle);
        service.shutdown();

        assert_eq!(m1.energy_j.to_bits(), m2.energy_j.to_bits());
        assert_eq!(m1.makespan, m2.makespan);
        assert_eq!(m1.migrations, m2.migrations);
        assert_eq!(m1.unsafe_time_s, 0.0);
        assert_eq!(m2.unsafe_time_s, 0.0);
    }

    #[test]
    fn service_reports_stats() {
        let chip = presets::xgene3().build();
        let service = DaemonService::spawn(Daemon::optimal(&chip));
        let mut handle = service.handle();
        let mut sys = System::new(
            presets::xgene3().build(),
            PerfModel::xgene3(),
            SystemConfig::default(),
        );
        let mut cfg = GeneratorConfig::paper_default(32, 3);
        cfg.duration = SimDuration::from_secs(60);
        cfg.job_scale = 0.1;
        let trace = WorkloadTrace::generate(&cfg);
        let _ = sys.run(&trace, &mut handle);
        let stats = service.stats();
        assert!(stats.invocations > 0);
        assert!(stats.plans > 0);
    }

    #[test]
    fn handle_fails_open_after_shutdown() {
        let chip = presets::xgene2().build();
        let mut service = DaemonService::spawn(Daemon::optimal(&chip));
        let mut handle = service.handle();
        service.shutdown();
        // A view to poke the dead service with.
        let view = SystemView {
            now: avfs_sim::time::SimTime::ZERO,
            spec: chip.spec().clone(),
            voltage: chip.voltage(),
            pmd_steps: vec![avfs_chip::FreqStep::MAX; 4],
            governor: avfs_sched::governor::GovernorMode::Userspace,
            droop_alert: false,
            processes: vec![],
        };
        let actions = handle.on_event(&view, &SysEvent::MonitorTick);
        assert!(actions.is_empty());
    }

    #[test]
    fn try_spawn_yields_a_working_service() {
        let chip = presets::xgene2().build();
        let mut service =
            DaemonService::try_spawn(Daemon::optimal(&chip)).expect("thread creation");
        assert_eq!(service.handle().name(), "optimal");
        service.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let chip = presets::xgene2().build();
        let mut service = DaemonService::spawn(Daemon::optimal(&chip));
        service.shutdown();
        service.shutdown();
        drop(service); // must not hang or panic
    }
}
