//! The characterized safe-Vmin policy table (Table II).
//!
//! The paper deliberately avoids model-based Vmin *prediction* ("the
//! prediction schemes ... are error-prone and can lead to system
//! failures", §VI-A) and instead bakes the offline characterization into
//! a table: for each voltage-droop class (utilized PMDs) and frequency
//! class, the safe Vmin measured across *all* workloads. [`PolicyTable`]
//! is that artifact: it is built from a chip's Vmin model by querying the
//! worst-case (most voltage-hungry) workload at every operating point, so
//! a daemon driving voltages from the table can never undervolt a
//! running configuration.

use avfs_chip::freq::FreqVminClass;
use avfs_chip::vmin::{DroopClass, VminModel, VminQuery};
use avfs_chip::voltage::Millivolts;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Typed rejection from [`PolicyTable::from_raw`]: the raw cells would
/// build a table the regulator can never honour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PolicyError {
    /// A populated cell sits below the chip's absolute regulator floor —
    /// the daemon would request a voltage the rail refuses, so the table
    /// is rejected at construction instead of at `prove-policy` time.
    CellBelowFloor {
        /// Frequency-class row index (0 = Divided, 1 = Reduced, 2 = Max).
        freq_row: usize,
        /// Droop-class column index (`DroopClass::index()`).
        droop_index: usize,
        /// Thread-bucket index (`0..PolicyTable::THREAD_BUCKETS`).
        bucket: usize,
        /// The offending cell value.
        cell_mv: u32,
        /// The regulator floor the cell violates.
        floor_mv: u32,
    },
    /// A table characterized for a different chip shape was offered to a
    /// daemon: the PMD counts disagree, so every droop-class lookup
    /// would misclassify.
    PmdCountMismatch {
        /// PMDs the table was characterized for.
        table_pmds: usize,
        /// PMDs on the chip the daemon controls.
        chip_pmds: usize,
    },
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PolicyError::CellBelowFloor {
                freq_row,
                droop_index,
                bucket,
                cell_mv,
                floor_mv,
            } => write!(
                f,
                "policy cell [fc {freq_row}][dc {droop_index}][bucket {bucket}] = \
                 {cell_mv} mV is below the regulator floor {floor_mv} mV"
            ),
            PolicyError::PmdCountMismatch {
                table_pmds,
                chip_pmds,
            } => write!(
                f,
                "policy table characterized for {table_pmds} PMDs offered to a \
                 {chip_pmds}-PMD chip"
            ),
        }
    }
}

impl std::error::Error for PolicyError {}

/// Characterized safe-Vmin lookup for one chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyTable {
    /// `vmin_mv[freq_class][droop_class][threads_bucket]` — worst-case
    /// safe Vmin in millivolts. Thread buckets: 0 → 1 thread, 1 → 2,
    /// 2 → 3–4, 3 → many (the workload-delta decay steps of §III-A).
    vmin_mv: [[[u32; 4]; 4]; 3],
    /// Nominal voltage of the characterized chip.
    nominal_mv: u32,
    /// Total PMDs of the characterized chip.
    pmds: usize,
}

fn freq_row(class: FreqVminClass) -> usize {
    match class {
        FreqVminClass::Divided => 0,
        FreqVminClass::Reduced => 1,
        FreqVminClass::Max => 2,
    }
}

fn thread_bucket(threads: usize) -> usize {
    match threads {
        0 | 1 => 0,
        2 => 1,
        3 | 4 => 2,
        _ => 3,
    }
}

/// Representative thread count per bucket used during characterization
/// (the worst case within the bucket).
fn bucket_rep_threads(bucket: usize) -> usize {
    match bucket {
        0 => 1,
        1 => 2,
        2 => 3, // decay(3) == decay(4); 3 is within the bucket
        _ => 5, // ≥5 threads: the multicore regime
    }
}

impl PolicyTable {
    /// Builds the table by "characterizing" a chip: for every frequency
    /// class, droop class, and thread bucket, record the safe Vmin of the
    /// most voltage-hungry workload (sensitivity +1) on the weakest PMD
    /// combination — exactly what a 1000-run campaign over all benchmarks
    /// converges to.
    pub fn from_characterization(model: &VminModel) -> Self {
        let spec = model.spec();
        let pmds = spec.pmds() as usize;
        let worst_pmd_offset = (0..spec.pmds())
            .map(|i| model.pmd_offset_mv(avfs_chip::topology::PmdId::new(i)))
            .max()
            .unwrap_or(0)
            .max(0);
        let mut vmin_mv = [[[0u32; 4]; 4]; 3];
        for fc in [
            FreqVminClass::Divided,
            FreqVminClass::Reduced,
            FreqVminClass::Max,
        ] {
            for dc in DroopClass::ALL {
                // The largest utilized-PMD count still in this class. On
                // small chips some classes are unachievable (a 4-PMD
                // X-Gene 2 never lands in D25 with ≥1 PMD busy); those
                // entries are filled from the neighbouring class below.
                let utilized = (1..=pmds).rfind(|&u| DroopClass::from_utilized_pmds(spec, u) == dc);
                // The fewest threads that can utilize this many PMDs —
                // combinations below that are physically impossible, so
                // margins need not cover them.
                let min_threads = (1..=pmds)
                    .filter(|&u| DroopClass::from_utilized_pmds(spec, u) == dc)
                    .min()
                    .unwrap_or(1);
                let Some(utilized) = utilized else {
                    continue;
                };
                for (bucket, cell) in vmin_mv[freq_row(fc)][dc.index()].iter_mut().enumerate() {
                    let threads = bucket_rep_threads(bucket).max(min_threads);
                    let q = VminQuery {
                        freq_class: fc,
                        utilized_pmds: utilized,
                        active_threads: threads,
                        workload_sensitivity: 1.0,
                    };
                    let base = model.safe_vmin(&q);
                    // Static variation is visible at low thread counts;
                    // cover the weakest PMD with the same decay the
                    // model applies.
                    let visibility = model.workload_decay(threads);
                    let static_margin = (worst_pmd_offset as f64 * visibility).ceil() as i32;
                    *cell = base.offset(static_margin).as_mv();
                }
            }
            // Fill unachievable classes from the class above (safe and
            // monotone), then enforce monotonicity explicitly.
            let row = &mut vmin_mv[freq_row(fc)];
            // Column-wise fixup across the [droop][bucket] grid; the
            // coordinates themselves are the point of the traversal.
            #[allow(clippy::needless_range_loop)]
            for bucket in 0..4 {
                for dc in (0..3).rev() {
                    if row[dc][bucket] == 0 {
                        row[dc][bucket] = row[dc + 1][bucket];
                    }
                }
                for dc in 1..4 {
                    row[dc][bucket] = row[dc][bucket].max(row[dc - 1][bucket]);
                }
            }
        }
        PolicyTable {
            vmin_mv,
            nominal_mv: spec.nominal_mv,
            pmds,
        }
    }

    /// Builds a table from raw cell values, bypassing characterization.
    ///
    /// Exists for the `avfs-characterize` table compiler (measured
    /// margin maps) and for the `avfs-analyze` invariant checker and its
    /// property tests, which construct deliberately broken tables
    /// (holes, inversions) and prove the checker flags them.
    ///
    /// Every populated cell is validated against `floor_mv`, the chip's
    /// absolute regulator floor: a non-zero cell below the floor is a
    /// table the rail can never honour and is rejected with
    /// [`PolicyError::CellBelowFloor`]. Zero cells stay legal — they are
    /// the "uncharacterized hole" sentinel the invariant checker exists
    /// to flag.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::CellBelowFloor`] for the first non-zero
    /// cell strictly below `floor_mv`.
    pub fn from_raw(
        vmin_mv: [[[u32; 4]; 4]; 3],
        nominal_mv: u32,
        floor_mv: u32,
        pmds: usize,
    ) -> Result<Self, PolicyError> {
        for (freq_row, per_droop) in vmin_mv.iter().enumerate() {
            for (droop_index, per_bucket) in per_droop.iter().enumerate() {
                for (bucket, &cell_mv) in per_bucket.iter().enumerate() {
                    if cell_mv != 0 && cell_mv < floor_mv {
                        return Err(PolicyError::CellBelowFloor {
                            freq_row,
                            droop_index,
                            bucket,
                            cell_mv,
                            floor_mv,
                        });
                    }
                }
            }
        }
        Ok(PolicyTable {
            vmin_mv,
            nominal_mv,
            pmds,
        })
    }

    /// Number of thread buckets per (frequency class, droop class) cell.
    pub const THREAD_BUCKETS: usize = 4;

    /// Raw cell value in millivolts, for exhaustive table audits.
    ///
    /// `bucket` indexes the thread buckets (`0..THREAD_BUCKETS`, in the
    /// same order [`PolicyTable::safe_voltage`] resolves thread counts).
    ///
    /// # Panics
    ///
    /// Panics if `bucket >= THREAD_BUCKETS`.
    pub fn cell(&self, freq_class: FreqVminClass, droop_class: DroopClass, bucket: usize) -> u32 {
        assert!(
            bucket < Self::THREAD_BUCKETS,
            "bucket {bucket} out of range"
        );
        self.vmin_mv[freq_row(freq_class)][droop_class.index()][bucket]
    }

    /// The characterized safe voltage for a configuration: frequency
    /// class of the most demanding utilized PMD, droop class from the
    /// utilized-PMD count, and the active thread count (more threads →
    /// less workload spread → lower required margin).
    pub fn safe_voltage(
        &self,
        freq_class: FreqVminClass,
        droop_class: DroopClass,
        active_threads: usize,
    ) -> Millivolts {
        Millivolts::new(
            self.vmin_mv[freq_row(freq_class)][droop_class.index()][thread_bucket(active_threads)],
        )
    }

    /// Convenience: safe voltage from a utilized-PMD count (droop class
    /// computed with this chip's PMD total).
    pub fn safe_voltage_for_pmds(
        &self,
        freq_class: FreqVminClass,
        utilized_pmds: usize,
        active_threads: usize,
    ) -> Millivolts {
        let dc = self.droop_class(utilized_pmds);
        self.safe_voltage(freq_class, dc, active_threads)
    }

    /// Droop class of a utilized-PMD count on the characterized chip.
    pub fn droop_class(&self, utilized_pmds: usize) -> DroopClass {
        // Same fraction thresholds as the chip model (Table II), but
        // computed from the table's recorded PMD count so the policy is
        // self-contained.
        let x8 = utilized_pmds.min(self.pmds) * 8;
        if x8 <= self.pmds {
            DroopClass::D25
        } else if x8 <= 2 * self.pmds {
            DroopClass::D35
        } else if x8 <= 4 * self.pmds {
            DroopClass::D45
        } else {
            DroopClass::D55
        }
    }

    /// The characterized chip's nominal voltage.
    pub fn nominal(&self) -> Millivolts {
        Millivolts::new(self.nominal_mv)
    }

    /// The single voltage that is safe for *every* configuration at the
    /// given frequency class — the paper's "change the nominal voltage of
    /// the microprocessor to the safe Vmin" (§VI-B, the Safe Vmin
    /// configuration): the maximum table entry of the row.
    pub fn static_safe_voltage(&self, freq_class: FreqVminClass) -> Millivolts {
        let row = &self.vmin_mv[freq_row(freq_class)];
        let max = row
            .iter()
            .flat_map(|per_bucket| per_bucket.iter())
            .copied()
            .max()
            .unwrap_or(self.nominal_mv);
        Millivolts::new(max)
    }

    /// Total PMDs on the characterized chip.
    pub fn pmds(&self) -> usize {
        self.pmds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_chip::presets;
    use avfs_chip::topology::{CoreId, CoreSet};

    fn xg3_table() -> PolicyTable {
        PolicyTable::from_characterization(presets::xgene3().build().vmin_model())
    }

    fn xg2_table() -> PolicyTable {
        PolicyTable::from_characterization(presets::xgene2().build().vmin_model())
    }

    #[test]
    fn table_is_monotone_in_droop_class() {
        for table in [xg2_table(), xg3_table()] {
            for fc in [
                FreqVminClass::Divided,
                FreqVminClass::Reduced,
                FreqVminClass::Max,
            ] {
                for threads in [1usize, 2, 4, 32] {
                    let mut prev = Millivolts::new(0);
                    for dc in DroopClass::ALL {
                        let v = table.safe_voltage(fc, dc, threads);
                        assert!(v >= prev, "droop monotonicity violated");
                        prev = v;
                    }
                }
            }
        }
    }

    #[test]
    fn table_is_monotone_in_freq_class() {
        let table = xg3_table();
        for dc in DroopClass::ALL {
            for threads in [1usize, 8, 32] {
                let div = table.safe_voltage(FreqVminClass::Divided, dc, threads);
                let red = table.safe_voltage(FreqVminClass::Reduced, dc, threads);
                let max = table.safe_voltage(FreqVminClass::Max, dc, threads);
                assert!(div <= red && red <= max);
            }
        }
    }

    #[test]
    fn more_threads_need_no_more_margin() {
        let table = xg3_table();
        for dc in DroopClass::ALL {
            let one = table.safe_voltage(FreqVminClass::Max, dc, 1);
            let many = table.safe_voltage(FreqVminClass::Max, dc, 32);
            assert!(many <= one, "margin must shrink with thread count");
        }
    }

    #[test]
    fn table_voltage_covers_every_workload_on_the_chip() {
        // The whole point: driving voltage from the table must be safe for
        // any allocation in the matching class running any workload.
        let chip = presets::xgene3().build();
        let model = chip.vmin_model();
        let table = xg3_table();
        let spec = chip.spec();
        for utilized in 1..=16usize {
            let threads = utilized * 2; // clustered fill
            let dc = table.droop_class(utilized);
            let policy_v = table.safe_voltage(FreqVminClass::Max, dc, threads);
            // Worst-case workload on the weakest PMDs of that count.
            let q = VminQuery {
                freq_class: FreqVminClass::Max,
                utilized_pmds: utilized,
                active_threads: threads,
                workload_sensitivity: 1.0,
            };
            let pmd_ids: Vec<_> = (0..utilized as u16)
                .map(avfs_chip::topology::PmdId::new)
                .collect();
            let real_v = model.safe_vmin_on(&q, &pmd_ids);
            assert!(
                policy_v >= real_v,
                "{utilized} PMDs: policy {policy_v} < real {real_v}"
            );
        }
        let _ = spec;
    }

    #[test]
    fn single_thread_worst_case_is_covered() {
        // The table must also cover a single sensitive thread on the
        // weakest PMD — the hardest case for the margin logic.
        let chip = presets::xgene2().build();
        let model = chip.vmin_model();
        let table = xg2_table();
        let weakest = (0..4u16)
            .map(avfs_chip::topology::PmdId::new)
            .max_by_key(|&p| model.pmd_offset_mv(p))
            .unwrap();
        let q = VminQuery {
            freq_class: FreqVminClass::Max,
            utilized_pmds: 1,
            active_threads: 1,
            workload_sensitivity: 1.0,
        };
        let real = model.safe_vmin_on(&q, &[weakest]);
        let policy = table.safe_voltage_for_pmds(FreqVminClass::Max, 1, 1);
        assert!(policy >= real, "policy {policy} < real {real}");
    }

    #[test]
    fn table_beats_nominal_everywhere() {
        // The guardband exists: every table entry is below nominal.
        for table in [xg2_table(), xg3_table()] {
            for fc in [
                FreqVminClass::Divided,
                FreqVminClass::Reduced,
                FreqVminClass::Max,
            ] {
                for dc in DroopClass::ALL {
                    for threads in [1usize, 2, 4, 16] {
                        assert!(table.safe_voltage(fc, dc, threads) < table.nominal());
                    }
                }
            }
        }
    }

    #[test]
    fn xgene3_multicore_values_track_table2() {
        // With margins, the multicore policy voltages sit at or slightly
        // above the Table II values (830/820 etc.), never below.
        let table = xg3_table();
        let v = table.safe_voltage_for_pmds(FreqVminClass::Max, 16, 32);
        assert!(v.as_mv() >= 830 && v.as_mv() <= 845, "got {v}");
        let v2 = table.safe_voltage_for_pmds(FreqVminClass::Reduced, 16, 32);
        assert!(v2.as_mv() >= 820 && v2.as_mv() <= 835, "got {v2}");
    }

    #[test]
    fn droop_class_matches_chip_model() {
        let chip = presets::xgene3().build();
        let table = xg3_table();
        let spec = chip.spec();
        for utilized in 0..=16usize {
            assert_eq!(
                table.droop_class(utilized),
                DroopClass::from_utilized_pmds(spec, utilized),
                "utilized={utilized}"
            );
        }
    }

    #[test]
    fn from_raw_rejects_cells_below_the_floor() {
        let chip = presets::xgene2().build();
        let good = xg2_table();
        let spec = chip.spec();
        let mut cells = [[[0u32; 4]; 4]; 3];
        for (fi, fc) in [
            FreqVminClass::Divided,
            FreqVminClass::Reduced,
            FreqVminClass::Max,
        ]
        .into_iter()
        .enumerate()
        {
            for dc in DroopClass::ALL {
                #[allow(clippy::needless_range_loop)]
                for bucket in 0..PolicyTable::THREAD_BUCKETS {
                    cells[fi][dc.index()][bucket] = good.cell(fc, dc, bucket);
                }
            }
        }
        // The clean copy round-trips.
        let rebuilt = PolicyTable::from_raw(
            cells,
            spec.nominal_mv,
            spec.vreg_floor_mv,
            spec.pmds() as usize,
        )
        .expect("clean table");
        assert_eq!(rebuilt, good);
        // A sub-floor cell is a typed error naming the coordinates.
        let mut bad = cells;
        bad[2][1][0] = spec.vreg_floor_mv - 1;
        let err = PolicyTable::from_raw(
            bad,
            spec.nominal_mv,
            spec.vreg_floor_mv,
            spec.pmds() as usize,
        )
        .expect_err("sub-floor cell");
        assert_eq!(
            err,
            PolicyError::CellBelowFloor {
                freq_row: 2,
                droop_index: 1,
                bucket: 0,
                cell_mv: spec.vreg_floor_mv - 1,
                floor_mv: spec.vreg_floor_mv,
            }
        );
        // A zeroed hole stays constructible — the invariant checker's job.
        let mut hole = cells;
        hole[0][0][0] = 0;
        PolicyTable::from_raw(
            hole,
            spec.nominal_mv,
            spec.vreg_floor_mv,
            spec.pmds() as usize,
        )
        .expect("holes are legal");
    }

    #[test]
    fn chip_accepts_policy_voltages() {
        // Every policy voltage is within the regulated range — the daemon
        // can actually program it.
        let mut chip = presets::xgene3().build();
        let table = xg3_table();
        let busy = CoreSet::from_bits((1u64 << 32) - 1);
        let v = table.safe_voltage_for_pmds(FreqVminClass::Max, 16, 32);
        chip.set_voltage(v).expect("in range");
        assert!(chip.is_voltage_safe_for(busy));
        let _ = CoreId::new(0);
    }
}
