//! The Monitoring part of the daemon (§VI-A).
//!
//! On real hardware this is a kernel module that reads one PMU register,
//! waits 1 M cycles, reads it again, and subtracts. In the reproduction
//! the substrate's monitoring windows surface the same L3C-per-1M-cycles
//! rates through the driver view; [`ClassTracker`] keeps the daemon's own
//! record of each process's class — defaulting new, not-yet-measured
//! processes to CPU-intensive, which is the conservative choice (full
//! frequency, clustered placement, no undervolt assumption).

use avfs_sched::driver::SystemView;
use avfs_sched::process::Pid;
use avfs_workloads::classify::IntensityClass;
use std::collections::BTreeMap;

/// The daemon's record of process classifications.
#[derive(Debug, Clone, Default)]
pub struct ClassTracker {
    classes: BTreeMap<Pid, IntensityClass>,
}

impl ClassTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        ClassTracker::default()
    }

    /// The class the daemon assumes for a process (CPU-intensive until
    /// measured otherwise).
    pub fn class_of(&self, pid: Pid) -> IntensityClass {
        self.classes
            .get(&pid)
            .copied()
            .unwrap_or(IntensityClass::CpuIntensive)
    }

    /// Ingests the latest view: refreshes known classes and drops
    /// processes that left the system. Returns pids whose class changed
    /// since the last refresh.
    pub fn refresh(&mut self, view: &SystemView) -> Vec<Pid> {
        let mut changed = Vec::new();
        let mut next = BTreeMap::new();
        for p in &view.processes {
            let class = p.class.unwrap_or_else(|| self.class_of(p.pid));
            if let Some(&old) = self.classes.get(&p.pid) {
                if old != class {
                    changed.push(p.pid);
                }
            }
            next.insert(p.pid, class);
        }
        self.classes = next;
        changed
    }

    /// Records an explicit class-change notification.
    pub fn set(&mut self, pid: Pid, class: IntensityClass) {
        self.classes.insert(pid, class);
    }

    /// Tracked `(pid, class)` pairs in pid order (deterministic across
    /// runs; used for control-state fingerprinting).
    pub fn entries(&self) -> impl Iterator<Item = (Pid, IntensityClass)> + '_ {
        self.classes.iter().map(|(&pid, &class)| (pid, class))
    }

    /// Number of tracked processes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when no processes are tracked.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Counts `(cpu_intensive, memory_intensive)` among tracked
    /// processes.
    pub fn counts(&self) -> (usize, usize) {
        let mem = self
            .classes
            .values()
            .filter(|c| **c == IntensityClass::MemoryIntensive)
            .count();
        (self.classes.len() - mem, mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_chip::presets;
    use avfs_chip::topology::CoreSet;
    use avfs_chip::voltage::Millivolts;
    use avfs_sched::driver::ProcessView;
    use avfs_sched::governor::GovernorMode;
    use avfs_sched::process::ProcessState;
    use avfs_sim::time::SimTime;

    fn view_with(classes: &[(u64, Option<IntensityClass>)]) -> SystemView {
        SystemView {
            now: SimTime::ZERO,
            spec: presets::xgene2().spec().clone(),
            voltage: Millivolts::new(980),
            pmd_steps: vec![avfs_chip::freq::FreqStep::MAX; 4],
            governor: GovernorMode::Userspace,
            droop_alert: false,
            processes: classes
                .iter()
                .map(|&(pid, class)| ProcessView {
                    pid: Pid(pid),
                    threads: 1,
                    state: ProcessState::Running,
                    assigned: CoreSet::EMPTY,
                    l3c_per_mcycle: None,
                    class,
                    arrived_at: SimTime::ZERO,
                    stalled_until: None,
                })
                .collect(),
        }
    }

    #[test]
    fn unknown_processes_default_to_cpu() {
        let t = ClassTracker::new();
        assert_eq!(t.class_of(Pid(42)), IntensityClass::CpuIntensive);
    }

    #[test]
    fn refresh_tracks_and_reports_changes() {
        let mut t = ClassTracker::new();
        let v1 = view_with(&[(1, None), (2, Some(IntensityClass::MemoryIntensive))]);
        let changed = t.refresh(&v1);
        assert!(changed.is_empty(), "first sighting is not a change");
        assert_eq!(t.class_of(Pid(1)), IntensityClass::CpuIntensive);
        assert_eq!(t.class_of(Pid(2)), IntensityClass::MemoryIntensive);

        let v2 = view_with(&[
            (1, Some(IntensityClass::MemoryIntensive)),
            (2, Some(IntensityClass::MemoryIntensive)),
        ]);
        let changed = t.refresh(&v2);
        assert_eq!(changed, vec![Pid(1)]);
    }

    #[test]
    fn refresh_drops_departed_processes() {
        let mut t = ClassTracker::new();
        t.refresh(&view_with(&[(1, None), (2, None)]));
        assert_eq!(t.len(), 2);
        t.refresh(&view_with(&[(2, None)]));
        assert_eq!(t.len(), 1);
        // Departed pid falls back to the default.
        assert_eq!(t.class_of(Pid(1)), IntensityClass::CpuIntensive);
    }

    #[test]
    fn unmeasured_class_persists_across_refreshes() {
        let mut t = ClassTracker::new();
        t.set(Pid(1), IntensityClass::MemoryIntensive);
        // View has no measurement yet: the daemon keeps its record.
        let changed = t.refresh(&view_with(&[(1, None)]));
        assert!(changed.is_empty());
        assert_eq!(t.class_of(Pid(1)), IntensityClass::MemoryIntensive);
    }

    #[test]
    fn counts_by_class() {
        let mut t = ClassTracker::new();
        t.refresh(&view_with(&[
            (1, None),
            (2, Some(IntensityClass::MemoryIntensive)),
            (3, Some(IntensityClass::MemoryIntensive)),
        ]));
        assert_eq!(t.counts(), (1, 2));
        assert!(!t.is_empty());
    }
}
