//! The Monitoring part of the daemon (§VI-A).
//!
//! On real hardware this is a kernel module that reads one PMU register,
//! waits 1 M cycles, reads it again, and subtracts. In the reproduction
//! the substrate's monitoring windows surface the same L3C-per-1M-cycles
//! rates through the driver view; [`ClassTracker`] keeps the daemon's own
//! record of each process's class — defaulting new, not-yet-measured
//! processes to CPU-intensive, which is the conservative choice (full
//! frequency, clustered placement, no undervolt assumption).

use avfs_sched::driver::SystemView;
use avfs_sched::process::Pid;
use avfs_workloads::classify::IntensityClass;

/// The daemon's record of process classifications.
///
/// Stored as a pid-sorted vector (views list processes pid-ascending,
/// so a refresh is one linear pass) with two scratch buffers recycled
/// across refreshes — the tracker allocates nothing in steady state.
#[derive(Debug, Clone, Default)]
pub struct ClassTracker {
    /// Pid-sorted `(pid, class)` records.
    classes: Vec<(Pid, IntensityClass)>,
    /// Pids whose class changed in the last refresh (returned by
    /// borrow, reused each call).
    changed: Vec<Pid>,
    /// Spare record buffer swapped with `classes` on refresh.
    spare: Vec<(Pid, IntensityClass)>,
}

impl ClassTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        ClassTracker::default()
    }

    /// The class the daemon assumes for a process (CPU-intensive until
    /// measured otherwise).
    pub fn class_of(&self, pid: Pid) -> IntensityClass {
        self.classes
            .binary_search_by_key(&pid, |&(p, _)| p)
            .map(|i| self.classes[i].1)
            .unwrap_or(IntensityClass::CpuIntensive)
    }

    /// Ingests the latest view: refreshes known classes and drops
    /// processes that left the system. Returns pids whose class changed
    /// since the last refresh (borrowed from the tracker's scratch;
    /// valid until the next call).
    pub fn refresh(&mut self, view: &SystemView) -> &[Pid] {
        self.changed.clear();
        let mut next = std::mem::take(&mut self.spare);
        next.clear();
        for p in &view.processes {
            let class = p.class.unwrap_or_else(|| self.class_of(p.pid));
            if let Ok(i) = self.classes.binary_search_by_key(&p.pid, |&(q, _)| q) {
                if self.classes[i].1 != class {
                    self.changed.push(p.pid);
                }
            }
            debug_assert!(
                next.last().is_none_or(|&(q, _)| q < p.pid),
                "views must list processes pid-ascending"
            );
            next.push((p.pid, class));
        }
        std::mem::swap(&mut self.classes, &mut next);
        self.spare = next;
        &self.changed
    }

    /// Records an explicit class-change notification.
    pub fn set(&mut self, pid: Pid, class: IntensityClass) {
        match self.classes.binary_search_by_key(&pid, |&(p, _)| p) {
            Ok(i) => self.classes[i].1 = class,
            Err(i) => self.classes.insert(i, (pid, class)),
        }
    }

    /// Tracked `(pid, class)` pairs in pid order (deterministic across
    /// runs; used for control-state fingerprinting).
    pub fn entries(&self) -> impl Iterator<Item = (Pid, IntensityClass)> + '_ {
        self.classes.iter().copied()
    }

    /// Number of tracked processes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when no processes are tracked.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Counts `(cpu_intensive, memory_intensive)` among tracked
    /// processes.
    pub fn counts(&self) -> (usize, usize) {
        let mem = self
            .classes
            .iter()
            .filter(|(_, c)| *c == IntensityClass::MemoryIntensive)
            .count();
        (self.classes.len() - mem, mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_chip::presets;
    use avfs_chip::topology::CoreSet;
    use avfs_chip::voltage::Millivolts;
    use avfs_sched::driver::ProcessView;
    use avfs_sched::governor::GovernorMode;
    use avfs_sched::process::ProcessState;
    use avfs_sim::time::SimTime;

    fn view_with(classes: &[(u64, Option<IntensityClass>)]) -> SystemView {
        SystemView {
            now: SimTime::ZERO,
            spec: presets::xgene2().spec().clone(),
            voltage: Millivolts::new(980),
            pmd_steps: vec![avfs_chip::freq::FreqStep::MAX; 4],
            governor: GovernorMode::Userspace,
            droop_alert: false,
            processes: classes
                .iter()
                .map(|&(pid, class)| ProcessView {
                    pid: Pid(pid),
                    threads: 1,
                    state: ProcessState::Running,
                    assigned: CoreSet::EMPTY,
                    l3c_per_mcycle: None,
                    class,
                    arrived_at: SimTime::ZERO,
                    stalled_until: None,
                })
                .collect(),
        }
    }

    #[test]
    fn unknown_processes_default_to_cpu() {
        let t = ClassTracker::new();
        assert_eq!(t.class_of(Pid(42)), IntensityClass::CpuIntensive);
    }

    #[test]
    fn refresh_tracks_and_reports_changes() {
        let mut t = ClassTracker::new();
        let v1 = view_with(&[(1, None), (2, Some(IntensityClass::MemoryIntensive))]);
        let changed = t.refresh(&v1);
        assert!(changed.is_empty(), "first sighting is not a change");
        assert_eq!(t.class_of(Pid(1)), IntensityClass::CpuIntensive);
        assert_eq!(t.class_of(Pid(2)), IntensityClass::MemoryIntensive);

        let v2 = view_with(&[
            (1, Some(IntensityClass::MemoryIntensive)),
            (2, Some(IntensityClass::MemoryIntensive)),
        ]);
        let changed = t.refresh(&v2);
        assert_eq!(changed, vec![Pid(1)]);
    }

    #[test]
    fn refresh_drops_departed_processes() {
        let mut t = ClassTracker::new();
        t.refresh(&view_with(&[(1, None), (2, None)]));
        assert_eq!(t.len(), 2);
        t.refresh(&view_with(&[(2, None)]));
        assert_eq!(t.len(), 1);
        // Departed pid falls back to the default.
        assert_eq!(t.class_of(Pid(1)), IntensityClass::CpuIntensive);
    }

    #[test]
    fn unmeasured_class_persists_across_refreshes() {
        let mut t = ClassTracker::new();
        t.set(Pid(1), IntensityClass::MemoryIntensive);
        // View has no measurement yet: the daemon keeps its record.
        let changed = t.refresh(&view_with(&[(1, None)]));
        assert!(changed.is_empty());
        assert_eq!(t.class_of(Pid(1)), IntensityClass::MemoryIntensive);
    }

    #[test]
    fn counts_by_class() {
        let mut t = ClassTracker::new();
        t.refresh(&view_with(&[
            (1, None),
            (2, Some(IntensityClass::MemoryIntensive)),
            (3, Some(IntensityClass::MemoryIntensive)),
        ]));
        assert_eq!(t.counts(), (1, 2));
        assert!(!t.is_empty());
    }
}
