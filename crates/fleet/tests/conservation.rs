//! Job conservation under shedding: with tiny admission bounds the
//! front door must shed, and every submitted job still has to be
//! accounted for — submitted = admitted + shed, and every admitted job
//! completes once the fleet drains.

use avfs_fleet::{
    EnergyAware, Fleet, FleetConfig, LeastQueued, NodeConfig, NodeKind, RoundRobin, RoutingPolicy,
};
use avfs_sim::time::SimDuration;
use avfs_workloads::{GeneratorConfig, WorkloadTrace};
use proptest::prelude::*;

fn tiny_trace(seed: u64) -> WorkloadTrace {
    // Dense on purpose: jobs outlive the inter-arrival gaps, so tiny
    // admission bounds are guaranteed to force shedding.
    let mut cfg = GeneratorConfig::paper_default(32, seed);
    cfg.duration = SimDuration::from_secs(30);
    cfg.job_scale = 0.6;
    WorkloadTrace::generate(&cfg)
}

proptest! {
    #[test]
    fn no_admitted_job_is_lost_under_shedding(
        seed in 0u64..1_000,
        capacity in 1usize..4,
        which in 0u8..3,
        workers in 1usize..3,
    ) {
        let mut nodes = vec![
            NodeConfig::new(NodeKind::XGene2, seed.wrapping_add(1)),
            NodeConfig::new(NodeKind::XGene2, seed.wrapping_add(2)),
        ];
        for n in &mut nodes {
            n.admit_capacity = capacity;
        }
        let mut cfg = FleetConfig::new(nodes);
        cfg.workers = workers;
        let mut rr = RoundRobin::new();
        let mut lq = LeastQueued::new();
        let mut ea = EnergyAware::new();
        let policy: &mut dyn RoutingPolicy = match which {
            0 => &mut rr,
            1 => &mut lq,
            _ => &mut ea,
        };
        let summary = Fleet::builder().config(cfg).build().run(&tiny_trace(seed), policy);
        let a = summary.admission;
        prop_assert!(a.submitted > 0);
        prop_assert_eq!(
            a.submitted,
            a.admitted + a.shed_full + a.shed_unroutable,
            "conservation broke: {:?}",
            a
        );
        prop_assert!(
            summary.conserves_jobs(),
            "admitted != completed after drain: {:?} completed={}",
            a,
            summary.completed
        );
        // The bound is real: no node may ever have exceeded it at
        // admission time (admitted minus completed-before can't be
        // checked post-hoc, but a capacity-1 pair with a dense trace
        // must shed).
        if capacity == 1 {
            prop_assert!(a.shed_full + a.shed_unroutable > 0, "expected shedding at capacity 1");
        }
    }
}
