//! Fleet determinism: same seed ⇒ byte-identical `FleetSummary`
//! fingerprint and telemetry journal for any worker count, under every
//! built-in routing policy.

use avfs_fleet::{
    EnergyAware, Fleet, FleetConfig, FleetSummary, LeastQueued, NodeConfig, NodeKind, RoundRobin,
    RoutingPolicy,
};
use avfs_sim::time::SimDuration;
use avfs_workloads::{GeneratorConfig, WorkloadTrace};

fn small_cluster(workers: usize) -> FleetConfig {
    let nodes = vec![
        NodeConfig::new(NodeKind::XGene2, 101),
        NodeConfig::new(NodeKind::XGene2, 102),
        NodeConfig::new(NodeKind::XGene3, 103),
        NodeConfig::new(NodeKind::XGene3, 104),
    ];
    let mut cfg = FleetConfig::new(nodes);
    cfg.workers = workers;
    cfg.telemetry = true;
    cfg
}

fn small_trace(seed: u64) -> WorkloadTrace {
    let mut cfg = GeneratorConfig::paper_default(32, seed);
    cfg.duration = SimDuration::from_secs(90);
    cfg.job_scale = 0.15;
    WorkloadTrace::generate(&cfg)
}

/// Fresh policy per run: routing state (e.g. the round-robin cursor)
/// belongs to one run.
fn policy(which: &str) -> Box<dyn RoutingPolicy> {
    match which {
        "rr" => Box::new(RoundRobin::new()),
        "lq" => Box::new(LeastQueued::new()),
        _ => Box::new(EnergyAware::new()),
    }
}

fn run_with(workers: usize, policy: &mut dyn RoutingPolicy) -> FleetSummary {
    let fleet = Fleet::builder().config(small_cluster(workers)).build();
    fleet.run(&small_trace(7), policy)
}

#[test]
fn worker_count_does_not_change_results() {
    for label in ["rr", "lq", "ea"] {
        let one = run_with(1, policy(label).as_mut());
        assert!(one.admission.submitted > 0, "{label}: empty trace");
        assert!(one.completed > 0, "{label}: nothing completed");
        for workers in [2, 8] {
            let many = run_with(workers, policy(label).as_mut());
            assert_eq!(
                one.fingerprint(),
                many.fingerprint(),
                "{label}: summary diverged at workers={workers}"
            );
            assert_eq!(
                one.journal, many.journal,
                "{label}: journal diverged at workers={workers}"
            );
        }
    }
}

#[test]
fn journal_is_present_and_tagged() {
    let summary = run_with(2, &mut EnergyAware::new());
    let journal = summary.journal.as_deref().unwrap_or("");
    assert!(!journal.is_empty());
    assert!(
        journal.contains("\"kind\":\"fleet_route\""),
        "no routing events in journal"
    );
    // Node-tagged lines from every node, in id order after the
    // coordinator block.
    for id in 0..4 {
        assert!(
            journal.contains(&format!("\"node\":{id}")),
            "node {id} missing from merged journal"
        );
    }
}

#[test]
fn identical_seeds_identical_runs() {
    let a = run_with(3, &mut EnergyAware::new());
    let b = run_with(3, &mut EnergyAware::new());
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(a.journal, b.journal);
    assert!(a.conserves_jobs());
}

#[test]
fn policies_differ_in_placement() {
    // Sanity that the policies are not all aliases of each other: the
    // energy-aware router must produce a different per-node admission
    // split than round-robin on a heterogeneous cluster.
    let rr = run_with(1, &mut RoundRobin::new());
    let ea = run_with(1, &mut EnergyAware::new());
    let split = |s: &FleetSummary| -> Vec<u64> { s.nodes.iter().map(|n| n.admitted).collect() };
    assert_ne!(split(&rr), split(&ea), "policies placed jobs identically");
}
