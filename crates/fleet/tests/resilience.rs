//! Fleet fault tolerance: conservation and exactly-once delivery under
//! seeded node failures, bit-identical results for any worker count with
//! failures active, scripted crash/stall recovery paths, the
//! health-gated circuit breaker, and shed accounting (journal vs
//! summary).

use avfs_fleet::{
    EnergyAware, Fleet, FleetConfig, FleetError, FleetSummary, HealthGated, JobView, LeastQueued,
    NodeConfig, NodeFaultKind, NodeFaultPlan, NodeId, NodeKind, NodeView, RoundRobin,
    RoutingPolicy, ScriptedFault,
};
use avfs_sim::time::SimDuration;
use avfs_workloads::{GeneratorConfig, WorkloadTrace};
use proptest::prelude::*;

fn cluster(workers: usize) -> FleetConfig {
    let nodes = vec![
        NodeConfig::new(NodeKind::XGene2, 101),
        NodeConfig::new(NodeKind::XGene2, 102),
        NodeConfig::new(NodeKind::XGene3, 103),
        NodeConfig::new(NodeKind::XGene3, 104),
    ];
    let mut cfg = FleetConfig::new(nodes);
    cfg.workers = workers;
    cfg.telemetry = true;
    cfg
}

fn trace(seed: u64) -> WorkloadTrace {
    let mut cfg = GeneratorConfig::paper_default(32, seed);
    cfg.duration = SimDuration::from_secs(90);
    cfg.job_scale = 0.15;
    WorkloadTrace::generate(&cfg)
}

fn crash(epoch: u64, node: u16) -> ScriptedFault {
    ScriptedFault {
        epoch,
        node: NodeId(node),
        kind: NodeFaultKind::Crash,
    }
}

proptest! {
    /// Under any sampled fault schedule, every epoch's conservation
    /// ledger holds (admitted = completed + live + queued + exhausted)
    /// and the final summary proves exactly-once delivery: nothing lost,
    /// nothing double-completed.
    #[test]
    fn conservation_holds_under_any_fault_plan(
        seed in 0u64..500,
        rate_mil in 0u64..30,
        which in 0u8..3,
        workers in 1usize..3,
    ) {
        let rate = rate_mil as f64 / 1_000.0;
        let mut cfg = cluster(workers);
        cfg.telemetry = false;
        cfg.audit = true;
        cfg.fault_plan = Some(NodeFaultPlan::uniform(seed, rate));
        let mut rr = RoundRobin::new();
        let mut lq = LeastQueued::new();
        let mut ea = EnergyAware::new();
        let policy: &mut dyn RoutingPolicy = match which {
            0 => &mut rr,
            1 => &mut lq,
            _ => &mut ea,
        };
        let summary = Fleet::builder().config(cfg).build().run(&trace(seed), policy);
        prop_assert!(summary.admission.submitted > 0);
        prop_assert!(!summary.audits.is_empty(), "audit mode recorded nothing");
        let failed = summary.failed_audits();
        prop_assert!(
            failed.is_empty(),
            "per-epoch conservation broke: {:?}",
            failed
        );
        prop_assert_eq!(summary.duplicate_completions, 0, "a JobId completed twice");
        prop_assert_eq!(summary.lost_jobs, 0, "a JobId vanished");
        prop_assert!(
            summary.conserves_jobs(),
            "summary conservation broke: admission={:?} completed={} redispatch={:?}",
            summary.admission,
            summary.completed,
            summary.redispatch
        );
    }
}

/// With failures active, the run is still byte-identical for any worker
/// count: same fingerprint, same merged journal.
#[test]
fn failures_do_not_break_worker_determinism() {
    let run = |workers: usize| -> FleetSummary {
        let mut cfg = cluster(workers);
        cfg.audit = true;
        let mut plan = NodeFaultPlan::uniform(23, 0.01);
        plan.push(crash(4, 1));
        cfg.fault_plan = Some(plan);
        Fleet::builder()
            .config(cfg)
            .build()
            .run(&trace(23), &mut EnergyAware::new())
    };
    let one = run(1);
    assert!(
        one.faults.total() > 0,
        "fault schedule fired nothing — test is vacuous"
    );
    for workers in [2, 8] {
        let many = run(workers);
        assert_eq!(
            one.fingerprint(),
            many.fingerprint(),
            "summary diverged at workers={workers}"
        );
        assert_eq!(
            one.journal, many.journal,
            "journal diverged at workers={workers}"
        );
        assert_eq!(one.audits, many.audits);
    }
}

/// One crashed node out of four: its stranded jobs drain and re-dispatch
/// to survivors, at least 90% of all submitted jobs still complete, and
/// exactly-once holds throughout.
#[test]
fn crashed_node_jobs_redispatch_to_survivors() {
    let mut cfg = cluster(2);
    cfg.fault_plan = Some(NodeFaultPlan::scripted(vec![crash(5, 1)]));
    let summary = Fleet::builder()
        .config(cfg)
        .build()
        .run(&trace(7), &mut EnergyAware::new());

    assert_eq!(summary.faults.crashes, 1);
    let dead = &summary.nodes[1];
    assert!(dead.dead, "scripted crash did not kill node1");
    assert_eq!(dead.health.as_str(), "fenced");
    assert!(dead.fenced_epochs > 0);
    assert!(
        summary.redispatch.drained > 0 && summary.redispatch.reassigned > 0,
        "crash stranded no work: {:?}",
        summary.redispatch
    );
    assert!(summary.redispatch.max_generation >= 1);
    assert_eq!(summary.duplicate_completions, 0);
    assert_eq!(summary.lost_jobs, 0);
    assert!(summary.conserves_jobs());

    // The ≥90% completion bar from the acceptance criteria.
    let completed = summary.completed as f64;
    let submitted = summary.admission.submitted as f64;
    assert!(
        completed >= 0.9 * submitted,
        "only {completed}/{submitted} jobs completed after the crash"
    );

    // The journal narrates the drain: fence first, then per-job drained
    // and reassigned hops.
    let journal = summary.journal.as_deref().unwrap_or("");
    assert!(journal.contains("\"kind\":\"node_fenced\""));
    assert!(journal.contains("\"outcome\":\"drained\""));
    assert!(journal.contains("\"outcome\":\"reassigned\""));
}

/// A stalled node walks Suspect → Fenced → Probation → Healthy once it
/// returns, its parked jobs complete after the catch-up step, and
/// nothing is drained off it (stall is a partition, not a crash).
#[test]
fn stalled_node_recovers_through_probation() {
    let mut cfg = cluster(1);
    cfg.fault_plan = Some(NodeFaultPlan::scripted(vec![ScriptedFault {
        epoch: 3,
        node: NodeId(2),
        kind: NodeFaultKind::Stall { epochs: 6 },
    }]));
    let summary = Fleet::builder()
        .config(cfg)
        .build()
        .run(&trace(7), &mut EnergyAware::new());

    assert_eq!(summary.faults.stalls, 1);
    let stalled = &summary.nodes[2];
    assert!(!stalled.dead);
    assert!(
        stalled.fenced_epochs > 0,
        "a 6-epoch stall must outlast fence_after=4"
    );
    assert_eq!(
        stalled.health.as_str(),
        "healthy",
        "node did not recover after the stall window"
    );
    assert_eq!(stalled.drained_jobs, 0, "stall must not drain jobs");
    assert_eq!(summary.redispatch.drained, 0);
    assert_eq!(summary.duplicate_completions, 0);
    assert_eq!(summary.lost_jobs, 0);
    assert!(summary.conserves_jobs());
    let journal = summary.journal.as_deref().unwrap_or("");
    assert!(journal.contains("\"kind\":\"node_fenced\""));
    assert!(journal.contains("\"kind\":\"node_recovered\""));
}

/// A policy that always names one pinned node, health be damned.
struct Pinned(NodeId);

impl RoutingPolicy for Pinned {
    fn name(&self) -> &'static str {
        "pinned"
    }

    fn route(&mut self, _job: &JobView, nodes: &[NodeView]) -> Option<NodeId> {
        // When the pin is excluded/fenced out of the view set, fall back
        // to the first open node so the fleet still makes progress.
        if nodes.iter().any(|n| n.id == self.0) {
            Some(self.0)
        } else {
            nodes.iter().find(|n| n.has_space()).map(|n| n.id)
        }
    }
}

/// The circuit breaker surfaces a typed error when a policy names a
/// fenced node, and the engine's re-pick keeps fenced nodes at zero new
/// work without shedding the rejected jobs.
#[test]
fn health_gate_rejects_fenced_choices_with_typed_error() {
    // Unit-level: an empty view set routes to None without a rejection.
    let mut gate = HealthGated::new(Pinned(NodeId(0)));
    let job = JobView::of(
        avfs_fleet::JobId(0),
        avfs_workloads::Benchmark::SpecNamd,
        1,
        1.0,
    );
    assert_eq!(gate.try_route(&job, &[]), Ok(None));
    assert_eq!(gate.rejections(), 0);

    // Engine-level: crash the pinned node; once fenced, every further
    // pinned choice is rejected (typed, counted) and re-picked, so the
    // fenced node gets zero new work and jobs keep completing elsewhere.
    let mut cfg = cluster(1);
    cfg.fault_plan = Some(NodeFaultPlan::scripted(vec![crash(3, 0)]));
    let summary = Fleet::builder()
        .config(cfg)
        .build()
        .run(&trace(7), &mut Pinned(NodeId(0)));
    assert!(
        summary.routed_to_fenced > 0,
        "pinned policy never hit the gate: {:?}",
        summary.admission
    );
    let dead = &summary.nodes[0];
    // No admissions after the fence: admitted on node0 == jobs placed
    // before the crash was detected; everything after went elsewhere.
    assert!(dead.dead);
    assert_eq!(summary.duplicate_completions, 0);
    assert_eq!(summary.lost_jobs, 0);
    assert!(summary.conserves_jobs());
    assert!(
        summary.completed + summary.redispatch.exhausted == summary.admission.admitted,
        "re-pick path lost work"
    );
}

/// The Display/Error impls on the typed rejection are stable.
#[test]
fn fleet_error_formats_stably() {
    let err = FleetError::RoutedToFencedNode {
        node: NodeId(3),
        job: avfs_fleet::JobId(12),
    };
    assert_eq!(err.to_string(), "policy routed job12 to fenced node3");
    let as_std: &dyn std::error::Error = &err;
    assert!(as_std.source().is_none());
}

/// Satellite: the journal and the summary must agree about shedding —
/// every shed increments a counter AND emits a FleetShed trace, so the
/// two counts are equal by construction.
#[test]
fn shed_counter_and_journal_agree() {
    let mut nodes = vec![
        NodeConfig::new(NodeKind::XGene2, 11),
        NodeConfig::new(NodeKind::XGene2, 12),
    ];
    for n in &mut nodes {
        n.admit_capacity = 1; // force heavy shedding
    }
    let mut cfg = FleetConfig::new(nodes);
    cfg.telemetry = true;
    let mut dense = GeneratorConfig::paper_default(32, 5);
    dense.duration = SimDuration::from_secs(30);
    dense.job_scale = 0.6;
    let summary = Fleet::builder()
        .config(cfg)
        .build()
        .run(&WorkloadTrace::generate(&dense), &mut RoundRobin::new());
    let shed = summary.admission.shed();
    assert!(shed > 0, "capacity-1 cluster did not shed");
    let journal = summary.journal.as_deref().unwrap_or("");
    let traced = journal
        .lines()
        .filter(|l| l.contains("\"kind\":\"fleet_shed\""))
        .count() as u64;
    assert_eq!(
        traced, shed,
        "journal saw {traced} sheds, summary counted {shed}"
    );
}
