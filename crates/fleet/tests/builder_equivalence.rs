//! [`Fleet::builder`] is pinned to the legacy constructors bit for bit:
//! same node list, seed, and policy in — identical
//! [`FleetSummary::fingerprint`] and merged journal out.

use avfs_fleet::{EnergyAware, Fleet, FleetConfig, FleetSummary, NodeConfig, NodeKind};
use avfs_sched::Report;
use avfs_sim::time::SimDuration;
use avfs_workloads::{GeneratorConfig, WorkloadTrace};

fn nodes() -> Vec<NodeConfig> {
    vec![
        NodeConfig::new(NodeKind::XGene2, 101),
        NodeConfig::new(NodeKind::XGene3, 103),
    ]
}

fn trace() -> WorkloadTrace {
    let mut cfg = GeneratorConfig::paper_default(16, 7);
    cfg.duration = SimDuration::from_secs(90);
    cfg.job_scale = 0.15;
    WorkloadTrace::generate(&cfg)
}

fn run(fleet: Fleet) -> FleetSummary {
    fleet.run(&trace(), &mut EnergyAware::new())
}

#[test]
fn builder_matches_legacy_config_constructor_bit_for_bit() {
    let mut cfg = FleetConfig::new(nodes());
    cfg.workers = 2;
    cfg.telemetry = true;
    #[allow(deprecated)]
    let legacy = run(Fleet::new(&cfg));
    let built = run(Fleet::builder().config(cfg).build());
    assert!(legacy.completed > 0, "nothing completed");
    assert_eq!(built.fingerprint(), legacy.fingerprint());
    assert_eq!(built.journal, legacy.journal);
    // The trait fingerprint delegates to the inherent digest, so both
    // comparison surfaces agree.
    assert_eq!(Report::fingerprint(&built), Report::fingerprint(&legacy));
}

#[test]
fn piecewise_builder_matches_wholesale_config() {
    let mut cfg = FleetConfig::new(nodes());
    cfg.workers = 2;
    cfg.telemetry = true;
    let wholesale = run(Fleet::builder().config(cfg).build());
    let piecewise = run(Fleet::builder()
        .node(NodeConfig::new(NodeKind::XGene2, 101))
        .node(NodeConfig::new(NodeKind::XGene3, 103))
        .workers(2)
        .telemetry(true)
        .build());
    assert_eq!(piecewise.fingerprint(), wholesale.fingerprint());
    assert_eq!(piecewise.journal, wholesale.journal);
}
