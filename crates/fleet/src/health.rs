//! Node fault injection and the per-node health state machine.
//!
//! # Fault plan
//!
//! [`NodeFaultPlan`] injects *node-scoped* failures at epoch boundaries,
//! one tier above the per-chip [`avfs_chip::fault::FaultPlan`]: a node
//! can **crash** (permanently dead — its simulator is never stepped
//! again), **stall** (miss `K` epochs of stepping, then return and catch
//! up), or **degrade** (its chip is pessimized by a permanently-armed
//! droop excursion and its energy descriptors are re-characterized).
//! The plan draws from its own [`RngStream`] (label `"node-fault-plan"`)
//! and always burns exactly three draws per node per boundary, so the
//! sampled schedule is a pure function of `(seed, epoch, node)` — never
//! of routing decisions, worker count, or prior fault outcomes. A plan
//! with all-zero rates and no scripted events is a no-op: the run is
//! byte-identical to one with no plan at all.
//!
//! # Health machine
//!
//! The coordinator cannot see inside a node; it only observes whether
//! the node participated in the last epoch step (its *heartbeat*). The
//! per-node [`HealthTracker`] mirrors avfs-core's recovery machine
//! (Optimized → SafeMode → Probation) at cluster granularity:
//!
//! ```text
//!            misses >= suspect_after      misses >= fence_after
//!  Healthy ──────────────────────▶ Suspect ─────────────────▶ Fenced ◀──┐
//!     ▲                              │beat                      │beat   │miss
//!     │                              ▼                          ▼       │
//!     └──────────────────────── (cleared)                   Probation ──┘
//!     ▲                                                         │
//!     └──────────────── beats >= probation_beats ───────────────┘
//! ```
//!
//! Fenced nodes are excluded from routing (see
//! [`NodeView::routable`](crate::NodeView::routable)); Suspect and
//! Probation nodes stay routable — like the daemon's Probation state,
//! they serve while being watched.

use crate::node::NodeId;
use avfs_sim::RngStream;
use std::fmt;

/// Per-category node-fault probabilities, each per node per epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFaultRates {
    /// Probability a node crashes (permanently dead).
    pub crash: f64,
    /// Probability a node stalls (misses the plan's stall window).
    pub stall: f64,
    /// Probability a node's chip degrades (pessimized, re-characterized).
    pub degrade: f64,
}

impl NodeFaultRates {
    /// No node faults at all.
    pub const ZERO: NodeFaultRates = NodeFaultRates {
        crash: 0.0,
        stall: 0.0,
        degrade: 0.0,
    };

    /// The same rate for every fault category.
    pub fn uniform(rate: f64) -> Self {
        let r = rate.clamp(0.0, 1.0);
        NodeFaultRates {
            crash: r,
            stall: r,
            degrade: r,
        }
    }
}

/// One node-scoped fault, fired at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeFaultKind {
    /// The node dies permanently: never stepped again, never heartbeats
    /// again. Its stranded jobs are drained once the health machine
    /// fences it.
    Crash,
    /// The node misses `epochs` epoch steps, then returns and catches up
    /// in one deterministic `step_until` to the current horizon (a
    /// partition, not a compute freeze: parked jobs resume afterwards).
    Stall {
        /// Epoch steps missed before the node returns.
        epochs: u32,
    },
    /// The node's chip is pessimized (a permanently-armed droop
    /// excursion raises its effective Vmin) and its
    /// [`EnergyDescriptor`](crate::EnergyDescriptor) is re-characterized
    /// so energy-aware routing sees the new, worse costs.
    Degrade,
}

impl NodeFaultKind {
    /// Stable label for traces and tables.
    pub fn name(self) -> &'static str {
        match self {
            NodeFaultKind::Crash => "crash",
            NodeFaultKind::Stall { .. } => "stall",
            NodeFaultKind::Degrade => "degrade",
        }
    }
}

/// A fault scripted to fire at an exact epoch boundary on an exact node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScriptedFault {
    /// Epoch boundary at which the fault fires.
    pub epoch: u64,
    /// Which node it hits.
    pub node: NodeId,
    /// What happens to it.
    pub kind: NodeFaultKind,
}

/// Counters of every event the plan has emitted (before the engine's
/// dead-node filtering).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeFaultStats {
    /// Crash events emitted.
    pub crashes: u64,
    /// Stall events emitted.
    pub stalls: u64,
    /// Degrade events emitted.
    pub degrades: u64,
}

/// How many epochs a *sampled* stall lasts by default. Longer than the
/// default [`HealthConfig::fence_after`], so an injected stall reliably
/// drives the node through Fenced and back out via Probation.
const DEFAULT_STALL_EPOCHS: u32 = 6;

/// A seeded, deterministic node-fault schedule.
#[derive(Debug, Clone)]
pub struct NodeFaultPlan {
    rates: NodeFaultRates,
    stall_epochs: u32,
    rng: RngStream,
    scripted: Vec<ScriptedFault>,
    stats: NodeFaultStats,
}

impl NodeFaultPlan {
    /// A plan with explicit per-category rates.
    pub fn new(seed: u64, rates: NodeFaultRates) -> Self {
        NodeFaultPlan {
            rates,
            stall_epochs: DEFAULT_STALL_EPOCHS,
            rng: RngStream::from_root(seed, "node-fault-plan"),
            scripted: Vec::new(),
            stats: NodeFaultStats::default(),
        }
    }

    /// A plan with one rate for every category.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        NodeFaultPlan::new(seed, NodeFaultRates::uniform(rate))
    }

    /// A purely scripted plan: zero sampled rates, only the given events.
    pub fn scripted(events: Vec<ScriptedFault>) -> Self {
        let mut plan = NodeFaultPlan::new(0, NodeFaultRates::ZERO);
        plan.scripted = events;
        plan
    }

    /// Overrides how many epochs a sampled stall lasts.
    pub fn with_stall_epochs(mut self, epochs: u32) -> Self {
        self.stall_epochs = epochs.max(1);
        self
    }

    /// Appends one scripted fault.
    pub fn push(&mut self, fault: ScriptedFault) {
        self.scripted.push(fault);
    }

    /// The configured rates.
    pub fn rates(&self) -> NodeFaultRates {
        self.rates
    }

    /// Everything emitted so far.
    pub fn stats(&self) -> NodeFaultStats {
        self.stats
    }

    /// The events firing at `epoch` for a fleet of `nodes` nodes:
    /// scripted events first (in insertion order), then sampled events in
    /// node-id order. Exactly three RNG draws are burned per node per
    /// call, regardless of outcome, so the schedule is independent of
    /// everything but the seed.
    pub fn events_at(&mut self, epoch: u64, nodes: usize) -> Vec<(NodeId, NodeFaultKind)> {
        let mut events: Vec<(NodeId, NodeFaultKind)> = self
            .scripted
            .iter()
            .filter(|s| s.epoch == epoch && s.node.index() < nodes)
            .map(|s| (s.node, s.kind))
            .collect();
        for i in 0..nodes {
            let crash = self.rng.chance(self.rates.crash);
            let stall = self.rng.chance(self.rates.stall);
            let degrade = self.rng.chance(self.rates.degrade);
            let id = NodeId(u16::try_from(i).unwrap_or(u16::MAX));
            if crash {
                events.push((id, NodeFaultKind::Crash));
            }
            if stall {
                events.push((
                    id,
                    NodeFaultKind::Stall {
                        epochs: self.stall_epochs,
                    },
                ));
            }
            if degrade {
                events.push((id, NodeFaultKind::Degrade));
            }
        }
        for (_, kind) in &events {
            match kind {
                NodeFaultKind::Crash => self.stats.crashes += 1,
                NodeFaultKind::Stall { .. } => self.stats.stalls += 1,
                NodeFaultKind::Degrade => self.stats.degrades += 1,
            }
        }
        events
    }
}

/// The coordinator's belief about one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthState {
    /// Heartbeating normally; fully routable.
    #[default]
    Healthy,
    /// Missed at least `suspect_after` consecutive heartbeats; still
    /// routable but one step from fencing.
    Suspect,
    /// Missed at least `fence_after` consecutive heartbeats; receives
    /// zero new work until it beats again.
    Fenced,
    /// Beat again after being fenced; routable, but one miss re-fences.
    Probation,
}

impl HealthState {
    /// Stable label for summaries and fingerprints.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspect => "suspect",
            HealthState::Fenced => "fenced",
            HealthState::Probation => "probation",
        }
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Thresholds of the health machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Consecutive missed heartbeats before Healthy demotes to Suspect.
    pub suspect_after: u32,
    /// Consecutive missed heartbeats before the node is fenced.
    pub fence_after: u32,
    /// Consecutive heartbeats a fenced node must deliver (through
    /// Probation) before it is Healthy again.
    pub probation_beats: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            suspect_after: 2,
            fence_after: 4,
            probation_beats: 2,
        }
    }
}

/// A state change the engine may want to trace or act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthTransition {
    /// Healthy → Suspect.
    Suspected,
    /// Suspect → Healthy (beat before fencing).
    Cleared,
    /// → Fenced (from Suspect on the fencing miss, or from Probation on
    /// any miss).
    Fenced,
    /// Fenced → Probation (first beat after fencing).
    Probation,
    /// Probation → Healthy (probation served).
    Recovered,
}

/// Per-node health bookkeeping: feed it one heartbeat observation per
/// epoch and it walks the state machine.
#[derive(Debug, Clone, Copy, Default)]
pub struct HealthTracker {
    state: HealthState,
    misses: u32,
    beats: u32,
    fenced_epochs: u64,
}

impl HealthTracker {
    /// A fresh, Healthy tracker.
    pub fn new() -> Self {
        HealthTracker::default()
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Total epochs spent Fenced so far.
    pub fn fenced_epochs(&self) -> u64 {
        self.fenced_epochs
    }

    /// Observes one epoch's heartbeat (`beat` = the node participated in
    /// the step that just ended) and returns the transition it caused,
    /// if any.
    pub fn observe(&mut self, beat: bool, cfg: &HealthConfig) -> Option<HealthTransition> {
        if self.state == HealthState::Fenced {
            self.fenced_epochs += 1;
        }
        match (self.state, beat) {
            (HealthState::Healthy, true) => {
                self.misses = 0;
                None
            }
            (HealthState::Healthy | HealthState::Suspect, false) => {
                self.misses += 1;
                if self.misses >= cfg.fence_after {
                    self.state = HealthState::Fenced;
                    Some(HealthTransition::Fenced)
                } else if self.state == HealthState::Healthy && self.misses >= cfg.suspect_after {
                    self.state = HealthState::Suspect;
                    Some(HealthTransition::Suspected)
                } else {
                    None
                }
            }
            (HealthState::Suspect, true) => {
                self.misses = 0;
                self.state = HealthState::Healthy;
                Some(HealthTransition::Cleared)
            }
            (HealthState::Fenced, true) => {
                self.misses = 0;
                self.beats = 1;
                if self.beats >= cfg.probation_beats {
                    self.state = HealthState::Healthy;
                    self.beats = 0;
                    Some(HealthTransition::Recovered)
                } else {
                    self.state = HealthState::Probation;
                    Some(HealthTransition::Probation)
                }
            }
            (HealthState::Fenced, false) => None,
            (HealthState::Probation, true) => {
                self.beats += 1;
                if self.beats >= cfg.probation_beats {
                    self.state = HealthState::Healthy;
                    self.beats = 0;
                    Some(HealthTransition::Recovered)
                } else {
                    None
                }
            }
            (HealthState::Probation, false) => {
                self.state = HealthState::Fenced;
                self.beats = 0;
                self.misses = cfg.fence_after;
                Some(HealthTransition::Fenced)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig::default()
    }

    #[test]
    fn healthy_node_stays_healthy() {
        let mut t = HealthTracker::new();
        for _ in 0..100 {
            assert_eq!(t.observe(true, &cfg()), None);
            assert_eq!(t.state(), HealthState::Healthy);
        }
        assert_eq!(t.fenced_epochs(), 0);
    }

    #[test]
    fn misses_walk_suspect_then_fenced() {
        let mut t = HealthTracker::new();
        assert_eq!(t.observe(false, &cfg()), None);
        assert_eq!(t.observe(false, &cfg()), Some(HealthTransition::Suspected));
        assert_eq!(t.state(), HealthState::Suspect);
        assert_eq!(t.observe(false, &cfg()), None);
        assert_eq!(t.observe(false, &cfg()), Some(HealthTransition::Fenced));
        assert_eq!(t.state(), HealthState::Fenced);
        // Further misses keep it fenced without re-announcing.
        assert_eq!(t.observe(false, &cfg()), None);
        assert!(t.fenced_epochs() > 0);
    }

    #[test]
    fn suspect_clears_on_one_beat() {
        let mut t = HealthTracker::new();
        t.observe(false, &cfg());
        t.observe(false, &cfg());
        assert_eq!(t.state(), HealthState::Suspect);
        assert_eq!(t.observe(true, &cfg()), Some(HealthTransition::Cleared));
        assert_eq!(t.state(), HealthState::Healthy);
    }

    #[test]
    fn fenced_serves_probation_then_recovers() {
        let mut t = HealthTracker::new();
        for _ in 0..4 {
            t.observe(false, &cfg());
        }
        assert_eq!(t.state(), HealthState::Fenced);
        assert_eq!(t.observe(true, &cfg()), Some(HealthTransition::Probation));
        assert_eq!(t.state(), HealthState::Probation);
        assert_eq!(t.observe(true, &cfg()), Some(HealthTransition::Recovered));
        assert_eq!(t.state(), HealthState::Healthy);
    }

    #[test]
    fn probation_miss_refences() {
        let mut t = HealthTracker::new();
        for _ in 0..4 {
            t.observe(false, &cfg());
        }
        t.observe(true, &cfg());
        assert_eq!(t.state(), HealthState::Probation);
        assert_eq!(t.observe(false, &cfg()), Some(HealthTransition::Fenced));
        assert_eq!(t.state(), HealthState::Fenced);
        // One beat re-enters probation; it must serve the full term again.
        assert_eq!(t.observe(true, &cfg()), Some(HealthTransition::Probation));
    }

    #[test]
    fn single_beat_probation_recovers_immediately() {
        let short = HealthConfig {
            probation_beats: 1,
            ..HealthConfig::default()
        };
        let mut t = HealthTracker::new();
        for _ in 0..4 {
            t.observe(false, &short);
        }
        assert_eq!(t.observe(true, &short), Some(HealthTransition::Recovered));
        assert_eq!(t.state(), HealthState::Healthy);
    }

    #[test]
    fn zero_rate_plan_emits_nothing() {
        let mut plan = NodeFaultPlan::uniform(9, 0.0);
        for epoch in 0..500 {
            assert!(plan.events_at(epoch, 8).is_empty());
        }
        assert_eq!(plan.stats(), NodeFaultStats::default());
    }

    #[test]
    fn full_rate_plan_hits_every_node() {
        let mut plan = NodeFaultPlan::uniform(9, 1.0);
        let events = plan.events_at(0, 3);
        // Three categories on each of three nodes.
        assert_eq!(events.len(), 9);
        assert_eq!(plan.stats().crashes, 3);
        assert_eq!(plan.stats().stalls, 3);
        assert_eq!(plan.stats().degrades, 3);
    }

    #[test]
    fn sampling_is_deterministic_in_the_seed() {
        let run = |seed| {
            let mut plan = NodeFaultPlan::uniform(seed, 0.2);
            let events: Vec<_> = (0..100).flat_map(|e| plan.events_at(e, 4)).collect();
            (events, plan.stats())
        };
        assert_eq!(run(41), run(41));
        assert_ne!(run(41).0, run(42).0);
    }

    #[test]
    fn scripted_faults_fire_exactly_once() {
        let mut plan = NodeFaultPlan::scripted(vec![ScriptedFault {
            epoch: 3,
            node: NodeId(1),
            kind: NodeFaultKind::Crash,
        }]);
        assert!(plan.events_at(2, 4).is_empty());
        assert_eq!(
            plan.events_at(3, 4),
            vec![(NodeId(1), NodeFaultKind::Crash)]
        );
        assert!(plan.events_at(4, 4).is_empty());
    }

    #[test]
    fn scripted_fault_outside_fleet_is_dropped() {
        let mut plan = NodeFaultPlan::scripted(vec![ScriptedFault {
            epoch: 0,
            node: NodeId(9),
            kind: NodeFaultKind::Degrade,
        }]);
        assert!(plan.events_at(0, 4).is_empty());
    }
}
