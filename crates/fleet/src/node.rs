//! Fleet nodes: one simulated machine each, with its own chip preset,
//! seed, driver, and telemetry hub.
//!
//! A [`Node`] wraps an [`avfs_sched::System`] plus the driver chosen by
//! its [`NodeConfig`] and the incremental [`RunState`] the fleet engine
//! advances epoch by epoch. Routing policies never see a `Node`
//! directly — they get the sanitized [`NodeView`] snapshot, which also
//! carries the node's precomputed energy descriptors (undervolt headroom
//! and reference per-job energy costs) so the energy-aware policy can
//! rank heterogeneous machines without touching simulator state.

use crate::health::{HealthState, HealthTracker};
use crate::redispatch::TrackedJob;
use avfs_chip::chip::Chip;
use avfs_chip::fault::{FaultPlan, FaultRates};
use avfs_chip::freq::{FreqStep, FrequencyMhz};
use avfs_chip::power::{PmdLoad, PowerInputs};
use avfs_chip::presets;
use avfs_chip::topology::CoreSet;
use avfs_chip::voltage::Millivolts;
use avfs_core::configs::EvalConfig;
use avfs_core::daemon::{Daemon, DaemonStats};
use avfs_sched::driver::{DefaultPolicy, Driver};
use avfs_sched::metrics::RunMetrics;
use avfs_sched::system::{RunState, System, SystemConfig};
use avfs_sched::Pid;
use avfs_sim::time::SimTime;
use avfs_telemetry::Telemetry;
use avfs_workloads::{Benchmark, PerfModel};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifies one node within a fleet. Assigned densely from zero in
/// configuration order; all cross-node merges happen in `NodeId` order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Index into the fleet's node vector.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// The machine preset a node simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// X-Gene 2: 8 cores / 4 PMDs at 2.4 GHz, 28 nm bulk.
    XGene2,
    /// X-Gene 3: 32 cores / 16 PMDs at 3.0 GHz, 16 nm FinFET.
    XGene3,
}

impl NodeKind {
    /// Builds this preset's chip.
    pub fn build_chip(self) -> Chip {
        match self {
            NodeKind::XGene2 => presets::xgene2().build(),
            NodeKind::XGene3 => presets::xgene3().build(),
        }
    }

    /// The matching analytic performance model.
    pub fn perf_model(self) -> PerfModel {
        match self {
            NodeKind::XGene2 => PerfModel::xgene2(),
            NodeKind::XGene3 => PerfModel::xgene3(),
        }
    }

    /// Core count of the preset.
    pub fn cores(self) -> usize {
        match self {
            NodeKind::XGene2 => 8,
            NodeKind::XGene3 => 32,
        }
    }

    /// Short stable label.
    pub fn name(self) -> &'static str {
        match self {
            NodeKind::XGene2 => "xgene2",
            NodeKind::XGene3 => "xgene3",
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Static per-kind energy descriptors used by the energy-aware router.
///
/// Both costs are for a reference single-thread job running alone with
/// the rail at the characterized safe Vmin (the operating point the
/// Optimal daemon converges to), so they capture exactly the per-node
/// heterogeneity the paper exploits: how far the rail can undervolt at
/// full clock (CPU-bound work) and how cheap the divided clock plus its
/// deeper Vmin is (memory-bound work).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyDescriptor {
    /// Millivolts between nominal and the fully-loaded max-frequency
    /// safe Vmin: the undervolt headroom CPU-intensive jobs benefit from.
    pub undervolt_headroom_mv: u32,
    /// Estimated energy (J) of a reference CPU-bound job (namd) at fmax
    /// and the undervolted rail.
    pub cpu_job_cost_j: f64,
    /// Estimated energy (J) of a reference memory-bound job (milc) at
    /// the divided clock and its (deeper) safe Vmin.
    pub mem_job_cost_j: f64,
}

impl EnergyDescriptor {
    /// Characterizes a probe chip of the given kind. Deterministic: the
    /// probe is built from the preset builder with its default seeds.
    pub fn characterize(kind: NodeKind) -> Self {
        let mut probe = kind.build_chip();
        Self::characterize_probe(&mut probe, kind)
    }

    /// Characterizes a *degraded* chip of the given kind: the probe
    /// carries an active droop excursion (the worst silicon the node can
    /// now be), so the effective safe Vmin is the excursion guard higher
    /// everywhere — less undervolt headroom and costlier reference jobs.
    /// Deterministic like [`Self::characterize`].
    pub fn characterize_degraded(kind: NodeKind) -> Self {
        let mut probe = kind.build_chip();
        probe.set_fault_plan(Some(degrade_plan(0)));
        if let Some(plan) = probe.fault_plan_mut() {
            // Open the excursion so every Vmin query sees the guard.
            plan.droop_check();
        }
        Self::characterize_probe(&mut probe, kind)
    }

    fn characterize_probe(probe: &mut Chip, kind: NodeKind) -> Self {
        let perf = kind.perf_model();
        let spec = probe.spec().clone();
        let all_cores = CoreSet::first_n(spec.cores);
        let nominal = probe.nominal_voltage();

        // CPU-bound reference point: full clock, undervolted rail.
        let fmax = FrequencyMhz::new(spec.fmax_mhz);
        let v_cpu = probe.current_safe_vmin(all_cores);
        let cpu_profile = Benchmark::SpecNamd.profile();
        let t_cpu = perf.solo_time_s(&cpu_profile, fmax.as_mhz());
        let p_cpu = marginal_power_w(probe, fmax, v_cpu, cpu_profile.activity, 0.05);

        // Memory-bound reference point: divided clock, divided-class Vmin.
        probe.set_all_freq_steps(FreqStep::MIN);
        let v_mem = probe.current_safe_vmin(all_cores);
        let f_div = FreqStep::MIN.frequency(fmax);
        let mem_profile = Benchmark::SpecMilc.profile();
        let t_mem = perf.solo_time_s(&mem_profile, f_div.as_mhz());
        let p_mem = marginal_power_w(probe, f_div, v_mem, mem_profile.activity, 0.6);

        EnergyDescriptor {
            undervolt_headroom_mv: nominal.as_mv().saturating_sub(v_cpu.as_mv()),
            cpu_job_cost_j: p_cpu * t_cpu,
            mem_job_cost_j: p_mem * t_mem,
        }
    }
}

/// Marginal power of one busy core over the all-idle floor, at the given
/// clock and rail.
fn marginal_power_w(
    chip: &Chip,
    clock: FrequencyMhz,
    rail: Millivolts,
    activity: f64,
    mem_traffic: f64,
) -> f64 {
    let spec = chip.spec();
    let pmds = usize::from(spec.pmds());
    let mut loads: Vec<PmdLoad> = (0..pmds)
        .map(|_| PmdLoad {
            freq_mhz: clock.as_mhz(),
            active_cores: 0,
            activity: 0.0,
        })
        .collect();
    if let Some(first) = loads.first_mut() {
        first.active_cores = 1;
        first.activity = activity;
    }
    let inputs = PowerInputs {
        voltage: rail,
        pmd_loads: loads,
        mem_traffic,
    };
    let busy = chip.power_model().power_w(&inputs);
    let idle = chip.power_model().idle_power_w(rail, pmds);
    (busy - idle).max(0.0)
}

/// The chip-level plan a fleet "degrade" fault arms: droop excursions on
/// every check, nothing else. The daemon's droop guard then holds its
/// emergency guardband essentially forever — the pessimized operating
/// point the re-characterized [`EnergyDescriptor`] prices in.
pub(crate) fn degrade_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(
        seed,
        FaultRates {
            droop: 1.0,
            ..FaultRates::ZERO
        },
    )
}

/// Configuration of one fleet node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeConfig {
    /// Which machine preset to simulate.
    pub kind: NodeKind,
    /// Which evaluation configuration drives it (§VI-B).
    pub eval: EvalConfig,
    /// Root seed for the node's stochastic models.
    pub seed: u64,
    /// Bounded admission: maximum live (queued + running) jobs the front
    /// door may have outstanding on this node; beyond it, routing must
    /// pick another node or shed.
    pub admit_capacity: usize,
}

impl NodeConfig {
    /// A node of the given kind under the Optimal daemon, with a
    /// generous admission bound.
    pub fn new(kind: NodeKind, seed: u64) -> Self {
        NodeConfig {
            kind,
            eval: EvalConfig::Optimal,
            seed,
            admit_capacity: 64,
        }
    }
}

/// The driver owned by a node: either the stock governor policy or a
/// daemon, kept as the concrete type so recovery stats stay readable
/// after the run.
#[derive(Debug)]
pub(crate) enum NodeDriver {
    Baseline(DefaultPolicy),
    Daemon(Box<Daemon>),
}

impl NodeDriver {
    pub(crate) fn build(eval: EvalConfig, chip: &Chip, telemetry: &Telemetry) -> Self {
        let with = |mut d: Daemon| {
            d.set_telemetry(telemetry.clone());
            NodeDriver::Daemon(Box::new(d))
        };
        match eval {
            EvalConfig::Baseline => NodeDriver::Baseline(DefaultPolicy::ondemand()),
            EvalConfig::SafeVmin => with(Daemon::safe_vmin_only(chip)),
            EvalConfig::Placement => with(Daemon::placement_only(chip)),
            EvalConfig::Optimal => with(Daemon::optimal(chip)),
        }
    }

    pub(crate) fn as_dyn_mut(&mut self) -> &mut dyn Driver {
        match self {
            NodeDriver::Baseline(d) => d,
            NodeDriver::Daemon(d) => d.as_mut(),
        }
    }

    pub(crate) fn stats(&self) -> Option<DaemonStats> {
        match self {
            NodeDriver::Baseline(_) => None,
            NodeDriver::Daemon(d) => Some(d.stats()),
        }
    }
}

/// One live node: simulator, driver, run bookkeeping, the front door's
/// admission accounting, and the resilience-layer state the coordinator
/// maintains (fault flags, health machine, pid → job ledger).
#[derive(Debug)]
pub(crate) struct Node {
    pub(crate) id: NodeId,
    pub(crate) kind: NodeKind,
    pub(crate) capacity: usize,
    pub(crate) seed: u64,
    pub(crate) system: System,
    pub(crate) driver: NodeDriver,
    pub(crate) st: RunState,
    pub(crate) telemetry: Telemetry,
    pub(crate) descriptor: EnergyDescriptor,
    pub(crate) admitted: u64,
    pub(crate) cpu_jobs: u64,
    pub(crate) mem_jobs: u64,
    /// Ground truth injected by the fault plan (the health machine only
    /// ever sees the heartbeat shadow of these).
    pub(crate) dead: bool,
    /// Epoch steps this node will still miss before returning.
    pub(crate) stall_remaining: u32,
    /// Whether the node missed the step that just ended (the heartbeat
    /// signal the coordinator's health machine consumes).
    pub(crate) missed_last: bool,
    /// Whether a degrade fault pessimized the chip.
    pub(crate) degraded: bool,
    /// Whether a dead node's stranded jobs were already drained.
    pub(crate) drained: bool,
    /// How many stranded jobs were drained off this node.
    pub(crate) drained_count: u64,
    /// Coordinator-side health machine.
    pub(crate) health: HealthTracker,
    /// Fleet-level identity of every job admitted here, by node pid.
    pub(crate) jobs: BTreeMap<Pid, TrackedJob>,
}

impl Node {
    /// Builds and initializes a node (the driver observes its first
    /// monitor tick immediately, mirroring `System::run`).
    pub(crate) fn build(id: NodeId, cfg: &NodeConfig, telemetry: Telemetry) -> Node {
        let chip = cfg.kind.build_chip();
        let mut driver = NodeDriver::build(cfg.eval, &chip, &telemetry);
        let sys_cfg = SystemConfig {
            seed: cfg.seed,
            ..SystemConfig::default()
        };
        let mut system = System::builder(chip, cfg.kind.perf_model())
            .config(sys_cfg)
            .observer(telemetry.clone())
            .build();
        let st = system.begin_run(driver.as_dyn_mut());
        Node {
            id,
            kind: cfg.kind,
            capacity: cfg.admit_capacity,
            seed: cfg.seed,
            system,
            driver,
            st,
            telemetry,
            descriptor: EnergyDescriptor::characterize(cfg.kind),
            admitted: 0,
            cpu_jobs: 0,
            mem_jobs: 0,
            dead: false,
            stall_remaining: 0,
            missed_last: false,
            degraded: false,
            drained: false,
            drained_count: 0,
            health: HealthTracker::new(),
            jobs: BTreeMap::new(),
        }
    }

    /// Live (queued + running) jobs on this node.
    pub(crate) fn live_jobs(&self) -> usize {
        self.system.live_processes()
    }

    /// Advances the node's simulation to `horizon`.
    pub(crate) fn step_to(&mut self, horizon: SimTime) {
        self.system
            .step_until(&mut self.st, self.driver.as_dyn_mut(), horizon);
    }

    /// Drains the node after the last routing decision.
    pub(crate) fn drain(&mut self) {
        self.system
            .run_to_completion(&mut self.st, self.driver.as_dyn_mut());
    }

    /// Applies a degrade fault: arms the chip-level droop plan (seeded
    /// from the node's own seed so the run stays deterministic) and
    /// re-characterizes the energy descriptors the router ranks this
    /// node by.
    pub(crate) fn apply_degrade(&mut self) {
        self.system
            .chip_mut()
            .set_fault_plan(Some(degrade_plan(self.seed)));
        self.degraded = true;
        self.descriptor = EnergyDescriptor::characterize_degraded(self.kind);
    }

    /// Fleet jobs admitted here that will never complete here (the node
    /// is dead): everything in the pid ledger without a completion
    /// record. Retry budgets are reset to `budget` and the origin is
    /// stamped so routing excludes this node.
    pub(crate) fn stranded_jobs(&self, budget: u32) -> Vec<TrackedJob> {
        let completed: BTreeSet<Pid> = self
            .st
            .metrics()
            .completed
            .iter()
            .map(|rec| rec.pid)
            .collect();
        self.jobs
            .iter()
            .filter(|(pid, _)| !completed.contains(pid))
            .map(|(_, tj)| TrackedJob {
                retries_left: budget,
                origin: Some(self.id),
                ..*tj
            })
            .collect()
    }

    /// Whether any admitted job is still live here (stranded, for a dead
    /// node).
    pub(crate) fn has_stranded(&self) -> bool {
        self.live_jobs() > 0
    }

    /// The sanitized snapshot routing policies rank.
    pub(crate) fn view(&self) -> NodeView {
        NodeView {
            id: self.id,
            kind: self.kind,
            cores: self.kind.cores(),
            live_jobs: self.live_jobs(),
            live_threads: self.system.live_threads(),
            admit_capacity: self.capacity,
            descriptor: self.descriptor,
            health: self.health.state(),
            degraded: self.degraded,
        }
    }
}

/// What a routing policy sees of one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeView {
    /// The node's identity (routing decisions name this).
    pub id: NodeId,
    /// Machine preset.
    pub kind: NodeKind,
    /// Core count.
    pub cores: usize,
    /// Live (queued + running) jobs.
    pub live_jobs: usize,
    /// Total threads across live jobs.
    pub live_threads: usize,
    /// Bounded-admission capacity, in jobs.
    pub admit_capacity: usize,
    /// Static energy descriptors (see [`EnergyDescriptor`]);
    /// re-characterized (pessimized) once a degrade fault lands.
    pub descriptor: EnergyDescriptor,
    /// What the coordinator's health machine currently believes about
    /// this node. A crashed-but-undetected node still reads Healthy —
    /// the view is the coordinator's knowledge, not ground truth.
    pub health: HealthState,
    /// Whether a degrade fault pessimized this node's chip (and its
    /// descriptor above was re-characterized).
    pub degraded: bool,
}

impl NodeView {
    /// Whether the front door may admit one more job here.
    pub fn has_space(&self) -> bool {
        self.live_jobs < self.admit_capacity
    }

    /// Whether the health machine allows new work here (everything but
    /// Fenced; Suspect and Probation nodes serve while being watched).
    pub fn routable(&self) -> bool {
        self.health != HealthState::Fenced
    }

    /// Live threads per core — the congestion signal load-balancing
    /// policies minimize.
    pub fn load_ratio(&self) -> f64 {
        debug_assert!(self.cores > 0);
        to_f64(self.live_threads) / to_f64(self.cores.max(1))
    }

    /// Load ratio if a `threads`-wide job were admitted.
    pub fn projected_load(&self, threads: usize) -> f64 {
        to_f64(self.live_threads + threads) / to_f64(self.cores.max(1))
    }
}

/// Small-integer to f64 conversion (exact for every value we meet).
fn to_f64(n: usize) -> f64 {
    u32::try_from(n).map(f64::from).unwrap_or(f64::MAX)
}

/// Per-node slice of a [`crate::FleetSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSummary {
    /// The node's identity.
    pub id: NodeId,
    /// Machine preset.
    pub kind: NodeKind,
    /// Core count.
    pub cores: usize,
    /// Jobs the front door admitted here.
    pub admitted: u64,
    /// Jobs that ran to completion here.
    pub completed: u64,
    /// Admitted jobs the front door classified CPU-intensive.
    pub cpu_jobs: u64,
    /// Admitted jobs the front door classified memory-intensive.
    pub mem_jobs: u64,
    /// The node's finalized run metrics.
    pub metrics: RunMetrics,
    /// Daemon recovery/decision counters (None for baseline nodes).
    pub daemon: Option<DaemonStats>,
    /// Final health-machine state.
    pub health: HealthState,
    /// Epochs the node spent fenced.
    pub fenced_epochs: u64,
    /// Whether a crash fault killed the node.
    pub dead: bool,
    /// Whether a degrade fault pessimized the node's chip.
    pub degraded: bool,
    /// Stranded jobs drained off this node for re-dispatch.
    pub drained_jobs: u64,
}
