//! The fleet engine: epoch-synchronized execution over N nodes with a
//! bounded-admission front door.
//!
//! # Determinism rules
//!
//! Results are byte-identical for any worker count because:
//!
//! 1. **Routing is sequential.** All routing decisions happen on the
//!    coordinator at epoch boundaries, in trace order, against node
//!    views snapshotted in `NodeId` order.
//! 2. **Node stepping is independent.** Between boundaries each node
//!    advances its own `System` to the same horizon; nodes share no
//!    state, and each has its own telemetry hub, so which worker steps
//!    which node cannot be observed.
//! 3. **Merging is ordered.** Summaries and the fleet journal are
//!    assembled in `NodeId` order after all workers join; timestamps
//!    are simulation-time only.

use crate::node::{Node, NodeConfig, NodeId, NodeSummary};
use crate::routing::{JobView, RoutingPolicy};
use avfs_core::daemon::DaemonStats;
use avfs_sim::time::{SimDuration, SimTime};
use avfs_telemetry::{Telemetry, TraceKind, Value};
use avfs_workloads::{IntensityClass, WorkloadTrace};

/// Fleet-wide configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The nodes, in `NodeId` order.
    pub nodes: Vec<NodeConfig>,
    /// Epoch length: arrivals are admitted at epoch boundaries and all
    /// nodes synchronize on the boundary clock.
    pub epoch: SimDuration,
    /// Worker threads for node stepping (results are identical for any
    /// value; this only trades wall-clock time).
    pub workers: usize,
    /// When true, the coordinator and every node get a telemetry hub and
    /// the run exports a merged fleet journal.
    pub telemetry: bool,
}

impl FleetConfig {
    /// A fleet over the given nodes with 1 s epochs, one worker, and
    /// telemetry off.
    pub fn new(nodes: Vec<NodeConfig>) -> Self {
        FleetConfig {
            nodes,
            epoch: SimDuration::from_secs(1),
            workers: 1,
            telemetry: false,
        }
    }
}

/// Front-door admission counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Jobs that reached the front door.
    pub submitted: u64,
    /// Jobs admitted to some node.
    pub admitted: u64,
    /// Jobs shed because the chosen node (or every node) was at its
    /// admission bound.
    pub shed_full: u64,
    /// Jobs shed because the policy declined or named an unknown node.
    pub shed_unroutable: u64,
}

impl AdmissionStats {
    /// Total jobs shed.
    pub fn shed(&self) -> u64 {
        self.shed_full + self.shed_unroutable
    }
}

/// A cluster of simulated nodes behind one admission front door.
#[derive(Debug)]
pub struct Fleet {
    nodes: Vec<Node>,
    epoch: SimDuration,
    workers: usize,
    telemetry: Telemetry,
}

impl Fleet {
    /// Builds the fleet: every node gets its own chip, driver, seed, and
    /// (when enabled) telemetry hub; drivers observe their first monitor
    /// tick immediately.
    pub fn new(config: &FleetConfig) -> Self {
        let coordinator = if config.telemetry {
            Telemetry::hub()
        } else {
            Telemetry::null()
        };
        let nodes = config
            .nodes
            .iter()
            .enumerate()
            .map(|(i, nc)| {
                let id = NodeId(u16::try_from(i).unwrap_or(u16::MAX));
                let tel = if config.telemetry {
                    Telemetry::hub()
                } else {
                    Telemetry::null()
                };
                Node::build(id, nc, tel)
            })
            .collect();
        Fleet {
            nodes,
            epoch: config.epoch,
            workers: config.workers.max(1),
            telemetry: coordinator,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the fleet has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Runs the trace through the front door to completion and returns
    /// the cluster summary. Consumes the fleet: nodes are single-run,
    /// like [`avfs_sched::System`].
    ///
    /// Arrivals are admitted at the first epoch boundary at or after
    /// their trace timestamp, in trace order; between boundaries every
    /// node advances independently (in parallel across `workers`
    /// threads). After the last arrival is routed, nodes drain to idle.
    pub fn run(mut self, trace: &WorkloadTrace, policy: &mut dyn RoutingPolicy) -> FleetSummary {
        let mut stats = AdmissionStats::default();
        let mut now = SimTime::ZERO;
        let mut next = 0usize;

        loop {
            // Route everything due at this boundary, in trace order.
            while next < trace.arrivals.len() && trace.arrivals[next].at <= now {
                let a = &trace.arrivals[next];
                next += 1;
                self.route_one(JobView::of(a.bench, a.threads, a.scale), policy, &mut stats);
            }
            if next >= trace.arrivals.len() {
                break;
            }
            now += self.epoch;
            Self::par_step(&mut self.nodes, self.workers, now);
        }

        // All arrivals routed: drain every node to idle.
        Self::par_drain(&mut self.nodes, self.workers);
        self.finish(policy.name(), stats)
    }

    /// One routing decision: snapshot views, consult the policy, admit
    /// or shed, and trace the outcome on the coordinator hub.
    fn route_one(
        &mut self,
        job: JobView,
        policy: &mut dyn RoutingPolicy,
        stats: &mut AdmissionStats,
    ) {
        stats.submitted += 1;
        let views: Vec<_> = self.nodes.iter().map(Node::view).collect();
        let class_label = match job.class {
            IntensityClass::CpuIntensive => "cpu",
            IntensityClass::MemoryIntensive => "memory",
        };
        match policy.route(&job, &views) {
            Some(id) if id.index() < self.nodes.len() && views[id.index()].has_space() => {
                let node = &mut self.nodes[id.index()];
                node.system.inject_arrival(
                    &mut node.st,
                    node.driver.as_dyn_mut(),
                    job.bench,
                    job.threads,
                    job.scale,
                );
                node.admitted += 1;
                match job.class {
                    IntensityClass::CpuIntensive => node.cpu_jobs += 1,
                    IntensityClass::MemoryIntensive => node.mem_jobs += 1,
                }
                stats.admitted += 1;
                self.telemetry.trace(TraceKind::FleetRoute, || {
                    vec![
                        ("node", Value::U64(u64::from(id.0))),
                        ("bench", Value::Str(job.bench.name())),
                        ("threads", Value::U64(job.threads as u64)),
                        ("class", Value::Str(class_label)),
                    ]
                });
            }
            choice => {
                let reason = match choice {
                    None => {
                        stats.shed_unroutable += 1;
                        "declined"
                    }
                    Some(id) if id.index() >= self.nodes.len() => {
                        stats.shed_unroutable += 1;
                        "unknown-node"
                    }
                    Some(_) => {
                        stats.shed_full += 1;
                        "full"
                    }
                };
                self.telemetry.trace(TraceKind::FleetShed, || {
                    vec![
                        ("bench", Value::Str(job.bench.name())),
                        ("class", Value::Str(class_label)),
                        ("reason", Value::Str(reason)),
                    ]
                });
            }
        }
    }

    /// Steps every node to `horizon`, fanning out over a scoped worker
    /// pool. Nodes are partitioned into contiguous chunks; since nodes
    /// share no state, the partition (and the worker count) cannot
    /// affect any result.
    fn par_step(nodes: &mut [Node], workers: usize, horizon: SimTime) {
        Self::par_each(nodes, workers, |n| n.step_to(horizon));
    }

    /// Drains every node to idle, fanning out identically.
    fn par_drain(nodes: &mut [Node], workers: usize) {
        Self::par_each(nodes, workers, Node::drain);
    }

    fn par_each(nodes: &mut [Node], workers: usize, f: impl Fn(&mut Node) + Send + Sync) {
        let workers = workers.clamp(1, nodes.len().max(1));
        if workers <= 1 {
            for n in nodes {
                f(n);
            }
            return;
        }
        let chunk = nodes.len().div_ceil(workers);
        std::thread::scope(|s| {
            for part in nodes.chunks_mut(chunk) {
                s.spawn(|| {
                    for n in part {
                        f(n);
                    }
                });
            }
        });
    }

    /// Finalizes node metrics and assembles the summary in id order.
    fn finish(self, policy: &'static str, stats: AdmissionStats) -> FleetSummary {
        let mut summary = FleetSummary {
            policy,
            admission: stats,
            completed: 0,
            cluster_energy_j: 0.0,
            cluster_makespan: SimDuration::ZERO,
            migrations: 0,
            voltage_changes: 0,
            failures: 0,
            unsafe_time_s: 0.0,
            daemon: DaemonStats::default(),
            nodes: Vec::with_capacity(self.nodes.len()),
            journal: None,
        };
        let mut journal = String::new();
        let coordinator_journal = self.telemetry.export_jsonl();
        for mut node in self.nodes {
            let metrics = node.system.finish_run(node.st);
            summary.completed += metrics.completed.len() as u64;
            summary.cluster_energy_j += metrics.energy_j;
            summary.cluster_makespan = summary.cluster_makespan.max(metrics.makespan);
            summary.migrations += metrics.migrations;
            summary.voltage_changes += metrics.voltage_changes;
            summary.failures += metrics.failures;
            summary.unsafe_time_s += metrics.unsafe_time_s;
            let daemon = node.driver.stats();
            if let Some(ds) = &daemon {
                add_stats(&mut summary.daemon, ds);
            }
            if let Some(tagged) = node
                .telemetry
                .with_hub(|h| h.export_jsonl_tagged("node", u64::from(node.id.0)))
            {
                journal.push_str(&tagged);
            }
            summary.nodes.push(NodeSummary {
                id: node.id,
                kind: node.kind,
                cores: node.kind.cores(),
                admitted: node.admitted,
                completed: metrics.completed.len() as u64,
                cpu_jobs: node.cpu_jobs,
                mem_jobs: node.mem_jobs,
                metrics,
                daemon,
            });
        }
        if let Some(cj) = coordinator_journal {
            summary.journal = Some(format!("{cj}{journal}"));
        }
        summary
    }
}

/// Field-by-field accumulation of daemon counters.
fn add_stats(acc: &mut DaemonStats, s: &DaemonStats) {
    acc.invocations += s.invocations;
    acc.plans += s.plans;
    acc.pins += s.pins;
    acc.voltage_raises += s.voltage_raises;
    acc.voltage_lowers += s.voltage_lowers;
    acc.deferred_pins += s.deferred_pins;
    acc.mailbox_faults += s.mailbox_faults;
    acc.retries += s.retries;
    acc.backoff_us += s.backoff_us;
    acc.safe_mode_entries += s.safe_mode_entries;
    acc.safe_mode_exits += s.safe_mode_exits;
    acc.watchdog_fires += s.watchdog_fires;
    acc.droop_emergencies += s.droop_emergencies;
}

/// Cluster-level aggregation of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// The routing policy that produced this run.
    pub policy: &'static str,
    /// Front-door admission counters.
    pub admission: AdmissionStats,
    /// Jobs completed across all nodes.
    pub completed: u64,
    /// Total energy across all nodes, J.
    pub cluster_energy_j: f64,
    /// Longest per-node makespan (cluster drain time).
    pub cluster_makespan: SimDuration,
    /// Total migrations across nodes.
    pub migrations: u64,
    /// Total committed voltage changes across nodes.
    pub voltage_changes: u64,
    /// Total injected failures across nodes.
    pub failures: u64,
    /// Total unsafe rail time across nodes, seconds.
    pub unsafe_time_s: f64,
    /// Aggregated daemon decision/recovery counters (zeros for
    /// baseline-only fleets).
    pub daemon: DaemonStats,
    /// Per-node summaries, in `NodeId` order.
    pub nodes: Vec<NodeSummary>,
    /// Merged fleet journal (coordinator first, then nodes in id order,
    /// each line tagged `"node":<id>`); `None` when telemetry was off.
    pub journal: Option<String>,
}

impl FleetSummary {
    /// Conservation check: every submitted job is accounted for and —
    /// since a run always drains — every admitted job completed.
    pub fn conserves_jobs(&self) -> bool {
        let a = &self.admission;
        let node_admitted: u64 = self.nodes.iter().map(|n| n.admitted).sum();
        a.submitted == a.admitted + a.shed()
            && a.admitted == node_admitted
            && a.admitted == self.completed
    }

    /// Cluster energy savings vs a baseline run, percent.
    pub fn energy_savings_vs(&self, base: &FleetSummary) -> f64 {
        if base.cluster_energy_j <= 0.0 {
            return 0.0;
        }
        (1.0 - self.cluster_energy_j / base.cluster_energy_j) * 100.0
    }

    /// Cluster makespan penalty vs a baseline run, percent (negative
    /// means faster).
    pub fn time_penalty_vs(&self, base: &FleetSummary) -> f64 {
        let b = base.cluster_makespan.as_secs_f64();
        if b <= 0.0 {
            return 0.0;
        }
        (self.cluster_makespan.as_secs_f64() / b - 1.0) * 100.0
    }

    /// A deterministic digest of everything observable in the summary
    /// (floats rendered via `to_bits`, nodes in id order). Two runs are
    /// byte-identical iff their fingerprints (and journals) match.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256 + 128 * self.nodes.len());
        let a = &self.admission;
        let _ = write!(
            out,
            "policy={} submitted={} admitted={} shed_full={} shed_unroutable={} \
             completed={} energy={:016x} makespan_ns={} migrations={} vchanges={} \
             failures={} unsafe={:016x} daemon=[{}]",
            self.policy,
            a.submitted,
            a.admitted,
            a.shed_full,
            a.shed_unroutable,
            self.completed,
            self.cluster_energy_j.to_bits(),
            self.cluster_makespan.as_nanos(),
            self.migrations,
            self.voltage_changes,
            self.failures,
            self.unsafe_time_s.to_bits(),
            self.daemon,
        );
        for n in &self.nodes {
            let _ = write!(
                out,
                "\n{} kind={} admitted={} completed={} cpu={} mem={} energy={:016x} \
                 makespan_ns={} migrations={} vchanges={} unsafe={:016x}",
                n.id,
                n.kind,
                n.admitted,
                n.completed,
                n.cpu_jobs,
                n.mem_jobs,
                n.metrics.energy_j.to_bits(),
                n.metrics.makespan.as_nanos(),
                n.metrics.migrations,
                n.metrics.voltage_changes,
                n.metrics.unsafe_time_s.to_bits(),
            );
        }
        out
    }
}
