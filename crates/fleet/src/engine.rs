//! The fleet engine: epoch-synchronized execution over N nodes with a
//! bounded-admission front door and a fault-tolerant routing loop.
//!
//! # Determinism rules
//!
//! Results are byte-identical for any worker count because:
//!
//! 1. **Routing is sequential.** All routing decisions happen on the
//!    coordinator at epoch boundaries, in trace order, against node
//!    views snapshotted in `NodeId` order.
//! 2. **Node stepping is independent.** Between boundaries each node
//!    advances its own `System` to the same horizon; nodes share no
//!    state, and each has its own telemetry hub, so which worker steps
//!    which node cannot be observed.
//! 3. **Merging is ordered.** Summaries and the fleet journal are
//!    assembled in `NodeId` order after all workers join; timestamps
//!    are simulation-time only.
//! 4. **Faults are coordinator-side.** The [`NodeFaultPlan`] is sampled
//!    on the coordinator at boundaries (fixed draw count per node per
//!    epoch), health observation and re-dispatch run sequentially there
//!    too, and a node's dead/stalled flags only change at boundaries —
//!    so the failure schedule, the fencing sequence, and every
//!    re-dispatch decision are identical for any worker count.
//!
//! # Boundary order
//!
//! At each epoch boundary the coordinator runs, in this order: health
//! observation (heartbeats from the step that just ended, fencing and
//! draining dead nodes), fault firing (new crashes/stalls/degrades),
//! re-dispatch of drained jobs, then new arrivals. A run with no fault
//! plan (or an all-zero one) takes exactly the pre-resilience path:
//! every resilience hook is a no-op and the results are bit-identical.

use crate::health::{HealthConfig, HealthState, HealthTransition, NodeFaultKind, NodeFaultPlan};
use crate::node::{Node, NodeConfig, NodeId, NodeSummary, NodeView};
use crate::redispatch::{CompletionLedger, JobId, RedispatchQueue, RedispatchStats, TrackedJob};
use crate::routing::{HealthGated, JobView, RoutingPolicy};
use avfs_core::daemon::DaemonStats;
use avfs_sim::time::{SimDuration, SimTime};
use avfs_telemetry::{Telemetry, TraceKind, Value};
use avfs_workloads::{IntensityClass, WorkloadTrace};
use std::collections::BTreeSet;

/// Fleet-wide configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The nodes, in `NodeId` order.
    pub nodes: Vec<NodeConfig>,
    /// Epoch length: arrivals are admitted at epoch boundaries and all
    /// nodes synchronize on the boundary clock.
    pub epoch: SimDuration,
    /// Worker threads for node stepping (results are identical for any
    /// value; this only trades wall-clock time).
    pub workers: usize,
    /// When true, the coordinator and every node get a telemetry hub and
    /// the run exports a merged fleet journal.
    pub telemetry: bool,
    /// Node-failure schedule; `None` (or an all-zero plan) reproduces
    /// the failure-free engine bit for bit.
    pub fault_plan: Option<NodeFaultPlan>,
    /// Thresholds of the per-node health machine.
    pub health: HealthConfig,
    /// Boundaries a drained job may fail to find a node before it is
    /// shed as exhausted.
    pub retry_budget: u32,
    /// When true, the run records an [`EpochAudit`] at every boundary
    /// (the per-epoch conservation ledger the proptests assert).
    pub audit: bool,
}

impl FleetConfig {
    /// A fleet over the given nodes with 1 s epochs, one worker,
    /// telemetry off, and no fault injection.
    pub fn new(nodes: Vec<NodeConfig>) -> Self {
        FleetConfig {
            nodes,
            epoch: SimDuration::from_secs(1),
            workers: 1,
            telemetry: false,
            fault_plan: None,
            health: HealthConfig::default(),
            retry_budget: 3,
            audit: false,
        }
    }
}

/// Front-door admission counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Jobs that reached the front door.
    pub submitted: u64,
    /// Jobs admitted to some node.
    pub admitted: u64,
    /// Jobs shed because the chosen node (or every node) was at its
    /// admission bound.
    pub shed_full: u64,
    /// Jobs shed because the policy declined or named an unknown,
    /// fenced, or excluded node.
    pub shed_unroutable: u64,
}

impl AdmissionStats {
    /// Total jobs shed.
    pub fn shed(&self) -> u64 {
        self.shed_full + self.shed_unroutable
    }
}

/// Why one front-door job was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShedReason {
    Declined,
    UnknownNode,
    Full,
    Fenced,
    Origin,
}

impl ShedReason {
    fn label(self) -> &'static str {
        match self {
            ShedReason::Declined => "declined",
            ShedReason::UnknownNode => "unknown-node",
            ShedReason::Full => "full",
            ShedReason::Fenced => "fenced",
            ShedReason::Origin => "origin",
        }
    }
}

/// Node-fault events the engine actually applied (the plan may emit
/// events for already-dead nodes; those are ignored and not counted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppliedFaults {
    /// Nodes crashed (permanently dead).
    pub crashes: u64,
    /// Stall windows opened.
    pub stalls: u64,
    /// Nodes degraded (chip pessimized, descriptor re-characterized).
    pub degrades: u64,
}

impl AppliedFaults {
    /// Total applied fault events.
    pub fn total(&self) -> u64 {
        self.crashes + self.stalls + self.degrades
    }
}

/// One epoch boundary's conservation ledger, recorded when
/// [`FleetConfig::audit`] is on — after routing, before stepping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochAudit {
    /// Which boundary.
    pub epoch: u64,
    /// Front-door jobs submitted so far.
    pub submitted: u64,
    /// Front-door jobs admitted so far.
    pub admitted: u64,
    /// Front-door jobs shed so far.
    pub shed: u64,
    /// Jobs completed on some node so far.
    pub completed: u64,
    /// Jobs currently live on nodes (stranded jobs on a drained dead
    /// node are counted in `queued` instead).
    pub live_on_nodes: u64,
    /// Jobs awaiting re-dispatch.
    pub queued: u64,
    /// Drained jobs shed as exhausted so far.
    pub exhausted: u64,
}

impl EpochAudit {
    /// The per-epoch conservation invariant: every admitted job is
    /// completed, live somewhere, queued for re-dispatch, or exhausted.
    pub fn holds(&self) -> bool {
        self.admitted == self.completed + self.live_on_nodes + self.queued + self.exhausted
    }
}

/// A cluster of simulated nodes behind one admission front door.
#[derive(Debug)]
pub struct Fleet {
    nodes: Vec<Node>,
    epoch: SimDuration,
    workers: usize,
    telemetry: Telemetry,
    plan: Option<NodeFaultPlan>,
    health_cfg: HealthConfig,
    retry_budget: u32,
    audit: bool,
    queue: RedispatchQueue,
    redispatch: RedispatchStats,
    faults: AppliedFaults,
    admitted_ids: BTreeSet<u64>,
    exhausted_ids: BTreeSet<u64>,
    next_job: u64,
    audits: Vec<EpochAudit>,
    /// Reused routing-view buffer: `try_place` runs once per routed job
    /// (plus once per queued job per boundary), so the view set is
    /// rebuilt in place instead of collected fresh each time.
    view_scratch: Vec<NodeView>,
}

impl Fleet {
    /// Starts a [`FleetBuilder`] — the blessed construction path:
    ///
    /// ```
    /// use avfs_fleet::{Fleet, NodeConfig, NodeKind};
    ///
    /// let fleet = Fleet::builder()
    ///     .node(NodeConfig::new(NodeKind::XGene2, 42))
    ///     .node(NodeConfig::new(NodeKind::XGene3, 43))
    ///     .workers(2)
    ///     .build();
    /// assert_eq!(fleet.len(), 2);
    /// ```
    pub fn builder() -> FleetBuilder {
        FleetBuilder {
            config: FleetConfig::new(Vec::new()),
        }
    }

    /// Builds the fleet: every node gets its own chip, driver, seed, and
    /// (when enabled) telemetry hub; drivers observe their first monitor
    /// tick immediately.
    #[deprecated(
        since = "0.8.0",
        note = "use Fleet::builder().nodes(..).epoch(..).workers(..).build()"
    )]
    pub fn new(config: &FleetConfig) -> Self {
        Fleet::from_config(config)
    }

    fn from_config(config: &FleetConfig) -> Self {
        let coordinator = if config.telemetry {
            Telemetry::hub()
        } else {
            Telemetry::null()
        };
        let nodes = config
            .nodes
            .iter()
            .enumerate()
            .map(|(i, nc)| {
                let id = NodeId(u16::try_from(i).unwrap_or(u16::MAX));
                let tel = if config.telemetry {
                    Telemetry::hub()
                } else {
                    Telemetry::null()
                };
                Node::build(id, nc, tel)
            })
            .collect();
        Fleet {
            nodes,
            epoch: config.epoch,
            workers: config.workers.max(1),
            telemetry: coordinator,
            plan: config.fault_plan.clone(),
            health_cfg: config.health,
            retry_budget: config.retry_budget,
            audit: config.audit,
            queue: RedispatchQueue::new(),
            redispatch: RedispatchStats::default(),
            faults: AppliedFaults::default(),
            admitted_ids: BTreeSet::new(),
            exhausted_ids: BTreeSet::new(),
            next_job: 0,
            audits: Vec::new(),
            view_scratch: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the fleet has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Runs the trace through the front door to completion and returns
    /// the cluster summary. Consumes the fleet: nodes are single-run,
    /// like [`avfs_sched::System`].
    ///
    /// Arrivals are admitted at the first epoch boundary at or after
    /// their trace timestamp, in trace order; between boundaries every
    /// live node advances independently (in parallel across `workers`
    /// threads). The run ends once all arrivals are routed, the
    /// re-dispatch queue is empty, and no failed node still holds
    /// undrained or parked work; surviving nodes then drain to idle.
    pub fn run(mut self, trace: &WorkloadTrace, policy: &mut dyn RoutingPolicy) -> FleetSummary {
        let mut gate = HealthGated::new(policy);
        let mut stats = AdmissionStats::default();
        let mut now = SimTime::ZERO;
        let mut next = 0usize;
        let mut epoch_no: u64 = 0;

        loop {
            self.observe_health(epoch_no);
            self.fire_faults(epoch_no);
            self.drain_redispatch(&mut gate);

            // Route everything due at this boundary, in trace order.
            while next < trace.arrivals.len() && trace.arrivals[next].at <= now {
                let a = &trace.arrivals[next];
                next += 1;
                let id = JobId(self.next_job);
                self.next_job += 1;
                self.route_one(
                    JobView::of(id, a.bench, a.threads, a.scale),
                    &mut gate,
                    &mut stats,
                );
            }
            if self.audit {
                self.record_audit(epoch_no, &stats);
            }
            if next >= trace.arrivals.len() && self.queue.is_empty() && !self.any_pending() {
                break;
            }
            now += self.epoch;
            epoch_no += 1;
            Self::par_step(&mut self.nodes, self.workers, now);
        }

        // All work routed or accounted: drain surviving nodes to idle.
        Self::par_drain(&mut self.nodes, self.workers);
        let policy_name = gate.name();
        let routed_to_fenced = gate.rejections();
        self.finish(policy_name, routed_to_fenced, stats)
    }

    /// One front-door routing decision: place, admit, and trace — or
    /// shed through the single counted-and-traced shed path.
    fn route_one(
        &mut self,
        job: JobView,
        gate: &mut HealthGated<&mut dyn RoutingPolicy>,
        stats: &mut AdmissionStats,
    ) {
        stats.submitted += 1;
        match self.try_place(&job, None, gate) {
            Ok(id) => {
                let tracked = TrackedJob {
                    id: job.id,
                    bench: job.bench,
                    threads: job.threads,
                    scale: job.scale,
                    generation: 0,
                    retries_left: self.retry_budget,
                    origin: None,
                };
                self.admit(id, &job, tracked);
                stats.admitted += 1;
                self.admitted_ids.insert(job.id.0);
                let class_label = class_label(job.class);
                self.telemetry.trace(TraceKind::FleetRoute, || {
                    vec![
                        ("node", Value::U64(u64::from(id.0))),
                        ("bench", Value::Str(job.bench.name())),
                        ("threads", Value::U64(job.threads as u64)),
                        ("class", Value::Str(class_label)),
                    ]
                });
            }
            Err(reason) => self.shed(stats, reason, &job),
        }
    }

    /// Consults the gated policy against the (optionally
    /// origin-excluded) view set and validates the choice. Pure with
    /// respect to admission: the caller admits or sheds.
    fn try_place(
        &mut self,
        job: &JobView,
        exclude: Option<NodeId>,
        gate: &mut HealthGated<&mut dyn RoutingPolicy>,
    ) -> Result<NodeId, ShedReason> {
        let mut views = std::mem::take(&mut self.view_scratch);
        views.clear();
        views.extend(
            self.nodes
                .iter()
                .filter(|n| Some(n.id) != exclude)
                .map(Node::view),
        );
        let placed = Self::place_against(&self.nodes, job, exclude, gate, &views);
        self.view_scratch = views;
        placed
    }

    /// The routing decision proper, against a prepared view set.
    fn place_against(
        nodes: &[Node],
        job: &JobView,
        exclude: Option<NodeId>,
        gate: &mut HealthGated<&mut dyn RoutingPolicy>,
        views: &[NodeView],
    ) -> Result<NodeId, ShedReason> {
        match gate.route(job, views) {
            None => Err(ShedReason::Declined),
            Some(id) if id.index() >= nodes.len() => Err(ShedReason::UnknownNode),
            Some(id) if Some(id) == exclude => Err(ShedReason::Origin),
            Some(id) => match views.iter().find(|v| v.id == id) {
                // The gate re-picks fenced choices; this only fires for a
                // policy that names a fenced node against a fenced-free
                // view set — never admitted, always counted.
                Some(v) if !v.routable() => Err(ShedReason::Fenced),
                Some(v) if v.has_space() => Ok(id),
                Some(_) => Err(ShedReason::Full),
                None => Err(ShedReason::UnknownNode),
            },
        }
    }

    /// Admits one tracked job to `id`: injects the arrival and records
    /// the pid → job mapping the exactly-once ledger closes over.
    fn admit(&mut self, id: NodeId, job: &JobView, tracked: TrackedJob) {
        let node = &mut self.nodes[id.index()];
        let pid = node.system.inject_arrival(
            &mut node.st,
            node.driver.as_dyn_mut(),
            tracked.bench,
            tracked.threads,
            tracked.scale,
        );
        node.admitted += 1;
        match job.class {
            IntensityClass::CpuIntensive => node.cpu_jobs += 1,
            IntensityClass::MemoryIntensive => node.mem_jobs += 1,
        }
        node.jobs.insert(pid, tracked);
    }

    /// The *single* front-door shed path: the counter bump and the
    /// FleetShed trace are emitted together, so the journal and the
    /// summary can never disagree about what was shed.
    fn shed(&mut self, stats: &mut AdmissionStats, reason: ShedReason, job: &JobView) {
        match reason {
            ShedReason::Full => stats.shed_full += 1,
            _ => stats.shed_unroutable += 1,
        }
        let class_label = class_label(job.class);
        let label = reason.label();
        self.telemetry.trace(TraceKind::FleetShed, || {
            vec![
                ("bench", Value::Str(job.bench.name())),
                ("class", Value::Str(class_label)),
                ("reason", Value::Str(label)),
            ]
        });
    }

    /// Feeds every node's heartbeat (did it step through the epoch that
    /// just ended?) to its health machine; fencing a *dead* node drains
    /// its stranded jobs into the re-dispatch queue.
    fn observe_health(&mut self, epoch: u64) {
        if epoch == 0 {
            // No epoch has elapsed yet: nothing to observe.
            return;
        }
        for i in 0..self.nodes.len() {
            let beat = !self.nodes[i].missed_last;
            let nid = u64::from(self.nodes[i].id.0);
            match self.nodes[i].health.observe(beat, &self.health_cfg) {
                Some(HealthTransition::Fenced) => {
                    self.telemetry.trace(TraceKind::NodeFenced, || {
                        vec![("node", Value::U64(nid)), ("epoch", Value::U64(epoch))]
                    });
                }
                Some(HealthTransition::Recovered) => {
                    self.telemetry.trace(TraceKind::NodeRecovered, || {
                        vec![("node", Value::U64(nid)), ("epoch", Value::U64(epoch))]
                    });
                }
                _ => {}
            }
            // Keyed on the *state*, not the Fenced transition: a node
            // that crashes while already fenced (e.g. mid-stall) never
            // re-fires the transition but still has to drain.
            if self.nodes[i].dead
                && !self.nodes[i].drained
                && self.nodes[i].health.state() == HealthState::Fenced
            {
                let stranded = self.nodes[i].stranded_jobs(self.retry_budget);
                self.nodes[i].drained = true;
                self.nodes[i].drained_count = stranded.len() as u64;
                for tracked in stranded {
                    self.redispatch.drained += 1;
                    let jid = tracked.id.0;
                    let generation = u64::from(tracked.generation);
                    self.telemetry.trace(TraceKind::JobRedispatch, || {
                        vec![
                            ("job", Value::U64(jid)),
                            ("from", Value::U64(nid)),
                            ("generation", Value::U64(generation)),
                            ("outcome", Value::Str("drained")),
                        ]
                    });
                    self.queue.push(tracked);
                }
            }
        }
    }

    /// Fires this boundary's node-fault events. Events for already-dead
    /// nodes are ignored; repeat stalls/degrades on the same node are
    /// idempotent.
    fn fire_faults(&mut self, epoch: u64) {
        let Some(plan) = self.plan.as_mut() else {
            return;
        };
        let events = plan.events_at(epoch, self.nodes.len());
        for (id, kind) in events {
            if self.nodes[id.index()].dead {
                continue;
            }
            match kind {
                NodeFaultKind::Crash => {
                    self.nodes[id.index()].dead = true;
                    self.faults.crashes += 1;
                }
                NodeFaultKind::Stall { epochs } => {
                    if self.nodes[id.index()].stall_remaining == 0 {
                        self.nodes[id.index()].stall_remaining = epochs;
                        self.faults.stalls += 1;
                    }
                }
                NodeFaultKind::Degrade => {
                    if !self.nodes[id.index()].degraded {
                        self.nodes[id.index()].apply_degrade();
                        self.faults.degrades += 1;
                        let nid = u64::from(id.0);
                        self.telemetry.trace(TraceKind::NodeDegraded, || {
                            vec![("node", Value::U64(nid)), ("epoch", Value::U64(epoch))]
                        });
                    }
                }
            }
        }
    }

    /// Attempts to re-place every drained job, excluding its failed
    /// origin. Placement failures burn one retry; at zero the job is
    /// shed as exhausted (counted and traced, never silently dropped).
    fn drain_redispatch(&mut self, gate: &mut HealthGated<&mut dyn RoutingPolicy>) {
        if self.queue.is_empty() {
            return;
        }
        for mut tracked in self.queue.take_all() {
            let job = JobView::of(tracked.id, tracked.bench, tracked.threads, tracked.scale);
            match self.try_place(&job, tracked.origin, gate) {
                Ok(id) => {
                    tracked.generation += 1;
                    self.redispatch.reassigned += 1;
                    self.redispatch.max_generation =
                        self.redispatch.max_generation.max(tracked.generation);
                    let jid = tracked.id.0;
                    let from = tracked.origin.map_or(u64::MAX, |o| u64::from(o.0));
                    let to = u64::from(id.0);
                    let generation = u64::from(tracked.generation);
                    self.admit(id, &job, tracked);
                    self.telemetry.trace(TraceKind::JobRedispatch, || {
                        vec![
                            ("job", Value::U64(jid)),
                            ("from", Value::U64(from)),
                            ("to", Value::U64(to)),
                            ("generation", Value::U64(generation)),
                            ("outcome", Value::Str("reassigned")),
                        ]
                    });
                }
                Err(_) if tracked.retries_left == 0 => {
                    self.redispatch.exhausted += 1;
                    self.exhausted_ids.insert(tracked.id.0);
                    let jid = tracked.id.0;
                    let generation = u64::from(tracked.generation);
                    self.telemetry.trace(TraceKind::JobRedispatch, || {
                        vec![
                            ("job", Value::U64(jid)),
                            ("generation", Value::U64(generation)),
                            ("outcome", Value::Str("exhausted")),
                        ]
                    });
                }
                Err(_) => {
                    tracked.retries_left -= 1;
                    self.queue.push(tracked);
                }
            }
        }
    }

    /// Whether some failed node still holds work the run must wait for:
    /// a dead node not yet fenced-and-drained, or a stalled node whose
    /// parked jobs will complete once it returns.
    fn any_pending(&self) -> bool {
        self.nodes.iter().any(|n| {
            if n.dead {
                !n.drained && n.has_stranded()
            } else if n.stall_remaining > 0 {
                n.has_stranded()
            } else {
                false
            }
        })
    }

    /// Records this boundary's conservation ledger.
    fn record_audit(&mut self, epoch: u64, stats: &AdmissionStats) {
        let completed: u64 = self
            .nodes
            .iter()
            .map(|n| n.st.metrics().completed.len() as u64)
            .sum();
        let live_on_nodes: u64 = self
            .nodes
            .iter()
            .map(|n| {
                if n.dead && n.drained {
                    // Stranded jobs moved to the queue; the frozen
                    // simulator still reports them live.
                    0
                } else {
                    n.live_jobs() as u64
                }
            })
            .sum();
        self.audits.push(EpochAudit {
            epoch,
            submitted: stats.submitted,
            admitted: stats.admitted,
            shed: stats.shed(),
            completed,
            live_on_nodes,
            queued: self.queue.len() as u64,
            exhausted: self.redispatch.exhausted,
        });
    }

    /// Steps every live node to `horizon`, fanning out over a scoped
    /// worker pool. Nodes are partitioned into contiguous chunks; since
    /// nodes share no state, the partition (and the worker count) cannot
    /// affect any result. Dead and stalled nodes miss the step — the
    /// heartbeat signal the coordinator's health machine consumes.
    fn par_step(nodes: &mut [Node], workers: usize, horizon: SimTime) {
        Self::par_each(nodes, workers, |n| {
            if n.dead {
                n.missed_last = true;
            } else if n.stall_remaining > 0 {
                n.stall_remaining -= 1;
                n.missed_last = true;
            } else {
                n.step_to(horizon);
                n.missed_last = false;
            }
        });
    }

    /// Drains every surviving node to idle, fanning out identically.
    /// Dead nodes stay frozen; a node still inside a stall window here
    /// has no live jobs (the run loop waits otherwise) and stays parked.
    fn par_drain(nodes: &mut [Node], workers: usize) {
        Self::par_each(nodes, workers, |n| {
            if !n.dead && n.stall_remaining == 0 {
                n.drain();
            }
        });
    }

    fn par_each(nodes: &mut [Node], workers: usize, f: impl Fn(&mut Node) + Send + Sync) {
        let workers = workers.clamp(1, nodes.len().max(1));
        if workers <= 1 {
            for n in nodes {
                f(n);
            }
            return;
        }
        let chunk = nodes.len().div_ceil(workers);
        std::thread::scope(|s| {
            for part in nodes.chunks_mut(chunk) {
                s.spawn(|| {
                    for n in part {
                        f(n);
                    }
                });
            }
        });
    }

    /// Finalizes node metrics, closes the exactly-once ledger, and
    /// assembles the summary in id order.
    fn finish(
        self,
        policy: &'static str,
        routed_to_fenced: u64,
        stats: AdmissionStats,
    ) -> FleetSummary {
        let mut summary = FleetSummary {
            policy,
            admission: stats,
            completed: 0,
            cluster_energy_j: 0.0,
            cluster_makespan: SimDuration::ZERO,
            migrations: 0,
            voltage_changes: 0,
            failures: 0,
            unsafe_time_s: 0.0,
            daemon: DaemonStats::default(),
            nodes: Vec::with_capacity(self.nodes.len()),
            journal: None,
            routed_to_fenced,
            redispatch: self.redispatch,
            faults: self.faults,
            duplicate_completions: 0,
            lost_jobs: 0,
            audits: self.audits,
        };
        let mut ledger = CompletionLedger::new();
        let admitted_ids = self.admitted_ids;
        let exhausted_ids = self.exhausted_ids;
        let mut journal = String::new();
        let coordinator_journal = self.telemetry.export_jsonl();
        for mut node in self.nodes {
            let metrics = node.system.finish_run(node.st);
            for rec in &metrics.completed {
                if let Some(tracked) = node.jobs.get(&rec.pid) {
                    ledger.record(tracked.id);
                }
            }
            summary.completed += metrics.completed.len() as u64;
            summary.cluster_energy_j += metrics.energy_j;
            summary.cluster_makespan = summary.cluster_makespan.max(metrics.makespan);
            summary.migrations += metrics.migrations;
            summary.voltage_changes += metrics.voltage_changes;
            summary.failures += metrics.failures;
            summary.unsafe_time_s += metrics.unsafe_time_s;
            let daemon = node.driver.stats();
            if let Some(ds) = &daemon {
                add_stats(&mut summary.daemon, ds);
            }
            if let Some(tagged) = node
                .telemetry
                .with_hub(|h| h.export_jsonl_tagged("node", u64::from(node.id.0)))
            {
                journal.push_str(&tagged);
            }
            summary.nodes.push(NodeSummary {
                id: node.id,
                kind: node.kind,
                cores: node.kind.cores(),
                admitted: node.admitted,
                completed: metrics.completed.len() as u64,
                cpu_jobs: node.cpu_jobs,
                mem_jobs: node.mem_jobs,
                metrics,
                daemon,
                health: node.health.state(),
                fenced_epochs: node.health.fenced_epochs(),
                dead: node.dead,
                degraded: node.degraded,
                drained_jobs: node.drained_count,
            });
        }
        summary.duplicate_completions = ledger.duplicates();
        summary.lost_jobs = ledger.lost(&admitted_ids, &exhausted_ids);
        if let Some(cj) = coordinator_journal {
            summary.journal = Some(format!("{cj}{journal}"));
        }
        summary
    }
}

/// Builder for [`Fleet`] — the single blessed construction path.
///
/// Starts from [`FleetConfig::new`]'s defaults (1 s epochs, one
/// worker, telemetry off, no faults); every knob has a setter, and
/// [`config`](FleetBuilder::config) swaps in a prepared configuration
/// wholesale.
#[derive(Debug, Clone)]
pub struct FleetBuilder {
    config: FleetConfig,
}

impl FleetBuilder {
    /// Replaces the node list.
    #[must_use]
    pub fn nodes(mut self, nodes: Vec<NodeConfig>) -> Self {
        self.config.nodes = nodes;
        self
    }

    /// Appends one node.
    #[must_use]
    pub fn node(mut self, node: NodeConfig) -> Self {
        self.config.nodes.push(node);
        self
    }

    /// Sets the epoch length.
    #[must_use]
    pub fn epoch(mut self, epoch: SimDuration) -> Self {
        self.config.epoch = epoch;
        self
    }

    /// Sets the worker-thread count (results are identical for any
    /// value).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Enables or disables telemetry hubs and the merged journal.
    #[must_use]
    pub fn telemetry(mut self, on: bool) -> Self {
        self.config.telemetry = on;
        self
    }

    /// Installs a node-failure schedule.
    #[must_use]
    pub fn fault_plan(mut self, plan: NodeFaultPlan) -> Self {
        self.config.fault_plan = Some(plan);
        self
    }

    /// Sets the per-node health-machine thresholds.
    #[must_use]
    pub fn health(mut self, health: HealthConfig) -> Self {
        self.config.health = health;
        self
    }

    /// Sets the re-dispatch retry budget.
    #[must_use]
    pub fn retry_budget(mut self, budget: u32) -> Self {
        self.config.retry_budget = budget;
        self
    }

    /// Enables or disables per-epoch conservation audits.
    #[must_use]
    pub fn audit(mut self, on: bool) -> Self {
        self.config.audit = on;
        self
    }

    /// Replaces the whole configuration (setters called afterwards
    /// still apply on top).
    #[must_use]
    pub fn config(mut self, config: FleetConfig) -> Self {
        self.config = config;
        self
    }

    /// Builds the fleet.
    pub fn build(self) -> Fleet {
        Fleet::from_config(&self.config)
    }
}

/// Stable label for a job's intensity class.
fn class_label(class: IntensityClass) -> &'static str {
    match class {
        IntensityClass::CpuIntensive => "cpu",
        IntensityClass::MemoryIntensive => "memory",
    }
}

/// Field-by-field accumulation of daemon counters.
fn add_stats(acc: &mut DaemonStats, s: &DaemonStats) {
    acc.invocations += s.invocations;
    acc.plans += s.plans;
    acc.pins += s.pins;
    acc.voltage_raises += s.voltage_raises;
    acc.voltage_lowers += s.voltage_lowers;
    acc.deferred_pins += s.deferred_pins;
    acc.mailbox_faults += s.mailbox_faults;
    acc.retries += s.retries;
    acc.backoff_us += s.backoff_us;
    acc.safe_mode_entries += s.safe_mode_entries;
    acc.safe_mode_exits += s.safe_mode_exits;
    acc.watchdog_fires += s.watchdog_fires;
    acc.droop_emergencies += s.droop_emergencies;
}

/// Cluster-level aggregation of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// The routing policy that produced this run.
    pub policy: &'static str,
    /// Front-door admission counters.
    pub admission: AdmissionStats,
    /// Jobs completed across all nodes.
    pub completed: u64,
    /// Total energy across all nodes, J.
    pub cluster_energy_j: f64,
    /// Longest per-node makespan (cluster drain time).
    pub cluster_makespan: SimDuration,
    /// Total migrations across nodes.
    pub migrations: u64,
    /// Total committed voltage changes across nodes.
    pub voltage_changes: u64,
    /// Total injected failures across nodes.
    pub failures: u64,
    /// Total unsafe rail time across nodes, seconds.
    pub unsafe_time_s: f64,
    /// Aggregated daemon decision/recovery counters (zeros for
    /// baseline-only fleets).
    pub daemon: DaemonStats,
    /// Per-node summaries, in `NodeId` order.
    pub nodes: Vec<NodeSummary>,
    /// Merged fleet journal (coordinator first, then nodes in id order,
    /// each line tagged `"node":<id>`); `None` when telemetry was off.
    pub journal: Option<String>,
    /// Fenced-node choices the [`HealthGated`] circuit breaker rejected
    /// (typed [`crate::FleetError::RoutedToFencedNode`]) and re-picked.
    pub routed_to_fenced: u64,
    /// Re-dispatch counters (drained / reassigned / exhausted /
    /// max generation).
    pub redispatch: RedispatchStats,
    /// Node-fault events the engine applied.
    pub faults: AppliedFaults,
    /// Completions beyond the first of any JobId (must be zero:
    /// exactly-once).
    pub duplicate_completions: u64,
    /// Admitted jobs that neither completed nor exhausted their retry
    /// budget (must be zero: nothing is ever silently lost).
    pub lost_jobs: u64,
    /// Per-epoch conservation ledgers (empty unless
    /// [`FleetConfig::audit`] was on).
    pub audits: Vec<EpochAudit>,
}

impl FleetSummary {
    /// Conservation check: every submitted job is accounted for — shed
    /// at the front door, completed exactly once somewhere, or shed as
    /// exhausted after its failed node was drained. Re-dispatched jobs
    /// are admitted once per generation at node level, which the
    /// `reassigned` counter reconciles.
    pub fn conserves_jobs(&self) -> bool {
        let a = &self.admission;
        let node_admitted: u64 = self.nodes.iter().map(|n| n.admitted).sum();
        a.submitted == a.admitted + a.shed()
            && node_admitted == a.admitted + self.redispatch.reassigned
            && a.admitted == self.completed + self.redispatch.exhausted
            && self.lost_jobs == 0
            && self.duplicate_completions == 0
    }

    /// Every recorded epoch audit that fails its conservation invariant.
    pub fn failed_audits(&self) -> Vec<EpochAudit> {
        self.audits.iter().filter(|a| !a.holds()).copied().collect()
    }

    /// Cluster energy savings vs a baseline run, percent.
    pub fn energy_savings_vs(&self, base: &FleetSummary) -> f64 {
        if base.cluster_energy_j <= 0.0 {
            return 0.0;
        }
        (1.0 - self.cluster_energy_j / base.cluster_energy_j) * 100.0
    }

    /// Cluster makespan penalty vs a baseline run, percent (negative
    /// means faster).
    pub fn time_penalty_vs(&self, base: &FleetSummary) -> f64 {
        let b = base.cluster_makespan.as_secs_f64();
        if b <= 0.0 {
            return 0.0;
        }
        (self.cluster_makespan.as_secs_f64() / b - 1.0) * 100.0
    }

    /// A deterministic digest of everything observable in the summary
    /// (floats rendered via `to_bits`, nodes in id order). Two runs are
    /// byte-identical iff their fingerprints (and journals) match.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256 + 160 * self.nodes.len());
        let a = &self.admission;
        let r = &self.redispatch;
        let f = &self.faults;
        let _ = write!(
            out,
            "policy={} submitted={} admitted={} shed_full={} shed_unroutable={} \
             completed={} energy={:016x} makespan_ns={} migrations={} vchanges={} \
             failures={} unsafe={:016x} daemon=[{}] fenced_picks={} drained={} \
             reassigned={} exhausted={} maxgen={} crashes={} stalls={} degrades={} \
             lost={} dups={}",
            self.policy,
            a.submitted,
            a.admitted,
            a.shed_full,
            a.shed_unroutable,
            self.completed,
            self.cluster_energy_j.to_bits(),
            self.cluster_makespan.as_nanos(),
            self.migrations,
            self.voltage_changes,
            self.failures,
            self.unsafe_time_s.to_bits(),
            self.daemon,
            self.routed_to_fenced,
            r.drained,
            r.reassigned,
            r.exhausted,
            r.max_generation,
            f.crashes,
            f.stalls,
            f.degrades,
            self.lost_jobs,
            self.duplicate_completions,
        );
        for n in &self.nodes {
            let _ = write!(
                out,
                "\n{} kind={} admitted={} completed={} cpu={} mem={} energy={:016x} \
                 makespan_ns={} migrations={} vchanges={} unsafe={:016x} health={} \
                 fenced_epochs={} dead={} degraded={} drained={}",
                n.id,
                n.kind,
                n.admitted,
                n.completed,
                n.cpu_jobs,
                n.mem_jobs,
                n.metrics.energy_j.to_bits(),
                n.metrics.makespan.as_nanos(),
                n.metrics.migrations,
                n.metrics.voltage_changes,
                n.metrics.unsafe_time_s.to_bits(),
                n.health,
                n.fenced_epochs,
                n.dead,
                n.degraded,
                n.drained_jobs,
            );
        }
        out
    }
}

impl avfs_sched::Report for FleetSummary {
    /// Delegates to the inherent digest (kept inherent so callers
    /// without the trait in scope keep working).
    fn fingerprint(&self) -> String {
        FleetSummary::fingerprint(self)
    }

    fn to_json(&self) -> String {
        let a = &self.admission;
        let r = &self.redispatch;
        let f = &self.faults;
        format!(
            "{{\"policy\":\"{}\",\"nodes\":{},\"submitted\":{},\"admitted\":{},\
             \"shed\":{},\"completed\":{},\"cluster_energy_j\":{},\
             \"cluster_makespan_s\":{},\"migrations\":{},\"voltage_changes\":{},\
             \"failures\":{},\"unsafe_time_s\":{},\"routed_to_fenced\":{},\
             \"drained\":{},\"reassigned\":{},\"exhausted\":{},\"crashes\":{},\
             \"stalls\":{},\"degrades\":{},\"duplicate_completions\":{},\"lost_jobs\":{}}}",
            self.policy,
            self.nodes.len(),
            a.submitted,
            a.admitted,
            a.shed(),
            self.completed,
            self.cluster_energy_j,
            self.cluster_makespan.as_secs_f64(),
            self.migrations,
            self.voltage_changes,
            self.failures,
            self.unsafe_time_s,
            self.routed_to_fenced,
            r.drained,
            r.reassigned,
            r.exhausted,
            f.crashes,
            f.stalls,
            f.degrades,
            self.duplicate_completions,
            self.lost_jobs,
        )
    }

    fn summary_table(&self) -> Vec<(&'static str, String)> {
        let a = &self.admission;
        vec![
            ("policy", self.policy.to_string()),
            ("nodes", self.nodes.len().to_string()),
            ("submitted", a.submitted.to_string()),
            ("admitted", a.admitted.to_string()),
            ("shed", a.shed().to_string()),
            ("completed", self.completed.to_string()),
            ("cluster_energy_j", format!("{:.3}", self.cluster_energy_j)),
            (
                "cluster_makespan_s",
                format!("{:.3}", self.cluster_makespan.as_secs_f64()),
            ),
            ("migrations", self.migrations.to_string()),
            ("voltage_changes", self.voltage_changes.to_string()),
            ("failures", self.failures.to_string()),
            ("unsafe_time_s", format!("{:.3}", self.unsafe_time_s)),
            ("reassigned", self.redispatch.reassigned.to_string()),
            ("exhausted", self.redispatch.exhausted.to_string()),
            ("lost_jobs", self.lost_jobs.to_string()),
        ]
    }
}
