//! Pluggable cluster routing policies.
//!
//! A [`RoutingPolicy`] sees one arriving job ([`JobView`]) and the
//! sanitized state of every node ([`NodeView`], in `NodeId` order) and
//! either names a node or declines (the front door then sheds the job).
//! Policies are consulted one arrival at a time, in trace order, at
//! epoch boundaries — the sequence of (job, views) pairs is a pure
//! function of the trace and the node configurations, so any
//! deterministic policy keeps the whole fleet run deterministic.
//!
//! Three built-ins:
//!
//! * [`RoundRobin`] — cycles node ids, skipping full nodes.
//! * [`LeastQueued`] — picks the node with the lowest live-threads per
//!   core ratio (ties to the lowest id).
//! * [`EnergyAware`] — classifies the job with the L3-rate classifier
//!   (the daemon's own signal, Figure 9) and sends CPU-intensive work to
//!   the node with the cheapest undervolted full-clock energy and
//!   memory-intensive work to the node with the cheapest divided-clock
//!   energy, inflated by a congestion term so load still spreads.
//!
//! All built-ins additionally skip nodes whose health machine has
//! fenced them ([`NodeView::routable`]). The engine composes *every*
//! policy — built-in or user-supplied — with the [`HealthGated`]
//! circuit breaker, so even a policy that ignores health cannot place
//! work on a fenced node: the choice is rejected as a typed
//! [`FleetError::RoutedToFencedNode`], counted, and re-picked against
//! the fenced-free view set.

use crate::node::{NodeId, NodeView};
use crate::redispatch::JobId;
use avfs_workloads::{classify, Benchmark, IntensityClass};
use std::fmt;

/// What a routing policy sees of one arriving job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobView {
    /// Fleet-wide job identity (stable across re-dispatch).
    pub id: JobId,
    /// The benchmark the job runs.
    pub bench: Benchmark,
    /// Thread count requested.
    pub threads: usize,
    /// Work scale factor from the trace.
    pub scale: f64,
    /// Solo L3 accesses per 1 M cycles (the classification signal).
    pub l3c_per_mcycle: f64,
    /// Front-door classification of the job from its solo L3 rate.
    pub class: IntensityClass,
}

impl JobView {
    /// Builds the view for an arriving job, classifying it by the same
    /// L3-rate threshold the per-node daemons use.
    pub fn of(id: JobId, bench: Benchmark, threads: usize, scale: f64) -> Self {
        let profile = bench.profile();
        JobView {
            id,
            bench,
            threads,
            scale,
            l3c_per_mcycle: profile.l3c_per_mcycle,
            class: classify(profile.l3c_per_mcycle),
        }
    }
}

/// A typed routing-layer failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FleetError {
    /// A policy named a node the health machine has fenced. The gate
    /// rejects the choice and re-picks instead of silently shedding.
    RoutedToFencedNode {
        /// The fenced node the policy chose.
        node: NodeId,
        /// The job being routed.
        job: JobId,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::RoutedToFencedNode { node, job } => {
                write!(f, "policy routed {job} to fenced {node}")
            }
        }
    }
}

impl std::error::Error for FleetError {}

/// A cluster admission/placement policy.
pub trait RoutingPolicy {
    /// Stable policy label (appears in summaries and tables).
    fn name(&self) -> &'static str;

    /// Chooses a node for `job`, or `None` to shed it. `nodes` is every
    /// node's sanitized view, in `NodeId` order. Returning a full or
    /// unknown node also sheds the job (counted separately).
    fn route(&mut self, job: &JobView, nodes: &[NodeView]) -> Option<NodeId>;
}

impl<P: RoutingPolicy + ?Sized> RoutingPolicy for &mut P {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn route(&mut self, job: &JobView, nodes: &[NodeView]) -> Option<NodeId> {
        (**self).route(job, nodes)
    }
}

/// The circuit breaker every policy composes with: if the inner policy
/// names a fenced node, the choice is rejected as a typed
/// [`FleetError::RoutedToFencedNode`], the rejection is counted, and
/// the inner policy is re-consulted against only the routable views.
/// Fenced nodes therefore receive zero new work no matter what the
/// inner policy does.
#[derive(Debug)]
pub struct HealthGated<P> {
    inner: P,
    rejections: u64,
}

impl<P: RoutingPolicy> HealthGated<P> {
    /// Wraps `inner` with the fenced-node gate.
    pub fn new(inner: P) -> Self {
        HealthGated {
            inner,
            rejections: 0,
        }
    }

    /// How many fenced-node choices the gate has rejected and re-picked.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// One gated routing decision, surfacing the typed error instead of
    /// re-picking (the [`RoutingPolicy`] impl re-picks on `Err`).
    pub fn try_route(
        &mut self,
        job: &JobView,
        nodes: &[NodeView],
    ) -> Result<Option<NodeId>, FleetError> {
        match self.inner.route(job, nodes) {
            Some(id) if nodes.iter().any(|n| n.id == id && !n.routable()) => {
                self.rejections += 1;
                Err(FleetError::RoutedToFencedNode {
                    node: id,
                    job: job.id,
                })
            }
            choice => Ok(choice),
        }
    }
}

impl<P: RoutingPolicy> RoutingPolicy for HealthGated<P> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn route(&mut self, job: &JobView, nodes: &[NodeView]) -> Option<NodeId> {
        match self.try_route(job, nodes) {
            Ok(choice) => choice,
            Err(FleetError::RoutedToFencedNode { .. }) => {
                let open: Vec<NodeView> = nodes.iter().filter(|n| n.routable()).copied().collect();
                self.inner.route(job, &open)
            }
        }
    }
}

/// Cycles through nodes in id order, skipping nodes without admission
/// space. The classic baseline: ignores both load and heterogeneity.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// A fresh round-robin cursor.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl RoutingPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn route(&mut self, _job: &JobView, nodes: &[NodeView]) -> Option<NodeId> {
        if nodes.is_empty() {
            return None;
        }
        for offset in 0..nodes.len() {
            let i = (self.cursor + offset) % nodes.len();
            if nodes[i].has_space() && nodes[i].routable() {
                self.cursor = (i + 1) % nodes.len();
                return Some(nodes[i].id);
            }
        }
        None
    }
}

/// Sends each job to the node with the lowest live-threads-per-core
/// ratio among those with admission space; ties go to the lowest id.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastQueued;

impl LeastQueued {
    /// The stateless least-queued balancer.
    pub fn new() -> Self {
        LeastQueued
    }
}

impl RoutingPolicy for LeastQueued {
    fn name(&self) -> &'static str {
        "least-queued"
    }

    fn route(&mut self, _job: &JobView, nodes: &[NodeView]) -> Option<NodeId> {
        let mut best: Option<(f64, NodeId)> = None;
        for n in nodes.iter().filter(|n| n.has_space() && n.routable()) {
            let load = n.load_ratio();
            // Strict `<` keeps ties on the lowest id (iteration order).
            if best.is_none_or(|(b, _)| load < b) {
                best = Some((load, n.id));
            }
        }
        best.map(|(_, id)| id)
    }
}

/// Routes by estimated marginal energy on each machine, using the
/// per-node [`crate::EnergyDescriptor`]s: CPU-intensive jobs go where
/// the undervolted full-clock energy is cheapest, memory-intensive jobs
/// where the divided-clock energy is cheapest. A multiplicative
/// congestion factor `1 + weight * projected_load` spreads load once the
/// preferred machines fill up, bounding the makespan cost. Degraded
/// nodes are not excluded — their re-characterized descriptors carry the
/// pessimized costs, so the policy demotes them by exactly the energy
/// they now waste.
#[derive(Debug, Clone, Copy)]
pub struct EnergyAware {
    /// Congestion weight: 0 routes purely on energy; larger values
    /// converge toward least-queued behavior.
    pub congestion_weight: f64,
}

impl EnergyAware {
    /// The default balance between energy preference and congestion.
    pub fn new() -> Self {
        EnergyAware {
            congestion_weight: 2.0,
        }
    }
}

impl Default for EnergyAware {
    fn default() -> Self {
        EnergyAware::new()
    }
}

impl RoutingPolicy for EnergyAware {
    fn name(&self) -> &'static str {
        "energy-aware"
    }

    fn route(&mut self, job: &JobView, nodes: &[NodeView]) -> Option<NodeId> {
        let mut best: Option<(f64, NodeId)> = None;
        for n in nodes.iter().filter(|n| n.has_space() && n.routable()) {
            let base = match job.class {
                IntensityClass::CpuIntensive => n.descriptor.cpu_job_cost_j,
                IntensityClass::MemoryIntensive => n.descriptor.mem_job_cost_j,
            };
            let projected = n.projected_load(job.threads);
            // Over-subscription is punished sharply: queued work delays
            // every job on the node, and the idle floor elsewhere keeps
            // burning while the cluster waits for the stragglers.
            let crowding = if projected > 1.0 {
                1.0 + self.congestion_weight * projected * projected
            } else {
                1.0 + self.congestion_weight * projected
            };
            let score = base * crowding;
            if best.is_none_or(|(b, _)| score < b) {
                best = Some((score, n.id));
            }
        }
        best.map(|(_, id)| id)
    }
}
