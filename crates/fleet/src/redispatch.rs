//! Exactly-once job re-dispatch bookkeeping.
//!
//! Every job that reaches the front door gets a fleet-level [`JobId`]
//! (pids are per-node and restart from zero on every node, so they
//! cannot identify a job across a re-dispatch). When a crashed node is
//! fenced, its stranded jobs — queued *and* running, neither of which
//! will ever complete on a dead simulator — are drained into the
//! [`RedispatchQueue`] as [`TrackedJob`]s carrying:
//!
//! * a **generation tag**, bumped on every re-admission, so any
//!   double-completion is attributable to the exact re-dispatch hop;
//! * a **retry budget**, decremented on every boundary where no node
//!   could take the job; when it hits zero the job is shed as
//!   *exhausted* (counted, never silently lost);
//! * its **failed origin**, which the router excludes from the
//!   candidate set so a job is never re-dispatched onto the node that
//!   just lost it.
//!
//! The [`CompletionLedger`] closes the loop at finish time: every
//! completion on every node is mapped back (pid → `JobId`) and counted.
//! `admitted == completed + exhausted`, zero lost, zero duplicates — the
//! conservation invariants avfs-analyze's `fleet` subcommand and the
//! resilience proptests assert.

use crate::node::NodeId;
use avfs_workloads::Benchmark;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Fleet-wide identity of one submitted job, assigned densely from zero
/// in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// One admitted job's re-dispatch bookkeeping, kept per node (keyed by
/// the node-local pid) and carried through the re-dispatch queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackedJob {
    /// Fleet-wide identity.
    pub id: JobId,
    /// The benchmark the job runs.
    pub bench: Benchmark,
    /// Thread count requested.
    pub threads: usize,
    /// Work scale factor from the trace.
    pub scale: f64,
    /// How many times the job has been re-admitted (0 = first
    /// placement); bumped on every re-dispatch admission.
    pub generation: u32,
    /// Boundaries left to find a node before the job is shed as
    /// exhausted.
    pub retries_left: u32,
    /// The failed node this job was drained from (`None` until its
    /// first drain); routing must never send it back there.
    pub origin: Option<NodeId>,
}

/// FIFO of drained jobs awaiting re-dispatch; attempted once per epoch
/// boundary, before new arrivals are routed.
#[derive(Debug, Default)]
pub struct RedispatchQueue {
    queue: VecDeque<TrackedJob>,
}

impl RedispatchQueue {
    /// An empty queue.
    pub fn new() -> Self {
        RedispatchQueue::default()
    }

    /// Enqueues a drained job.
    pub fn push(&mut self, job: TrackedJob) {
        self.queue.push_back(job);
    }

    /// Takes every queued job (this boundary's re-dispatch attempts).
    pub fn take_all(&mut self) -> Vec<TrackedJob> {
        self.queue.drain(..).collect()
    }

    /// Queued jobs.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether nothing is awaiting re-dispatch.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

/// Counters of everything the re-dispatch path did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RedispatchStats {
    /// Stranded jobs drained off fenced dead nodes.
    pub drained: u64,
    /// Drained jobs successfully re-admitted somewhere else.
    pub reassigned: u64,
    /// Drained jobs that ran out of retry budget and were shed.
    pub exhausted: u64,
    /// Highest generation tag any job reached (0 = nothing was ever
    /// re-dispatched).
    pub max_generation: u32,
}

/// Maps every per-node completion back to its fleet [`JobId`] and counts
/// them, proving exactly-once delivery at finish time.
#[derive(Debug, Default)]
pub struct CompletionLedger {
    counts: BTreeMap<u64, u32>,
}

impl CompletionLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        CompletionLedger::default()
    }

    /// Records one completion of `id`.
    pub fn record(&mut self, id: JobId) {
        *self.counts.entry(id.0).or_insert(0) += 1;
    }

    /// Distinct jobs that completed at least once.
    pub fn completed_unique(&self) -> u64 {
        self.counts.len() as u64
    }

    /// Completions beyond the first, across all jobs (0 = exactly-once
    /// held everywhere).
    pub fn duplicates(&self) -> u64 {
        self.counts
            .values()
            .map(|&c| u64::from(c.saturating_sub(1)))
            .sum()
    }

    /// Jobs in `admitted` that neither completed nor were shed as
    /// exhausted — lost jobs (must be zero).
    pub fn lost(&self, admitted: &BTreeSet<u64>, exhausted: &BTreeSet<u64>) -> u64 {
        admitted
            .iter()
            .filter(|id| !self.counts.contains_key(id) && !exhausted.contains(id))
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64) -> TrackedJob {
        TrackedJob {
            id: JobId(id),
            bench: Benchmark::SpecNamd,
            threads: 1,
            scale: 1.0,
            generation: 0,
            retries_left: 3,
            origin: None,
        }
    }

    #[test]
    fn queue_is_fifo_and_take_all_empties() {
        let mut q = RedispatchQueue::new();
        q.push(job(2));
        q.push(job(0));
        q.push(job(1));
        assert_eq!(q.len(), 3);
        let order: Vec<u64> = q.take_all().into_iter().map(|j| j.id.0).collect();
        assert_eq!(order, vec![2, 0, 1]);
        assert!(q.is_empty());
    }

    #[test]
    fn ledger_counts_duplicates_and_lost() {
        let mut ledger = CompletionLedger::new();
        ledger.record(JobId(0));
        ledger.record(JobId(1));
        ledger.record(JobId(1));
        let admitted: BTreeSet<u64> = [0, 1, 2, 3].into_iter().collect();
        let exhausted: BTreeSet<u64> = [3].into_iter().collect();
        assert_eq!(ledger.completed_unique(), 2);
        assert_eq!(ledger.duplicates(), 1);
        // Job 2 completed nowhere and was never shed: lost.
        assert_eq!(ledger.lost(&admitted, &exhausted), 1);
    }

    #[test]
    fn clean_ledger_is_exactly_once() {
        let mut ledger = CompletionLedger::new();
        let admitted: BTreeSet<u64> = (0..10).collect();
        for id in 0..10 {
            ledger.record(JobId(id));
        }
        assert_eq!(ledger.completed_unique(), 10);
        assert_eq!(ledger.duplicates(), 0);
        assert_eq!(ledger.lost(&admitted, &BTreeSet::new()), 0);
    }

    #[test]
    fn job_id_displays_stably() {
        assert_eq!(JobId(17).to_string(), "job17");
    }
}
