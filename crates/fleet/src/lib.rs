//! # avfs-fleet — deterministic multi-node cluster layer
//!
//! The paper's daemon ([`avfs_core`]) saves energy on one machine; this
//! crate lifts placement one level up, to a cluster of heterogeneous
//! machines, which is where a production deployment actually decides
//! where work runs. A [`Fleet`] owns N nodes — each a full
//! [`avfs_sched::System`] with its own chip preset, seed, driver, and
//! telemetry hub — behind a front door with bounded admission and
//! pluggable [`RoutingPolicy`] implementations:
//!
//! * [`RoundRobin`] — the heterogeneity-blind baseline;
//! * [`LeastQueued`] — load balancing on live threads per core;
//! * [`EnergyAware`] — classifies each job with the daemon's own
//!   L3-rate signal and routes CPU-intensive work to machines with the
//!   most undervolt headroom and memory-intensive work to machines
//!   whose divided clock (and its deeper Vmin) is cheapest.
//!
//! Execution is epoch-synchronized: arrivals are admitted at epoch
//! boundaries, then every node advances independently to the next
//! boundary, fanned out across a scoped worker pool. Results are
//! **byte-identical for any worker count** — see the determinism rules
//! on [`engine`]. Cluster results aggregate into a [`FleetSummary`]
//! (energy, makespan, admission/shedding counters, daemon recovery
//! stats, per-node metrics) with a [`FleetSummary::fingerprint`] digest
//! and an optional merged telemetry journal.
//!
//! # Fleet resilience
//!
//! Nodes are mortal. A seeded [`NodeFaultPlan`] injects node-scoped
//! failures at epoch boundaries — crash, stall, degrade — and the
//! engine degrades gracefully instead of stranding work:
//!
//! * **Health-gated routing** ([`health`]): a per-node heartbeat-driven
//!   state machine (Healthy → Suspect → Fenced, Probation on return)
//!   mirrors avfs-core's recovery machine at cluster scope; fenced
//!   nodes receive zero new work, enforced for *every* policy by the
//!   [`HealthGated`] circuit breaker (typed
//!   [`FleetError::RoutedToFencedNode`] rejections, counted and
//!   re-picked).
//! * **Exactly-once re-dispatch** ([`redispatch`]): when a crashed node
//!   is fenced, its queued and stranded-running jobs drain into a
//!   re-dispatch queue with bounded retry budgets and generation tags —
//!   never lost, never double-completed, never re-routed to the failed
//!   origin. [`FleetSummary::conserves_jobs`] proves the accounting.

pub mod engine;
pub mod health;
pub mod node;
pub mod redispatch;
pub mod routing;

pub use engine::{
    AdmissionStats, AppliedFaults, EpochAudit, Fleet, FleetBuilder, FleetConfig, FleetSummary,
};
pub use health::{
    HealthConfig, HealthState, HealthTracker, HealthTransition, NodeFaultKind, NodeFaultPlan,
    NodeFaultRates, NodeFaultStats, ScriptedFault,
};
pub use node::{EnergyDescriptor, NodeConfig, NodeId, NodeKind, NodeSummary, NodeView};
pub use redispatch::{CompletionLedger, JobId, RedispatchQueue, RedispatchStats, TrackedJob};
pub use routing::{
    EnergyAware, FleetError, HealthGated, JobView, LeastQueued, RoundRobin, RoutingPolicy,
};
