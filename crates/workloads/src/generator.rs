//! The random server-workload generator (§VI-B).
//!
//! The paper evaluates its daemon on a generated "typical server workload":
//! programs drawn at random from a 35-program pool (29 SPEC CPU2006 + 6
//! NPB), issued at random timeslots over a configurable window, with heavy,
//! average, light, and idle load phases, and never more active processes
//! than the machine has cores. The same trace is then replayed under every
//! configuration (Baseline / Safe Vmin / Placement / Optimal), which is
//! what makes Tables III/IV comparable — [`WorkloadTrace`] is that
//! replayable artifact.

use crate::catalog::Benchmark;
use avfs_sim::time::{SimDuration, SimTime};
use avfs_sim::RngStream;
use serde::{Deserialize, Serialize};

/// One job issue in a workload trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arrival {
    /// When the job is issued.
    pub at: SimTime,
    /// Which benchmark it runs.
    pub bench: Benchmark,
    /// How many threads the job uses (1 for SPEC copies; 2/4/8 for
    /// parallel NPB jobs).
    pub threads: usize,
    /// Job-size scale relative to the benchmark's reference input
    /// (varies job durations, as real server requests vary).
    pub scale: f64,
}

/// Configuration of the workload generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Window length (the paper uses 1 hour).
    pub duration: SimDuration,
    /// Hard cap on concurrently active threads (the chip's core count).
    pub max_concurrent_threads: usize,
    /// Root seed; the same seed reproduces the same trace exactly.
    pub seed: u64,
    /// Global job-size scale (1.0 = reference inputs; smaller = shorter
    /// jobs, useful for fast tests).
    pub job_scale: f64,
    /// The benchmark pool to draw from.
    pub pool: Vec<Benchmark>,
}

impl GeneratorConfig {
    /// The paper's setup: a 1-hour window over the 35-program pool with
    /// the given core cap.
    pub fn paper_default(max_concurrent_threads: usize, seed: u64) -> Self {
        GeneratorConfig {
            duration: SimDuration::from_secs(3_600),
            max_concurrent_threads,
            seed,
            job_scale: 1.0,
            pool: Benchmark::server_pool(),
        }
    }
}

/// A replayable workload: time-ordered job arrivals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadTrace {
    /// Arrivals in non-decreasing time order.
    pub arrivals: Vec<Arrival>,
    /// The generation window.
    pub duration: SimDuration,
}

/// Load phases the generator cycles through, resembling a server's day.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Heavy,
    Average,
    Light,
    Idle,
}

impl Phase {
    /// Target fraction of the thread cap kept busy in this phase.
    fn target_utilization(self, rng: &mut RngStream) -> f64 {
        match self {
            Phase::Heavy => rng.uniform(0.75, 1.0),
            Phase::Average => rng.uniform(0.35, 0.60),
            Phase::Light => rng.uniform(0.08, 0.25),
            Phase::Idle => 0.0,
        }
    }

    /// The next phase: a random walk biased so heavy and idle are
    /// visited but average dominates, as in Figure 15's load profile.
    fn next(self, rng: &mut RngStream) -> Phase {
        let u = rng.next_f64();
        match self {
            Phase::Idle | Phase::Heavy => {
                if u < 0.6 {
                    Phase::Average
                } else if u < 0.8 {
                    Phase::Light
                } else if self == Phase::Idle {
                    Phase::Heavy
                } else {
                    Phase::Idle
                }
            }
            _ => {
                if u < 0.35 {
                    Phase::Heavy
                } else if u < 0.6 {
                    Phase::Average
                } else if u < 0.85 {
                    Phase::Light
                } else {
                    Phase::Idle
                }
            }
        }
    }
}

impl WorkloadTrace {
    /// Generates a trace from the configuration.
    ///
    /// The generator walks through load phases (2–6 minutes each) and
    /// issues jobs whenever the *estimated* number of in-flight threads is
    /// below the phase target, drawing the program, thread count, and job
    /// size at random. Estimated job durations use a conservative 2×
    /// margin over the solo runtime so the thread cap holds even when the
    /// replayed system runs slower than solo estimates.
    ///
    /// # Panics
    ///
    /// Panics if the pool is empty, the cap is zero, or `job_scale` is
    /// not positive.
    pub fn generate(config: &GeneratorConfig) -> WorkloadTrace {
        assert!(!config.pool.is_empty(), "empty benchmark pool");
        assert!(config.max_concurrent_threads > 0, "zero thread cap");
        assert!(config.job_scale > 0.0, "job scale must be positive");

        let mut rng = RngStream::from_root(config.seed, "workload-generator");
        let mut arrivals = Vec::new();
        // (estimated finish time, threads) of in-flight jobs.
        let mut in_flight: Vec<(SimTime, usize)> = Vec::new();

        let end = SimTime::ZERO + config.duration;
        let mut now = SimTime::ZERO;
        let mut phase = Phase::Average;
        let mut phase_end = now + phase_len(&mut rng);
        let mut target = phase.target_utilization(&mut rng);

        while now < end {
            in_flight.retain(|&(finish, _)| finish > now);
            let busy: usize = in_flight.iter().map(|&(_, t)| t).sum();
            let wanted = (target * config.max_concurrent_threads as f64).round() as usize;

            if busy < wanted {
                let bench = *rng.pick(&config.pool);
                let profile = bench.profile();
                let headroom = config.max_concurrent_threads - busy;
                let threads = if profile.parallel {
                    // NPB jobs use 2, 4, or 8 threads, capped by headroom.
                    let options = [2usize, 4, 8];
                    let t = *rng.pick(&options);
                    t.min(headroom).max(1)
                } else {
                    1
                };
                let scale = rng.uniform(0.25, 1.0) * config.job_scale;
                arrivals.push(Arrival {
                    at: now,
                    bench,
                    threads,
                    scale,
                });
                // Conservative duration estimate: 2× solo at reference.
                let est_s = profile.ref_time_s * scale * 2.0;
                let finish = now + SimDuration::from_secs_f64(est_s);
                in_flight.push((finish, threads));
            }

            // Advance: short hops while filling, longer when satisfied.
            let hop_mean_s = if busy < wanted { 2.0 } else { 8.0 };
            now += SimDuration::from_secs_f64(rng.exponential(hop_mean_s).clamp(0.2, 60.0));

            if now >= phase_end {
                phase = phase.next(&mut rng);
                target = phase.target_utilization(&mut rng);
                phase_end = now + phase_len(&mut rng);
            }
        }

        WorkloadTrace {
            arrivals,
            duration: config.duration,
        }
    }

    /// Number of jobs in the trace.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when the trace has no arrivals.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Total threads requested across all arrivals.
    pub fn total_threads(&self) -> usize {
        self.arrivals.iter().map(|a| a.threads).sum()
    }

    /// The peak number of threads in flight under the generator's own
    /// (conservative) duration estimates — by construction at most the
    /// configured cap.
    pub fn estimated_peak_threads(&self) -> usize {
        let mut events: Vec<(SimTime, i64)> = Vec::new();
        for a in &self.arrivals {
            let est_s = a.bench.profile().ref_time_s * a.scale * 2.0;
            events.push((a.at, a.threads as i64));
            events.push((
                a.at + SimDuration::from_secs_f64(est_s),
                -(a.threads as i64),
            ));
        }
        events.sort();
        let mut cur = 0i64;
        let mut peak = 0i64;
        for (_, d) in events {
            cur += d;
            peak = peak.max(cur);
        }
        peak.max(0) as usize
    }
}

fn phase_len(rng: &mut RngStream) -> SimDuration {
    SimDuration::from_secs_f64(rng.uniform(120.0, 360.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Suite;

    fn config(seed: u64) -> GeneratorConfig {
        GeneratorConfig::paper_default(32, seed)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = WorkloadTrace::generate(&config(7));
        let b = WorkloadTrace::generate(&config(7));
        assert_eq!(a, b);
        let c = WorkloadTrace::generate(&config(8));
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_time_ordered() {
        let t = WorkloadTrace::generate(&config(1));
        assert!(t.arrivals.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn one_hour_trace_has_server_scale_job_count() {
        let t = WorkloadTrace::generate(&config(2));
        // A 1-hour window on a 32-core machine with ~100 s jobs should see
        // on the order of hundreds of jobs.
        assert!(t.len() > 50, "only {} jobs", t.len());
        assert!(t.len() < 5_000, "{} jobs is implausible", t.len());
    }

    #[test]
    fn respects_thread_cap_by_construction() {
        for seed in 0..5 {
            let t = WorkloadTrace::generate(&config(seed));
            assert!(
                t.estimated_peak_threads() <= 32,
                "seed {seed}: peak {}",
                t.estimated_peak_threads()
            );
        }
    }

    #[test]
    fn pool_membership_is_respected() {
        let t = WorkloadTrace::generate(&config(3));
        for a in &t.arrivals {
            let p = a.bench.profile();
            assert_ne!(p.suite, Suite::Parsec, "server pool excludes PARSEC");
        }
    }

    #[test]
    fn spec_jobs_are_single_threaded_npb_parallel() {
        let t = WorkloadTrace::generate(&config(4));
        let mut saw_parallel = false;
        for a in &t.arrivals {
            let p = a.bench.profile();
            if p.parallel {
                assert!(a.threads >= 1 && a.threads <= 8);
                if a.threads > 1 {
                    saw_parallel = true;
                }
            } else {
                assert_eq!(a.threads, 1, "{}", a.bench);
            }
        }
        assert!(saw_parallel, "expected some multi-threaded NPB jobs");
    }

    #[test]
    fn includes_idle_and_heavy_periods() {
        // Across the window there should be stretches with no estimated
        // activity (idle phases) and stretches near the cap (heavy).
        let t = WorkloadTrace::generate(&config(5));
        let peak = t.estimated_peak_threads();
        assert!(peak >= 16, "never got busy: peak {peak}");
        // Find the largest gap between consecutive arrivals: idle phases
        // make it large.
        let max_gap_s = t
            .arrivals
            .windows(2)
            .map(|w| (w[1].at - w[0].at).as_secs_f64())
            .fold(0.0f64, f64::max);
        assert!(max_gap_s > 60.0, "largest gap only {max_gap_s}s");
    }

    #[test]
    fn scales_bound_job_sizes() {
        let t = WorkloadTrace::generate(&config(6));
        assert!(t.arrivals.iter().all(|a| a.scale > 0.0 && a.scale <= 1.0));
    }

    #[test]
    fn small_cap_generates_small_jobs() {
        let t = WorkloadTrace::generate(&GeneratorConfig::paper_default(8, 9));
        assert!(t.arrivals.iter().all(|a| a.threads <= 8));
        assert!(t.estimated_peak_threads() <= 8);
    }

    #[test]
    #[should_panic(expected = "empty benchmark pool")]
    fn empty_pool_rejected() {
        let mut c = config(0);
        c.pool.clear();
        let _ = WorkloadTrace::generate(&c);
    }
}
