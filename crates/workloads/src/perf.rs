//! The analytic performance model.
//!
//! Execution time decomposes into a frequency-scalable core part and a
//! frequency-invariant memory part (§IV-B: "reduced frequency in CPU
//! cores impacts their performance without affecting the lower memory
//! levels"):
//!
//! ```text
//! T(f) = core_cycles / f  +  mem_time × contention × L2-sharing
//! ```
//!
//! * **Memory contention** grows with the aggregate memory pressure of
//!   everything running on the chip relative to the L3/DRAM capacity —
//!   this produces the Figure 8 slowdowns under full-chip co-location.
//! * **L2 sharing** inflates a thread's memory part when the second core
//!   of its PMD is busy, proportional to the partner's memory intensity —
//!   this is why memory-intensive programs prefer *spreaded* allocations
//!   (Figure 7, right side) while CPU-intensive programs lose nothing by
//!   clustering.
//! * **Parallel scaling** of NPB/PARSEC jobs uses a per-doubling
//!   efficiency factor.

use crate::catalog::BenchProfile;
use serde::{Deserialize, Serialize};

/// The remaining work of one thread, in model units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThreadWork {
    /// Core cycles still to retire, in giga-cycles.
    pub core_gcycles: f64,
    /// Memory time still to serve (uncontended), seconds.
    pub mem_s: f64,
}

impl ThreadWork {
    /// True when no work remains.
    pub fn is_done(&self) -> bool {
        self.core_gcycles <= 0.0 && self.mem_s <= 0.0
    }

    /// Total work scaled by a factor (used by the workload generator to
    /// vary job sizes).
    pub fn scaled(&self, factor: f64) -> ThreadWork {
        ThreadWork {
            core_gcycles: self.core_gcycles * factor,
            mem_s: self.mem_s * factor,
        }
    }
}

/// Calibrated performance/contention parameters for one chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfModel {
    /// Aggregate memory pressure (sum of co-runner `mem_fraction`s) the
    /// L3/DRAM path sustains without slowdown.
    pub mem_capacity: f64,
    /// Memory-time inflation per unit of the PMD partner's
    /// `mem_fraction` when both cores of a PMD are busy.
    pub l2_share_penalty: f64,
    /// Parallel efficiency per thread-count doubling for NPB/PARSEC jobs.
    pub parallel_efficiency_per_doubling: f64,
}

impl PerfModel {
    /// Parameters calibrated for the X-Gene 2 (8-core) memory system.
    pub fn xgene2() -> Self {
        PerfModel {
            mem_capacity: 2.2,
            l2_share_penalty: 0.7,
            parallel_efficiency_per_doubling: 0.97,
        }
    }

    /// Parameters calibrated for the X-Gene 3 (32-core) memory system.
    pub fn xgene3() -> Self {
        PerfModel {
            mem_capacity: 7.0,
            l2_share_penalty: 0.7,
            parallel_efficiency_per_doubling: 0.97,
        }
    }

    /// The per-thread work of running `profile` with `threads` threads.
    ///
    /// Parallel jobs split their work across threads (with imperfect
    /// scaling); single-threaded jobs replicate it — each SPEC copy does
    /// the full job, matching the paper's N-copies methodology (§II-B).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn thread_work(&self, profile: &BenchProfile, threads: usize) -> ThreadWork {
        assert!(threads > 0, "a job needs at least one thread");
        let total = ThreadWork {
            core_gcycles: profile.core_gcycles(),
            mem_s: profile.mem_seconds(),
        };
        if !profile.parallel || threads == 1 {
            return total;
        }
        let doublings = (threads as f64).log2();
        let eff = self
            .parallel_efficiency_per_doubling
            .powf(doublings)
            .clamp(0.05, 1.0);
        ThreadWork {
            core_gcycles: total.core_gcycles / (threads as f64 * eff),
            mem_s: total.mem_s / (threads as f64 * eff),
        }
    }

    /// The memory pressure one thread of `profile` contributes when its
    /// core runs at full speed.
    pub fn pressure_of(&self, profile: &BenchProfile) -> f64 {
        profile.mem_fraction
    }

    /// Memory pressure at a reduced core clock. The compute-bound share
    /// of a thread issues requests at a rate proportional to its clock;
    /// the memory-bound share is limited by the memory system itself and
    /// barely slows. So pressure scales by `(1-m)·r + m` where `m` is the
    /// memory fraction and `r` the frequency ratio.
    ///
    /// # Panics
    ///
    /// Panics if `freq_ratio` is not in `(0, 1]`.
    pub fn pressure_at(&self, profile: &BenchProfile, freq_ratio: f64) -> f64 {
        assert!(
            freq_ratio > 0.0 && freq_ratio <= 1.0,
            "freq ratio {freq_ratio} out of (0,1]"
        );
        let m = profile.mem_fraction;
        m * ((1.0 - m) * freq_ratio + m)
    }

    /// Memory-time multiplier at an aggregate pressure (≥ 1).
    pub fn mem_contention_mult(&self, total_pressure: f64) -> f64 {
        (total_pressure / self.mem_capacity).max(1.0)
    }

    /// Memory-time multiplier from sharing a PMD's L2 with a busy partner
    /// of the given memory intensity (`None` = the other core is idle).
    pub fn l2_share_mult(&self, partner_mem_fraction: Option<f64>) -> f64 {
        match partner_mem_fraction {
            Some(m) => 1.0 + self.l2_share_penalty * m.clamp(0.0, 1.0),
            None => 1.0,
        }
    }

    /// Execution time of `work` at `freq_mhz` under a combined
    /// memory-time multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `freq_mhz` is zero while core work remains.
    pub fn exec_time_s(&self, work: &ThreadWork, freq_mhz: u32, mem_mult: f64) -> f64 {
        let core_s = if work.core_gcycles > 0.0 {
            assert!(freq_mhz > 0, "core work cannot retire at 0 MHz");
            work.core_gcycles / (freq_mhz as f64 / 1_000.0)
        } else {
            0.0
        };
        core_s + work.mem_s * mem_mult.max(1.0)
    }

    /// Instantaneous progress rate (fraction of `work` per second) under
    /// the given conditions; the system simulator integrates this.
    pub fn progress_rate(&self, work: &ThreadWork, freq_mhz: u32, mem_mult: f64) -> f64 {
        let t = self.exec_time_s(work, freq_mhz, mem_mult);
        if t <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / t
        }
    }

    /// Solo (uncontended, unclustered) execution time at a frequency.
    pub fn solo_time_s(&self, profile: &BenchProfile, freq_mhz: u32) -> f64 {
        let work = self.thread_work(profile, 1);
        self.exec_time_s(&work, freq_mhz, 1.0)
    }

    /// The fraction of wall time a thread spends memory-stalled under the
    /// given conditions; drives the power model's activity input.
    pub fn stall_share(&self, work: &ThreadWork, freq_mhz: u32, mem_mult: f64) -> f64 {
        let total = self.exec_time_s(work, freq_mhz, mem_mult);
        if total <= 0.0 {
            0.0
        } else {
            (work.mem_s * mem_mult.max(1.0)) / total
        }
    }

    /// Effective switching activity for the power model.
    ///
    /// Memory-stalled OoO cores keep switching almost as hard as busy
    /// ones (deep speculation, MSHRs, prefetchers, clock trees): on the
    /// real machines the power of memory-bound programs drops far less
    /// than their IPC. Consequently core power is essentially
    /// `∝ activity × f`, which is exactly why reducing frequency pays for
    /// memory-intensive programs (energy ≈ f-ratio × delay-ratio < 1).
    pub fn effective_activity(
        &self,
        profile: &BenchProfile,
        work: &ThreadWork,
        freq_mhz: u32,
        mem_mult: f64,
    ) -> f64 {
        // Stalled cycles switch at ~92 % of the program's busy activity.
        const STALL_DAMPING: f64 = 0.08;
        let stall = self.stall_share(work, freq_mhz, mem_mult);
        profile.activity * (1.0 - STALL_DAMPING * stall)
    }

    /// The L3 access rate a PMU observer sees under contention: extra
    /// stall cycles dilute the per-cycle rate mildly, keeping the
    /// Figure 9 ordering intact across thread counts.
    pub fn observed_l3c_rate(&self, profile: &BenchProfile, mem_mult: f64) -> f64 {
        profile.l3c_per_mcycle / mem_mult.max(1.0).powf(0.15)
    }

    /// The Figure 8 statistic: solo time divided by per-instance time
    /// when `copies` copies run on `total_cores` cores (clustered fill),
    /// at `freq_mhz`.
    pub fn contention_ratio(&self, profile: &BenchProfile, copies: usize, freq_mhz: u32) -> f64 {
        assert!(copies > 0, "need at least one copy");
        let work = ThreadWork {
            core_gcycles: profile.core_gcycles(),
            mem_s: profile.mem_seconds(),
        };
        let solo = self.exec_time_s(&work, freq_mhz, 1.0);
        let pressure = self.pressure_of(profile) * copies as f64;
        let mem_mult = self.mem_contention_mult(pressure)
            * self.l2_share_mult(if copies > 1 {
                Some(profile.mem_fraction)
            } else {
                None
            });
        let contended = self.exec_time_s(&work, freq_mhz, mem_mult);
        solo / contended
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Benchmark;

    #[test]
    fn solo_time_matches_reference_at_3ghz() {
        let m = PerfModel::xgene3();
        for b in Benchmark::ALL {
            let p = b.profile();
            let t = m.solo_time_s(&p, 3_000);
            assert!(
                (t - p.ref_time_s).abs() < 1e-9,
                "{b}: {t} vs {}",
                p.ref_time_s
            );
        }
    }

    #[test]
    fn frequency_reduction_hurts_cpu_bound_more() {
        let m = PerfModel::xgene3();
        let namd = Benchmark::SpecNamd.profile();
        let cg = Benchmark::NpbCg.profile();
        let slowdown = |p: &BenchProfile| m.solo_time_s(p, 1_500) / m.solo_time_s(p, 3_000);
        let s_namd = slowdown(&namd);
        let s_cg = slowdown(&cg);
        // namd nearly doubles; CG barely moves (§IV-B).
        assert!(s_namd > 1.9, "namd slowdown {s_namd}");
        assert!(s_cg < 1.45, "CG slowdown {s_cg}");
    }

    #[test]
    fn figure8_extremes() {
        // namd/EP ratios near 1; CG/FT/milc much below 1 on a full chip.
        let m = PerfModel::xgene3();
        let ratio = |b: Benchmark| m.contention_ratio(&b.profile(), 32, 3_000);
        assert!(ratio(Benchmark::SpecNamd) > 0.95);
        assert!(ratio(Benchmark::NpbEp) > 0.93);
        assert!(ratio(Benchmark::NpbCg) < 0.45);
        assert!(ratio(Benchmark::NpbFt) < 0.5);
        assert!(ratio(Benchmark::SpecMilc) < 0.5);
        // Ratio ordering follows memory intensity.
        assert!(ratio(Benchmark::SpecGcc) > ratio(Benchmark::SpecMcf));
    }

    #[test]
    fn contention_ratio_is_one_for_single_copy() {
        let m = PerfModel::xgene2();
        for b in [Benchmark::SpecNamd, Benchmark::NpbCg] {
            let r = m.contention_ratio(&b.profile(), 1, 2_400);
            assert!((r - 1.0).abs() < 1e-12, "{b}: {r}");
        }
    }

    #[test]
    fn parallel_work_splits_with_imperfect_scaling() {
        let m = PerfModel::xgene3();
        let cg = Benchmark::NpbCg.profile();
        let w1 = m.thread_work(&cg, 1);
        let w8 = m.thread_work(&cg, 8);
        // More than 1/8 of the work per thread (efficiency < 1)...
        assert!(w8.core_gcycles > w1.core_gcycles / 8.0);
        // ...but far less than the whole job.
        assert!(w8.core_gcycles < w1.core_gcycles / 6.0);
    }

    #[test]
    fn spec_copies_replicate_work() {
        let m = PerfModel::xgene3();
        let milc = Benchmark::SpecMilc.profile();
        let w1 = m.thread_work(&milc, 1);
        let w8 = m.thread_work(&milc, 8);
        assert_eq!(w1, w8);
    }

    #[test]
    fn l2_sharing_penalizes_memory_partners() {
        let m = PerfModel::xgene3();
        assert_eq!(m.l2_share_mult(None), 1.0);
        let light = m.l2_share_mult(Some(0.02));
        let heavy = m.l2_share_mult(Some(0.66));
        assert!(light < 1.02);
        assert!(heavy > 1.3 && heavy < 1.6);
    }

    #[test]
    fn contention_mult_kicks_in_above_capacity() {
        let m = PerfModel::xgene3();
        assert_eq!(m.mem_contention_mult(0.5), 1.0);
        assert_eq!(m.mem_contention_mult(7.0), 1.0);
        assert!((m.mem_contention_mult(14.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stall_share_and_activity() {
        let m = PerfModel::xgene3();
        let cg = Benchmark::NpbCg.profile();
        let work = m.thread_work(&cg, 1);
        let stall = m.stall_share(&work, 3_000, 1.0);
        assert!((stall - cg.mem_fraction).abs() < 1e-9);
        // Under contention the stall share grows and activity falls.
        let act_free = m.effective_activity(&cg, &work, 3_000, 1.0);
        let act_cont = m.effective_activity(&cg, &work, 3_000, 3.0);
        assert!(act_cont < act_free);
        assert!(act_cont > 0.1);
    }

    #[test]
    fn observed_l3c_keeps_class_under_contention() {
        use crate::classify::{classify, IntensityClass};
        let m = PerfModel::xgene3();
        // Even heavily contended, memory-intensive programs stay above the
        // threshold and CPU-intensive stay below (Figure 9 holds at 32T).
        for b in [Benchmark::NpbCg, Benchmark::SpecMilc, Benchmark::SpecLbm] {
            let rate = m.observed_l3c_rate(&b.profile(), 3.5);
            assert_eq!(classify(rate), IntensityClass::MemoryIntensive, "{b}");
        }
        for b in [Benchmark::SpecNamd, Benchmark::NpbEp] {
            let rate = m.observed_l3c_rate(&b.profile(), 3.5);
            assert_eq!(classify(rate), IntensityClass::CpuIntensive, "{b}");
        }
    }

    #[test]
    fn progress_rate_inverts_time() {
        let m = PerfModel::xgene2();
        let lu = Benchmark::NpbLu.profile();
        let work = m.thread_work(&lu, 4);
        let t = m.exec_time_s(&work, 2_400, 1.2);
        let r = m.progress_rate(&work, 2_400, 1.2);
        assert!((t * r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_work() {
        let w = ThreadWork {
            core_gcycles: 10.0,
            mem_s: 5.0,
        };
        let half = w.scaled(0.5);
        assert_eq!(half.core_gcycles, 5.0);
        assert_eq!(half.mem_s, 2.5);
        assert!(!w.is_done());
        assert!(ThreadWork {
            core_gcycles: 0.0,
            mem_s: 0.0
        }
        .is_done());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let m = PerfModel::xgene3();
        let _ = m.thread_work(&Benchmark::NpbCg.profile(), 0);
    }
}
