//! Program phases: time-varying workload character.
//!
//! The paper's daemon reacts to a process "chang\[ing\] its state (from
//! CPU-intensive to memory-intensive and vice versa)" (§VI-A, event
//! type (b)) — which presumes programs whose character changes over
//! their lifetime, as the phase literature it cites (\[21\], \[22\])
//! established. The catalog's scalar profiles cannot produce such
//! changes, so this module adds a phase schedule for the programs known
//! to alternate between compute- and memory-dominated regions.
//!
//! Phases modulate the *observable* character (L3 access rate, switching
//! activity, instantaneous memory pressure) as a function of job
//! progress; the total work split of the job is untouched so energy/time
//! accounting stays consistent with the catalog.

use crate::catalog::{BenchProfile, Benchmark};
use serde::{Deserialize, Serialize};

/// One phase of a program's execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Progress fraction at which the phase ends (exclusive), `(0, 1]`.
    pub until_progress: f64,
    /// Multiplier on the profile's L3 access rate during this phase.
    pub l3c_mult: f64,
    /// Multiplier on the profile's memory fraction (pressure) during
    /// this phase, clamped so the result stays in `[0, 0.95]`.
    pub mem_mult: f64,
    /// Multiplier on the profile's switching activity, clamped to
    /// `[0, 1]` after application.
    pub activity_mult: f64,
}

/// The phase schedule of a benchmark, if it has one.
///
/// Schedules are defined for the programs whose phase behaviour the
/// DVFS-phase literature documents; all other programs are steady.
pub fn schedule(bench: Benchmark) -> Option<&'static [Phase]> {
    use Benchmark::*;
    // gcc alternates parsing/IR passes (compute) with whole-program
    // optimization sweeps (memory); xalancbmk alternates parse/transform;
    // bodytrack alternates per-frame feature extraction (memory) and
    // model fitting (compute); LU has a memory-heavy factorization start
    // and compute-heavy triangular solves.
    const GCC: &[Phase] = &[
        Phase {
            until_progress: 0.35,
            l3c_mult: 0.4,
            mem_mult: 0.5,
            activity_mult: 1.1,
        },
        Phase {
            until_progress: 0.75,
            l3c_mult: 2.2,
            mem_mult: 1.8,
            activity_mult: 0.85,
        },
        Phase {
            until_progress: 1.0,
            l3c_mult: 0.5,
            mem_mult: 0.6,
            activity_mult: 1.05,
        },
    ];
    const XALAN: &[Phase] = &[
        Phase {
            until_progress: 0.4,
            l3c_mult: 0.35,
            mem_mult: 0.5,
            activity_mult: 1.1,
        },
        Phase {
            until_progress: 1.0,
            l3c_mult: 1.8,
            mem_mult: 1.5,
            activity_mult: 0.9,
        },
    ];
    const BODYTRACK: &[Phase] = &[
        Phase {
            until_progress: 0.5,
            l3c_mult: 2.0,
            mem_mult: 1.8,
            activity_mult: 0.85,
        },
        Phase {
            until_progress: 1.0,
            l3c_mult: 0.4,
            mem_mult: 0.5,
            activity_mult: 1.1,
        },
    ];
    const LU: &[Phase] = &[
        Phase {
            until_progress: 0.3,
            l3c_mult: 1.6,
            mem_mult: 1.5,
            activity_mult: 0.9,
        },
        Phase {
            until_progress: 1.0,
            l3c_mult: 0.7,
            mem_mult: 0.8,
            activity_mult: 1.05,
        },
    ];
    match bench {
        SpecGcc => Some(GCC),
        SpecXalancbmk => Some(XALAN),
        ParsecBodytrack => Some(BODYTRACK),
        NpbLu => Some(LU),
        _ => None,
    }
}

/// The effective (phase-adjusted) profile of `bench` at a given job
/// progress in `[0, 1]`. Programs without a schedule return their
/// catalog profile unchanged.
pub fn effective_profile(bench: Benchmark, progress: f64) -> BenchProfile {
    let base = bench.profile();
    let Some(phases) = schedule(bench) else {
        return base;
    };
    let progress = progress.clamp(0.0, 1.0);
    let phase = phases
        .iter()
        .find(|p| progress < p.until_progress)
        .or_else(|| phases.last())
        .expect("schedules are non-empty");
    BenchProfile {
        mem_fraction: (base.mem_fraction * phase.mem_mult).clamp(0.0, 0.95),
        l3c_per_mcycle: base.l3c_per_mcycle * phase.l3c_mult,
        activity: (base.activity * phase.activity_mult).clamp(0.0, 1.0),
        ..base
    }
}

/// The index of the phase in effect at `progress` — the discrete key
/// under which [`effective_profile`] is piecewise constant. Programs
/// without a schedule are a single phase (index 0). Callers that cache
/// per-phase derived quantities key on this instead of the raw progress
/// float, with the exact same phase-selection rule as
/// [`effective_profile`].
pub fn phase_index(bench: Benchmark, progress: f64) -> u32 {
    let Some(phases) = schedule(bench) else {
        return 0;
    };
    let progress = progress.clamp(0.0, 1.0);
    phases
        .iter()
        .position(|p| progress < p.until_progress)
        .unwrap_or(phases.len() - 1) as u32
}

/// Whether the benchmark's classification flips across its phases (at
/// the paper's 3000 L3C/1M-cycles threshold).
pub fn class_flips(bench: Benchmark) -> bool {
    use crate::classify::classify;
    let Some(phases) = schedule(bench) else {
        return false;
    };
    let mut classes = phases.iter().map(|p| {
        let prev_end = 0.0; // sample the start of each phase
        let _ = prev_end;
        classify(bench.profile().l3c_per_mcycle * p.l3c_mult)
    });
    let first = classes.next();
    classes.any(|c| Some(c) != first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, IntensityClass};

    #[test]
    fn steady_programs_are_unchanged() {
        for b in [Benchmark::SpecNamd, Benchmark::NpbCg, Benchmark::SpecMilc] {
            assert_eq!(schedule(b), None);
            assert_eq!(effective_profile(b, 0.0), b.profile());
            assert_eq!(effective_profile(b, 0.9), b.profile());
            assert!(!class_flips(b));
        }
    }

    #[test]
    fn gcc_flips_class_mid_run() {
        // gcc (base 4100 L3C/1M) is CPU-intensive while parsing
        // (×0.4 → 1640) and memory-intensive while optimizing
        // (×2.2 → 9020).
        let early = effective_profile(Benchmark::SpecGcc, 0.1);
        let mid = effective_profile(Benchmark::SpecGcc, 0.5);
        let late = effective_profile(Benchmark::SpecGcc, 0.9);
        assert_eq!(classify(early.l3c_per_mcycle), IntensityClass::CpuIntensive);
        assert_eq!(
            classify(mid.l3c_per_mcycle),
            IntensityClass::MemoryIntensive
        );
        assert_eq!(classify(late.l3c_per_mcycle), IntensityClass::CpuIntensive);
        assert!(class_flips(Benchmark::SpecGcc));
    }

    #[test]
    fn phase_boundaries_are_respected() {
        // Exactly at a boundary the next phase applies (until is
        // exclusive).
        let at_boundary = effective_profile(Benchmark::SpecGcc, 0.35);
        let mid = effective_profile(Benchmark::SpecGcc, 0.5);
        assert_eq!(at_boundary, mid);
        // Progress 1.0 (or beyond) uses the last phase.
        let done = effective_profile(Benchmark::SpecGcc, 1.0);
        let late = effective_profile(Benchmark::SpecGcc, 0.9);
        assert_eq!(done, late);
    }

    #[test]
    fn adjusted_fields_stay_in_valid_ranges() {
        for b in Benchmark::ALL {
            for p in [0.0, 0.2, 0.4, 0.6, 0.8, 0.99] {
                let e = effective_profile(b, p);
                assert!((0.0..=0.95).contains(&e.mem_fraction), "{b}@{p}");
                assert!((0.0..=1.0).contains(&e.activity), "{b}@{p}");
                assert!(e.l3c_per_mcycle >= 0.0, "{b}@{p}");
                // Work totals untouched.
                assert_eq!(e.ref_time_s, b.profile().ref_time_s);
            }
        }
    }

    #[test]
    fn phase_index_partitions_exactly_like_effective_profile() {
        // Equal indices must mean bit-equal profiles: the simulator's
        // slice cache keys on the index, so any divergence here breaks
        // bit-identical energy accounting.
        for b in Benchmark::ALL {
            let mut by_index: Vec<(u32, BenchProfile)> = Vec::new();
            for i in 0..=1000 {
                let p = i as f64 / 1000.0;
                let idx = phase_index(b, p);
                let prof = effective_profile(b, p);
                match by_index.iter().find(|(j, _)| *j == idx) {
                    Some((_, seen)) => assert_eq!(*seen, prof, "{b} at {p}"),
                    None => by_index.push((idx, prof)),
                }
            }
            let expected = schedule(b).map_or(1, <[Phase]>::len);
            assert_eq!(by_index.len(), expected, "{b}");
            // Out-of-range progress clamps like effective_profile.
            assert_eq!(phase_index(b, 1.5), phase_index(b, 1.0), "{b}");
            assert_eq!(phase_index(b, -0.5), phase_index(b, 0.0), "{b}");
        }
    }

    #[test]
    fn phased_memory_phase_raises_pressure() {
        let base = Benchmark::ParsecBodytrack.profile();
        let mem_phase = effective_profile(Benchmark::ParsecBodytrack, 0.25);
        let cpu_phase = effective_profile(Benchmark::ParsecBodytrack, 0.75);
        assert!(mem_phase.mem_fraction > base.mem_fraction);
        assert!(cpu_phase.mem_fraction < base.mem_fraction);
    }
}
