//! The benchmark catalog: 41 modelled programs.
//!
//! 25 of these are the paper's characterized set (§II-B): 6 NPB kernels,
//! 6 PARSEC applications, and 13 SPEC CPU2006 programs. The remaining 16
//! SPEC programs complete the 35-program pool the server-workload
//! generator draws from (§VI-B; 29 SPEC + 6 NPB).
//!
//! Profile values are synthetic but shaped to reproduce the paper's
//! orderings: *namd* and *EP* are the most CPU-intensive programs,
//! *milc*, *CG* and *FT* the most memory-intensive (Figures 8/9/11/12),
//! and the L3-access-rate threshold of 3000 per 1 M cycles separates the
//! two classes exactly as in Figure 9.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The benchmark suite a program belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// NAS Parallel Benchmarks v3.3.1 (OpenMP kernels).
    Npb,
    /// PARSEC v3.0 (pthread applications).
    Parsec,
    /// SPEC CPU2006 (single-threaded; multicore runs use N copies).
    SpecCpu2006,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Suite::Npb => write!(f, "NPB"),
            Suite::Parsec => write!(f, "PARSEC"),
            Suite::SpecCpu2006 => write!(f, "SPEC CPU2006"),
        }
    }
}

/// One modelled benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Benchmark {
    // --- NPB v3.3.1 (parallel) ---
    /// Conjugate gradient: irregular memory access; most memory-intensive.
    NpbCg,
    /// Embarrassingly parallel: pure compute; most CPU-intensive.
    NpbEp,
    /// 3-D FFT: all-to-all communication, memory-heavy.
    NpbFt,
    /// Integer sort: bandwidth-bound histogramming.
    NpbIs,
    /// LU solver: mixed compute/memory.
    NpbLu,
    /// Multigrid: long-stride memory access.
    NpbMg,
    // --- PARSEC v3.0 (parallel) ---
    /// Monte-Carlo swaption pricing: compute-bound.
    ParsecSwaptions,
    /// Black-Scholes option pricing: compute-bound.
    ParsecBlackscholes,
    /// Fluid dynamics: cache-sensitive stencil.
    ParsecFluidanimate,
    /// Simulated-annealing place-and-route: pointer chasing, memory-bound.
    ParsecCanneal,
    /// Computer-vision body tracking: mixed.
    ParsecBodytrack,
    /// Stream deduplication: memory- and bandwidth-heavy.
    ParsecDedup,
    // --- SPEC CPU2006 INT ---
    /// Perl interpreter.
    SpecPerlbench,
    /// Compression.
    SpecBzip2,
    /// C compiler.
    SpecGcc,
    /// Combinatorial optimization (single-source shortest path); extreme
    /// cache-miss rate.
    SpecMcf,
    /// Go playing.
    SpecGobmk,
    /// Hidden Markov model search.
    SpecHmmer,
    /// Chess playing.
    SpecSjeng,
    /// Quantum computer simulation: streaming, bandwidth-bound.
    SpecLibquantum,
    /// Video encoding.
    SpecH264ref,
    /// Discrete-event simulation: pointer-heavy.
    SpecOmnetpp,
    /// Path-finding.
    SpecAstar,
    /// XML transformation.
    SpecXalancbmk,
    // --- SPEC CPU2006 FP ---
    /// Blast-wave fluid dynamics: bandwidth-bound.
    SpecBwaves,
    /// Quantum chemistry: compute-bound.
    SpecGamess,
    /// Lattice QCD: memory-bound; among the most memory-intensive.
    SpecMilc,
    /// Magnetohydrodynamics.
    SpecZeusmp,
    /// Molecular dynamics (GROMACS): compute-bound.
    SpecGromacs,
    /// Numerical relativity.
    SpecCactusAdm,
    /// Computational fluid dynamics: memory-heavy.
    SpecLeslie3d,
    /// Molecular dynamics (NAMD): the most CPU-intensive program.
    SpecNamd,
    /// Finite-element solver.
    SpecDealII,
    /// Linear programming: memory-heavy.
    SpecSoplex,
    /// Ray tracing: compute-bound.
    SpecPovray,
    /// Structural mechanics.
    SpecCalculix,
    /// Electromagnetics solver: memory-bound.
    SpecGemsFdtd,
    /// Quantum crystallography.
    SpecTonto,
    /// Lattice Boltzmann fluid simulation: streaming, memory-bound.
    SpecLbm,
    /// Weather modelling.
    SpecWrf,
    /// Speech recognition.
    SpecSphinx3,
}

/// The modelled properties of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchProfile {
    /// Which benchmark this is.
    pub id: Benchmark,
    /// Suite membership.
    pub suite: Suite,
    /// Whether the program is a parallel application (NPB/PARSEC: N
    /// threads share one job) or single-threaded (SPEC: N copies do N
    /// jobs; energy is normalized per instance, §II-B).
    pub parallel: bool,
    /// Fraction of solo execution time spent waiting on L3/DRAM at the
    /// reference frequency (3 GHz). The frequency-invariant part.
    pub mem_fraction: f64,
    /// Solo single-thread execution time at the 3 GHz reference with no
    /// contention, seconds.
    pub ref_time_s: f64,
    /// L3-cache accesses per 1 M cycles in solo execution — the daemon's
    /// classification signal (Figure 9).
    pub l3c_per_mcycle: f64,
    /// Core switching activity while not memory-stalled, `[0, 1]`
    /// (IPC-proportional; feeds the power model).
    pub activity: f64,
    /// Position within the workload-to-workload Vmin spread, `[-1, +1]`
    /// (+1 = needs the most voltage).
    pub vmin_sensitivity: f64,
}

impl BenchProfile {
    /// Core work of one solo thread, in giga-cycles (frequency-scalable
    /// part), derived from the 3 GHz reference split.
    pub fn core_gcycles(&self) -> f64 {
        (1.0 - self.mem_fraction) * self.ref_time_s * 3.0
    }

    /// Memory time of one solo thread, seconds (frequency-invariant part).
    pub fn mem_seconds(&self) -> f64 {
        self.mem_fraction * self.ref_time_s
    }
}

impl Benchmark {
    /// All 41 modelled benchmarks.
    pub const ALL: [Benchmark; 41] = [
        Benchmark::NpbCg,
        Benchmark::NpbEp,
        Benchmark::NpbFt,
        Benchmark::NpbIs,
        Benchmark::NpbLu,
        Benchmark::NpbMg,
        Benchmark::ParsecSwaptions,
        Benchmark::ParsecBlackscholes,
        Benchmark::ParsecFluidanimate,
        Benchmark::ParsecCanneal,
        Benchmark::ParsecBodytrack,
        Benchmark::ParsecDedup,
        Benchmark::SpecPerlbench,
        Benchmark::SpecBzip2,
        Benchmark::SpecGcc,
        Benchmark::SpecMcf,
        Benchmark::SpecGobmk,
        Benchmark::SpecHmmer,
        Benchmark::SpecSjeng,
        Benchmark::SpecLibquantum,
        Benchmark::SpecH264ref,
        Benchmark::SpecOmnetpp,
        Benchmark::SpecAstar,
        Benchmark::SpecXalancbmk,
        Benchmark::SpecBwaves,
        Benchmark::SpecGamess,
        Benchmark::SpecMilc,
        Benchmark::SpecZeusmp,
        Benchmark::SpecGromacs,
        Benchmark::SpecCactusAdm,
        Benchmark::SpecLeslie3d,
        Benchmark::SpecNamd,
        Benchmark::SpecDealII,
        Benchmark::SpecSoplex,
        Benchmark::SpecPovray,
        Benchmark::SpecCalculix,
        Benchmark::SpecGemsFdtd,
        Benchmark::SpecTonto,
        Benchmark::SpecLbm,
        Benchmark::SpecWrf,
        Benchmark::SpecSphinx3,
    ];

    /// The paper's 25 characterized benchmarks (§II-B): 6 NPB, 6 PARSEC,
    /// 13 SPEC CPU2006.
    pub fn characterized() -> Vec<Benchmark> {
        use Benchmark::*;
        vec![
            NpbCg,
            NpbEp,
            NpbFt,
            NpbIs,
            NpbLu,
            NpbMg,
            ParsecSwaptions,
            ParsecBlackscholes,
            ParsecFluidanimate,
            ParsecCanneal,
            ParsecBodytrack,
            ParsecDedup,
            SpecNamd,
            SpecMilc,
            SpecBzip2,
            SpecGcc,
            SpecMcf,
            SpecGobmk,
            SpecHmmer,
            SpecSjeng,
            SpecLibquantum,
            SpecH264ref,
            SpecLbm,
            SpecOmnetpp,
            SpecSoplex,
        ]
    }

    /// The 35-program server-workload pool (§VI-B): all 29 SPEC CPU2006
    /// programs plus the 6 NPB kernels.
    pub fn server_pool() -> Vec<Benchmark> {
        Benchmark::ALL
            .into_iter()
            .filter(|b| b.profile().suite != Suite::Parsec)
            .collect()
    }

    /// The paper's shorthand name for the benchmark.
    pub fn name(self) -> &'static str {
        use Benchmark::*;
        match self {
            NpbCg => "CG",
            NpbEp => "EP",
            NpbFt => "FT",
            NpbIs => "IS",
            NpbLu => "LU",
            NpbMg => "MG",
            ParsecSwaptions => "swaptions",
            ParsecBlackscholes => "blackscholes",
            ParsecFluidanimate => "fluidanimate",
            ParsecCanneal => "canneal",
            ParsecBodytrack => "bodytrack",
            ParsecDedup => "dedup",
            SpecPerlbench => "perlbench",
            SpecBzip2 => "bzip2",
            SpecGcc => "gcc",
            SpecMcf => "mcf",
            SpecGobmk => "gobmk",
            SpecHmmer => "hmmer",
            SpecSjeng => "sjeng",
            SpecLibquantum => "libquantum",
            SpecH264ref => "h264ref",
            SpecOmnetpp => "omnetpp",
            SpecAstar => "astar",
            SpecXalancbmk => "xalancbmk",
            SpecBwaves => "bwaves",
            SpecGamess => "gamess",
            SpecMilc => "milc",
            SpecZeusmp => "zeusmp",
            SpecGromacs => "gromacs",
            SpecCactusAdm => "cactusADM",
            SpecLeslie3d => "leslie3d",
            SpecNamd => "namd",
            SpecDealII => "dealII",
            SpecSoplex => "soplex",
            SpecPovray => "povray",
            SpecCalculix => "calculix",
            SpecGemsFdtd => "GemsFDTD",
            SpecTonto => "tonto",
            SpecLbm => "lbm",
            SpecWrf => "wrf",
            SpecSphinx3 => "sphinx3",
        }
    }

    /// The modelled profile of this benchmark.
    pub fn profile(self) -> BenchProfile {
        use Benchmark::*;
        // (suite, parallel, mem_fraction, ref_time_s, l3c/Mcycle, activity, vmin sens)
        let (suite, parallel, m, t, l3c, act, sens) = match self {
            // --- NPB ---
            NpbCg => (Suite::Npb, true, 0.66, 90.0, 30_500.0, 0.60, -0.2),
            NpbEp => (Suite::Npb, true, 0.03, 110.0, 190.0, 0.97, 0.8),
            NpbFt => (Suite::Npb, true, 0.60, 95.0, 24_800.0, 0.60, -0.3),
            NpbIs => (Suite::Npb, true, 0.38, 60.0, 8_900.0, 0.68, 0.1),
            NpbLu => (Suite::Npb, true, 0.30, 120.0, 5_400.0, 0.70, 0.3),
            NpbMg => (Suite::Npb, true, 0.44, 85.0, 11_200.0, 0.65, -0.1),
            // --- PARSEC ---
            ParsecSwaptions => (Suite::Parsec, true, 0.05, 100.0, 320.0, 0.93, 0.6),
            ParsecBlackscholes => (Suite::Parsec, true, 0.08, 80.0, 610.0, 0.90, 0.5),
            ParsecFluidanimate => (Suite::Parsec, true, 0.28, 105.0, 4_700.0, 0.72, 0.0),
            ParsecCanneal => (Suite::Parsec, true, 0.50, 95.0, 14_600.0, 0.58, -0.4),
            ParsecBodytrack => (Suite::Parsec, true, 0.20, 90.0, 2_300.0, 0.80, 0.4),
            ParsecDedup => (Suite::Parsec, true, 0.36, 70.0, 7_800.0, 0.66, -0.1),
            // --- SPEC INT ---
            SpecPerlbench => (Suite::SpecCpu2006, false, 0.18, 95.0, 1_900.0, 0.82, 0.3),
            SpecBzip2 => (Suite::SpecCpu2006, false, 0.21, 85.0, 2_600.0, 0.78, 0.2),
            SpecGcc => (Suite::SpecCpu2006, false, 0.26, 75.0, 4_100.0, 0.74, 0.1),
            SpecMcf => (Suite::SpecCpu2006, false, 0.58, 100.0, 19_400.0, 0.58, -0.5),
            SpecGobmk => (Suite::SpecCpu2006, false, 0.12, 90.0, 1_250.0, 0.85, 0.4),
            SpecHmmer => (Suite::SpecCpu2006, false, 0.08, 80.0, 700.0, 0.92, 0.5),
            SpecSjeng => (Suite::SpecCpu2006, false, 0.12, 95.0, 1_100.0, 0.86, 0.5),
            SpecLibquantum => (Suite::SpecCpu2006, false, 0.52, 85.0, 16_300.0, 0.60, -0.4),
            SpecH264ref => (Suite::SpecCpu2006, false, 0.15, 90.0, 1_500.0, 0.84, 0.3),
            SpecOmnetpp => (Suite::SpecCpu2006, false, 0.45, 90.0, 12_100.0, 0.60, -0.2),
            SpecAstar => (Suite::SpecCpu2006, false, 0.30, 95.0, 5_200.0, 0.68, 0.0),
            SpecXalancbmk => (Suite::SpecCpu2006, false, 0.34, 85.0, 6_700.0, 0.65, -0.1),
            // --- SPEC FP ---
            SpecBwaves => (Suite::SpecCpu2006, false, 0.48, 110.0, 13_400.0, 0.60, -0.3),
            SpecGamess => (Suite::SpecCpu2006, false, 0.05, 105.0, 380.0, 0.94, 0.7),
            SpecMilc => (Suite::SpecCpu2006, false, 0.62, 95.0, 21_700.0, 0.58, -0.6),
            SpecZeusmp => (Suite::SpecCpu2006, false, 0.35, 100.0, 7_200.0, 0.64, 0.0),
            SpecGromacs => (Suite::SpecCpu2006, false, 0.10, 95.0, 900.0, 0.88, 0.5),
            SpecCactusAdm => (Suite::SpecCpu2006, false, 0.40, 105.0, 9_800.0, 0.62, -0.2),
            SpecLeslie3d => (Suite::SpecCpu2006, false, 0.46, 100.0, 12_700.0, 0.60, -0.3),
            SpecNamd => (Suite::SpecCpu2006, false, 0.02, 100.0, 140.0, 0.98, 1.0),
            SpecDealII => (Suite::SpecCpu2006, false, 0.16, 90.0, 1_700.0, 0.83, 0.2),
            SpecSoplex => (Suite::SpecCpu2006, false, 0.44, 85.0, 11_600.0, 0.62, -0.2),
            SpecPovray => (Suite::SpecCpu2006, false, 0.06, 95.0, 450.0, 0.93, 0.6),
            SpecCalculix => (Suite::SpecCpu2006, false, 0.13, 100.0, 1_350.0, 0.85, 0.3),
            SpecGemsFdtd => (Suite::SpecCpu2006, false, 0.50, 105.0, 14_100.0, 0.58, -0.4),
            SpecTonto => (Suite::SpecCpu2006, false, 0.17, 95.0, 1_800.0, 0.82, 0.2),
            SpecLbm => (Suite::SpecCpu2006, false, 0.55, 90.0, 17_900.0, 0.58, -0.5),
            SpecWrf => (Suite::SpecCpu2006, false, 0.35, 100.0, 6_900.0, 0.63, 0.0),
            SpecSphinx3 => (Suite::SpecCpu2006, false, 0.40, 90.0, 9_300.0, 0.62, -0.1),
        };
        BenchProfile {
            id: self,
            suite,
            parallel,
            mem_fraction: m,
            ref_time_s: t,
            l3c_per_mcycle: l3c,
            activity: act,
            vmin_sensitivity: sens,
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, IntensityClass, L3C_THRESHOLD_PER_MCYCLE};

    #[test]
    fn counts_match_the_paper() {
        assert_eq!(Benchmark::ALL.len(), 41);
        assert_eq!(Benchmark::characterized().len(), 25);
        assert_eq!(Benchmark::server_pool().len(), 35);
        let npb = Benchmark::ALL
            .iter()
            .filter(|b| b.profile().suite == Suite::Npb)
            .count();
        let parsec = Benchmark::ALL
            .iter()
            .filter(|b| b.profile().suite == Suite::Parsec)
            .count();
        let spec = Benchmark::ALL
            .iter()
            .filter(|b| b.profile().suite == Suite::SpecCpu2006)
            .count();
        assert_eq!((npb, parsec, spec), (6, 6, 29));
    }

    #[test]
    fn characterized_has_13_spec() {
        let spec = Benchmark::characterized()
            .into_iter()
            .filter(|b| b.profile().suite == Suite::SpecCpu2006)
            .count();
        assert_eq!(spec, 13);
    }

    #[test]
    fn server_pool_excludes_parsec() {
        assert!(Benchmark::server_pool()
            .iter()
            .all(|b| b.profile().suite != Suite::Parsec));
    }

    #[test]
    fn parallel_flag_follows_suite() {
        for b in Benchmark::ALL {
            let p = b.profile();
            assert_eq!(p.parallel, p.suite != Suite::SpecCpu2006, "{b}");
        }
    }

    #[test]
    fn extremes_match_figure8() {
        // namd and EP most CPU-intensive; milc, CG, FT most memory-intensive.
        let m = |b: Benchmark| b.profile().mem_fraction;
        let cpu_min = Benchmark::ALL
            .into_iter()
            .min_by(|a, b| m(*a).partial_cmp(&m(*b)).unwrap())
            .unwrap();
        assert_eq!(cpu_min, Benchmark::SpecNamd);
        let mem_max = Benchmark::ALL
            .into_iter()
            .max_by(|a, b| m(*a).partial_cmp(&m(*b)).unwrap())
            .unwrap();
        assert_eq!(mem_max, Benchmark::NpbCg);
        // EP below every other parallel benchmark.
        assert!(m(Benchmark::NpbEp) < 0.05);
        assert!(m(Benchmark::SpecMilc) > 0.55);
        assert!(m(Benchmark::NpbFt) > 0.55);
    }

    #[test]
    fn l3c_rate_orders_with_mem_fraction() {
        // Spearman-ish check: the most memory-bound programs have the
        // highest L3 rates (Figure 9's structure).
        let mut profiles: Vec<BenchProfile> = Benchmark::ALL.iter().map(|b| b.profile()).collect();
        profiles.sort_by(|a, b| a.mem_fraction.partial_cmp(&b.mem_fraction).unwrap());
        let first_ten_max = profiles[..10]
            .iter()
            .map(|p| p.l3c_per_mcycle)
            .fold(0.0f64, f64::max);
        let last_ten_min = profiles[31..]
            .iter()
            .map(|p| p.l3c_per_mcycle)
            .fold(f64::INFINITY, f64::min);
        assert!(first_ten_max < last_ten_min);
    }

    #[test]
    fn threshold_separates_classes_sensibly() {
        // The paper's threshold (3000/Mcycle) puts namd/EP/swaptions on the
        // CPU side and milc/CG/FT/mcf/lbm on the memory side.
        for b in [
            Benchmark::SpecNamd,
            Benchmark::NpbEp,
            Benchmark::ParsecSwaptions,
            Benchmark::SpecHmmer,
        ] {
            assert_eq!(
                classify(b.profile().l3c_per_mcycle),
                IntensityClass::CpuIntensive,
                "{b}"
            );
        }
        for b in [
            Benchmark::SpecMilc,
            Benchmark::NpbCg,
            Benchmark::NpbFt,
            Benchmark::SpecMcf,
            Benchmark::SpecLbm,
        ] {
            assert_eq!(
                classify(b.profile().l3c_per_mcycle),
                IntensityClass::MemoryIntensive,
                "{b}"
            );
        }
        // And both classes are populated among the characterized 25.
        let (cpu, mem): (Vec<_>, Vec<_>) = Benchmark::characterized()
            .into_iter()
            .partition(|b| b.profile().l3c_per_mcycle < L3C_THRESHOLD_PER_MCYCLE);
        assert!(cpu.len() >= 8, "cpu class too small: {}", cpu.len());
        assert!(mem.len() >= 8, "mem class too small: {}", mem.len());
    }

    #[test]
    fn profile_invariants_hold() {
        for b in Benchmark::ALL {
            let p = b.profile();
            assert!((0.0..1.0).contains(&p.mem_fraction), "{b} mem_fraction");
            assert!(p.ref_time_s > 0.0, "{b} ref_time");
            assert!(p.l3c_per_mcycle >= 0.0, "{b} l3c");
            assert!((0.0..=1.0).contains(&p.activity), "{b} activity");
            assert!((-1.0..=1.0).contains(&p.vmin_sensitivity), "{b} sens");
            // Work split reassembles the reference time at 3 GHz.
            let t = p.core_gcycles() / 3.0 + p.mem_seconds();
            assert!((t - p.ref_time_s).abs() < 1e-9, "{b} split");
        }
    }

    #[test]
    fn names_are_unique_and_paper_style() {
        let mut names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 41);
        assert_eq!(Benchmark::NpbCg.to_string(), "CG");
        assert_eq!(Benchmark::SpecCactusAdm.to_string(), "cactusADM");
    }

    #[test]
    fn activity_anticorrelates_with_mem_fraction() {
        for b in Benchmark::ALL {
            let p = b.profile();
            if p.mem_fraction > 0.5 {
                assert!(p.activity < 0.72, "{b}: stalled programs switch less");
            }
            if p.mem_fraction < 0.1 {
                assert!(p.activity > 0.85, "{b}: busy programs switch more");
            }
        }
    }
}
