//! Analytic workload models for the AVFS reproduction.
//!
//! The paper's evaluation runs 25 characterized benchmarks from three
//! suites — NPB v3.3.1, PARSEC v3.0, and SPEC CPU2006 — plus a random
//! "server workload" drawn from a 35-program pool (the 29 SPEC programs
//! and 6 NPB kernels, §VI-B). Real binaries obviously cannot run on a
//! simulated chip, so each program is modelled analytically by the four
//! properties the paper's mechanism actually interacts with:
//!
//! * the split of solo execution time into **core cycles** (frequency-
//!   scalable) and **memory time** (frequency-invariant) — this drives
//!   the energy/performance trade-offs of Figures 11/12;
//! * the **L3-cache access rate** per million cycles — the daemon's
//!   classification signal (Figure 9, threshold 3000);
//! * **contention sensitivity** — how co-runners inflate memory time
//!   (Figure 8) and how sharing a PMD's L2 inflates clustered allocations
//!   (Figure 7);
//! * a small **Vmin sensitivity** — the benchmark's position inside the
//!   workload-to-workload Vmin spread (Figures 3/4).
//!
//! # Example
//!
//! ```
//! use avfs_workloads::catalog::{Benchmark, Suite};
//! use avfs_workloads::classify::{classify, IntensityClass};
//!
//! let cg = Benchmark::NpbCg.profile();
//! assert_eq!(cg.suite, Suite::Npb);
//! assert_eq!(classify(cg.l3c_per_mcycle), IntensityClass::MemoryIntensive);
//!
//! let namd = Benchmark::SpecNamd.profile();
//! assert_eq!(classify(namd.l3c_per_mcycle), IntensityClass::CpuIntensive);
//! ```

pub mod catalog;
pub mod classify;
pub mod generator;
pub mod perf;
pub mod phases;

pub use catalog::{BenchProfile, Benchmark, Suite};
pub use classify::{classify, IntensityClass, L3C_THRESHOLD_PER_MCYCLE};
pub use generator::{Arrival, GeneratorConfig, WorkloadTrace};
pub use perf::PerfModel;
