//! CPU- vs memory-intensive classification (§IV-B).
//!
//! The paper classifies a running process by its L3-cache access rate,
//! measured as L2-miss PMU counts over 1 M-cycle windows: at or above
//! 3000 accesses per million cycles the process is memory-intensive,
//! below it is CPU-intensive (Figure 9). The daemon re-evaluates the
//! class continuously and reacts to changes; a small hysteresis band
//! avoids flapping near the threshold.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's classification threshold: L3 accesses per 1 M cycles.
pub const L3C_THRESHOLD_PER_MCYCLE: f64 = 3_000.0;

/// Coarse-grain workload class (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntensityClass {
    /// The core pipeline (and L1/L2) is the bottleneck; performance scales
    /// with core frequency.
    CpuIntensive,
    /// L3/DRAM is the bottleneck; core frequency reduction is largely
    /// hidden behind memory latency.
    MemoryIntensive,
}

impl fmt::Display for IntensityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntensityClass::CpuIntensive => write!(f, "CPU-intensive"),
            IntensityClass::MemoryIntensive => write!(f, "memory-intensive"),
        }
    }
}

/// Classifies a measured L3 access rate against the paper's threshold.
pub fn classify(l3c_per_mcycle: f64) -> IntensityClass {
    if l3c_per_mcycle >= L3C_THRESHOLD_PER_MCYCLE {
        IntensityClass::MemoryIntensive
    } else {
        IntensityClass::CpuIntensive
    }
}

/// A classifier with hysteresis: the class only flips when the rate
/// crosses the threshold by more than `band` in the new direction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HysteresisClassifier {
    threshold: f64,
    band: f64,
    current: Option<IntensityClass>,
}

impl HysteresisClassifier {
    /// Creates a classifier around the paper's threshold with the given
    /// hysteresis half-width.
    ///
    /// # Panics
    ///
    /// Panics if `band` is negative or at least as large as `threshold`.
    pub fn new(threshold: f64, band: f64) -> Self {
        assert!(band >= 0.0 && band < threshold, "invalid hysteresis band");
        HysteresisClassifier {
            threshold,
            band,
            current: None,
        }
    }

    /// A classifier with the paper's threshold and a 10 % band.
    pub fn paper_default() -> Self {
        HysteresisClassifier::new(L3C_THRESHOLD_PER_MCYCLE, 0.1 * L3C_THRESHOLD_PER_MCYCLE)
    }

    /// Feeds one measurement; returns the (possibly unchanged) class.
    pub fn observe(&mut self, l3c_per_mcycle: f64) -> IntensityClass {
        let next = match self.current {
            None => classify(l3c_per_mcycle),
            Some(IntensityClass::CpuIntensive) => {
                if l3c_per_mcycle >= self.threshold + self.band {
                    IntensityClass::MemoryIntensive
                } else {
                    IntensityClass::CpuIntensive
                }
            }
            Some(IntensityClass::MemoryIntensive) => {
                if l3c_per_mcycle < self.threshold - self.band {
                    IntensityClass::CpuIntensive
                } else {
                    IntensityClass::MemoryIntensive
                }
            }
        };
        self.current = Some(next);
        next
    }

    /// The current class, if any measurement has been observed.
    pub fn current(&self) -> Option<IntensityClass> {
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_semantics() {
        assert_eq!(classify(2_999.9), IntensityClass::CpuIntensive);
        assert_eq!(classify(3_000.0), IntensityClass::MemoryIntensive);
        assert_eq!(classify(0.0), IntensityClass::CpuIntensive);
        assert_eq!(classify(40_000.0), IntensityClass::MemoryIntensive);
    }

    #[test]
    fn hysteresis_suppresses_flapping() {
        let mut c = HysteresisClassifier::paper_default();
        assert_eq!(c.observe(2_000.0), IntensityClass::CpuIntensive);
        // Rate wobbles just above the bare threshold but inside the band:
        // class must not flip.
        assert_eq!(c.observe(3_100.0), IntensityClass::CpuIntensive);
        assert_eq!(c.observe(3_250.0), IntensityClass::CpuIntensive);
        // A clear crossing flips it.
        assert_eq!(c.observe(3_400.0), IntensityClass::MemoryIntensive);
        // Wobble just below the threshold: stays memory-intensive.
        assert_eq!(c.observe(2_800.0), IntensityClass::MemoryIntensive);
        // A clear drop flips back.
        assert_eq!(c.observe(2_600.0), IntensityClass::CpuIntensive);
    }

    #[test]
    fn first_observation_uses_bare_threshold() {
        let mut c = HysteresisClassifier::paper_default();
        assert_eq!(c.current(), None);
        assert_eq!(c.observe(3_100.0), IntensityClass::MemoryIntensive);
        assert_eq!(c.current(), Some(IntensityClass::MemoryIntensive));
    }

    #[test]
    #[should_panic(expected = "invalid hysteresis band")]
    fn rejects_band_wider_than_threshold() {
        let _ = HysteresisClassifier::new(3_000.0, 3_000.0);
    }

    #[test]
    fn display_strings() {
        assert_eq!(IntensityClass::CpuIntensive.to_string(), "CPU-intensive");
        assert_eq!(
            IntensityClass::MemoryIntensive.to_string(),
            "memory-intensive"
        );
    }
}
