//! A sysfs-style control plane over the chip.
//!
//! On the real machines the paper's daemon manipulates frequency through
//! the kernel's cpufreq sysfs files and reads sensors through hwmon;
//! only the voltage path goes through the SLIMpro mailbox. This module
//! provides the same string-keyed interface over the chip model, so
//! integration code (and tests) can exercise the exact file protocol a
//! userspace daemon would use:
//!
//! | path | semantics |
//! |------|-----------|
//! | `cpu/cpu<N>/cpufreq/scaling_cur_freq` | current frequency of the core's PMD, kHz (read) |
//! | `cpu/cpu<N>/cpufreq/scaling_setspeed` | request a frequency, kHz (write; snaps up to the next 1/8 step) |
//! | `cpu/cpu<N>/cpufreq/cpuinfo_max_freq` | fmax, kHz (read) |
//! | `cpu/cpu<N>/cpufreq/cpuinfo_min_freq` | fmax/8, kHz (read) |
//! | `hwmon/in0_input` | rail voltage, mV (read) |
//! | `hwmon/power1_input` | last evaluated PCP power, µW (read) |
//! | `avfs/slimpro/voltage` | rail voltage, mV (read/write via the mailbox) |
//! | `avfs/droops/band<K>` | cumulative droop detections in band K (read) |

use crate::chip::Chip;
use crate::error::ChipError;
use crate::freq::{FreqStep, FrequencyMhz};
use crate::slimpro::{MailboxRequest, MailboxResponse};
use crate::topology::CoreId;
use crate::voltage::Millivolts;
use std::error::Error;
use std::fmt;

/// Errors from the sysfs adapter.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SysfsError {
    /// The path does not exist in this tree.
    NoSuchFile(String),
    /// The file exists but does not support the operation.
    PermissionDenied(String),
    /// The written value could not be parsed or was rejected.
    InvalidValue(String),
    /// An underlying chip error.
    Chip(ChipError),
}

impl fmt::Display for SysfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SysfsError::NoSuchFile(p) => write!(f, "no such file: {p}"),
            SysfsError::PermissionDenied(p) => write!(f, "permission denied: {p}"),
            SysfsError::InvalidValue(v) => write!(f, "invalid value: {v}"),
            SysfsError::Chip(e) => write!(f, "chip error: {e}"),
        }
    }
}

impl Error for SysfsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SysfsError::Chip(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ChipError> for SysfsError {
    fn from(e: ChipError) -> Self {
        SysfsError::Chip(e)
    }
}

fn parse_core(chip: &Chip, token: &str) -> Result<CoreId, SysfsError> {
    let idx: u16 = token
        .strip_prefix("cpu")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| SysfsError::NoSuchFile(format!("cpu/{token}")))?;
    let core = CoreId::new(idx);
    if chip.spec().contains_core(core) {
        Ok(core)
    } else {
        Err(SysfsError::NoSuchFile(format!("cpu/{token}")))
    }
}

/// Reads a sysfs path.
///
/// # Errors
///
/// [`SysfsError::NoSuchFile`] for unknown paths.
pub fn read(chip: &Chip, path: &str) -> Result<String, SysfsError> {
    let parts: Vec<&str> = path.trim_matches('/').split('/').collect();
    match parts.as_slice() {
        ["cpu", cpu, "cpufreq", leaf] => {
            let core = parse_core(chip, cpu)?;
            let pmd = chip.spec().pmd_of(core);
            match *leaf {
                "scaling_cur_freq" => {
                    let khz = chip.pmd_frequency(pmd)?.as_mhz() as u64 * 1_000;
                    Ok(khz.to_string())
                }
                "cpuinfo_max_freq" => Ok((chip.spec().fmax_mhz as u64 * 1_000).to_string()),
                "cpuinfo_min_freq" => Ok((chip.spec().fmax_mhz as u64 / 8 * 1_000).to_string()),
                "scaling_setspeed" => Err(SysfsError::PermissionDenied(path.to_string())),
                _ => Err(SysfsError::NoSuchFile(path.to_string())),
            }
        }
        ["hwmon", "in0_input"] => Ok(chip.voltage().as_mv().to_string()),
        ["avfs", "droops", band] => {
            let k: usize = band
                .strip_prefix("band")
                .and_then(|s| s.parse().ok())
                .filter(|&k| k < 4)
                .ok_or_else(|| SysfsError::NoSuchFile(path.to_string()))?;
            Ok(chip.pmu().droops().per_band[k].to_string())
        }
        ["avfs", "slimpro", "voltage"] => Ok(chip.voltage().as_mv().to_string()),
        _ => Err(SysfsError::NoSuchFile(path.to_string())),
    }
}

/// Reads a path that requires mailbox interaction (power sensor).
///
/// # Errors
///
/// [`SysfsError::NoSuchFile`] for unknown paths.
pub fn read_mut(chip: &mut Chip, path: &str) -> Result<String, SysfsError> {
    if path.trim_matches('/') == "hwmon/power1_input" {
        match chip.mailbox(MailboxRequest::ReadPowerSensor) {
            MailboxResponse::PowerMw(mw) => Ok((mw * 1_000).to_string()),
            other => Err(SysfsError::InvalidValue(format!("{other:?}"))),
        }
    } else {
        read(chip, path)
    }
}

/// Writes a sysfs path.
///
/// # Errors
///
/// [`SysfsError::PermissionDenied`] for read-only files,
/// [`SysfsError::InvalidValue`] for rejected values.
pub fn write(chip: &mut Chip, path: &str, value: &str) -> Result<(), SysfsError> {
    let parts: Vec<&str> = path.trim_matches('/').split('/').collect();
    match parts.as_slice() {
        ["cpu", cpu, "cpufreq", "scaling_setspeed"] => {
            let core = parse_core(chip, cpu)?;
            let khz: u64 = value
                .trim()
                .parse()
                .map_err(|_| SysfsError::InvalidValue(value.to_string()))?;
            let mhz = (khz / 1_000) as u32;
            if mhz == 0 || mhz > chip.spec().fmax_mhz {
                return Err(SysfsError::InvalidValue(format!("{khz} kHz out of range")));
            }
            let step = FreqStep::nearest_at_least(FrequencyMhz::new(mhz), chip.spec().fmax());
            let pmd = chip.spec().pmd_of(core);
            chip.set_pmd_freq_step(pmd, step)?;
            Ok(())
        }
        ["avfs", "slimpro", "voltage"] => {
            let mv: u32 = value
                .trim()
                .parse()
                .map_err(|_| SysfsError::InvalidValue(value.to_string()))?;
            match chip.mailbox(MailboxRequest::SetVoltage(Millivolts::new(mv))) {
                MailboxResponse::VoltageSet(_) => Ok(()),
                MailboxResponse::Refused { reason } => Err(SysfsError::InvalidValue(reason)),
                other => Err(SysfsError::InvalidValue(format!("{other:?}"))),
            }
        }
        ["cpu", _, "cpufreq", leaf]
            if ["scaling_cur_freq", "cpuinfo_max_freq", "cpuinfo_min_freq"].contains(leaf) =>
        {
            Err(SysfsError::PermissionDenied(path.to_string()))
        }
        ["hwmon", _] => Err(SysfsError::PermissionDenied(path.to_string())),
        _ => Err(SysfsError::NoSuchFile(path.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::topology::PmdId;

    #[test]
    fn cpufreq_reads() {
        let chip = presets::xgene2().build();
        assert_eq!(
            read(&chip, "cpu/cpu0/cpufreq/scaling_cur_freq").unwrap(),
            "2400000"
        );
        assert_eq!(
            read(&chip, "cpu/cpu7/cpufreq/cpuinfo_max_freq").unwrap(),
            "2400000"
        );
        assert_eq!(
            read(&chip, "cpu/cpu7/cpufreq/cpuinfo_min_freq").unwrap(),
            "300000"
        );
    }

    #[test]
    fn setspeed_snaps_to_step_and_is_per_pmd() {
        let mut chip = presets::xgene2().build();
        // 1 GHz request snaps up to the 1.2 GHz step for PMD0.
        write(&mut chip, "cpu/cpu1/cpufreq/scaling_setspeed", "1000000").unwrap();
        assert_eq!(
            read(&chip, "cpu/cpu0/cpufreq/scaling_cur_freq").unwrap(),
            "1200000"
        );
        // Sibling core (same PMD) changed; other PMDs did not.
        assert_eq!(
            read(&chip, "cpu/cpu2/cpufreq/scaling_cur_freq").unwrap(),
            "2400000"
        );
        assert_eq!(chip.pmd_freq_step(PmdId::new(0)).unwrap().numerator(), 4);
    }

    #[test]
    fn voltage_roundtrip_through_slimpro_node() {
        let mut chip = presets::xgene3().build();
        write(&mut chip, "avfs/slimpro/voltage", "830").unwrap();
        assert_eq!(read(&chip, "avfs/slimpro/voltage").unwrap(), "830");
        assert_eq!(read(&chip, "hwmon/in0_input").unwrap(), "830");
        // Out of range is rejected with the regulator's reason.
        let err = write(&mut chip, "avfs/slimpro/voltage", "1000").unwrap_err();
        assert!(matches!(err, SysfsError::InvalidValue(_)));
    }

    #[test]
    fn power_sensor_reads_microwatts() {
        let mut chip = presets::xgene2().build();
        let inputs = crate::power::PowerInputs {
            voltage: chip.voltage(),
            pmd_loads: vec![crate::power::PmdLoad::IDLE; 4],
            mem_traffic: 0.0,
        };
        let w = chip.evaluate_power_w(&inputs);
        let uw: u64 = read_mut(&mut chip, "hwmon/power1_input")
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(uw, (w * 1000.0).round() as u64 * 1000);
    }

    #[test]
    fn droop_counters_visible() {
        let mut chip = presets::xgene2().build();
        chip.pmu_mut().record_droops(&crate::droop::DroopCounts {
            per_band: [7, 3, 0, 1],
        });
        assert_eq!(read(&chip, "avfs/droops/band0").unwrap(), "7");
        assert_eq!(read(&chip, "avfs/droops/band3").unwrap(), "1");
        assert!(matches!(
            read(&chip, "avfs/droops/band4"),
            Err(SysfsError::NoSuchFile(_))
        ));
    }

    #[test]
    fn permissions_and_missing_paths() {
        let mut chip = presets::xgene2().build();
        assert!(matches!(
            write(&mut chip, "cpu/cpu0/cpufreq/scaling_cur_freq", "1"),
            Err(SysfsError::PermissionDenied(_))
        ));
        assert!(matches!(
            read(&chip, "cpu/cpu0/cpufreq/scaling_setspeed"),
            Err(SysfsError::PermissionDenied(_))
        ));
        assert!(matches!(
            read(&chip, "cpu/cpu99/cpufreq/scaling_cur_freq"),
            Err(SysfsError::NoSuchFile(_))
        ));
        assert!(matches!(
            read(&chip, "not/a/path"),
            Err(SysfsError::NoSuchFile(_))
        ));
        assert!(matches!(
            write(&mut chip, "cpu/cpu0/cpufreq/scaling_setspeed", "banana"),
            Err(SysfsError::InvalidValue(_))
        ));
    }
}
