//! PCP-domain power model.
//!
//! All energy numbers in the paper are measured on the PCP (Processor
//! ComPlex) power domain: cores, L1/L2/L3 caches, and memory controllers,
//! all on one voltage rail. The model here is the standard CMOS
//! decomposition:
//!
//! * per-core **dynamic** power `k_dyn · activity · f · (V/Vnom)²`;
//! * per-active-PMD **clock-tree overhead** `k_pmd · f · (V/Vnom)²` — this
//!   term is why clustering threads onto fewer PMDs saves energy for
//!   CPU-bound workloads (Figure 7, left side);
//! * chip **leakage** `P_leak · (V/Vnom)³` (superlinear in V);
//! * **uncore** (L3 + memory controllers) with a static part and a part
//!   proportional to memory traffic, both on the same rail.
//!
//! Idle PMDs are clock-gated and contribute only leakage (which is folded
//! into the chip-level term). Constants are calibrated per chip in
//! [`crate::presets`] to land near the paper's operating points (TDP-scale
//! full load; single-digit-watt idle on X-Gene 2).

use crate::voltage::Millivolts;
use serde::{Deserialize, Serialize};

/// Load description for one PMD over an evaluation interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PmdLoad {
    /// The PMD's effective clock, MHz.
    pub freq_mhz: u32,
    /// Number of cores in this PMD executing work (0..=cores_per_pmd).
    pub active_cores: u8,
    /// Mean switching activity of the active cores, in `[0, 1]`
    /// (roughly IPC-proportional; memory-stalled cores switch less).
    pub activity: f64,
}

impl PmdLoad {
    /// A fully idle (clock-gated) PMD.
    pub const IDLE: PmdLoad = PmdLoad {
        freq_mhz: 0,
        active_cores: 0,
        activity: 0.0,
    };

    /// True when no core in the PMD is executing.
    pub fn is_idle(&self) -> bool {
        self.active_cores == 0
    }
}

/// Chip-level inputs for one power evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerInputs {
    /// The rail voltage.
    pub voltage: Millivolts,
    /// Per-PMD loads, indexed by PMD.
    pub pmd_loads: Vec<PmdLoad>,
    /// Aggregate memory traffic in `[0, 1]` (1 = L3/DRAM path saturated).
    pub mem_traffic: f64,
}

/// Calibrated power-model constants for one chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Nominal voltage the constants were calibrated at.
    pub nominal_mv: u32,
    /// Dynamic W per active core per GHz at nominal voltage, activity 1.
    pub k_dyn_core_w_per_ghz: f64,
    /// Clock-tree W per *active* PMD per GHz at nominal voltage.
    pub k_pmd_w_per_ghz: f64,
    /// Dynamic W per GHz for an idle core inside an active PMD (its L1s
    /// and interface still clock).
    pub k_idle_core_w_per_ghz: f64,
    /// Chip leakage at nominal voltage, W.
    pub leak_w: f64,
    /// Static uncore power at nominal voltage, W.
    pub uncore_static_w: f64,
    /// Additional uncore power at saturated memory traffic, W.
    pub uncore_dyn_w: f64,
    /// Cores per PMD (needed to count idle cores in active PMDs).
    pub cores_per_pmd: u8,
}

impl PowerModel {
    /// Instantaneous PCP power in watts for the given inputs.
    ///
    /// # Panics
    ///
    /// Panics if an active-core count exceeds `cores_per_pmd`.
    pub fn power_w(&self, inputs: &PowerInputs) -> f64 {
        let vr = inputs.voltage.as_mv() as f64 / self.nominal_mv as f64;
        let vr2 = vr * vr;
        let vr3 = vr2 * vr;

        let mut dyn_w = 0.0;
        for load in &inputs.pmd_loads {
            assert!(
                load.active_cores <= self.cores_per_pmd,
                "{} active cores in a {}-core PMD",
                load.active_cores,
                self.cores_per_pmd
            );
            if load.is_idle() {
                continue; // clock-gated: only leakage, counted chip-wide
            }
            let f_ghz = load.freq_mhz as f64 / 1_000.0;
            let act = load.activity.clamp(0.0, 1.0);
            let idle_cores = (self.cores_per_pmd - load.active_cores) as f64;
            dyn_w += load.active_cores as f64 * self.k_dyn_core_w_per_ghz * act * f_ghz;
            dyn_w += self.k_pmd_w_per_ghz * f_ghz;
            dyn_w += idle_cores * self.k_idle_core_w_per_ghz * f_ghz;
        }

        let uncore_w =
            self.uncore_static_w + self.uncore_dyn_w * inputs.mem_traffic.clamp(0.0, 1.0);

        dyn_w * vr2 + uncore_w * vr2 + self.leak_w * vr3
    }

    /// Power of the fully idle chip at `voltage` (all PMDs gated).
    pub fn idle_power_w(&self, voltage: Millivolts, pmds: usize) -> f64 {
        self.power_w(&PowerInputs {
            voltage,
            pmd_loads: vec![PmdLoad::IDLE; pmds],
            mem_traffic: 0.0,
        })
    }

    /// Builds the lookup table that evaluates this model without
    /// re-deriving per-operating-point constants. See [`PowerLut`].
    pub fn build_lut(
        &self,
        freqs_mhz: impl IntoIterator<Item = u32>,
        floor_mv: u32,
        nominal_mv: u32,
    ) -> PowerLut {
        PowerLut::new(self.clone(), freqs_mhz, floor_mv, nominal_mv)
    }

    /// Power at full load: every core active at `freq_mhz` with the given
    /// activity.
    pub fn full_load_power_w(
        &self,
        voltage: Millivolts,
        pmds: usize,
        freq_mhz: u32,
        activity: f64,
        mem_traffic: f64,
    ) -> f64 {
        self.power_w(&PowerInputs {
            voltage,
            pmd_loads: vec![
                PmdLoad {
                    freq_mhz,
                    active_cores: self.cores_per_pmd,
                    activity,
                };
                pmds
            ],
            mem_traffic,
        })
    }
}

/// Precomputed per-PMD dynamic-power terms for one (frequency,
/// active-core-count) operating point. Each field is one factor or term
/// of [`PowerModel::power_w`]'s inner loop, produced by *the same
/// floating-point operations in the same order*, so substituting them is
/// bit-exact.
#[derive(Debug, Clone, Copy)]
struct PmdTerm {
    /// `active_cores · k_dyn` — the left-to-right prefix of the dynamic
    /// term; the runtime factors (`· activity · f_ghz`) are applied in
    /// the original order on top.
    c_dyn: f64,
    /// `k_pmd · f_ghz`, the whole clock-tree term.
    t_pmd: f64,
    /// `(idle_cores · k_idle) · f_ghz`, the whole idle-core term.
    t_idle: f64,
    /// `freq_mhz / 1000.0`.
    f_ghz: f64,
}

/// A power lookup table: [`PowerModel::power_w`] with every quantity
/// that depends only on (frequency step, voltage step, active-core
/// count) precomputed at construction, following the analytic-model
/// tabulation approach (Hofmann et al.). Activity and memory traffic
/// stay runtime inputs — they are continuous.
///
/// Evaluation is **bit-identical** to the model it was built from: each
/// precomputed value is produced by the exact operation sequence the
/// live path would execute. Inputs outside the tabulated domain (an
/// off-table frequency, a voltage outside `[floor, nominal]`) fall back
/// to the live model.
#[derive(Debug, Clone)]
pub struct PowerLut {
    model: PowerModel,
    floor_mv: u32,
    /// `(vr², vr³)` per millivolt in `floor_mv..=nominal_mv`.
    vr: Vec<(f64, f64)>,
    /// Tabulated frequencies, MHz (tiny: one per [`crate::freq::FreqStep`]).
    freqs_mhz: Vec<u32>,
    /// `terms[freq_idx · (cores_per_pmd + 1) + active_cores]`.
    terms: Vec<PmdTerm>,
}

impl PowerLut {
    /// Tabulates `model` over the given frequencies and the voltage
    /// window `floor_mv..=nominal_mv`.
    fn new(
        model: PowerModel,
        freqs_mhz: impl IntoIterator<Item = u32>,
        floor_mv: u32,
        nominal_mv: u32,
    ) -> Self {
        let vr = (floor_mv..=nominal_mv)
            .map(|mv| {
                let vr = mv as f64 / model.nominal_mv as f64;
                let vr2 = vr * vr;
                (vr2, vr2 * vr)
            })
            .collect();
        let mut freqs: Vec<u32> = freqs_mhz.into_iter().collect();
        freqs.sort_unstable();
        freqs.dedup();
        let stride = model.cores_per_pmd as usize + 1;
        let mut terms = Vec::with_capacity(freqs.len() * stride);
        for &mhz in &freqs {
            let f_ghz = mhz as f64 / 1_000.0;
            for n in 0..stride {
                let idle_cores = (model.cores_per_pmd - n as u8) as f64;
                terms.push(PmdTerm {
                    c_dyn: n as f64 * model.k_dyn_core_w_per_ghz,
                    t_pmd: model.k_pmd_w_per_ghz * f_ghz,
                    t_idle: idle_cores * model.k_idle_core_w_per_ghz * f_ghz,
                    f_ghz,
                });
            }
        }
        PowerLut {
            model,
            floor_mv,
            vr,
            freqs_mhz: freqs,
            terms,
        }
    }

    /// The model this table was built from.
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// Instantaneous PCP power in watts — bit-identical to
    /// [`PowerModel::power_w`] on the same inputs.
    ///
    /// # Panics
    ///
    /// Panics if an active-core count exceeds `cores_per_pmd` (same
    /// contract as the live model).
    pub fn power_w(&self, inputs: &PowerInputs) -> f64 {
        let mv = inputs.voltage.as_mv();
        let Some(&(vr2, vr3)) = mv
            .checked_sub(self.floor_mv)
            .and_then(|i| self.vr.get(i as usize))
        else {
            return self.model.power_w(inputs);
        };

        let stride = self.model.cores_per_pmd as usize + 1;
        let mut dyn_w = 0.0;
        for load in &inputs.pmd_loads {
            assert!(
                load.active_cores <= self.model.cores_per_pmd,
                "{} active cores in a {}-core PMD",
                load.active_cores,
                self.model.cores_per_pmd
            );
            if load.is_idle() {
                continue; // clock-gated: only leakage, counted chip-wide
            }
            let Some(fi) = self.freqs_mhz.iter().position(|&f| f == load.freq_mhz) else {
                return self.model.power_w(inputs);
            };
            let term = &self.terms[fi * stride + load.active_cores as usize];
            let act = load.activity.clamp(0.0, 1.0);
            dyn_w += term.c_dyn * act * term.f_ghz;
            dyn_w += term.t_pmd;
            dyn_w += term.t_idle;
        }

        let uncore_w = self.model.uncore_static_w
            + self.model.uncore_dyn_w * inputs.mem_traffic.clamp(0.0, 1.0);

        dyn_w * vr2 + uncore_w * vr2 + self.model.leak_w * vr3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        // X-Gene 2-like constants.
        PowerModel {
            nominal_mv: 980,
            k_dyn_core_w_per_ghz: 1.1,
            k_pmd_w_per_ghz: 0.3,
            k_idle_core_w_per_ghz: 0.08,
            leak_w: 2.0,
            uncore_static_w: 1.2,
            uncore_dyn_w: 1.5,
            cores_per_pmd: 2,
        }
    }

    fn full(m: &PowerModel, v: u32) -> f64 {
        m.full_load_power_w(Millivolts::new(v), 4, 2400, 1.0, 0.5)
    }

    #[test]
    fn full_load_is_tdp_scale() {
        let m = model();
        let p = full(&m, 980);
        assert!(p > 20.0 && p < 35.0, "full-load power {p}W");
    }

    #[test]
    fn idle_is_small_but_nonzero() {
        let m = model();
        let p = m.idle_power_w(Millivolts::new(980), 4);
        assert!(p > 1.0 && p < 6.0, "idle power {p}W");
    }

    #[test]
    fn undervolting_saves_quadratically_plus() {
        let m = model();
        let p_nom = full(&m, 980);
        let p_uv = full(&m, 900);
        let vr2 = (900.0f64 / 980.0).powi(2);
        // Savings at least the quadratic factor (leakage is cubic).
        assert!(p_uv < p_nom * vr2 * 1.001, "p_uv {p_uv} vs bound");
        assert!(p_uv > p_nom * vr2 * vr2.sqrt() * 0.9);
    }

    #[test]
    fn frequency_scales_dynamic_only() {
        let m = model();
        let v = Millivolts::new(980);
        let p_full = m.full_load_power_w(v, 4, 2400, 1.0, 0.0);
        let p_half = m.full_load_power_w(v, 4, 1200, 1.0, 0.0);
        let static_w = m.idle_power_w(v, 4);
        let dyn_full = p_full - static_w;
        let dyn_half = p_half - static_w;
        assert!((dyn_half - dyn_full / 2.0).abs() < 1e-9);
    }

    #[test]
    fn clustering_uses_less_power_than_spreading() {
        // 4 active cores with the same total work: 2 PMDs (clustered) vs
        // 4 PMDs with one core each (spreaded). Spreading pays two extra
        // PMD clock trees — the Figure 7 effect for CPU-bound programs.
        let m = model();
        let v = Millivolts::new(980);
        let clustered = PowerInputs {
            voltage: v,
            pmd_loads: vec![
                PmdLoad {
                    freq_mhz: 2400,
                    active_cores: 2,
                    activity: 1.0,
                },
                PmdLoad {
                    freq_mhz: 2400,
                    active_cores: 2,
                    activity: 1.0,
                },
                PmdLoad::IDLE,
                PmdLoad::IDLE,
            ],
            mem_traffic: 0.1,
        };
        let spreaded = PowerInputs {
            voltage: v,
            pmd_loads: vec![
                PmdLoad {
                    freq_mhz: 2400,
                    active_cores: 1,
                    activity: 1.0,
                };
                4
            ],
            mem_traffic: 0.1,
        };
        let pc = m.power_w(&clustered);
        let ps = m.power_w(&spreaded);
        assert!(ps > pc, "spreaded {ps}W should exceed clustered {pc}W");
        // The gap should be noticeable (several percent) but not huge.
        let gap = (ps - pc) / pc;
        assert!(gap > 0.02 && gap < 0.25, "gap {gap}");
    }

    #[test]
    fn memory_traffic_adds_uncore_power() {
        let m = model();
        let v = Millivolts::new(980);
        let lo = m.full_load_power_w(v, 4, 2400, 0.8, 0.0);
        let hi = m.full_load_power_w(v, 4, 2400, 0.8, 1.0);
        assert!((hi - lo - 1.5).abs() < 1e-9);
    }

    #[test]
    fn activity_reduces_core_power() {
        // A memory-stalled core (low activity) burns less than a busy one.
        let m = model();
        let v = Millivolts::new(980);
        let busy = m.full_load_power_w(v, 4, 2400, 1.0, 0.5);
        let stalled = m.full_load_power_w(v, 4, 2400, 0.4, 0.5);
        assert!(stalled < busy);
    }

    #[test]
    #[should_panic(expected = "active cores")]
    fn rejects_overfull_pmd() {
        let m = model();
        let _ = m.power_w(&PowerInputs {
            voltage: Millivolts::new(980),
            pmd_loads: vec![PmdLoad {
                freq_mhz: 2400,
                active_cores: 3,
                activity: 1.0,
            }],
            mem_traffic: 0.0,
        });
    }

    #[test]
    fn lut_matches_model_over_full_domain_on_both_presets() {
        // Every operating point the simulator can reach: each preset's 8
        // frequency steps × every legal rail millivolt × every
        // active-core count, at several activity and traffic levels.
        // Bit-equality, not tolerance — the LUT substitutes for the
        // model inside digest-checked runs.
        use crate::freq::FreqStep;
        use crate::presets;
        for builder in [presets::xgene2(), presets::xgene3()] {
            let chip = builder.build();
            let spec = chip.spec();
            let model = chip.power_model();
            let lut = chip.power_lut();
            let fmax = crate::freq::FrequencyMhz::new(spec.fmax_mhz);
            for step in FreqStep::all() {
                let mhz = step.frequency(fmax).as_mhz();
                for mv in (spec.vreg_floor_mv..=spec.nominal_mv).step_by(7) {
                    for n in 0..=model.cores_per_pmd {
                        for act in [0.0, 0.37, 1.0] {
                            for traffic in [0.0, 0.61, 1.0] {
                                let inputs = PowerInputs {
                                    voltage: Millivolts::new(mv),
                                    pmd_loads: vec![
                                        PmdLoad {
                                            freq_mhz: mhz,
                                            active_cores: n,
                                            activity: act,
                                        },
                                        PmdLoad::IDLE,
                                    ],
                                    mem_traffic: traffic,
                                };
                                assert_eq!(
                                    model.power_w(&inputs).to_bits(),
                                    lut.power_w(&inputs).to_bits(),
                                    "{mhz} MHz, {mv} mV, {n} cores, act {act}, traffic {traffic}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn lut_falls_back_to_model_off_table() {
        let m = model();
        let lut = m.build_lut([2400, 1200], 600, 980);
        // Off-table frequency and out-of-window voltages still answer,
        // bit-identically to the live model.
        for (mhz, mv) in [(1337, 900), (2400, 599), (2400, 981), (2400, 1200)] {
            let inputs = PowerInputs {
                voltage: Millivolts::new(mv),
                pmd_loads: vec![PmdLoad {
                    freq_mhz: mhz,
                    active_cores: 2,
                    activity: 0.8,
                }],
                mem_traffic: 0.4,
            };
            assert_eq!(
                m.power_w(&inputs).to_bits(),
                lut.power_w(&inputs).to_bits(),
                "{mhz} MHz at {mv} mV"
            );
        }
    }

    #[test]
    #[should_panic(expected = "active cores")]
    fn lut_rejects_overfull_pmd() {
        let m = model();
        let lut = m.build_lut([2400], 600, 980);
        let _ = lut.power_w(&PowerInputs {
            voltage: Millivolts::new(980),
            pmd_loads: vec![PmdLoad {
                freq_mhz: 2400,
                active_cores: 3,
                activity: 1.0,
            }],
            mem_traffic: 0.0,
        });
    }

    #[test]
    fn idle_pmd_constant_is_idle() {
        assert!(PmdLoad::IDLE.is_idle());
        assert!(!PmdLoad {
            freq_mhz: 300,
            active_cores: 1,
            activity: 0.1
        }
        .is_idle());
    }
}
