//! Voltage newtype and the regulated PCP rail.

use crate::error::ChipError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A supply voltage in millivolts.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Millivolts(u32);

impl Millivolts {
    /// Creates a voltage from raw millivolts.
    pub const fn new(mv: u32) -> Self {
        Millivolts(mv)
    }

    /// Raw millivolts.
    pub const fn as_mv(self) -> u32 {
        self.0
    }

    /// Volts, as a float.
    pub fn as_volts(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This voltage as a fraction of `reference` (e.g. V/Vnominal).
    ///
    /// # Panics
    ///
    /// Panics if `reference` is zero.
    pub fn ratio_to(self, reference: Millivolts) -> f64 {
        assert!(reference.0 > 0, "reference voltage must be nonzero");
        self.0 as f64 / reference.0 as f64
    }

    /// Subtracts, saturating at zero.
    pub fn saturating_sub(self, mv: Millivolts) -> Millivolts {
        Millivolts(self.0.saturating_sub(mv.0))
    }

    /// Adds an offset that may be negative, saturating at zero.
    pub fn offset(self, delta_mv: i32) -> Millivolts {
        Millivolts(self.0.saturating_add_signed(delta_mv))
    }

    /// The larger of two voltages.
    pub fn max(self, other: Millivolts) -> Millivolts {
        Millivolts(self.0.max(other.0))
    }

    /// The smaller of two voltages.
    pub fn min(self, other: Millivolts) -> Millivolts {
        Millivolts(self.0.min(other.0))
    }
}

impl Add<u32> for Millivolts {
    type Output = Millivolts;
    fn add(self, rhs: u32) -> Millivolts {
        Millivolts(self.0 + rhs)
    }
}

impl Sub for Millivolts {
    type Output = i64;
    /// Signed difference in millivolts.
    fn sub(self, rhs: Millivolts) -> i64 {
        self.0 as i64 - rhs.0 as i64
    }
}

impl fmt::Display for Millivolts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}mV", self.0)
    }
}

impl From<u32> for Millivolts {
    fn from(mv: u32) -> Self {
        Millivolts(mv)
    }
}

/// The PCP-domain voltage rail: one regulated supply shared by all cores,
/// caches, and memory controllers (the paper's key constraint — voltage is
/// chip-wide while frequency is per-PMD).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VoltageRail {
    nominal: Millivolts,
    floor: Millivolts,
    current: Millivolts,
}

impl VoltageRail {
    /// Creates a rail regulated between `floor` and `nominal`, initially at
    /// nominal.
    ///
    /// # Panics
    ///
    /// Panics if `floor > nominal`.
    pub fn new(nominal: Millivolts, floor: Millivolts) -> Self {
        assert!(
            floor <= nominal,
            "rail floor {floor} above nominal {nominal}"
        );
        VoltageRail {
            nominal,
            floor,
            current: nominal,
        }
    }

    /// The nominal (maximum) voltage.
    pub fn nominal(&self) -> Millivolts {
        self.nominal
    }

    /// The regulator's lower limit.
    pub fn floor(&self) -> Millivolts {
        self.floor
    }

    /// The currently regulated voltage.
    pub fn current(&self) -> Millivolts {
        self.current
    }

    /// Requests a new voltage.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::VoltageOutOfWindow`] (carrying the allowed
    /// window) if `mv` is outside `[floor, nominal]`. Like the real
    /// SLIMpro, the rail refuses to go *above* nominal.
    pub fn set(&mut self, mv: Millivolts) -> Result<(), ChipError> {
        if mv < self.floor || mv > self.nominal {
            return Err(ChipError::VoltageOutOfWindow {
                requested: mv,
                floor: self.floor,
                nominal: self.nominal,
            });
        }
        self.current = mv;
        debug_assert!(
            self.current >= self.floor && self.current <= self.nominal,
            "rail left its regulated window: {} outside [{}, {}]",
            self.current,
            self.floor,
            self.nominal
        );
        Ok(())
    }

    /// Restores the nominal voltage.
    pub fn reset_to_nominal(&mut self) {
        self.current = self.nominal;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn millivolt_conversions() {
        let v = Millivolts::new(980);
        assert_eq!(v.as_mv(), 980);
        assert!((v.as_volts() - 0.98).abs() < 1e-12);
        assert!((v.ratio_to(Millivolts::new(490)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn offset_and_saturation() {
        let v = Millivolts::new(800);
        assert_eq!(v.offset(-50).as_mv(), 750);
        assert_eq!(v.offset(20).as_mv(), 820);
        assert_eq!(
            Millivolts::new(10)
                .saturating_sub(Millivolts::new(20))
                .as_mv(),
            0
        );
    }

    #[test]
    fn signed_difference() {
        assert_eq!(Millivolts::new(900) - Millivolts::new(950), -50);
        assert_eq!(Millivolts::new(950) - Millivolts::new(900), 50);
    }

    #[test]
    fn rail_accepts_in_range_rejects_outside() {
        let mut rail = VoltageRail::new(Millivolts::new(980), Millivolts::new(600));
        assert_eq!(rail.current().as_mv(), 980);
        assert!(rail.set(Millivolts::new(850)).is_ok());
        assert_eq!(rail.current().as_mv(), 850);
        // Above nominal is refused.
        assert!(rail.set(Millivolts::new(990)).is_err());
        // Below the floor is refused.
        assert!(rail.set(Millivolts::new(500)).is_err());
        // Current unchanged by failed requests.
        assert_eq!(rail.current().as_mv(), 850);
        rail.reset_to_nominal();
        assert_eq!(rail.current().as_mv(), 980);
    }

    #[test]
    #[should_panic(expected = "above nominal")]
    fn rail_rejects_inverted_range() {
        let _ = VoltageRail::new(Millivolts::new(600), Millivolts::new(980));
    }

    #[test]
    fn min_max_helpers() {
        let a = Millivolts::new(800);
        let b = Millivolts::new(820);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
