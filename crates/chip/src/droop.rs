//! Stochastic voltage-droop event generation (Figure 6).
//!
//! The X-Gene 3 exposes an embedded "oscilloscope": PMU counters that
//! record the number and magnitude of voltage-droop events. §IV-A of the
//! paper uses it to show that the *maximum droop magnitude* is set by the
//! number of utilized PMDs (Table II), not by the workload: a 16-PMD
//! allocation at 3 GHz produces droops in [55, 65) mV for every program,
//! while an 8-PMD allocation produces (almost) none in that band.
//!
//! [`DroopModel`] generates per-interval droop events with exactly that
//! structure: each utilized-PMD class emits events in its own band and in
//! all lower bands (smaller droops are more frequent), with a rate
//! proportional to switching activity, and essentially zero events in any
//! band *above* its class.

use crate::vmin::DroopClass;
use avfs_sim::RngStream;
use serde::{Deserialize, Serialize};

/// Summary of droop events observed over an interval, bucketed by the
/// Table II magnitude bands.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DroopCounts {
    /// Events per band, indexed like [`DroopClass::index`]:
    /// `[25,35) / [35,45) / [45,55) / [55,65)` mV.
    pub per_band: [u64; 4],
}

impl DroopCounts {
    /// Total events across all bands.
    pub fn total(&self) -> u64 {
        self.per_band.iter().sum()
    }

    /// Events in the band of `class`.
    pub fn in_band(&self, class: DroopClass) -> u64 {
        self.per_band[class.index()]
    }

    /// Accumulates another count set.
    pub fn add(&mut self, other: &DroopCounts) {
        for (a, b) in self.per_band.iter_mut().zip(other.per_band.iter()) {
            *a += b;
        }
    }

    /// The highest band with at least one event, if any.
    pub fn max_band(&self) -> Option<DroopClass> {
        DroopClass::ALL
            .iter()
            .rev()
            .find(|c| self.per_band[c.index()] > 0)
            .copied()
    }
}

/// Droop-event generator parameters for one chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DroopModel {
    /// Expected events per 1 M cycles in the class's own (top) band at
    /// full switching activity.
    top_band_rate_per_mcycle: f64,
    /// Rate multiplier per band *below* the top band (smaller droops are
    /// more frequent): band k below top gets `rate * lower_band_gain^k`.
    lower_band_gain: f64,
    /// Residual leakage rate into the band *above* the class (nearly zero;
    /// the paper reports "almost zero droops" there).
    above_band_rate_per_mcycle: f64,
}

impl Default for DroopModel {
    fn default() -> Self {
        DroopModel {
            top_band_rate_per_mcycle: 220.0,
            lower_band_gain: 2.2,
            above_band_rate_per_mcycle: 0.02,
        }
    }
}

impl DroopModel {
    /// Creates a model with explicit rates.
    ///
    /// # Panics
    ///
    /// Panics if any rate is negative or `lower_band_gain < 1`.
    pub fn new(
        top_band_rate_per_mcycle: f64,
        lower_band_gain: f64,
        above_band_rate_per_mcycle: f64,
    ) -> Self {
        assert!(top_band_rate_per_mcycle >= 0.0, "negative droop rate");
        assert!(lower_band_gain >= 1.0, "lower bands cannot be rarer");
        assert!(above_band_rate_per_mcycle >= 0.0, "negative leak rate");
        DroopModel {
            top_band_rate_per_mcycle,
            lower_band_gain,
            above_band_rate_per_mcycle,
        }
    }

    /// Expected events per 1 M cycles in each band for a configuration in
    /// droop class `class` with switching `activity` in `[0, 1]`.
    pub fn expected_rates(&self, class: DroopClass, activity: f64) -> [f64; 4] {
        let activity = activity.clamp(0.0, 1.0);
        let top = class.index();
        let mut rates = [0.0; 4];
        for (band, rate) in rates.iter_mut().enumerate() {
            *rate = if band == top {
                self.top_band_rate_per_mcycle * activity
            } else if band < top {
                // Lower bands: geometrically more frequent.
                self.top_band_rate_per_mcycle
                    * activity
                    * self.lower_band_gain.powi((top - band) as i32)
            } else {
                // Above the class's band: near zero, independent of
                // workload — this is the Figure 6 signature. Bands further
                // above the class are steeply rarer still.
                let dist = (band - top) as i32;
                self.above_band_rate_per_mcycle * activity * 1e-3f64.powi(dist - 1)
            };
        }
        rates
    }

    /// Samples the droop events over `cycles` cycles.
    pub fn sample(
        &self,
        class: DroopClass,
        activity: f64,
        cycles: u64,
        rng: &mut RngStream,
    ) -> DroopCounts {
        let mcycles = cycles as f64 / 1e6;
        let rates = self.expected_rates(class, activity);
        let mut counts = DroopCounts::default();
        for (band, rate) in rates.iter().enumerate() {
            counts.per_band[band] = rng.poisson(rate * mcycles);
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_band_signature_matches_figure6() {
        // Figure 6 left: 32T and 16T-spreaded (class D55) produce droops in
        // [55,65); 16T-clustered (class D45) has almost zero there.
        let m = DroopModel::default();
        let mut rng = RngStream::from_root(1, "droop");
        let d55 = m.sample(DroopClass::D55, 0.9, 100_000_000, &mut rng);
        let d45 = m.sample(DroopClass::D45, 0.9, 100_000_000, &mut rng);
        assert!(d55.in_band(DroopClass::D55) > 1_000);
        assert!(d45.in_band(DroopClass::D55) < d55.in_band(DroopClass::D55) / 100);
        // Figure 6 right: D45 produces [45,55) droops; D35 almost none.
        let d35 = m.sample(DroopClass::D35, 0.9, 100_000_000, &mut rng);
        assert!(d45.in_band(DroopClass::D45) > 1_000);
        assert!(d35.in_band(DroopClass::D45) < d45.in_band(DroopClass::D45) / 100);
    }

    #[test]
    fn smaller_droops_are_more_frequent() {
        let m = DroopModel::default();
        let rates = m.expected_rates(DroopClass::D55, 1.0);
        assert!(rates[0] > rates[1]);
        assert!(rates[1] > rates[2]);
        assert!(rates[2] > rates[3]);
        assert!(rates[3] > 0.0);
    }

    #[test]
    fn activity_scales_rates() {
        let m = DroopModel::default();
        let full = m.expected_rates(DroopClass::D45, 1.0);
        let half = m.expected_rates(DroopClass::D45, 0.5);
        for (f, h) in full.iter().zip(half.iter()) {
            assert!((h - f / 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_activity_zero_droops() {
        let m = DroopModel::default();
        let mut rng = RngStream::from_root(2, "quiet");
        let c = m.sample(DroopClass::D55, 0.0, 10_000_000, &mut rng);
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn counts_accumulate() {
        let mut a = DroopCounts {
            per_band: [1, 2, 3, 4],
        };
        let b = DroopCounts {
            per_band: [10, 20, 30, 40],
        };
        a.add(&b);
        assert_eq!(a.per_band, [11, 22, 33, 44]);
        assert_eq!(a.total(), 110);
        assert_eq!(a.max_band(), Some(DroopClass::D55));
    }

    #[test]
    fn max_band_of_empty_counts() {
        assert_eq!(DroopCounts::default().max_band(), None);
    }

    #[test]
    fn max_band_tracks_droop_class() {
        // In a long-enough run the maximum observed band equals the
        // configuration's droop class — the paper's key Table II claim.
        let m = DroopModel::default();
        let mut rng = RngStream::from_root(3, "band");
        for class in DroopClass::ALL {
            let c = m.sample(class, 0.9, 1_000_000_000, &mut rng);
            // The near-zero leak above the class band makes strictly
            // higher bands possible but vanishingly rare; accept class or
            // one above.
            let max = c.max_band().expect("events expected");
            assert!(
                max == class || max == class.next_up(),
                "class {class} produced max band {max}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "rarer")]
    fn rejects_inverted_gain() {
        let _ = DroopModel::new(100.0, 0.5, 0.0);
    }
}
