//! The safe-Vmin surface: the paper's central empirical finding.
//!
//! §III–IV of the paper establish that in multicore executions the safe
//! minimum voltage is determined almost entirely by two factors:
//!
//! 1. the **frequency class** (clock skipping vs. division, [`crate::freq`]);
//! 2. the **voltage-droop class**, i.e. how many PMDs are utilized
//!    (Table II: 1–2, ≤4, ≤8, ≤16 PMDs on X-Gene 3).
//!
//! The *workload* contributes ≤1 % in multicore runs (Figure 3) and up to
//! ≈4 % in single/two-core runs (Figure 4), and individual PMDs carry a
//! static-variation offset (≤30 mV on 28 nm X-Gene 2, ≤20 mV on 16 nm
//! X-Gene 3). [`VminModel`] reproduces exactly that surface; Figure 10's
//! decomposition (division 12 %, skipping 3 %, allocation 4 %, workload
//! 1 %) falls out of the calibrated tables.

use crate::freq::FreqVminClass;
use crate::topology::{ChipSpec, PmdId};
use crate::voltage::Millivolts;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Voltage-droop magnitude class, Table II of the paper.
///
/// The class is determined by the fraction of the chip's PMDs that are
/// utilized; each class corresponds to a droop-magnitude band and a safe
/// Vmin per frequency class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DroopClass {
    /// [25 mV, 35 mV): up to 1/8 of the PMDs utilized (1–2 PMDs on
    /// X-Gene 3; 1T/2T/4T-clustered in Table II).
    D25,
    /// [35 mV, 45 mV): up to 1/4 of the PMDs (4 PMDs on X-Gene 3;
    /// 8T-clustered / 4T-spreaded).
    D35,
    /// [45 mV, 55 mV): up to 1/2 of the PMDs (8 PMDs on X-Gene 3;
    /// 16T-clustered / 8T-spreaded).
    D45,
    /// [55 mV, 65 mV): more than half of the PMDs (16 PMDs on X-Gene 3;
    /// 32T / 16T-spreaded).
    D55,
}

impl DroopClass {
    /// All classes in ascending droop-magnitude order.
    pub const ALL: [DroopClass; 4] = [
        DroopClass::D25,
        DroopClass::D35,
        DroopClass::D45,
        DroopClass::D55,
    ];

    /// The droop-magnitude band `[lo, hi)` of this class, in millivolts.
    pub fn magnitude_band_mv(self) -> (u32, u32) {
        match self {
            DroopClass::D25 => (25, 35),
            DroopClass::D35 => (35, 45),
            DroopClass::D45 => (45, 55),
            DroopClass::D55 => (55, 65),
        }
    }

    /// Classifies an allocation by the fraction of PMDs it utilizes.
    ///
    /// Thresholds are fractions of the chip (1/8, 1/4, 1/2, 1) so the same
    /// rule covers the 4-PMD X-Gene 2 and the 16-PMD X-Gene 3; on X-Gene 3
    /// this reproduces Table II exactly (1–2 / 4 / 8 / 16 PMDs).
    ///
    /// Zero utilized PMDs (idle chip) classify as the lowest class.
    ///
    /// # Panics
    ///
    /// Panics if `utilized` exceeds the chip's PMD count.
    pub fn from_utilized_pmds(spec: &ChipSpec, utilized: usize) -> DroopClass {
        let total = spec.pmds() as usize;
        assert!(
            utilized <= total,
            "{utilized} utilized PMDs on a {total}-PMD chip"
        );
        // Compare as utilized*8 <=> total to avoid floating point.
        let x8 = utilized * 8;
        if x8 <= total {
            DroopClass::D25
        } else if x8 <= 2 * total {
            DroopClass::D35
        } else if x8 <= 4 * total {
            DroopClass::D45
        } else {
            DroopClass::D55
        }
    }

    /// Index of the class (0..4), for table lookups.
    pub fn index(self) -> usize {
        match self {
            DroopClass::D25 => 0,
            DroopClass::D35 => 1,
            DroopClass::D45 => 2,
            DroopClass::D55 => 3,
        }
    }

    /// The next-higher class, saturating at [`DroopClass::D55`].
    pub fn next_up(self) -> DroopClass {
        match self {
            DroopClass::D25 => DroopClass::D35,
            DroopClass::D35 => DroopClass::D45,
            DroopClass::D45 => DroopClass::D55,
            DroopClass::D55 => DroopClass::D55,
        }
    }
}

impl fmt::Display for DroopClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (lo, hi) = self.magnitude_band_mv();
        write!(f, "[{lo}mV,{hi}mV)")
    }
}

/// Calibrated safe-Vmin tables and variation magnitudes for one chip.
///
/// `base_mv[freq_class][droop_class]` is the chip-level safe Vmin before
/// static-variation and workload corrections; rows are indexed by
/// [`FreqVminClass`] (`Divided`, `Reduced`, `Max`), columns by
/// [`DroopClass`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VminTables {
    /// Base safe Vmin per `[freq class][droop class]`, millivolts.
    pub base_mv: [[u32; 4]; 3],
    /// Per-PMD static-variation offsets, millivolts (positive = weaker
    /// PMD, needs more voltage). Indexed by PMD; chips with more PMDs than
    /// entries repeat the pattern.
    pub pmd_offset_mv: Vec<i32>,
    /// Largest workload-induced Vmin delta at single-thread, millivolts.
    /// The delta decays with thread count (Figure 3 vs. Figure 4).
    pub workload_span_mv: u32,
    /// Voltage span below safe Vmin over which failure probability ramps
    /// from 0 to ~1 (the "unsafe region" width of Figures 4/5).
    pub unsafe_span_mv: u32,
}

fn freq_row(class: FreqVminClass) -> usize {
    match class {
        FreqVminClass::Divided => 0,
        FreqVminClass::Reduced => 1,
        FreqVminClass::Max => 2,
    }
}

/// A fully specified operating configuration whose safe Vmin is wanted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VminQuery {
    /// The frequency class of the most demanding active PMD.
    pub freq_class: FreqVminClass,
    /// Number of utilized PMDs.
    pub utilized_pmds: usize,
    /// Number of active threads (drives workload-delta decay).
    pub active_threads: usize,
    /// Workload sensitivity in `[-1, +1]`: the benchmark's position within
    /// the workload-to-workload Vmin spread (0 for "typical").
    pub workload_sensitivity: f64,
}

/// A scripted aging/temperature drift event: a uniform shift of the true
/// safe-Vmin surface, as silicon wear-out and thermal stress raise (or a
/// cold spell lowers) every operating point together.
///
/// Uniform shifts preserve the monotonicity invariants of
/// [`VminModel::new`], so a drifted model is always constructible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VminDrift {
    /// Shift applied to every base-table entry, millivolts (positive =
    /// aging, the chip needs more voltage everywhere).
    pub base_shift_mv: i32,
    /// Shift applied to every per-PMD static-variation offset,
    /// millivolts (positive = all PMDs weaken together).
    pub pmd_offset_shift_mv: i32,
}

impl VminDrift {
    /// A pure aging event: every base cell up by `mv`, PMD offsets
    /// untouched.
    pub fn aging(mv: i32) -> Self {
        VminDrift {
            base_shift_mv: mv,
            pmd_offset_shift_mv: 0,
        }
    }
}

/// The safe-Vmin model for one chip instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VminModel {
    spec: ChipSpec,
    tables: VminTables,
}

impl VminModel {
    /// Builds the model from a spec and its calibrated tables.
    ///
    /// # Panics
    ///
    /// Panics if the tables are not monotone: Vmin must not decrease with
    /// droop class or frequency class.
    pub fn new(spec: ChipSpec, tables: VminTables) -> Self {
        for row in &tables.base_mv {
            for w in row.windows(2) {
                assert!(w[0] <= w[1], "Vmin must be monotone in droop class");
            }
        }
        for col in 0..4 {
            assert!(
                tables.base_mv[0][col] <= tables.base_mv[1][col]
                    && tables.base_mv[1][col] <= tables.base_mv[2][col],
                "Vmin must be monotone in frequency class"
            );
        }
        assert!(
            !tables.pmd_offset_mv.is_empty(),
            "need at least one PMD offset"
        );
        VminModel { spec, tables }
    }

    /// The chip spec this model was calibrated for.
    pub fn spec(&self) -> &ChipSpec {
        &self.spec
    }

    /// The calibrated tables.
    pub fn tables(&self) -> &VminTables {
        &self.tables
    }

    /// The static-variation offset of a PMD, in millivolts.
    pub fn pmd_offset_mv(&self, pmd: PmdId) -> i32 {
        let n = self.tables.pmd_offset_mv.len();
        self.tables.pmd_offset_mv[pmd.index() % n]
    }

    /// How much of the workload span applies at a given thread count.
    ///
    /// Mirrors the paper: full spread at 1–2 threads (Figure 4), ≈1 % of
    /// nominal at high thread counts (Figure 3).
    pub fn workload_decay(&self, active_threads: usize) -> f64 {
        match active_threads {
            0 | 1 => 1.0,
            2 => 0.75,
            3 | 4 => 0.35,
            _ => {
                // Fade towards the multicore floor of ~0.15 by half-chip
                // occupancy.
                let half = (self.spec.cores as f64 / 2.0).max(1.0);
                let t = (active_threads as f64 / half).min(1.0);
                (0.35 - 0.20 * t).max(0.15)
            }
        }
    }

    /// Chip-level safe Vmin for a configuration, *before* per-PMD static
    /// variation (i.e. the value Figure 3 reports per benchmark).
    pub fn safe_vmin(&self, q: &VminQuery) -> Millivolts {
        let droop = DroopClass::from_utilized_pmds(&self.spec, q.utilized_pmds);
        let base = self.tables.base_mv[freq_row(q.freq_class)][droop.index()];
        let decay = self.workload_decay(q.active_threads);
        let delta =
            q.workload_sensitivity.clamp(-1.0, 1.0) * self.tables.workload_span_mv as f64 * decay
                / 2.0;
        Millivolts::new(base).offset(delta.round() as i32)
    }

    /// Safe Vmin for a configuration pinned to specific PMDs, including
    /// their static-variation offsets (the per-core curves of Figure 4).
    ///
    /// The chip-wide rail must satisfy the weakest utilized PMD, so the
    /// maximum offset among `pmds` applies.
    pub fn safe_vmin_on(&self, q: &VminQuery, pmds: &[PmdId]) -> Millivolts {
        let base = self.safe_vmin(q);
        let worst = pmds
            .iter()
            .map(|&p| self.pmd_offset_mv(p))
            .max()
            .unwrap_or(0);
        // Static variation is most visible at low thread counts; in
        // many-PMD runs the droop noise dominates and the per-PMD spread
        // washes out (paper §III-A).
        let visibility = self.workload_decay(q.active_threads);
        base.offset((worst as f64 * visibility).round() as i32)
    }

    /// The voltage below which execution is certain to fail (the bottom of
    /// the unsafe region / "system crash point").
    pub fn crash_point(&self, safe: Millivolts) -> Millivolts {
        safe.saturating_sub(Millivolts::new(self.tables.unsafe_span_mv))
    }

    /// The droop class of an allocation utilizing `utilized_pmds` PMDs.
    pub fn droop_class(&self, utilized_pmds: usize) -> DroopClass {
        DroopClass::from_utilized_pmds(&self.spec, utilized_pmds)
    }

    /// The model after a scripted [`VminDrift`]: every base-table entry
    /// shifted by `base_shift_mv` and every PMD offset by
    /// `pmd_offset_shift_mv` (both saturating). Uniform shifts keep the
    /// monotonicity invariants, so this never panics.
    pub fn with_drift(&self, drift: VminDrift) -> VminModel {
        let mut tables = self.tables.clone();
        for row in &mut tables.base_mv {
            for cell in row.iter_mut() {
                *cell = cell.saturating_add_signed(drift.base_shift_mv);
            }
        }
        for off in &mut tables.pmd_offset_mv {
            *off = off.saturating_add(drift.pmd_offset_shift_mv);
        }
        VminModel::new(self.spec.clone(), tables)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Technology;

    fn xgene3_like() -> VminModel {
        let spec = ChipSpec {
            name: "xg3".into(),
            cores: 32,
            cores_per_pmd: 2,
            fmax_mhz: 3000,
            nominal_mv: 870,
            vreg_floor_mv: 600,
            l1i_kib: 32,
            l1d_kib: 32,
            l2_kib: 256,
            l3_kib: 32 * 1024,
            tdp_w: 125.0,
            technology: Technology::FinFet16nm,
        };
        let tables = VminTables {
            // rows: Divided, Reduced, Max — X-Gene 3 Table II values,
            // with Divided == Reduced (no benefit below half speed).
            base_mv: [
                [770, 780, 790, 820],
                [770, 780, 790, 820],
                [780, 800, 810, 830],
            ],
            pmd_offset_mv: vec![5, 0, -10, 3, 8, -5, 0, 2, -3, 6, 1, -8, 4, 0, -2, 7],
            workload_span_mv: 20,
            unsafe_span_mv: 50,
        };
        VminModel::new(spec, tables)
    }

    #[test]
    fn droop_class_matches_table2_on_xgene3() {
        let m = xgene3_like();
        let spec = m.spec();
        // Table II: 1–2 PMDs → [25,35); 4 → [35,45); 8 → [45,55); 16 → [55,65).
        assert_eq!(DroopClass::from_utilized_pmds(spec, 1), DroopClass::D25);
        assert_eq!(DroopClass::from_utilized_pmds(spec, 2), DroopClass::D25);
        assert_eq!(DroopClass::from_utilized_pmds(spec, 3), DroopClass::D35);
        assert_eq!(DroopClass::from_utilized_pmds(spec, 4), DroopClass::D35);
        assert_eq!(DroopClass::from_utilized_pmds(spec, 8), DroopClass::D45);
        assert_eq!(DroopClass::from_utilized_pmds(spec, 9), DroopClass::D55);
        assert_eq!(DroopClass::from_utilized_pmds(spec, 16), DroopClass::D55);
    }

    #[test]
    fn droop_class_scales_to_small_chips() {
        let mut m = xgene3_like();
        // Shrink to an X-Gene 2-like 4-PMD chip via a fresh spec.
        m.spec.cores = 8;
        let spec = &m.spec;
        assert_eq!(spec.pmds(), 4);
        assert_eq!(DroopClass::from_utilized_pmds(spec, 0), DroopClass::D25);
        assert_eq!(DroopClass::from_utilized_pmds(spec, 1), DroopClass::D35);
        assert_eq!(DroopClass::from_utilized_pmds(spec, 2), DroopClass::D45);
        assert_eq!(DroopClass::from_utilized_pmds(spec, 4), DroopClass::D55);
    }

    #[test]
    fn table2_vmin_values_reproduce() {
        let m = xgene3_like();
        // 32T @3GHz: 16 PMDs, max class → 830 mV.
        let q = VminQuery {
            freq_class: FreqVminClass::Max,
            utilized_pmds: 16,
            active_threads: 32,
            workload_sensitivity: 0.0,
        };
        assert_eq!(m.safe_vmin(&q).as_mv(), 830);
        // 16T clustered @1.5GHz: 8 PMDs, reduced → 790 mV.
        let q2 = VminQuery {
            freq_class: FreqVminClass::Reduced,
            utilized_pmds: 8,
            active_threads: 16,
            workload_sensitivity: 0.0,
        };
        assert_eq!(m.safe_vmin(&q2).as_mv(), 790);
    }

    #[test]
    fn workload_delta_fades_with_threads() {
        let m = xgene3_like();
        let mk = |threads, sens: f64| VminQuery {
            freq_class: FreqVminClass::Max,
            utilized_pmds: 16,
            active_threads: threads,
            workload_sensitivity: sens,
        };
        let spread_1t = m.safe_vmin(&mk(1, 1.0)) - m.safe_vmin(&mk(1, -1.0));
        let spread_32t = m.safe_vmin(&mk(32, 1.0)) - m.safe_vmin(&mk(32, -1.0));
        assert!(spread_1t > spread_32t);
        // Multicore spread stays within ~1 % of nominal (Figure 3).
        assert!(spread_32t as f64 <= 0.012 * 870.0, "spread {spread_32t}mV");
        // Single-thread spread reaches the calibrated span.
        assert_eq!(spread_1t, 20);
    }

    #[test]
    fn pmd_static_variation_applies_at_low_thread_count() {
        let m = xgene3_like();
        let q = VminQuery {
            freq_class: FreqVminClass::Max,
            utilized_pmds: 1,
            active_threads: 1,
            workload_sensitivity: 0.0,
        };
        let weak = m.safe_vmin_on(&q, &[PmdId::new(4)]); // +8 mV
        let strong = m.safe_vmin_on(&q, &[PmdId::new(2)]); // -10 mV
        assert!(weak > strong);
        assert_eq!(weak - strong, 18);
    }

    #[test]
    fn rail_must_satisfy_weakest_pmd() {
        let m = xgene3_like();
        let q = VminQuery {
            freq_class: FreqVminClass::Max,
            utilized_pmds: 2,
            active_threads: 2,
            workload_sensitivity: 0.0,
        };
        let both = m.safe_vmin_on(&q, &[PmdId::new(2), PmdId::new(4)]);
        let weak_only = m.safe_vmin_on(&q, &[PmdId::new(4)]);
        assert_eq!(both, weak_only);
    }

    #[test]
    fn crash_point_below_safe() {
        let m = xgene3_like();
        let safe = Millivolts::new(800);
        assert_eq!(m.crash_point(safe).as_mv(), 750);
    }

    #[test]
    fn vmin_monotone_in_freq_class() {
        let m = xgene3_like();
        for pmds in [1usize, 4, 8, 16] {
            let mk = |fc| VminQuery {
                freq_class: fc,
                utilized_pmds: pmds,
                active_threads: pmds * 2,
                workload_sensitivity: 0.0,
            };
            let div = m.safe_vmin(&mk(FreqVminClass::Divided));
            let red = m.safe_vmin(&mk(FreqVminClass::Reduced));
            let max = m.safe_vmin(&mk(FreqVminClass::Max));
            assert!(div <= red && red <= max);
        }
    }

    #[test]
    #[should_panic(expected = "monotone in droop class")]
    fn rejects_non_monotone_tables() {
        let m = xgene3_like();
        let mut tables = m.tables().clone();
        tables.base_mv[2][0] = 900; // above column 1
        let _ = VminModel::new(m.spec().clone(), tables);
    }

    #[test]
    fn magnitude_bands_cover_25_to_65() {
        let mut lo_expected = 25;
        for c in DroopClass::ALL {
            let (lo, hi) = c.magnitude_band_mv();
            assert_eq!(lo, lo_expected);
            assert_eq!(hi, lo + 10);
            lo_expected = hi;
        }
    }

    #[test]
    fn drift_shifts_the_whole_surface_uniformly() {
        let m = xgene3_like();
        let drifted = m.with_drift(VminDrift {
            base_shift_mv: 15,
            pmd_offset_shift_mv: 3,
        });
        let q = VminQuery {
            freq_class: FreqVminClass::Max,
            utilized_pmds: 16,
            active_threads: 32,
            workload_sensitivity: 0.0,
        };
        assert_eq!(drifted.safe_vmin(&q) - m.safe_vmin(&q), 15);
        assert_eq!(
            drifted.pmd_offset_mv(PmdId::new(4)),
            m.pmd_offset_mv(PmdId::new(4)) + 3
        );
        // The zero drift is the identity.
        assert_eq!(m.with_drift(VminDrift::aging(0)), m);
    }

    #[test]
    fn next_up_saturates() {
        assert_eq!(DroopClass::D25.next_up(), DroopClass::D35);
        assert_eq!(DroopClass::D55.next_up(), DroopClass::D55);
    }
}
