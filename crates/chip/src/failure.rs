//! Failure behaviour below the safe Vmin (the "unsafe region").
//!
//! The paper characterizes the region between the safe Vmin and the crash
//! point by running each configuration 60 times per voltage step and
//! recording abnormal outcomes: silent data corruptions (SDCs), process
//! timeouts, system crashes, and thread hangs (§III-B, Figures 4 and 5).
//!
//! [`FailureModel`] gives the per-run failure probability as a smooth
//! function of undervolting depth, plus a deterministic outcome sampler.
//! The cumulative-pfail curves of Figure 5 are produced by sweeping this
//! model exactly the way the authors swept their hardware.

use crate::vmin::DroopClass;
use crate::voltage::Millivolts;
use avfs_sim::RngStream;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The outcome of one program execution at a given voltage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum RunOutcome {
    /// Completed with the correct output.
    Correct,
    /// Completed but produced a wrong output (silent data corruption).
    Sdc,
    /// Did not finish within the watchdog window.
    Timeout,
    /// The machine crashed / rebooted.
    SystemCrash,
    /// A thread hung and never completed.
    ThreadHang,
}

impl RunOutcome {
    /// True for any abnormal outcome.
    pub fn is_failure(self) -> bool {
        !matches!(self, RunOutcome::Correct)
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RunOutcome::Correct => "correct",
            RunOutcome::Sdc => "SDC",
            RunOutcome::Timeout => "timeout",
            RunOutcome::SystemCrash => "system crash",
            RunOutcome::ThreadHang => "thread hang",
        };
        f.write_str(s)
    }
}

/// Probabilistic failure model for sub-Vmin operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Width (mV) of the ramp from pfail=0 at the safe Vmin down to
    /// pfail≈1; matches the `unsafe_span_mv` of the Vmin tables.
    unsafe_span_mv: f64,
    /// Sharpness of the pfail ramp; larger = steeper curves in Figure 5.
    steepness: f64,
}

impl FailureModel {
    /// Creates a model with the given unsafe-region width.
    ///
    /// # Panics
    ///
    /// Panics if `unsafe_span_mv` is not positive.
    pub fn new(unsafe_span_mv: u32) -> Self {
        assert!(unsafe_span_mv > 0, "unsafe span must be positive");
        FailureModel {
            unsafe_span_mv: unsafe_span_mv as f64,
            steepness: 3.0,
        }
    }

    /// Per-run failure probability at `voltage` for a configuration whose
    /// safe Vmin is `safe_vmin`.
    ///
    /// Zero at or above the safe Vmin; approaches 1 at the crash point.
    /// Deeper droop classes (more utilized PMDs) fail slightly faster for
    /// the same undervolt, which is why the Figure 5 curves for max-thread
    /// configurations sit to the right of the clustered ones.
    pub fn pfail(&self, voltage: Millivolts, safe_vmin: Millivolts, class: DroopClass) -> f64 {
        if voltage >= safe_vmin {
            return 0.0;
        }
        let depth_mv = (safe_vmin - voltage) as f64;
        // Class factor: D25 → 1.00, D35 → 1.12, D45 → 1.24, D55 → 1.36.
        let class_factor = 1.0 + 0.12 * class.index() as f64;
        let x = depth_mv * class_factor / self.unsafe_span_mv;
        1.0 - (-self.steepness * x * x).exp()
    }

    /// Samples the outcome of one run.
    ///
    /// The failure-mode mixture follows the paper's qualitative reporting:
    /// shallow undervolts mostly manifest as SDCs and hangs; deep
    /// undervolts mostly crash the system.
    pub fn sample_outcome(
        &self,
        voltage: Millivolts,
        safe_vmin: Millivolts,
        class: DroopClass,
        rng: &mut RngStream,
    ) -> RunOutcome {
        let p = self.pfail(voltage, safe_vmin, class);
        if !rng.chance(p) {
            return RunOutcome::Correct;
        }
        // Depth fraction in [0,1] across the unsafe span.
        let depth = ((safe_vmin - voltage) as f64 / self.unsafe_span_mv).clamp(0.0, 1.0);
        // Mixture shifts from SDC-dominated to crash-dominated with depth.
        let p_crash = 0.10 + 0.70 * depth;
        let p_sdc = (0.55 - 0.35 * depth).max(0.05);
        let p_hang = 0.15;
        let u = rng.next_f64();
        if u < p_crash {
            RunOutcome::SystemCrash
        } else if u < p_crash + p_sdc {
            RunOutcome::Sdc
        } else if u < p_crash + p_sdc + p_hang {
            RunOutcome::ThreadHang
        } else {
            RunOutcome::Timeout
        }
    }

    /// Empirical pfail over `runs` sampled executions (the 60-run sweeps
    /// of §III-B).
    pub fn empirical_pfail(
        &self,
        voltage: Millivolts,
        safe_vmin: Millivolts,
        class: DroopClass,
        runs: u32,
        rng: &mut RngStream,
    ) -> f64 {
        if runs == 0 {
            return 0.0;
        }
        let failures = (0..runs)
            .filter(|_| {
                self.sample_outcome(voltage, safe_vmin, class, rng)
                    .is_failure()
            })
            .count();
        failures as f64 / runs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> FailureModel {
        FailureModel::new(50)
    }

    #[test]
    fn no_failures_at_or_above_safe_vmin() {
        let m = model();
        let safe = Millivolts::new(800);
        assert_eq!(m.pfail(Millivolts::new(800), safe, DroopClass::D25), 0.0);
        assert_eq!(m.pfail(Millivolts::new(900), safe, DroopClass::D55), 0.0);
    }

    #[test]
    fn pfail_increases_with_depth() {
        let m = model();
        let safe = Millivolts::new(800);
        let shallow = m.pfail(Millivolts::new(790), safe, DroopClass::D25);
        let deep = m.pfail(Millivolts::new(760), safe, DroopClass::D25);
        assert!(shallow > 0.0);
        assert!(deep > shallow);
        assert!(deep <= 1.0);
    }

    #[test]
    fn pfail_near_one_at_crash_point() {
        let m = model();
        let safe = Millivolts::new(800);
        let p = m.pfail(Millivolts::new(750), safe, DroopClass::D25);
        assert!(p > 0.9, "pfail at crash point was {p}");
    }

    #[test]
    fn higher_droop_class_fails_earlier() {
        let m = model();
        let safe = Millivolts::new(800);
        let v = Millivolts::new(780);
        let low = m.pfail(v, safe, DroopClass::D25);
        let high = m.pfail(v, safe, DroopClass::D55);
        assert!(high > low);
    }

    #[test]
    fn outcomes_are_deterministic_per_stream() {
        let m = model();
        let safe = Millivolts::new(800);
        let mut a = RngStream::from_root(5, "fail");
        let mut b = RngStream::from_root(5, "fail");
        for _ in 0..100 {
            assert_eq!(
                m.sample_outcome(Millivolts::new(770), safe, DroopClass::D35, &mut a),
                m.sample_outcome(Millivolts::new(770), safe, DroopClass::D35, &mut b)
            );
        }
    }

    #[test]
    fn outcome_mixture_shifts_with_depth() {
        let m = model();
        let safe = Millivolts::new(800);
        let mut rng = RngStream::from_root(6, "mix");
        let count_crashes = |v: u32, rng: &mut RngStream| {
            (0..2000)
                .filter(|_| {
                    matches!(
                        m.sample_outcome(Millivolts::new(v), safe, DroopClass::D45, rng),
                        RunOutcome::SystemCrash
                    )
                })
                .count()
        };
        let shallow_crashes = count_crashes(792, &mut rng);
        let deep_crashes = count_crashes(752, &mut rng);
        assert!(
            deep_crashes > shallow_crashes,
            "deep {deep_crashes} vs shallow {shallow_crashes}"
        );
    }

    #[test]
    fn empirical_pfail_tracks_analytic() {
        let m = model();
        let safe = Millivolts::new(800);
        let v = Millivolts::new(775);
        let analytic = m.pfail(v, safe, DroopClass::D35);
        let mut rng = RngStream::from_root(7, "emp");
        let emp = m.empirical_pfail(v, safe, DroopClass::D35, 5_000, &mut rng);
        assert!((emp - analytic).abs() < 0.03, "emp {emp} vs {analytic}");
    }

    #[test]
    fn empirical_pfail_zero_runs() {
        let m = model();
        let mut rng = RngStream::from_root(8, "none");
        assert_eq!(
            m.empirical_pfail(
                Millivolts::new(700),
                Millivolts::new(800),
                DroopClass::D25,
                0,
                &mut rng
            ),
            0.0
        );
    }

    #[test]
    fn outcome_display_and_is_failure() {
        assert!(!RunOutcome::Correct.is_failure());
        for o in [
            RunOutcome::Sdc,
            RunOutcome::Timeout,
            RunOutcome::SystemCrash,
            RunOutcome::ThreadHang,
        ] {
            assert!(o.is_failure());
            assert!(!o.to_string().is_empty());
        }
    }
}
