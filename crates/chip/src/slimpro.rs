//! SLIMpro management-processor interface.
//!
//! Both X-Gene chips carry a Scalable Lightweight Intelligent Management
//! processor (SLIMpro) that monitors sensors and regulates the PCP supply
//! voltage; the running kernel talks to it through a mailbox (§II-A). The
//! paper's daemon adjusts voltage exclusively through this path, so the
//! model exposes the same narrow message interface rather than letting
//! software poke the rail directly.

use crate::voltage::Millivolts;
use serde::{Deserialize, Serialize};

/// A request to the management processor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MailboxRequest {
    /// Set the PCP rail to the given voltage.
    SetVoltage(Millivolts),
    /// Read the current PCP rail voltage.
    GetVoltage,
    /// Read the instantaneous PCP power sensor.
    ReadPowerSensor,
    /// Read firmware identification.
    GetFirmwareInfo,
}

/// A response from the management processor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MailboxResponse {
    /// The voltage request was applied.
    VoltageSet(Millivolts),
    /// The current rail voltage.
    Voltage(Millivolts),
    /// PCP power in milliwatts (sensor granularity).
    PowerMw(u64),
    /// Firmware name/version string.
    FirmwareInfo(String),
    /// The request was refused (e.g. voltage out of the regulated range).
    Refused {
        /// Human-readable reason.
        reason: String,
    },
    /// No response arrived: the request (or its reply) was lost in
    /// flight. The caller cannot tell whether the request was applied
    /// and must retry idempotently.
    Dropped,
}

impl MailboxResponse {
    /// True when the response indicates the request was honoured.
    pub fn is_ok(&self) -> bool {
        !matches!(
            self,
            MailboxResponse::Refused { .. } | MailboxResponse::Dropped
        )
    }
}

/// Statistics the SLIMpro keeps about mailbox traffic; useful for
/// verifying the daemon is "minimally intrusive" (§VI-A).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MailboxStats {
    /// Total requests processed.
    pub requests: u64,
    /// Voltage-change requests that were applied.
    pub voltage_changes: u64,
    /// Requests refused.
    pub refusals: u64,
    /// Requests (or responses) lost in flight.
    pub drops: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refused_is_not_ok() {
        assert!(!MailboxResponse::Refused {
            reason: "out of range".into()
        }
        .is_ok());
        assert!(MailboxResponse::Voltage(Millivolts::new(900)).is_ok());
        assert!(MailboxResponse::PowerMw(12_000).is_ok());
    }

    #[test]
    fn dropped_is_not_ok() {
        assert!(!MailboxResponse::Dropped.is_ok());
    }
}
