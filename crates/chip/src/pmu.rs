//! Performance monitoring unit (PMU) counters.
//!
//! The paper's daemon reads exactly two things from the PMU: elapsed
//! cycles and L2-miss counts (= L3-cache accesses) per process, sampled
//! over 1 M-cycle windows through a tiny kernel module (§VI-A). The droop
//! "oscilloscope" counters of Figure 6 live here too.
//!
//! Counters are free-running and wrap-free (`u64` at GHz rates outlasts
//! any simulation); readers take deltas, exactly like the kernel module
//! described in the paper ("one read of one PMU counter and one read of
//! the same register after 1M cycles").

use crate::droop::DroopCounts;
use crate::topology::CoreId;
use serde::{Deserialize, Serialize};

/// Free-running counters for one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreCounters {
    /// Core clock cycles while not gated.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// L2 cache misses — i.e. L3 cache accesses, the daemon's
    /// classification signal.
    pub l3_accesses: u64,
}

impl CoreCounters {
    /// Accumulates an increment.
    pub fn add(&mut self, cycles: u64, instructions: u64, l3_accesses: u64) {
        self.cycles += cycles;
        self.instructions += instructions;
        self.l3_accesses += l3_accesses;
    }

    /// The delta `self - earlier` (used by samplers).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is ahead of `self`.
    pub fn delta_since(&self, earlier: &CoreCounters) -> CoreCounters {
        debug_assert!(self.cycles >= earlier.cycles, "counter went backwards");
        CoreCounters {
            cycles: self.cycles - earlier.cycles,
            instructions: self.instructions - earlier.instructions,
            l3_accesses: self.l3_accesses - earlier.l3_accesses,
        }
    }

    /// Instructions per cycle over this (delta) window; 0 for empty
    /// windows.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// L3 accesses per 1 M cycles over this (delta) window — the paper's
    /// classification metric (threshold: 3000).
    pub fn l3_per_mcycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.l3_accesses as f64 * 1e6 / self.cycles as f64
        }
    }
}

/// Chip-level PMU state: per-core counters plus the droop sensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipPmu {
    cores: Vec<CoreCounters>,
    droops: DroopCounts,
}

impl ChipPmu {
    /// Creates a PMU for a chip with `cores` cores.
    pub fn new(cores: usize) -> Self {
        ChipPmu {
            cores: vec![CoreCounters::default(); cores],
            droops: DroopCounts::default(),
        }
    }

    /// Read a core's counters.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core(&self, core: CoreId) -> &CoreCounters {
        &self.cores[core.index()]
    }

    /// Accumulates execution onto a core's counters.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn record(&mut self, core: CoreId, cycles: u64, instructions: u64, l3_accesses: u64) {
        self.cores[core.index()].add(cycles, instructions, l3_accesses);
    }

    /// Accumulates droop detections.
    pub fn record_droops(&mut self, counts: &DroopCounts) {
        self.droops.add(counts);
    }

    /// The cumulative droop counts (the embedded-oscilloscope registers).
    pub fn droops(&self) -> &DroopCounts {
        &self.droops
    }

    /// Number of cores the PMU covers.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Resets every counter to zero (e.g. between characterization runs).
    pub fn reset(&mut self) {
        for c in &mut self.cores {
            *c = CoreCounters::default();
        }
        self.droops = DroopCounts::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vmin::DroopClass;

    #[test]
    fn record_and_read() {
        let mut pmu = ChipPmu::new(4);
        pmu.record(CoreId::new(1), 1_000_000, 800_000, 4_000);
        let c = pmu.core(CoreId::new(1));
        assert_eq!(c.cycles, 1_000_000);
        assert!((c.ipc() - 0.8).abs() < 1e-12);
        assert!((c.l3_per_mcycle() - 4_000.0).abs() < 1e-9);
        // Untouched cores stay zero.
        assert_eq!(pmu.core(CoreId::new(0)).cycles, 0);
    }

    #[test]
    fn deltas_subtract() {
        let mut pmu = ChipPmu::new(1);
        pmu.record(CoreId::new(0), 1_000_000, 500_000, 1_000);
        let snapshot = *pmu.core(CoreId::new(0));
        pmu.record(CoreId::new(0), 1_000_000, 900_000, 5_000);
        let delta = pmu.core(CoreId::new(0)).delta_since(&snapshot);
        assert_eq!(delta.cycles, 1_000_000);
        assert_eq!(delta.instructions, 900_000);
        assert!((delta.l3_per_mcycle() - 5_000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_window_rates_are_zero() {
        let c = CoreCounters::default();
        assert_eq!(c.ipc(), 0.0);
        assert_eq!(c.l3_per_mcycle(), 0.0);
    }

    #[test]
    fn droop_counters_accumulate() {
        let mut pmu = ChipPmu::new(2);
        pmu.record_droops(&DroopCounts {
            per_band: [5, 3, 1, 0],
        });
        pmu.record_droops(&DroopCounts {
            per_band: [1, 1, 1, 1],
        });
        assert_eq!(pmu.droops().total(), 13);
        assert_eq!(pmu.droops().in_band(DroopClass::D25), 6);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut pmu = ChipPmu::new(2);
        pmu.record(CoreId::new(0), 10, 10, 10);
        pmu.record_droops(&DroopCounts {
            per_band: [1, 0, 0, 0],
        });
        pmu.reset();
        assert_eq!(pmu.core(CoreId::new(0)).cycles, 0);
        assert_eq!(pmu.droops().total(), 0);
    }
}
