//! Chip topology: cores, PMDs, and the static chip specification.
//!
//! Both X-Gene chips group cores in *PMDs* (Processor MoDules): pairs of
//! cores sharing an L2 cache and a clock domain. The entire PCP (Processor
//! ComPlex) power domain — cores, L1/L2/L3, memory controllers — shares one
//! voltage rail. Frequency is per-PMD; voltage is per-chip. These
//! granularities are the entire reason the paper's core-allocation policy
//! exists, so they are first-class here.

use crate::freq::FrequencyMhz;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a single CPU core, `0..spec.cores`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CoreId(u16);

/// Identifier of a PMD (core pair), `0..spec.pmds()`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PmdId(u16);

impl CoreId {
    /// Creates a core id from a raw index.
    pub const fn new(idx: u16) -> Self {
        CoreId(idx)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl PmdId {
    /// Creates a PMD id from a raw index.
    pub const fn new(idx: u16) -> Self {
        PmdId(idx)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl fmt::Display for PmdId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PMD{}", self.0)
    }
}

impl From<u16> for CoreId {
    fn from(v: u16) -> Self {
        CoreId(v)
    }
}

impl From<u16> for PmdId {
    fn from(v: u16) -> Self {
        PmdId(v)
    }
}

/// Silicon process of a chip; drives the static-variation magnitudes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Technology {
    /// 28 nm bulk CMOS (X-Gene 2).
    Bulk28nm,
    /// 16 nm FinFET (X-Gene 3).
    FinFet16nm,
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Technology::Bulk28nm => write!(f, "28 nm bulk CMOS"),
            Technology::FinFet16nm => write!(f, "16 nm FinFET"),
        }
    }
}

/// Static description of a chip (Table I of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipSpec {
    /// Human-readable model name, e.g. `"X-Gene 3"`.
    pub name: String,
    /// Number of CPU cores.
    pub cores: u16,
    /// Cores per PMD (2 on both X-Gene chips).
    pub cores_per_pmd: u16,
    /// Maximum core clock in MHz (2400 for X-Gene 2, 3000 for X-Gene 3).
    pub fmax_mhz: u32,
    /// Nominal (maximum regulated) PCP voltage in millivolts.
    pub nominal_mv: u32,
    /// Lowest voltage the regulator will accept, in millivolts.
    pub vreg_floor_mv: u32,
    /// L1 instruction cache size per core, KiB.
    pub l1i_kib: u32,
    /// L1 data cache size per core, KiB.
    pub l1d_kib: u32,
    /// L2 cache size per PMD, KiB.
    pub l2_kib: u32,
    /// L3 cache size, KiB.
    pub l3_kib: u32,
    /// Thermal design power, watts.
    pub tdp_w: f64,
    /// Process technology.
    pub technology: Technology,
}

impl ChipSpec {
    /// Number of PMDs on the chip.
    pub fn pmds(&self) -> u16 {
        self.cores / self.cores_per_pmd
    }

    /// The maximum core clock as a typed frequency.
    pub fn fmax(&self) -> FrequencyMhz {
        FrequencyMhz::new(self.fmax_mhz)
    }

    /// The PMD that owns `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn pmd_of(&self, core: CoreId) -> PmdId {
        assert!(
            (core.index() as u16) < self.cores,
            "{core} out of range for {} cores",
            self.cores
        );
        PmdId(core.index() as u16 / self.cores_per_pmd)
    }

    /// The cores belonging to `pmd`, in index order.
    ///
    /// # Panics
    ///
    /// Panics if `pmd` is out of range.
    pub fn cores_of(&self, pmd: PmdId) -> Vec<CoreId> {
        self.cores_of_iter(pmd).collect()
    }

    /// Iterates the cores of `pmd` without allocating — the hot-path
    /// twin of [`Self::cores_of`].
    pub fn cores_of_iter(&self, pmd: PmdId) -> impl Iterator<Item = CoreId> {
        assert!(
            (pmd.index() as u16) < self.pmds(),
            "{pmd} out of range for {} PMDs",
            self.pmds()
        );
        let base = pmd.index() as u16 * self.cores_per_pmd;
        (base..base + self.cores_per_pmd).map(CoreId)
    }

    /// Iterates over all core ids.
    pub fn all_cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.cores).map(CoreId)
    }

    /// Iterates over all PMD ids.
    pub fn all_pmds(&self) -> impl Iterator<Item = PmdId> {
        (0..self.pmds()).map(PmdId)
    }

    /// True if `core` exists on this chip.
    pub fn contains_core(&self, core: CoreId) -> bool {
        (core.index() as u16) < self.cores
    }

    /// True if `pmd` exists on this chip.
    pub fn contains_pmd(&self, pmd: PmdId) -> bool {
        (pmd.index() as u16) < self.pmds()
    }
}

/// A set of cores, used for affinity masks and allocations.
///
/// Backed by a `u64` bitmask; supports chips up to 64 cores, which covers
/// both X-Gene parts with room to spare.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize, PartialOrd, Ord,
)]
pub struct CoreSet(u64);

impl CoreSet {
    /// The empty set.
    pub const EMPTY: CoreSet = CoreSet(0);

    /// Creates an empty set.
    pub const fn new() -> Self {
        CoreSet(0)
    }

    /// Creates a set containing cores `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn first_n(n: u16) -> Self {
        assert!(n <= 64, "CoreSet supports at most 64 cores");
        if n == 64 {
            CoreSet(u64::MAX)
        } else {
            CoreSet((1u64 << n) - 1)
        }
    }

    /// Creates a set from raw bits.
    pub const fn from_bits(bits: u64) -> Self {
        CoreSet(bits)
    }

    /// The raw bitmask.
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Inserts a core; returns whether it was newly inserted.
    pub fn insert(&mut self, core: CoreId) -> bool {
        let bit = 1u64 << core.index();
        let newly = self.0 & bit == 0;
        self.0 |= bit;
        newly
    }

    /// Removes a core; returns whether it was present.
    pub fn remove(&mut self, core: CoreId) -> bool {
        let bit = 1u64 << core.index();
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Membership test.
    pub fn contains(self, core: CoreId) -> bool {
        self.0 & (1u64 << core.index()) != 0
    }

    /// Number of cores in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when no cores are present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    pub fn union(self, other: CoreSet) -> CoreSet {
        CoreSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: CoreSet) -> CoreSet {
        CoreSet(self.0 & other.0)
    }

    /// Elements of `self` not in `other`.
    pub fn difference(self, other: CoreSet) -> CoreSet {
        CoreSet(self.0 & !other.0)
    }

    /// Iterates over member cores in ascending index order.
    pub fn iter(self) -> impl Iterator<Item = CoreId> {
        (0..64u16)
            .filter(move |i| self.0 & (1u64 << i) != 0)
            .map(CoreId)
    }

    /// The lowest-numbered core in the set, if any.
    pub fn first(self) -> Option<CoreId> {
        if self.0 == 0 {
            None
        } else {
            Some(CoreId(self.0.trailing_zeros() as u16))
        }
    }

    /// The set of PMDs that have at least one member core, as a bitmask
    /// indexed by PMD.
    pub fn utilized_pmds(self, spec: &ChipSpec) -> Vec<PmdId> {
        let mut pmds = Vec::new();
        for pmd in spec.all_pmds() {
            if spec.cores_of(pmd).iter().any(|&c| self.contains(c)) {
                pmds.push(pmd);
            }
        }
        pmds
    }

    /// Number of PMDs with at least one member core.
    pub fn utilized_pmd_count(self, spec: &ChipSpec) -> usize {
        self.utilized_pmds(spec).len()
    }
}

impl FromIterator<CoreId> for CoreSet {
    fn from_iter<I: IntoIterator<Item = CoreId>>(iter: I) -> Self {
        let mut s = CoreSet::new();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

impl Extend<CoreId> for CoreSet {
    fn extend<I: IntoIterator<Item = CoreId>>(&mut self, iter: I) {
        for c in iter {
            self.insert(c);
        }
    }
}

impl fmt::Display for CoreSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for c in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", c.index())?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_8() -> ChipSpec {
        ChipSpec {
            name: "test8".into(),
            cores: 8,
            cores_per_pmd: 2,
            fmax_mhz: 2400,
            nominal_mv: 980,
            vreg_floor_mv: 600,
            l1i_kib: 32,
            l1d_kib: 32,
            l2_kib: 256,
            l3_kib: 8192,
            tdp_w: 35.0,
            technology: Technology::Bulk28nm,
        }
    }

    #[test]
    fn pmd_mapping() {
        let s = spec_8();
        assert_eq!(s.pmds(), 4);
        assert_eq!(s.pmd_of(CoreId::new(0)), PmdId::new(0));
        assert_eq!(s.pmd_of(CoreId::new(1)), PmdId::new(0));
        assert_eq!(s.pmd_of(CoreId::new(7)), PmdId::new(3));
        assert_eq!(
            s.cores_of(PmdId::new(2)),
            vec![CoreId::new(4), CoreId::new(5)]
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pmd_of_rejects_bad_core() {
        let _ = spec_8().pmd_of(CoreId::new(8));
    }

    #[test]
    fn all_iterators_cover_everything() {
        let s = spec_8();
        assert_eq!(s.all_cores().count(), 8);
        assert_eq!(s.all_pmds().count(), 4);
        assert!(s.contains_core(CoreId::new(7)));
        assert!(!s.contains_core(CoreId::new(8)));
        assert!(s.contains_pmd(PmdId::new(3)));
        assert!(!s.contains_pmd(PmdId::new(4)));
    }

    #[test]
    fn coreset_insert_remove() {
        let mut cs = CoreSet::new();
        assert!(cs.insert(CoreId::new(3)));
        assert!(!cs.insert(CoreId::new(3)));
        assert!(cs.contains(CoreId::new(3)));
        assert_eq!(cs.len(), 1);
        assert!(cs.remove(CoreId::new(3)));
        assert!(!cs.remove(CoreId::new(3)));
        assert!(cs.is_empty());
    }

    #[test]
    fn coreset_first_n() {
        let cs = CoreSet::first_n(8);
        assert_eq!(cs.len(), 8);
        assert!(cs.contains(CoreId::new(7)));
        assert!(!cs.contains(CoreId::new(8)));
        assert_eq!(CoreSet::first_n(64).len(), 64);
        assert_eq!(CoreSet::first_n(0).len(), 0);
    }

    #[test]
    fn coreset_set_algebra() {
        let a: CoreSet = [0u16, 1, 2].into_iter().map(CoreId::new).collect();
        let b: CoreSet = [2u16, 3].into_iter().map(CoreId::new).collect();
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersection(b).len(), 1);
        assert_eq!(a.difference(b).len(), 2);
        assert_eq!(a.first(), Some(CoreId::new(0)));
        assert_eq!(CoreSet::EMPTY.first(), None);
    }

    #[test]
    fn utilized_pmds_collapses_pairs() {
        let s = spec_8();
        // Cores 0 and 1 share PMD0; core 4 is on PMD2.
        let cs: CoreSet = [0u16, 1, 4].into_iter().map(CoreId::new).collect();
        assert_eq!(cs.utilized_pmds(&s), vec![PmdId::new(0), PmdId::new(2)]);
        assert_eq!(cs.utilized_pmd_count(&s), 2);
    }

    #[test]
    fn coreset_iter_is_sorted() {
        let cs: CoreSet = [5u16, 1, 3].into_iter().map(CoreId::new).collect();
        let v: Vec<usize> = cs.iter().map(|c| c.index()).collect();
        assert_eq!(v, vec![1, 3, 5]);
    }

    #[test]
    fn coreset_display() {
        let cs: CoreSet = [1u16, 2].into_iter().map(CoreId::new).collect();
        assert_eq!(cs.to_string(), "{1,2}");
        assert_eq!(CoreSet::EMPTY.to_string(), "{}");
    }
}
