//! Parametric multicore chip model for the AVFS reproduction.
//!
//! This crate is the hardware substrate standing in for the two real ARMv8
//! micro-servers of the paper — AppliedMicro X-Gene 2 (8 cores, 28 nm) and
//! X-Gene 3 (32 cores, 16 nm FinFET). It models exactly the knobs and
//! observables the paper's daemon uses:
//!
//! * **Topology** ([`topology`]): cores grouped in PMDs (Processor
//!   MoDules — core pairs sharing an L2 and a clock domain), one PCP power
//!   domain with a single voltage rail.
//! * **Frequency control** ([`freq`]): per-PMD frequency in 1/8 steps of
//!   fmax, with the clock-skipping / clock-division semantics and the
//!   per-chip CPPC quirks described in §II-B of the paper.
//! * **Voltage control** ([`slimpro`]): a SLIMpro-style management
//!   interface that regulates the rail.
//! * **Safe-Vmin surface** ([`vmin`]): the empirical model of the minimum
//!   safe operating voltage as a function of frequency class, voltage-droop
//!   class (utilized PMDs, Table II), per-PMD static variation, and a small
//!   workload-dependent delta.
//! * **Voltage droops** ([`droop`]): a stochastic droop-event generator
//!   reproducing the magnitude-class structure of Figure 6.
//! * **Failures** ([`failure`]): the probabilistic outcome model for
//!   operation below the safe Vmin (Figures 4 and 5).
//! * **Power** ([`power`]): the PCP-domain power model used for all energy
//!   numbers (Figures 7, 11, 14; Tables III/IV).
//! * **PMU** ([`pmu`]): cycle / instruction / L3-access / droop counters,
//!   the daemon's only window into running workloads.
//!
//! # Example
//!
//! ```
//! use avfs_chip::presets;
//! use avfs_chip::freq::FreqStep;
//! use avfs_chip::topology::PmdId;
//!
//! let mut chip = presets::xgene3().build();
//! // All PMDs default to fmax at the nominal voltage.
//! assert_eq!(chip.voltage().as_mv(), 870);
//! chip.set_pmd_freq_step(PmdId::new(0), FreqStep::HALF)?;
//! # Ok::<(), avfs_chip::ChipError>(())
//! ```

pub mod chip;
pub mod droop;
pub mod error;
pub mod failure;
pub mod fault;
pub mod freq;
pub mod pmu;
pub mod power;
pub mod presets;
pub mod slimpro;
pub mod sysfs;
pub mod topology;
pub mod vmin;
pub mod voltage;

pub use chip::Chip;
pub use error::ChipError;
pub use fault::{FaultPlan, FaultRates, FaultStats};
pub use freq::{FreqStep, FreqVminClass, FrequencyMhz};
pub use topology::{ChipSpec, CoreId, CoreSet, PmdId};
pub use vmin::{DroopClass, VminModel};
pub use voltage::Millivolts;
