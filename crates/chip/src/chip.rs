//! The runtime chip: state plus all calibrated models.
//!
//! [`Chip`] owns the voltage rail, the per-PMD frequency steps, the PMU,
//! and the calibrated Vmin / droop / failure / power models. Software
//! (the scheduler substrate and the daemon) manipulates it only through
//! the knobs a real X-Gene exposes: per-PMD frequency requests (cpufreq)
//! and SLIMpro mailbox messages (voltage).

use crate::droop::DroopModel;
use crate::error::ChipError;
use crate::failure::FailureModel;
use crate::freq::{CppcBehavior, FreqStep, FreqVminClass, FrequencyMhz};
use crate::pmu::ChipPmu;
use crate::power::{PowerInputs, PowerModel};
use crate::slimpro::{MailboxRequest, MailboxResponse, MailboxStats};
use crate::topology::{ChipSpec, CoreSet, PmdId};
use crate::vmin::{VminModel, VminQuery};
use crate::voltage::{Millivolts, VoltageRail};

/// A fully assembled chip instance.
#[derive(Debug, Clone)]
pub struct Chip {
    spec: ChipSpec,
    behavior: CppcBehavior,
    rail: VoltageRail,
    pmd_steps: Vec<FreqStep>,
    vmin: VminModel,
    power: PowerModel,
    droop: DroopModel,
    failure: FailureModel,
    pmu: ChipPmu,
    mailbox_stats: MailboxStats,
    /// Power reported by the sensor on the last mailbox read, mW.
    last_sensor_mw: u64,
}

impl Chip {
    /// Assembles a chip from its spec and calibrated models. Use
    /// [`crate::presets`] for the two X-Gene parts.
    pub fn new(
        spec: ChipSpec,
        behavior: CppcBehavior,
        vmin: VminModel,
        power: PowerModel,
        droop: DroopModel,
        failure: FailureModel,
    ) -> Self {
        let rail = VoltageRail::new(
            Millivolts::new(spec.nominal_mv),
            Millivolts::new(spec.vreg_floor_mv),
        );
        let pmds = spec.pmds() as usize;
        let cores = spec.cores as usize;
        Chip {
            spec,
            behavior,
            rail,
            pmd_steps: vec![FreqStep::MAX; pmds],
            vmin,
            power,
            droop,
            failure,
            pmu: ChipPmu::new(cores),
            mailbox_stats: MailboxStats::default(),
            last_sensor_mw: 0,
        }
    }

    /// The static chip description.
    pub fn spec(&self) -> &ChipSpec {
        &self.spec
    }

    /// The CPPC firmware behaviour of this part.
    pub fn behavior(&self) -> CppcBehavior {
        self.behavior
    }

    /// The calibrated Vmin model.
    pub fn vmin_model(&self) -> &VminModel {
        &self.vmin
    }

    /// The calibrated power model.
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// The droop-event model.
    pub fn droop_model(&self) -> &DroopModel {
        &self.droop
    }

    /// The sub-Vmin failure model.
    pub fn failure_model(&self) -> &FailureModel {
        &self.failure
    }

    /// The PMU block.
    pub fn pmu(&self) -> &ChipPmu {
        &self.pmu
    }

    /// Mutable PMU access (the simulator records progress through this).
    pub fn pmu_mut(&mut self) -> &mut ChipPmu {
        &mut self.pmu
    }

    /// The current rail voltage.
    pub fn voltage(&self) -> Millivolts {
        self.rail.current()
    }

    /// The nominal rail voltage.
    pub fn nominal_voltage(&self) -> Millivolts {
        self.rail.nominal()
    }

    /// The frequency step of a PMD.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::InvalidPmd`] for out-of-range PMDs.
    pub fn pmd_freq_step(&self, pmd: PmdId) -> Result<FreqStep, ChipError> {
        self.pmd_steps
            .get(pmd.index())
            .copied()
            .ok_or(ChipError::InvalidPmd(pmd))
    }

    /// Requests a frequency step for one PMD (the cpufreq path).
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::InvalidPmd`] for out-of-range PMDs.
    pub fn set_pmd_freq_step(&mut self, pmd: PmdId, step: FreqStep) -> Result<(), ChipError> {
        let slot = self
            .pmd_steps
            .get_mut(pmd.index())
            .ok_or(ChipError::InvalidPmd(pmd))?;
        *slot = step;
        Ok(())
    }

    /// Sets every PMD to the same step.
    pub fn set_all_freq_steps(&mut self, step: FreqStep) {
        for s in &mut self.pmd_steps {
            *s = step;
        }
    }

    /// The requested clock of a PMD in MHz.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::InvalidPmd`] for out-of-range PMDs.
    pub fn pmd_frequency(&self, pmd: PmdId) -> Result<FrequencyMhz, ChipError> {
        Ok(self.pmd_freq_step(pmd)?.frequency(self.spec.fmax_mhz))
    }

    /// The frequency-class of the rail requirement given which PMDs are
    /// currently *utilized* (idle PMDs do not constrain Vmin).
    pub fn freq_vmin_class(&self, utilized: &[PmdId]) -> FreqVminClass {
        self.behavior.vmin_class_of_steps(
            utilized
                .iter()
                .filter_map(|p| self.pmd_steps.get(p.index()).copied()),
        )
    }

    /// The safe Vmin of the *current* chip configuration for an
    /// allocation of `active_cores`, assuming a typical workload
    /// (sensitivity 0).
    pub fn current_safe_vmin(&self, active_cores: CoreSet) -> Millivolts {
        let utilized = active_cores.utilized_pmds(&self.spec);
        let q = VminQuery {
            freq_class: self.freq_vmin_class(&utilized),
            utilized_pmds: utilized.len(),
            active_threads: active_cores.len(),
            workload_sensitivity: 0.0,
        };
        self.vmin.safe_vmin_on(&q, &utilized)
    }

    /// True when the rail currently satisfies the safe Vmin of the given
    /// allocation — the invariant the daemon's fail-safe ordering
    /// maintains.
    pub fn is_voltage_safe_for(&self, active_cores: CoreSet) -> bool {
        self.voltage() >= self.current_safe_vmin(active_cores)
    }

    /// Processes a SLIMpro mailbox request.
    pub fn mailbox(&mut self, req: MailboxRequest) -> MailboxResponse {
        self.mailbox_stats.requests += 1;
        match req {
            MailboxRequest::SetVoltage(mv) => match self.rail.set(mv) {
                Ok(()) => {
                    self.mailbox_stats.voltage_changes += 1;
                    MailboxResponse::VoltageSet(mv)
                }
                Err((min, max)) => {
                    self.mailbox_stats.refusals += 1;
                    MailboxResponse::Refused {
                        reason: format!("voltage {mv} outside [{min}, {max}]"),
                    }
                }
            },
            MailboxRequest::GetVoltage => MailboxResponse::Voltage(self.rail.current()),
            MailboxRequest::ReadPowerSensor => MailboxResponse::PowerMw(self.last_sensor_mw),
            MailboxRequest::GetFirmwareInfo => {
                MailboxResponse::FirmwareInfo(format!("SLIMpro/{} (simulated)", self.spec.name))
            }
        }
    }

    /// Mailbox traffic statistics.
    pub fn mailbox_stats(&self) -> MailboxStats {
        self.mailbox_stats
    }

    /// Convenience: set the rail voltage, as the daemon does via the
    /// mailbox.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::VoltageOutOfRange`] if the regulator refuses.
    pub fn set_voltage(&mut self, mv: Millivolts) -> Result<(), ChipError> {
        match self.mailbox(MailboxRequest::SetVoltage(mv)) {
            MailboxResponse::VoltageSet(_) => Ok(()),
            _ => Err(ChipError::VoltageOutOfRange {
                requested: mv,
                min: self.rail.floor(),
                max: self.rail.nominal(),
            }),
        }
    }

    /// Evaluates instantaneous power and latches it into the sensor.
    pub fn evaluate_power_w(&mut self, inputs: &PowerInputs) -> f64 {
        let w = self.power.power_w(inputs);
        self.last_sensor_mw = (w * 1_000.0).round() as u64;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::topology::CoreId;

    #[test]
    fn defaults_are_nominal_and_fmax() {
        let chip = presets::xgene2().build();
        assert_eq!(chip.voltage().as_mv(), 980);
        for pmd in chip.spec().all_pmds() {
            assert_eq!(chip.pmd_freq_step(pmd).unwrap(), FreqStep::MAX);
            assert_eq!(chip.pmd_frequency(pmd).unwrap().as_mhz(), 2400);
        }
    }

    #[test]
    fn per_pmd_frequency_is_independent() {
        let mut chip = presets::xgene3().build();
        chip.set_pmd_freq_step(PmdId::new(3), FreqStep::HALF)
            .unwrap();
        assert_eq!(chip.pmd_frequency(PmdId::new(3)).unwrap().as_mhz(), 1500);
        assert_eq!(chip.pmd_frequency(PmdId::new(4)).unwrap().as_mhz(), 3000);
    }

    #[test]
    fn invalid_pmd_is_an_error() {
        let mut chip = presets::xgene2().build();
        assert_eq!(
            chip.set_pmd_freq_step(PmdId::new(99), FreqStep::MAX),
            Err(ChipError::InvalidPmd(PmdId::new(99)))
        );
        assert!(chip.pmd_frequency(PmdId::new(99)).is_err());
    }

    #[test]
    fn mailbox_voltage_roundtrip() {
        let mut chip = presets::xgene3().build();
        let resp = chip.mailbox(MailboxRequest::SetVoltage(Millivolts::new(830)));
        assert_eq!(resp, MailboxResponse::VoltageSet(Millivolts::new(830)));
        assert_eq!(
            chip.mailbox(MailboxRequest::GetVoltage),
            MailboxResponse::Voltage(Millivolts::new(830))
        );
        assert_eq!(chip.mailbox_stats().voltage_changes, 1);
    }

    #[test]
    fn mailbox_refuses_over_nominal() {
        let mut chip = presets::xgene3().build();
        let resp = chip.mailbox(MailboxRequest::SetVoltage(Millivolts::new(1_000)));
        assert!(!resp.is_ok());
        assert_eq!(chip.voltage().as_mv(), 870);
        assert_eq!(chip.mailbox_stats().refusals, 1);
        assert!(chip.set_voltage(Millivolts::new(1_000)).is_err());
    }

    #[test]
    fn vmin_class_ignores_idle_pmds() {
        let mut chip = presets::xgene2().build();
        // Drop PMD3 to a divided step, but leave it out of the utilized set.
        chip.set_pmd_freq_step(PmdId::new(3), FreqStep::new(2).unwrap())
            .unwrap();
        let class_active_fast = chip.freq_vmin_class(&[PmdId::new(0)]);
        assert_eq!(class_active_fast, FreqVminClass::Max);
        // Now only the divided PMD is utilized.
        let class_divided = chip.freq_vmin_class(&[PmdId::new(3)]);
        assert_eq!(class_divided, FreqVminClass::Divided);
    }

    #[test]
    fn safe_vmin_tracks_allocation_width() {
        let chip = presets::xgene3().build();
        let narrow: CoreSet = [0u16, 1].into_iter().map(CoreId::new).collect(); // 1 PMD
        let wide = CoreSet::first_n(32); // 16 PMDs
        assert!(chip.current_safe_vmin(narrow) < chip.current_safe_vmin(wide));
    }

    #[test]
    fn nominal_voltage_is_always_safe() {
        let chip = presets::xgene3().build();
        assert!(chip.is_voltage_safe_for(CoreSet::first_n(32)));
    }

    #[test]
    fn undervolted_rail_can_become_unsafe_for_wider_allocation() {
        let mut chip = presets::xgene3().build();
        let narrow: CoreSet = [0u16, 1].into_iter().map(CoreId::new).collect();
        let vmin_narrow = chip.current_safe_vmin(narrow);
        chip.set_voltage(vmin_narrow).unwrap();
        assert!(chip.is_voltage_safe_for(narrow));
        assert!(!chip.is_voltage_safe_for(CoreSet::first_n(32)));
    }

    #[test]
    fn power_sensor_latches() {
        let mut chip = presets::xgene2().build();
        let inputs = PowerInputs {
            voltage: chip.voltage(),
            pmd_loads: vec![crate::power::PmdLoad::IDLE; 4],
            mem_traffic: 0.0,
        };
        let w = chip.evaluate_power_w(&inputs);
        match chip.mailbox(MailboxRequest::ReadPowerSensor) {
            MailboxResponse::PowerMw(mw) => {
                assert_eq!(mw, (w * 1000.0).round() as u64);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn firmware_info_names_the_chip() {
        let mut chip = presets::xgene3().build();
        match chip.mailbox(MailboxRequest::GetFirmwareInfo) {
            MailboxResponse::FirmwareInfo(s) => assert!(s.contains("X-Gene 3")),
            other => panic!("unexpected response {other:?}"),
        }
    }
}
