//! The runtime chip: state plus all calibrated models.
//!
//! [`Chip`] owns the voltage rail, the per-PMD frequency steps, the PMU,
//! and the calibrated Vmin / droop / failure / power models. Software
//! (the scheduler substrate and the daemon) manipulates it only through
//! the knobs a real X-Gene exposes: per-PMD frequency requests (cpufreq)
//! and SLIMpro mailbox messages (voltage).

use crate::droop::DroopModel;
use crate::error::ChipError;
use crate::failure::{FailureModel, RunOutcome};
use crate::fault::{FaultPlan, FaultStats, MailboxFault};
use crate::freq::{CppcBehavior, FreqStep, FreqVminClass, FrequencyMhz};
use crate::pmu::ChipPmu;
use crate::power::{PowerInputs, PowerLut, PowerModel};
use crate::slimpro::{MailboxRequest, MailboxResponse, MailboxStats};
use crate::topology::{ChipSpec, CoreSet, PmdId};
use crate::vmin::{VminDrift, VminModel, VminQuery};
use crate::voltage::{Millivolts, VoltageRail};
use avfs_sim::RngStream;
use avfs_telemetry::{Telemetry, TraceKind, Value};

/// A fully assembled chip instance.
#[derive(Debug, Clone)]
pub struct Chip {
    spec: ChipSpec,
    behavior: CppcBehavior,
    rail: VoltageRail,
    pmd_steps: Vec<FreqStep>,
    vmin: VminModel,
    power: PowerModel,
    /// [`PowerLut`] tabulation of `power` over the chip's operating
    /// points; bit-identical to the model and rebuilt only at
    /// construction (the model itself never changes at runtime).
    power_lut: PowerLut,
    droop: DroopModel,
    failure: FailureModel,
    pmu: ChipPmu,
    mailbox_stats: MailboxStats,
    /// Power reported by the sensor on the last mailbox read, mW.
    last_sensor_mw: u64,
    /// Optional seeded fault-injection plan; `None` (the default) leaves
    /// every operation exactly as reliable as before the fault layer
    /// existed.
    fault: Option<FaultPlan>,
    /// Monotonic counter bumped whenever power/safety-relevant state
    /// actually changes (rail voltage, a PMD step, the Vmin surface, the
    /// fault plan). Lets callers cache quantities derived from chip
    /// state and revalidate with one integer compare instead of
    /// re-deriving per slice. Re-asserting an unchanged value does not
    /// bump it.
    state_epoch: u64,
    /// Observer handle for the mailbox/fault paths. Null (one branch,
    /// no observer) unless installed via [`Chip::set_telemetry`]. The
    /// chip owns no clock, so event timestamps come from whoever last
    /// called `Telemetry::advance_to` on the shared hub (the scheduler).
    telemetry: Telemetry,
}

impl Chip {
    /// Assembles a chip from its spec and calibrated models. Use
    /// [`crate::presets`] for the two X-Gene parts.
    pub fn new(
        spec: ChipSpec,
        behavior: CppcBehavior,
        vmin: VminModel,
        power: PowerModel,
        droop: DroopModel,
        failure: FailureModel,
    ) -> Self {
        let rail = VoltageRail::new(
            Millivolts::new(spec.nominal_mv),
            Millivolts::new(spec.vreg_floor_mv),
        );
        let pmds = spec.pmds() as usize;
        let cores = spec.cores as usize;
        let fmax = FrequencyMhz::new(spec.fmax_mhz);
        let power_lut = power.build_lut(
            FreqStep::all().map(|s| s.frequency(fmax).as_mhz()),
            spec.vreg_floor_mv,
            spec.nominal_mv,
        );
        Chip {
            spec,
            behavior,
            rail,
            pmd_steps: vec![FreqStep::MAX; pmds],
            vmin,
            power,
            power_lut,
            droop,
            failure,
            pmu: ChipPmu::new(cores),
            mailbox_stats: MailboxStats::default(),
            last_sensor_mw: 0,
            fault: None,
            state_epoch: 0,
            telemetry: Telemetry::null(),
        }
    }

    /// The current state epoch: increments exactly when power/safety
    /// relevant chip state changes (voltage, frequency program, Vmin
    /// drift, fault plan). Two calls returning the same value guarantee
    /// every power/Vmin evaluation in between would have returned the
    /// same result for the same inputs.
    pub fn state_epoch(&self) -> u64 {
        self.state_epoch
    }

    /// Installs a telemetry handle; the mailbox and fault paths report
    /// through it from then on.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The installed telemetry handle (null by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Arms (or disarms) a fault-injection plan. The plan draws from its
    /// own seeded stream, so arming one cannot perturb the simulator's
    /// droop/failure sampling.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
        self.state_epoch += 1;
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Mutable access to the armed fault plan (the simulator advances
    /// droop excursions and samples PMU glitches through this).
    pub fn fault_plan_mut(&mut self) -> Option<&mut FaultPlan> {
        self.fault.as_mut()
    }

    /// Injected-fault counters (zero when no plan is armed).
    pub fn fault_stats(&self) -> FaultStats {
        self.fault
            .as_ref()
            .map(FaultPlan::stats)
            .unwrap_or_default()
    }

    /// True while an injected droop excursion is raising the effective
    /// safe Vmin.
    pub fn droop_excursion_active(&self) -> bool {
        self.fault
            .as_ref()
            .is_some_and(FaultPlan::droop_excursion_active)
    }

    /// The static chip description.
    pub fn spec(&self) -> &ChipSpec {
        &self.spec
    }

    /// A cheap, deterministic digest of the chip's *mutable control
    /// state*: rail millivolts, the per-PMD frequency program, and the
    /// droop-excursion flag. Calibrated models and the spec are
    /// construction-time constants and deliberately excluded, as are the
    /// PMU and mailbox statistics (observational, not control state).
    /// Used by `avfs-analyze`'s model checker to fingerprint explored
    /// states.
    pub fn state_digest(&self) -> u64 {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        h = (h ^ u64::from(self.rail.current().as_mv())).wrapping_mul(FNV_PRIME);
        for step in &self.pmd_steps {
            h = (h ^ u64::from(step.numerator())).wrapping_mul(FNV_PRIME);
        }
        (h ^ u64::from(self.droop_excursion_active())).wrapping_mul(FNV_PRIME)
    }

    /// The CPPC firmware behaviour of this part.
    pub fn behavior(&self) -> CppcBehavior {
        self.behavior
    }

    /// The calibrated Vmin model.
    pub fn vmin_model(&self) -> &VminModel {
        &self.vmin
    }

    /// The calibrated power model.
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// The droop-event model.
    pub fn droop_model(&self) -> &DroopModel {
        &self.droop
    }

    /// The sub-Vmin failure model.
    pub fn failure_model(&self) -> &FailureModel {
        &self.failure
    }

    /// The PMU block.
    pub fn pmu(&self) -> &ChipPmu {
        &self.pmu
    }

    /// Mutable PMU access (the simulator records progress through this).
    pub fn pmu_mut(&mut self) -> &mut ChipPmu {
        &mut self.pmu
    }

    /// The current rail voltage.
    pub fn voltage(&self) -> Millivolts {
        self.rail.current()
    }

    /// The nominal rail voltage.
    pub fn nominal_voltage(&self) -> Millivolts {
        self.rail.nominal()
    }

    /// The frequency step of a PMD.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::InvalidPmd`] for out-of-range PMDs.
    pub fn pmd_freq_step(&self, pmd: PmdId) -> Result<FreqStep, ChipError> {
        self.pmd_steps
            .get(pmd.index())
            .copied()
            .ok_or(ChipError::InvalidPmd(pmd))
    }

    /// Requests a frequency step for one PMD (the cpufreq path).
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::InvalidPmd`] for out-of-range PMDs.
    pub fn set_pmd_freq_step(&mut self, pmd: PmdId, step: FreqStep) -> Result<(), ChipError> {
        let slot = self
            .pmd_steps
            .get_mut(pmd.index())
            .ok_or(ChipError::InvalidPmd(pmd))?;
        if *slot != step {
            *slot = step;
            self.state_epoch += 1;
        }
        Ok(())
    }

    /// Sets every PMD to the same step.
    pub fn set_all_freq_steps(&mut self, step: FreqStep) {
        let mut changed = false;
        for s in &mut self.pmd_steps {
            changed |= *s != step;
            *s = step;
        }
        if changed {
            self.state_epoch += 1;
        }
    }

    /// The requested clock of a PMD in MHz.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::InvalidPmd`] for out-of-range PMDs.
    pub fn pmd_frequency(&self, pmd: PmdId) -> Result<FrequencyMhz, ChipError> {
        Ok(self.pmd_freq_step(pmd)?.frequency(self.spec.fmax()))
    }

    /// The frequency-class of the rail requirement given which PMDs are
    /// currently *utilized* (idle PMDs do not constrain Vmin).
    pub fn freq_vmin_class(&self, utilized: &[PmdId]) -> FreqVminClass {
        self.behavior.vmin_class_of_steps(
            utilized
                .iter()
                .filter_map(|p| self.pmd_steps.get(p.index()).copied()),
        )
    }

    /// The safe Vmin of the *current* chip configuration for an
    /// allocation of `active_cores`, assuming a typical workload
    /// (sensitivity 0).
    pub fn current_safe_vmin(&self, active_cores: CoreSet) -> Millivolts {
        let utilized = active_cores.utilized_pmds(&self.spec);
        let q = VminQuery {
            freq_class: self.freq_vmin_class(&utilized),
            utilized_pmds: utilized.len(),
            active_threads: active_cores.len(),
            workload_sensitivity: 0.0,
        };
        let base = self.vmin.safe_vmin_on(&q, &utilized);
        match &self.fault {
            Some(plan) => plan.effective_vmin(base, self.rail.nominal()),
            None => base,
        }
    }

    /// True when the rail currently satisfies the safe Vmin of the given
    /// allocation — the invariant the daemon's fail-safe ordering
    /// maintains.
    pub fn is_voltage_safe_for(&self, active_cores: CoreSet) -> bool {
        self.voltage() >= self.current_safe_vmin(active_cores)
    }

    /// Processes a SLIMpro mailbox request.
    ///
    /// When a fault plan is armed the request may be refused, dropped,
    /// or — for a latency spike — applied with the *response* lost, so
    /// the caller observes a drop but the state changed underneath
    /// (retries must be idempotent, and the daemon's are).
    pub fn mailbox(&mut self, req: MailboxRequest) -> MailboxResponse {
        self.mailbox_stats.requests += 1;
        let op = mailbox_op_label(&req);
        self.telemetry.counter_inc("chip.mailbox.requests");
        self.telemetry
            .trace(TraceKind::MailboxCall, || vec![("op", Value::Str(op))]);
        match self.fault.as_mut().and_then(FaultPlan::sample_mailbox) {
            Some(MailboxFault::Refuse) => {
                self.mailbox_stats.refusals += 1;
                self.telemetry.counter_inc("chip.mailbox.injected_refusals");
                self.telemetry.trace(TraceKind::MailboxFault, || {
                    vec![
                        ("op", Value::Str(op)),
                        ("fault", Value::Str("injected_refuse")),
                    ]
                });
                return MailboxResponse::Refused {
                    reason: "injected fault: management processor busy".to_string(),
                };
            }
            Some(MailboxFault::Drop) => {
                self.mailbox_stats.drops += 1;
                self.telemetry.counter_inc("chip.mailbox.injected_drops");
                self.telemetry.trace(TraceKind::MailboxFault, || {
                    vec![
                        ("op", Value::Str(op)),
                        ("fault", Value::Str("injected_drop")),
                    ]
                });
                return MailboxResponse::Dropped;
            }
            Some(MailboxFault::LatencySpike) => {
                // Apply the request, then lose the response.
                self.mailbox_stats.drops += 1;
                self.telemetry.counter_inc("chip.mailbox.injected_drops");
                self.telemetry.trace(TraceKind::MailboxFault, || {
                    vec![
                        ("op", Value::Str(op)),
                        ("fault", Value::Str("injected_latency_spike")),
                    ]
                });
                let _ = self.mailbox_apply(req);
                return MailboxResponse::Dropped;
            }
            None => {}
        }
        self.mailbox_apply(req)
    }

    /// The fault-free mailbox path: actually processes the request.
    fn mailbox_apply(&mut self, req: MailboxRequest) -> MailboxResponse {
        match req {
            MailboxRequest::SetVoltage(mv) => {
                let before = self.rail.current();
                match self.rail.set(mv) {
                    Ok(()) => {
                        if self.rail.current() != before {
                            self.state_epoch += 1;
                        }
                        self.mailbox_stats.voltage_changes += 1;
                        self.telemetry.counter_inc("chip.mailbox.voltage_sets");
                        MailboxResponse::VoltageSet(mv)
                    }
                    Err(e) => {
                        self.mailbox_stats.refusals += 1;
                        self.telemetry.counter_inc("chip.mailbox.window_refusals");
                        self.telemetry.trace(TraceKind::MailboxFault, || {
                            vec![
                                ("op", Value::Str("set_voltage")),
                                ("fault", Value::Str("window_refused")),
                                ("requested_mv", Value::U64(u64::from(mv.as_mv()))),
                            ]
                        });
                        MailboxResponse::Refused {
                            reason: e.to_string(),
                        }
                    }
                }
            }
            MailboxRequest::GetVoltage => MailboxResponse::Voltage(self.rail.current()),
            MailboxRequest::ReadPowerSensor => MailboxResponse::PowerMw(self.last_sensor_mw),
            MailboxRequest::GetFirmwareInfo => {
                MailboxResponse::FirmwareInfo(format!("SLIMpro/{} (simulated)", self.spec.name))
            }
        }
    }

    /// Mailbox traffic statistics.
    pub fn mailbox_stats(&self) -> MailboxStats {
        self.mailbox_stats
    }

    /// Convenience: set the rail voltage, as the daemon does via the
    /// mailbox.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::VoltageOutOfWindow`] if the request is outside
    /// the regulated window (a caller bug — retrying cannot help),
    /// [`ChipError::MailboxRefused`] if an in-range request was refused
    /// (transient — retry may succeed), and [`ChipError::MailboxDropped`]
    /// if the request or its response was lost in flight.
    pub fn set_voltage(&mut self, mv: Millivolts) -> Result<(), ChipError> {
        let in_range = mv >= self.rail.floor() && mv <= self.rail.nominal();
        match self.mailbox(MailboxRequest::SetVoltage(mv)) {
            MailboxResponse::VoltageSet(_) => Ok(()),
            MailboxResponse::Dropped => Err(ChipError::MailboxDropped),
            MailboxResponse::Refused { reason } if in_range => {
                Err(ChipError::MailboxRefused { reason })
            }
            _ => Err(ChipError::VoltageOutOfWindow {
                requested: mv,
                floor: self.rail.floor(),
                nominal: self.rail.nominal(),
            }),
        }
    }

    /// Evaluates instantaneous power and latches it into the sensor.
    /// Served from the construction-time [`PowerLut`] (bit-identical to
    /// [`PowerModel::power_w`]; off-table inputs fall back to the live
    /// model).
    pub fn evaluate_power_w(&mut self, inputs: &PowerInputs) -> f64 {
        let w = self.power_lut.power_w(inputs);
        self.last_sensor_mw = (w * 1_000.0).round() as u64;
        w
    }

    /// The construction-time power lookup table.
    pub fn power_lut(&self) -> &PowerLut {
        &self.power_lut
    }

    /// Applies a scripted aging/temperature [`VminDrift`]: the chip's
    /// *true* safe-Vmin surface shifts uniformly, so any policy table
    /// characterized before the event is now stale. Traced as a
    /// [`TraceKind::DriftEvent`].
    pub fn apply_vmin_drift(&mut self, drift: VminDrift) {
        self.vmin = self.vmin.with_drift(drift);
        self.state_epoch += 1;
        self.telemetry.counter_inc("chip.vmin.drift_events");
        self.telemetry.trace(TraceKind::DriftEvent, || {
            vec![
                ("base_shift_mv", Value::I64(i64::from(drift.base_shift_mv))),
                (
                    "pmd_offset_shift_mv",
                    Value::I64(i64::from(drift.pmd_offset_shift_mv)),
                ),
            ]
        });
    }

    /// Runs one characterization stress probe at the *current* rail
    /// voltage: the outcome a real campaign would observe when pinning
    /// the queried stress pattern to `pmds` and letting it run.
    ///
    /// The chip's Vmin model stays hidden ground truth — the caller only
    /// sees a sampled [`RunOutcome`], which is failure-free at or above
    /// the true safe Vmin and increasingly crash-prone below it. An
    /// active injected droop excursion raises the effective safe Vmin
    /// exactly as it does for [`Chip::current_safe_vmin`], so probes
    /// taken during an excursion are biased pessimistic (campaigns must
    /// detect and discard them).
    pub fn probe_stress(
        &mut self,
        q: &VminQuery,
        pmds: &[PmdId],
        rng: &mut RngStream,
    ) -> RunOutcome {
        let truth = self.vmin.safe_vmin_on(q, pmds);
        let effective = match &self.fault {
            Some(plan) => plan.effective_vmin(truth, self.rail.nominal()),
            None => truth,
        };
        let class = self.vmin.droop_class(q.utilized_pmds);
        self.failure
            .sample_outcome(self.rail.current(), effective, class, rng)
    }
}

/// Stable label for a mailbox request, used in trace events.
fn mailbox_op_label(req: &MailboxRequest) -> &'static str {
    match req {
        MailboxRequest::SetVoltage(_) => "set_voltage",
        MailboxRequest::GetVoltage => "get_voltage",
        MailboxRequest::ReadPowerSensor => "read_power_sensor",
        MailboxRequest::GetFirmwareInfo => "get_firmware_info",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::topology::CoreId;

    #[test]
    fn defaults_are_nominal_and_fmax() {
        let chip = presets::xgene2().build();
        assert_eq!(chip.voltage().as_mv(), 980);
        for pmd in chip.spec().all_pmds() {
            assert_eq!(chip.pmd_freq_step(pmd).unwrap(), FreqStep::MAX);
            assert_eq!(chip.pmd_frequency(pmd).unwrap().as_mhz(), 2400);
        }
    }

    #[test]
    fn per_pmd_frequency_is_independent() {
        let mut chip = presets::xgene3().build();
        chip.set_pmd_freq_step(PmdId::new(3), FreqStep::HALF)
            .unwrap();
        assert_eq!(chip.pmd_frequency(PmdId::new(3)).unwrap().as_mhz(), 1500);
        assert_eq!(chip.pmd_frequency(PmdId::new(4)).unwrap().as_mhz(), 3000);
    }

    #[test]
    fn invalid_pmd_is_an_error() {
        let mut chip = presets::xgene2().build();
        assert_eq!(
            chip.set_pmd_freq_step(PmdId::new(99), FreqStep::MAX),
            Err(ChipError::InvalidPmd(PmdId::new(99)))
        );
        assert!(chip.pmd_frequency(PmdId::new(99)).is_err());
    }

    #[test]
    fn mailbox_voltage_roundtrip() {
        let mut chip = presets::xgene3().build();
        let resp = chip.mailbox(MailboxRequest::SetVoltage(Millivolts::new(830)));
        assert_eq!(resp, MailboxResponse::VoltageSet(Millivolts::new(830)));
        assert_eq!(
            chip.mailbox(MailboxRequest::GetVoltage),
            MailboxResponse::Voltage(Millivolts::new(830))
        );
        assert_eq!(chip.mailbox_stats().voltage_changes, 1);
    }

    #[test]
    fn mailbox_refuses_over_nominal() {
        let mut chip = presets::xgene3().build();
        let resp = chip.mailbox(MailboxRequest::SetVoltage(Millivolts::new(1_000)));
        assert!(!resp.is_ok());
        assert_eq!(chip.voltage().as_mv(), 870);
        assert_eq!(chip.mailbox_stats().refusals, 1);
        assert!(chip.set_voltage(Millivolts::new(1_000)).is_err());
    }

    #[test]
    fn vmin_class_ignores_idle_pmds() {
        let mut chip = presets::xgene2().build();
        // Drop PMD3 to a divided step, but leave it out of the utilized set.
        chip.set_pmd_freq_step(PmdId::new(3), FreqStep::new(2).unwrap())
            .unwrap();
        let class_active_fast = chip.freq_vmin_class(&[PmdId::new(0)]);
        assert_eq!(class_active_fast, FreqVminClass::Max);
        // Now only the divided PMD is utilized.
        let class_divided = chip.freq_vmin_class(&[PmdId::new(3)]);
        assert_eq!(class_divided, FreqVminClass::Divided);
    }

    #[test]
    fn safe_vmin_tracks_allocation_width() {
        let chip = presets::xgene3().build();
        let narrow: CoreSet = [0u16, 1].into_iter().map(CoreId::new).collect(); // 1 PMD
        let wide = CoreSet::first_n(32); // 16 PMDs
        assert!(chip.current_safe_vmin(narrow) < chip.current_safe_vmin(wide));
    }

    #[test]
    fn nominal_voltage_is_always_safe() {
        let chip = presets::xgene3().build();
        assert!(chip.is_voltage_safe_for(CoreSet::first_n(32)));
    }

    #[test]
    fn undervolted_rail_can_become_unsafe_for_wider_allocation() {
        let mut chip = presets::xgene3().build();
        let narrow: CoreSet = [0u16, 1].into_iter().map(CoreId::new).collect();
        let vmin_narrow = chip.current_safe_vmin(narrow);
        chip.set_voltage(vmin_narrow).unwrap();
        assert!(chip.is_voltage_safe_for(narrow));
        assert!(!chip.is_voltage_safe_for(CoreSet::first_n(32)));
    }

    #[test]
    fn power_sensor_latches() {
        let mut chip = presets::xgene2().build();
        let inputs = PowerInputs {
            voltage: chip.voltage(),
            pmd_loads: vec![crate::power::PmdLoad::IDLE; 4],
            mem_traffic: 0.0,
        };
        let w = chip.evaluate_power_w(&inputs);
        match chip.mailbox(MailboxRequest::ReadPowerSensor) {
            MailboxResponse::PowerMw(mw) => {
                assert_eq!(mw, (w * 1000.0).round() as u64);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn injected_mailbox_faults_surface_as_typed_errors() {
        use crate::fault::{FaultPlan, FaultRates};
        let mut chip = presets::xgene3().build();
        chip.set_fault_plan(Some(FaultPlan::new(
            1,
            FaultRates {
                mailbox: 1.0,
                ..FaultRates::ZERO
            },
        )));
        let mut refused = 0;
        let mut dropped = 0;
        for _ in 0..50 {
            match chip.set_voltage(Millivolts::new(860)) {
                Err(ChipError::MailboxRefused { .. }) => refused += 1,
                Err(ChipError::MailboxDropped) => dropped += 1,
                other => panic!("expected an injected fault, got {other:?}"),
            }
        }
        assert!(refused > 0 && dropped > 0);
        assert_eq!(chip.fault_stats().mailbox_total(), 50);
        // Out-of-range stays out-of-range even while faults are armed.
        let mut clean = presets::xgene3().build();
        assert!(matches!(
            clean.set_voltage(Millivolts::new(1_000)),
            Err(ChipError::VoltageOutOfWindow { .. })
        ));
    }

    #[test]
    fn latency_spike_applies_the_request_but_loses_the_response() {
        use crate::fault::{FaultPlan, FaultRates};
        let mut chip = presets::xgene3().build();
        chip.set_fault_plan(Some(FaultPlan::new(
            0,
            FaultRates {
                mailbox: 1.0,
                ..FaultRates::ZERO
            },
        )));
        // Drive until a latency spike lands; the rail must have moved
        // even though the caller saw a drop.
        let mut spiked = false;
        for _ in 0..200 {
            let before = chip.fault_stats().latency_spikes;
            let r = chip.set_voltage(Millivolts::new(860));
            assert!(r.is_err());
            if chip.fault_stats().latency_spikes > before {
                assert_eq!(chip.voltage().as_mv(), 860);
                spiked = true;
                break;
            }
        }
        assert!(spiked, "no latency spike in 200 full-rate draws");
    }

    #[test]
    fn droop_excursion_raises_effective_vmin_then_clears() {
        use crate::fault::{FaultPlan, FaultRates};
        let mut chip = presets::xgene3().build();
        let busy = CoreSet::first_n(8);
        let base = chip.current_safe_vmin(busy);
        chip.set_fault_plan(Some(FaultPlan::new(
            2,
            FaultRates {
                droop: 1.0,
                ..FaultRates::ZERO
            },
        )));
        assert_eq!(chip.current_safe_vmin(busy), base);
        chip.fault_plan_mut().unwrap().droop_check();
        assert!(chip.droop_excursion_active());
        let raised = chip.current_safe_vmin(busy);
        assert!(raised > base, "{raised} vs {base}");
        assert!(raised <= chip.nominal_voltage());
        // A rail sitting exactly at the base Vmin is now unsafe.
        chip.set_voltage(base).unwrap();
        assert!(!chip.is_voltage_safe_for(busy));
        chip.set_voltage(chip.nominal_voltage()).unwrap();
        assert!(chip.is_voltage_safe_for(busy));
    }

    #[test]
    fn zero_rate_plan_changes_nothing() {
        use crate::fault::FaultPlan;
        let mut armed = presets::xgene2().build();
        armed.set_fault_plan(Some(FaultPlan::uniform(9, 0.0)));
        let mut plain = presets::xgene2().build();
        for mv in [900u32, 850, 820, 900] {
            assert_eq!(
                armed.set_voltage(Millivolts::new(mv)).is_ok(),
                plain.set_voltage(Millivolts::new(mv)).is_ok()
            );
        }
        assert_eq!(armed.voltage(), plain.voltage());
        assert_eq!(armed.mailbox_stats(), plain.mailbox_stats());
        assert_eq!(
            armed.current_safe_vmin(CoreSet::first_n(8)),
            plain.current_safe_vmin(CoreSet::first_n(8))
        );
    }

    #[test]
    fn drift_raises_the_true_safe_vmin() {
        let mut chip = presets::xgene3().build();
        let busy = CoreSet::first_n(8);
        let before = chip.current_safe_vmin(busy);
        chip.apply_vmin_drift(VminDrift::aging(15));
        assert_eq!(chip.current_safe_vmin(busy) - before, 15);
    }

    #[test]
    fn probes_above_the_true_vmin_never_fail_and_deep_probes_do() {
        let mut chip = presets::xgene2().build();
        let q = VminQuery {
            freq_class: FreqVminClass::Max,
            utilized_pmds: 2,
            active_threads: 4,
            workload_sensitivity: 1.0,
        };
        let pmds = [PmdId::new(0), PmdId::new(1)];
        let truth = chip.vmin_model().safe_vmin_on(&q, &pmds);
        let crash = chip.vmin_model().crash_point(truth);
        let mut rng = avfs_sim::RngStream::from_root(7, "probe-test");
        chip.set_voltage(truth).unwrap();
        for _ in 0..200 {
            assert_eq!(chip.probe_stress(&q, &pmds, &mut rng), RunOutcome::Correct);
        }
        chip.set_voltage(crash).unwrap();
        let failures = (0..200)
            .filter(|_| chip.probe_stress(&q, &pmds, &mut rng).is_failure())
            .count();
        assert!(
            failures > 150,
            "only {failures}/200 failed at the crash point"
        );
    }

    #[test]
    fn firmware_info_names_the_chip() {
        let mut chip = presets::xgene3().build();
        match chip.mailbox(MailboxRequest::GetFirmwareInfo) {
            MailboxResponse::FirmwareInfo(s) => assert!(s.contains("X-Gene 3")),
            other => panic!("unexpected response {other:?}"),
        }
    }
}
