//! Per-PMD frequency control with clock-skipping / clock-division
//! semantics.
//!
//! Both X-Gene chips expose frequency in **1/8 steps of fmax** (§II-A).
//! How a step is *implemented* determines its safe-Vmin behaviour (§II-B):
//!
//! * ratio > 1/2 — **clock skipping** on the input clock: the effective
//!   pulse train still contains full-rate edges, so Vmin matches the
//!   maximum frequency ([`FreqVminClass::Max`]).
//! * ratio = 1/2 — natural **clock division**: Vmin drops a step
//!   ([`FreqVminClass::Reduced`], ≈3 % on the studied parts).
//! * ratio < 1/2 — chip-specific:
//!   - **X-Gene 2** under CPPC reaches true division below half speed, and
//!     the paper measured a further large Vmin drop (≈15 % total at
//!     0.9 GHz): [`FreqVminClass::Divided`].
//!   - **X-Gene 3** showed no benefit below half speed — Vmin stays at the
//!     half-speed level, so such steps only cost performance.
//!
//! [`CppcBehavior`] encodes those two empirical mappings.

use crate::error::ChipError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A clock frequency in MHz.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct FrequencyMhz(u32);

impl FrequencyMhz {
    /// Creates a frequency from raw MHz.
    pub const fn new(mhz: u32) -> Self {
        FrequencyMhz(mhz)
    }

    /// Raw MHz.
    pub const fn as_mhz(self) -> u32 {
        self.0
    }

    /// GHz as a float.
    pub fn as_ghz(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
}

impl fmt::Display for FrequencyMhz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}MHz", self.0)
    }
}

impl From<u32> for FrequencyMhz {
    fn from(mhz: u32) -> Self {
        FrequencyMhz(mhz)
    }
}

/// A frequency step: `step/8 × fmax`, with `step` in `1..=8`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FreqStep(u8);

impl FreqStep {
    /// The maximum step (full speed, 8/8).
    pub const MAX: FreqStep = FreqStep(8);
    /// Half speed (4/8), the natural clock-division point.
    pub const HALF: FreqStep = FreqStep(4);
    /// The lowest step (1/8 of fmax).
    pub const MIN: FreqStep = FreqStep(1);

    /// Creates a step.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::InvalidFreqStep`] unless `1 <= step <= 8`.
    pub fn new(step: u8) -> Result<Self, ChipError> {
        if (1..=8).contains(&step) {
            Ok(FreqStep(step))
        } else {
            Err(ChipError::InvalidFreqStep(step))
        }
    }

    /// Creates a step, clamping out-of-range requests into `1..=8`.
    ///
    /// For call sites whose argument is a constant or already validated,
    /// where a `Result` would only invite `expect` (see `avfs-analyze`'s
    /// lint pass).
    pub const fn new_clamped(step: u8) -> Self {
        if step < 1 {
            FreqStep(1)
        } else if step > 8 {
            FreqStep(8)
        } else {
            FreqStep(step)
        }
    }

    /// The raw numerator (denominator is always 8).
    pub const fn numerator(self) -> u8 {
        self.0
    }

    /// The requested frequency for a chip with the given fmax.
    pub fn frequency(self, fmax: FrequencyMhz) -> FrequencyMhz {
        FrequencyMhz::new(fmax.as_mhz() * self.0 as u32 / 8)
    }

    /// The ratio `step/8` as a float.
    pub fn ratio(self) -> f64 {
        self.0 as f64 / 8.0
    }

    /// All steps from lowest to highest.
    pub fn all() -> impl Iterator<Item = FreqStep> {
        (1..=8).map(FreqStep)
    }

    /// The next step up, saturating at [`FreqStep::MAX`].
    pub fn step_up(self) -> FreqStep {
        let next = FreqStep((self.0 + 1).min(8));
        debug_assert!(
            (1..=8).contains(&next.0),
            "step_up left the valid range: {next}"
        );
        next
    }

    /// The next step down, saturating at [`FreqStep::MIN`].
    pub fn step_down(self) -> FreqStep {
        let next = FreqStep((self.0 - 1).max(1));
        debug_assert!(
            (1..=8).contains(&next.0),
            "step_down left the valid range: {next}"
        );
        next
    }

    /// The step nearest to `target` for a chip with the given fmax,
    /// rounding up so that the delivered frequency is at least the target
    /// where possible.
    pub fn nearest_at_least(target: FrequencyMhz, fmax: FrequencyMhz) -> FreqStep {
        for step in Self::all() {
            if step.frequency(fmax) >= target {
                return step;
            }
        }
        FreqStep::MAX
    }
}

impl fmt::Display for FreqStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/8", self.0)
    }
}

/// The safe-Vmin class a frequency setting belongs to.
///
/// Lower classes permit lower safe Vmin; the ordering is
/// `Max > Reduced > Divided` in required voltage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FreqVminClass {
    /// Vmin as deep as clock division allows (X-Gene 2 below half speed;
    /// ≈15 % below the max-frequency Vmin).
    Divided,
    /// Vmin one skipping step below maximum (half speed; ≈3 % lower).
    Reduced,
    /// Vmin as at the maximum frequency (any ratio above 1/2).
    Max,
}

impl fmt::Display for FreqVminClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FreqVminClass::Divided => write!(f, "divided"),
            FreqVminClass::Reduced => write!(f, "reduced"),
            FreqVminClass::Max => write!(f, "max"),
        }
    }
}

/// How a chip's CPPC firmware maps requested steps to Vmin classes and
/// effective frequencies (§II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CppcBehavior {
    /// X-Gene 2: above half speed the CPPC interleaving keeps Vmin at the
    /// max-frequency level; half speed earns the skipping step; below half
    /// speed true clock division activates and Vmin drops dramatically.
    DivisionBelowHalf,
    /// X-Gene 3: no additional Vmin benefit below half speed — every step
    /// at or below half maps to [`FreqVminClass::Reduced`].
    NoBenefitBelowHalf,
}

impl CppcBehavior {
    /// The Vmin class for a requested step under this firmware behaviour.
    pub fn vmin_class(self, step: FreqStep) -> FreqVminClass {
        let n = step.numerator();
        if n > 4 {
            FreqVminClass::Max
        } else if n == 4 {
            FreqVminClass::Reduced
        } else {
            match self {
                CppcBehavior::DivisionBelowHalf => FreqVminClass::Divided,
                CppcBehavior::NoBenefitBelowHalf => FreqVminClass::Reduced,
            }
        }
    }

    /// The Vmin class governing a *set* of per-PMD steps: the chip-wide
    /// rail must satisfy the most demanding PMD, i.e. the maximum class.
    pub fn vmin_class_of_steps<I: IntoIterator<Item = FreqStep>>(self, steps: I) -> FreqVminClass {
        steps
            .into_iter()
            .map(|s| self.vmin_class(s))
            .max()
            .unwrap_or(FreqVminClass::Divided)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_construction_and_bounds() {
        assert!(FreqStep::new(0).is_err());
        assert!(FreqStep::new(9).is_err());
        assert_eq!(FreqStep::new(8).unwrap(), FreqStep::MAX);
        assert_eq!(FreqStep::new(4).unwrap(), FreqStep::HALF);
    }

    #[test]
    fn new_clamped_saturates_at_the_bounds() {
        assert_eq!(FreqStep::new_clamped(0), FreqStep::MIN);
        assert_eq!(FreqStep::new_clamped(3).numerator(), 3);
        assert_eq!(FreqStep::new_clamped(8), FreqStep::MAX);
        assert_eq!(FreqStep::new_clamped(200), FreqStep::MAX);
    }

    #[test]
    fn step_frequencies_on_xgene2() {
        // fmax = 2400: steps are multiples of 300 MHz, as in the paper.
        let freqs: Vec<u32> = FreqStep::all()
            .map(|s| s.frequency(FrequencyMhz::new(2400)).as_mhz())
            .collect();
        assert_eq!(freqs, vec![300, 600, 900, 1200, 1500, 1800, 2100, 2400]);
    }

    #[test]
    fn step_frequencies_on_xgene3() {
        // fmax = 3000: 375 MHz granularity.
        let fmax = FrequencyMhz::new(3000);
        assert_eq!(FreqStep::MIN.frequency(fmax).as_mhz(), 375);
        assert_eq!(FreqStep::HALF.frequency(fmax).as_mhz(), 1500);
        assert_eq!(FreqStep::MAX.frequency(fmax).as_mhz(), 3000);
    }

    #[test]
    fn step_up_down_saturate() {
        assert_eq!(FreqStep::MAX.step_up(), FreqStep::MAX);
        assert_eq!(FreqStep::MIN.step_down(), FreqStep::MIN);
        assert_eq!(FreqStep::HALF.step_up().numerator(), 5);
        assert_eq!(FreqStep::HALF.step_down().numerator(), 3);
    }

    #[test]
    fn nearest_at_least_rounds_up() {
        let fmax = FrequencyMhz::new(2400);
        // 1000 MHz on a 2400 MHz chip needs step 4 (1200 MHz).
        assert_eq!(
            FreqStep::nearest_at_least(FrequencyMhz::new(1000), fmax).numerator(),
            4
        );
        // Exactly 1200 also picks step 4.
        assert_eq!(
            FreqStep::nearest_at_least(FrequencyMhz::new(1200), fmax).numerator(),
            4
        );
        // Anything above fmax saturates at 8/8.
        assert_eq!(
            FreqStep::nearest_at_least(FrequencyMhz::new(99_999), fmax),
            FreqStep::MAX
        );
    }

    #[test]
    fn xgene2_class_mapping() {
        let b = CppcBehavior::DivisionBelowHalf;
        // 2.4 GHz (8/8) and 1.5..2.1 GHz: max class.
        assert_eq!(b.vmin_class(FreqStep::MAX), FreqVminClass::Max);
        assert_eq!(b.vmin_class(FreqStep::new(5).unwrap()), FreqVminClass::Max);
        // 1.2 GHz (4/8): reduced (the paper's ≈3 % step).
        assert_eq!(b.vmin_class(FreqStep::HALF), FreqVminClass::Reduced);
        // 0.9 GHz (3/8): divided (the paper's ≈15 % point).
        assert_eq!(
            b.vmin_class(FreqStep::new(3).unwrap()),
            FreqVminClass::Divided
        );
    }

    #[test]
    fn xgene3_class_mapping() {
        let b = CppcBehavior::NoBenefitBelowHalf;
        assert_eq!(b.vmin_class(FreqStep::MAX), FreqVminClass::Max);
        assert_eq!(b.vmin_class(FreqStep::HALF), FreqVminClass::Reduced);
        // Below half: no further benefit on X-Gene 3.
        assert_eq!(
            b.vmin_class(FreqStep::new(2).unwrap()),
            FreqVminClass::Reduced
        );
    }

    #[test]
    fn class_of_steps_takes_the_worst() {
        let b = CppcBehavior::DivisionBelowHalf;
        let steps = [FreqStep::new(3).unwrap(), FreqStep::MAX];
        assert_eq!(b.vmin_class_of_steps(steps), FreqVminClass::Max);
        let low = [FreqStep::new(3).unwrap(), FreqStep::new(2).unwrap()];
        assert_eq!(b.vmin_class_of_steps(low), FreqVminClass::Divided);
        // Empty set is vacuously the least demanding class.
        assert_eq!(
            b.vmin_class_of_steps(std::iter::empty()),
            FreqVminClass::Divided
        );
    }

    #[test]
    fn class_ordering_matches_voltage_demand() {
        assert!(FreqVminClass::Max > FreqVminClass::Reduced);
        assert!(FreqVminClass::Reduced > FreqVminClass::Divided);
    }
}
