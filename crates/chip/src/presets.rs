//! Calibrated presets for the two studied chips, plus a builder for
//! custom variants.
//!
//! The numeric tables here are the reproduction's stand-in for silicon:
//! Vmin rows match Table II (X-Gene 3) and the Figure 3/10 percentages
//! (X-Gene 2: ≈3 % at half speed, ≈15 % with clock division, ≈4 % from
//! core allocation, ≤1 % workload in multicore). Power constants land the
//! full-load and idle operating points near the paper's reported
//! TDP / average-power scales.

use crate::chip::Chip;
use crate::droop::DroopModel;
use crate::failure::FailureModel;
use crate::freq::CppcBehavior;
use crate::power::PowerModel;
use crate::topology::{ChipSpec, Technology};
use crate::vmin::{VminModel, VminTables};
use avfs_sim::RngStream;

/// Builder for a chip instance ([C-BUILDER]); obtain one from
/// [`xgene2`], [`xgene3`], or [`custom`].
#[derive(Debug, Clone)]
pub struct ChipBuilder {
    spec: ChipSpec,
    behavior: CppcBehavior,
    tables: VminTables,
    power: PowerModel,
    droop: DroopModel,
}

impl ChipBuilder {
    /// Replaces the Vmin tables (for ablations / sensitivity sweeps).
    pub fn vmin_tables(mut self, tables: VminTables) -> Self {
        self.tables = tables;
        self
    }

    /// Replaces the power model.
    pub fn power_model(mut self, power: PowerModel) -> Self {
        self.power = power;
        self
    }

    /// Replaces the droop model.
    pub fn droop_model(mut self, droop: DroopModel) -> Self {
        self.droop = droop;
        self
    }

    /// Re-draws the per-PMD static-variation offsets from `seed`,
    /// modelling a different chip specimen of the same part. The offset
    /// span depends on the process: ±15 mV on 28 nm bulk, ±10 mV on 16 nm
    /// FinFET (§III-A reports ≤30 mV / ≤20 mV core-to-core spreads).
    pub fn static_variation_seed(mut self, seed: u64) -> Self {
        let span = match self.spec.technology {
            Technology::Bulk28nm => 15.0,
            Technology::FinFet16nm => 10.0,
        };
        let mut rng = RngStream::from_root(seed, "chip-static-variation");
        self.tables.pmd_offset_mv = (0..self.spec.pmds())
            .map(|_| rng.uniform(-span, span).round() as i32)
            .collect();
        self
    }

    /// Narrows or widens the guardband: shifts every Vmin table entry by
    /// `delta_mv` (positive = more conservative). Used by the
    /// guardband-sensitivity ablation.
    pub fn guardband_shift_mv(mut self, delta_mv: i32) -> Self {
        for row in &mut self.tables.base_mv {
            for v in row.iter_mut() {
                *v = v.saturating_add_signed(delta_mv);
            }
        }
        self
    }

    /// Read-only view of the spec being built.
    pub fn spec(&self) -> &ChipSpec {
        &self.spec
    }

    /// Assembles the chip.
    pub fn build(&self) -> Chip {
        let failure = FailureModel::new(self.tables.unsafe_span_mv);
        let vmin = VminModel::new(self.spec.clone(), self.tables.clone());
        Chip::new(
            self.spec.clone(),
            self.behavior,
            vmin,
            self.power.clone(),
            self.droop.clone(),
            failure,
        )
    }
}

/// The X-Gene 2 preset: 8 cores / 4 PMDs, 2.4 GHz, 980 mV nominal, 28 nm.
pub fn xgene2() -> ChipBuilder {
    let spec = ChipSpec {
        name: "X-Gene 2".into(),
        cores: 8,
        cores_per_pmd: 2,
        fmax_mhz: 2400,
        nominal_mv: 980,
        vreg_floor_mv: 600,
        l1i_kib: 32,
        l1d_kib: 32,
        l2_kib: 256,
        l3_kib: 8 * 1024,
        tdp_w: 35.0,
        technology: Technology::Bulk28nm,
    };
    let tables = VminTables {
        // Rows: Divided (0.9 GHz), Reduced (1.2 GHz), Max (≥1.5 GHz).
        // Columns: droop classes D25/D35/D45/D55; on this 4-PMD chip the
        // utilized-PMD mapping is 1 PMD→D35, 2→D45, 3–4→D55.
        base_mv: [
            // Divided (0.9 GHz): ≈15 % below max (Fig. 10). The
            // core-allocation discount shrinks here — at the divided
            // clock the PDN stress is already low, so allocation buys
            // little extra headroom.
            [735, 745, 755, 765],
            [805, 822, 838, 870], // reduced: ≈3 % below max
            [830, 850, 865, 900], // max frequency
        ],
        // Fig. 4: PMD2 (cores 4,5) is the most robust; PMD0/PMD1 the most
        // sensitive. Spread ≈27 mV ≲ the reported 30 mV core-to-core.
        pmd_offset_mv: vec![12, 10, -15, 0],
        workload_span_mv: 40,
        unsafe_span_mv: 55,
    };
    let power = PowerModel {
        nominal_mv: 980,
        k_dyn_core_w_per_ghz: 1.20,
        k_pmd_w_per_ghz: 0.30,
        k_idle_core_w_per_ghz: 0.08,
        leak_w: 2.0,
        uncore_static_w: 1.2,
        uncore_dyn_w: 0.8,
        cores_per_pmd: 2,
    };
    ChipBuilder {
        spec,
        behavior: CppcBehavior::DivisionBelowHalf,
        tables,
        power,
        droop: DroopModel::default(),
    }
}

/// The X-Gene 3 preset: 32 cores / 16 PMDs, 3.0 GHz, 870 mV nominal,
/// 16 nm FinFET.
pub fn xgene3() -> ChipBuilder {
    let spec = ChipSpec {
        name: "X-Gene 3".into(),
        cores: 32,
        cores_per_pmd: 2,
        fmax_mhz: 3000,
        nominal_mv: 870,
        vreg_floor_mv: 600,
        l1i_kib: 32,
        l1d_kib: 32,
        l2_kib: 256,
        l3_kib: 32 * 1024,
        tdp_w: 125.0,
        technology: Technology::FinFet16nm,
    };
    let tables = VminTables {
        // Max and Reduced rows are Table II verbatim; X-Gene 3 gains
        // nothing below half speed, so Divided == Reduced (§II-B).
        base_mv: [
            [770, 780, 790, 820],
            [770, 780, 790, 820],
            [780, 800, 810, 830],
        ],
        pmd_offset_mv: vec![5, 2, -8, 3, 7, -4, 0, 2, -6, 6, 1, -9, 4, 0, -2, 8],
        workload_span_mv: 20,
        unsafe_span_mv: 45,
    };
    let power = PowerModel {
        nominal_mv: 870,
        k_dyn_core_w_per_ghz: 0.95,
        k_pmd_w_per_ghz: 0.25,
        k_idle_core_w_per_ghz: 0.06,
        leak_w: 8.0,
        uncore_static_w: 4.0,
        uncore_dyn_w: 2.5,
        cores_per_pmd: 2,
    };
    ChipBuilder {
        spec,
        behavior: CppcBehavior::NoBenefitBelowHalf,
        tables,
        power,
        droop: DroopModel::default(),
    }
}

/// A builder seeded from an arbitrary spec; Vmin tables and power
/// constants are scaled heuristically from the closest preset and should
/// be reviewed before drawing conclusions.
pub fn custom(spec: ChipSpec, behavior: CppcBehavior) -> ChipBuilder {
    let base = match spec.technology {
        Technology::Bulk28nm => xgene2(),
        Technology::FinFet16nm => xgene3(),
    };
    ChipBuilder {
        spec,
        behavior,
        tables: base.tables,
        power: base.power,
        droop: base.droop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::FreqVminClass;
    use crate::topology::CoreSet;
    use crate::vmin::VminQuery;
    use crate::voltage::Millivolts;

    #[test]
    fn xgene2_matches_table1() {
        let chip = xgene2().build();
        let s = chip.spec();
        assert_eq!(s.cores, 8);
        assert_eq!(s.pmds(), 4);
        assert_eq!(s.fmax_mhz, 2400);
        assert_eq!(s.nominal_mv, 980);
        assert_eq!(s.l3_kib, 8192);
        assert_eq!(s.tdp_w, 35.0);
    }

    #[test]
    fn xgene3_matches_table1() {
        let chip = xgene3().build();
        let s = chip.spec();
        assert_eq!(s.cores, 32);
        assert_eq!(s.pmds(), 16);
        assert_eq!(s.fmax_mhz, 3000);
        assert_eq!(s.nominal_mv, 870);
        assert_eq!(s.l3_kib, 32 * 1024);
        assert_eq!(s.tdp_w, 125.0);
    }

    #[test]
    fn xgene3_table2_values_verbatim() {
        let chip = xgene3().build();
        let m = chip.vmin_model();
        let cases = [
            // (utilized PMDs, threads, Vmin@3GHz, Vmin@1.5GHz) — Table II.
            (2usize, 4usize, 780, 770),
            (4, 8, 800, 780),
            (8, 16, 810, 790),
            (16, 32, 830, 820),
        ];
        for (pmds, threads, at_max, at_half) in cases {
            let q_max = VminQuery {
                freq_class: FreqVminClass::Max,
                utilized_pmds: pmds,
                active_threads: threads,
                workload_sensitivity: 0.0,
            };
            let q_half = VminQuery {
                freq_class: FreqVminClass::Reduced,
                ..q_max
            };
            assert_eq!(m.safe_vmin(&q_max).as_mv(), at_max, "{pmds} PMDs @3GHz");
            assert_eq!(m.safe_vmin(&q_half).as_mv(), at_half, "{pmds} PMDs @1.5GHz");
        }
    }

    #[test]
    fn xgene2_figure10_percentages() {
        let chip = xgene2().build();
        let m = chip.vmin_model();
        let mk = |fc| VminQuery {
            freq_class: fc,
            utilized_pmds: 4,
            active_threads: 8,
            workload_sensitivity: 0.0,
        };
        let vmax = m.safe_vmin(&mk(FreqVminClass::Max)).as_mv() as f64;
        let vred = m.safe_vmin(&mk(FreqVminClass::Reduced)).as_mv() as f64;
        let vdiv = m.safe_vmin(&mk(FreqVminClass::Divided)).as_mv() as f64;
        // Skipping step ≈3 %, division ≈15 % total (Fig. 10: 3 % + 12 %).
        let skip_pct = (vmax - vred) / vmax * 100.0;
        let div_pct = (vmax - vdiv) / vmax * 100.0;
        assert!((2.0..=4.5).contains(&skip_pct), "skip {skip_pct}%");
        assert!((13.0..=17.0).contains(&div_pct), "division {div_pct}%");
        // Core allocation (4 PMDs → 2 PMDs at max freq): ≈4 %.
        let q4 = VminQuery {
            freq_class: FreqVminClass::Max,
            utilized_pmds: 4,
            active_threads: 4,
            workload_sensitivity: 0.0,
        };
        let q2 = VminQuery {
            utilized_pmds: 2,
            ..q4
        };
        let alloc_pct =
            (m.safe_vmin(&q4).as_mv() as f64 - m.safe_vmin(&q2).as_mv() as f64) / vmax * 100.0;
        assert!((2.5..=5.5).contains(&alloc_pct), "allocation {alloc_pct}%");
    }

    #[test]
    fn power_operating_points_are_plausible() {
        let x2 = xgene2().build();
        let p2_full = x2
            .power_model()
            .full_load_power_w(Millivolts::new(980), 4, 2400, 1.0, 0.5);
        assert!(p2_full < 35.0 && p2_full > 20.0, "XG2 full load {p2_full}W");
        let p2_idle = x2.power_model().idle_power_w(Millivolts::new(980), 4);
        assert!(p2_idle < 6.0, "XG2 idle {p2_idle}W");

        let x3 = xgene3().build();
        let p3_full = x3
            .power_model()
            .full_load_power_w(Millivolts::new(870), 16, 3000, 1.0, 0.5);
        assert!(
            p3_full < 125.0 && p3_full > 80.0,
            "XG3 full load {p3_full}W"
        );
        let p3_idle = x3.power_model().idle_power_w(Millivolts::new(870), 16);
        assert!(p3_idle < 20.0, "XG3 idle {p3_idle}W");
    }

    #[test]
    fn static_variation_reseed_changes_offsets() {
        let a = xgene3().static_variation_seed(1);
        let b = xgene3().static_variation_seed(2);
        let chip_a = a.build();
        let chip_b = b.build();
        let offs_a: Vec<i32> = (0..16)
            .map(|i| {
                chip_a
                    .vmin_model()
                    .pmd_offset_mv(crate::topology::PmdId::new(i))
            })
            .collect();
        let offs_b: Vec<i32> = (0..16)
            .map(|i| {
                chip_b
                    .vmin_model()
                    .pmd_offset_mv(crate::topology::PmdId::new(i))
            })
            .collect();
        assert_ne!(offs_a, offs_b);
        // FinFET span bound: ±10 mV.
        assert!(offs_a.iter().all(|&o| (-10..=10).contains(&o)));
    }

    #[test]
    fn guardband_shift_moves_tables() {
        let shifted = xgene3().guardband_shift_mv(20).build();
        let base = xgene3().build();
        let cs = CoreSet::first_n(32);
        assert_eq!(
            shifted.current_safe_vmin(cs).as_mv(),
            base.current_safe_vmin(cs).as_mv() + 20
        );
    }

    #[test]
    fn custom_uses_matching_technology_base() {
        let mut spec = xgene2().spec().clone();
        spec.cores = 16;
        spec.name = "hypothetical-16".into();
        let chip = custom(spec, CppcBehavior::DivisionBelowHalf).build();
        assert_eq!(chip.spec().pmds(), 8);
        // Vmin tables inherited from the 28 nm preset.
        assert_eq!(chip.vmin_model().tables().workload_span_mv, 40);
    }
}
