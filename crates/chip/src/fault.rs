//! Deterministic fault injection over the chip model.
//!
//! Real silicon near the safe Vmin misbehaves in ways the paper's daemon
//! must survive: the SLIMpro mailbox can refuse or stall requests, PMU
//! counters can glitch or saturate, transient voltage droops can raise
//! the effective Vmin past the characterized table, and a core can hang
//! mid-migration (§III-B). [`FaultPlan`] injects all of these
//! deterministically from a seed so every failure a resilience run
//! provokes is replayable bit-for-bit.
//!
//! The plan draws from its **own** [`RngStream`] (label `"fault-plan"`),
//! never from the simulator's droop/failure streams, so arming a plan —
//! even one whose rates are all zero — cannot perturb an existing run.
//! A chip without a plan ([`crate::chip::Chip::set_fault_plan`] never
//! called) behaves exactly as before this layer existed.

use crate::voltage::Millivolts;
use avfs_sim::RngStream;
use serde::{Deserialize, Serialize};

/// Per-operation fault probabilities, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRates {
    /// Probability a mailbox request is refused, dropped, or delayed.
    pub mailbox: f64,
    /// Probability a closing monitor window reads glitched counters.
    pub pmu: f64,
    /// Probability a daemon-driven migration hangs mid-flight.
    pub migration: f64,
    /// Probability a droop check opens a transient excursion that raises
    /// the effective Vmin.
    pub droop: f64,
}

impl FaultRates {
    /// No faults at all.
    pub const ZERO: FaultRates = FaultRates {
        mailbox: 0.0,
        pmu: 0.0,
        migration: 0.0,
        droop: 0.0,
    };

    /// The same rate for every fault category.
    pub fn uniform(rate: f64) -> Self {
        let r = rate.clamp(0.0, 1.0);
        FaultRates {
            mailbox: r,
            pmu: r,
            migration: r,
            droop: r,
        }
    }
}

/// How an injected mailbox fault manifests to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MailboxFault {
    /// The management processor refuses the request; state is unchanged.
    Refuse,
    /// The request is lost in flight; state is unchanged and no response
    /// arrives.
    Drop,
    /// The request lands, but the response times out — the caller cannot
    /// distinguish this from a drop and must retry idempotently.
    LatencySpike,
}

/// Counters of everything a plan has injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Mailbox requests refused outright.
    pub mailbox_refusals: u64,
    /// Mailbox requests dropped in flight.
    pub mailbox_drops: u64,
    /// Mailbox requests applied but whose response timed out.
    pub latency_spikes: u64,
    /// Monitor windows that read glitched or saturated counters.
    pub pmu_glitches: u64,
    /// Migrations that hung mid-flight.
    pub migration_hangs: u64,
    /// Droop excursions opened.
    pub droop_excursions: u64,
}

impl FaultStats {
    /// Total injected faults across all categories.
    pub fn total(&self) -> u64 {
        self.mailbox_refusals
            + self.mailbox_drops
            + self.latency_spikes
            + self.pmu_glitches
            + self.migration_hangs
            + self.droop_excursions
    }

    /// Mailbox faults only (the category the daemon's retry loop sees).
    pub fn mailbox_total(&self) -> u64 {
        self.mailbox_refusals + self.mailbox_drops + self.latency_spikes
    }
}

/// How many consecutive droop checks an excursion spans (two monitor
/// ticks ≈ 800 ms, the order of a thermal/load transient).
const EXCURSION_LEN_CHECKS: u32 = 2;

/// How far an active excursion raises the effective safe Vmin, mV.
const EXCURSION_GUARD_MV: u32 = 20;

/// A seeded, deterministic fault-injection plan.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rates: FaultRates,
    rng: RngStream,
    stats: FaultStats,
    /// Remaining droop checks of the currently active excursion.
    excursion_checks_left: u32,
}

impl FaultPlan {
    /// Creates a plan with explicit per-category rates.
    pub fn new(seed: u64, rates: FaultRates) -> Self {
        FaultPlan {
            rates,
            rng: RngStream::from_root(seed, "fault-plan"),
            stats: FaultStats::default(),
            excursion_checks_left: 0,
        }
    }

    /// Creates a plan with one rate for every category.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultPlan::new(seed, FaultRates::uniform(rate))
    }

    /// The configured rates.
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// Everything injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Samples the fate of one mailbox request. Refusals and drops are
    /// twice as likely as latency spikes (refuse 40% / drop 40% /
    /// spike 20% of injected faults).
    pub fn sample_mailbox(&mut self) -> Option<MailboxFault> {
        if !self.rng.chance(self.rates.mailbox) {
            return None;
        }
        let kind = match self.rng.next_u64() % 5 {
            0 | 1 => MailboxFault::Refuse,
            2 | 3 => MailboxFault::Drop,
            _ => MailboxFault::LatencySpike,
        };
        match kind {
            MailboxFault::Refuse => self.stats.mailbox_refusals += 1,
            MailboxFault::Drop => self.stats.mailbox_drops += 1,
            MailboxFault::LatencySpike => self.stats.latency_spikes += 1,
        }
        Some(kind)
    }

    /// Samples whether a migration hangs mid-flight.
    pub fn sample_migration_hang(&mut self) -> bool {
        let hang = self.rng.chance(self.rates.migration);
        if hang {
            self.stats.migration_hangs += 1;
        }
        hang
    }

    /// Samples a PMU glitch for one closing monitor window. Returns the
    /// corrupted `(cycles, l3)` pair to report instead of the real one:
    /// either the L3 counter saturates (reads as if every cycle missed)
    /// or it drops out entirely.
    pub fn sample_pmu_glitch(&mut self, cycles: u64, _l3: u64) -> Option<(u64, u64)> {
        if !self.rng.chance(self.rates.pmu) {
            return None;
        }
        self.stats.pmu_glitches += 1;
        if self.rng.chance(0.5) {
            // Saturation: the L3 counter pins at an absurd rate.
            Some((cycles, cycles))
        } else {
            // Dropout: the counter reads zero for the whole window.
            Some((cycles, 0))
        }
    }

    /// Advances the droop-excursion state by one check (call once per
    /// monitor boundary, *before* the driver is consulted): an active
    /// excursion burns down; otherwise a new one may open.
    pub fn droop_check(&mut self) {
        if self.excursion_checks_left > 0 {
            self.excursion_checks_left -= 1;
        } else if self.rng.chance(self.rates.droop) {
            self.stats.droop_excursions += 1;
            self.excursion_checks_left = EXCURSION_LEN_CHECKS;
        }
    }

    /// True while a droop excursion is raising the effective Vmin.
    pub fn droop_excursion_active(&self) -> bool {
        self.excursion_checks_left > 0
    }

    /// How far an active excursion raises the effective safe Vmin.
    pub fn excursion_guard_mv(&self) -> u32 {
        EXCURSION_GUARD_MV
    }

    /// Applies the excursion guard to a base Vmin, capped at `nominal`
    /// (nominal voltage is safe by construction, excursion or not).
    pub fn effective_vmin(&self, base: Millivolts, nominal: Millivolts) -> Millivolts {
        if self.droop_excursion_active() {
            base.offset(EXCURSION_GUARD_MV as i32).min(nominal)
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_plan_never_fires() {
        let mut plan = FaultPlan::uniform(7, 0.0);
        for _ in 0..1000 {
            assert_eq!(plan.sample_mailbox(), None);
            assert!(!plan.sample_migration_hang());
            assert_eq!(plan.sample_pmu_glitch(1_000_000, 5), None);
            plan.droop_check();
            assert!(!plan.droop_excursion_active());
        }
        assert_eq!(plan.stats(), FaultStats::default());
    }

    #[test]
    fn full_rate_plan_always_fires() {
        let mut plan = FaultPlan::uniform(7, 1.0);
        for _ in 0..100 {
            assert!(plan.sample_mailbox().is_some());
            assert!(plan.sample_migration_hang());
            assert!(plan.sample_pmu_glitch(1_000_000, 5).is_some());
        }
        assert_eq!(plan.stats().mailbox_total(), 100);
        assert_eq!(plan.stats().migration_hangs, 100);
        assert_eq!(plan.stats().pmu_glitches, 100);
    }

    #[test]
    fn sampling_is_deterministic_in_the_seed() {
        let run = |seed| {
            let mut plan = FaultPlan::uniform(seed, 0.3);
            let faults: Vec<Option<MailboxFault>> =
                (0..200).map(|_| plan.sample_mailbox()).collect();
            (faults, plan.stats())
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0, run(12).0);
    }

    #[test]
    fn rates_land_near_target() {
        let mut plan = FaultPlan::uniform(3, 0.05);
        for _ in 0..10_000 {
            let _ = plan.sample_mailbox();
        }
        let hits = plan.stats().mailbox_total();
        assert!((300..=700).contains(&hits), "5% of 10k draws, got {hits}");
    }

    #[test]
    fn excursions_open_and_burn_down() {
        let mut plan = FaultPlan::new(
            5,
            FaultRates {
                droop: 1.0,
                ..FaultRates::ZERO
            },
        );
        assert!(!plan.droop_excursion_active());
        plan.droop_check();
        assert!(plan.droop_excursion_active());
        // Burns down over EXCURSION_LEN_CHECKS further checks.
        plan.droop_check();
        assert!(plan.droop_excursion_active());
        plan.droop_check();
        assert!(!plan.droop_excursion_active());
        assert_eq!(plan.stats().droop_excursions, 1);
    }

    #[test]
    fn effective_vmin_caps_at_nominal() {
        let mut plan = FaultPlan::new(
            5,
            FaultRates {
                droop: 1.0,
                ..FaultRates::ZERO
            },
        );
        let nominal = Millivolts::new(870);
        let base = Millivolts::new(840);
        assert_eq!(plan.effective_vmin(base, nominal), base);
        plan.droop_check();
        assert_eq!(plan.effective_vmin(base, nominal), Millivolts::new(860));
        // A base near nominal is capped, not pushed past it.
        assert_eq!(plan.effective_vmin(Millivolts::new(865), nominal), nominal);
    }

    #[test]
    fn mailbox_fault_mix_covers_all_kinds() {
        let mut plan = FaultPlan::uniform(9, 1.0);
        for _ in 0..500 {
            let _ = plan.sample_mailbox();
        }
        let s = plan.stats();
        assert!(s.mailbox_refusals > 0);
        assert!(s.mailbox_drops > 0);
        assert!(s.latency_spikes > 0);
        assert!(s.mailbox_refusals > s.latency_spikes);
    }
}
