//! Error type for chip-model operations.

use crate::topology::{CoreId, PmdId};
use crate::voltage::Millivolts;
use std::error::Error;
use std::fmt;

/// Errors returned by chip-model operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChipError {
    /// A core index beyond the chip's core count.
    InvalidCore(CoreId),
    /// A PMD index beyond the chip's PMD count.
    InvalidPmd(PmdId),
    /// A requested voltage outside the rail's regulated window.
    VoltageOutOfWindow {
        /// The rejected request.
        requested: Millivolts,
        /// The lowest voltage the regulator can produce.
        floor: Millivolts,
        /// The highest voltage the regulator can produce (the nominal).
        nominal: Millivolts,
    },
    /// A frequency request that does not map onto a 1/8-of-fmax step.
    InvalidFreqStep(u8),
    /// A SLIMpro mailbox message the firmware does not understand.
    UnknownMailboxCommand(u8),
    /// The SLIMpro mailbox refused an otherwise valid request (e.g. the
    /// management processor was busy). Distinct from
    /// [`ChipError::VoltageOutOfWindow`]: the request could have been
    /// honoured and a retry may succeed.
    MailboxRefused {
        /// The refusal reason reported by the management processor.
        reason: String,
    },
    /// A SLIMpro mailbox request (or its response) was lost in flight;
    /// the caller cannot tell whether it was applied and must retry
    /// idempotently.
    MailboxDropped,
}

impl fmt::Display for ChipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChipError::InvalidCore(c) => write!(f, "core {c} does not exist on this chip"),
            ChipError::InvalidPmd(p) => write!(f, "PMD {p} does not exist on this chip"),
            ChipError::VoltageOutOfWindow {
                requested,
                floor,
                nominal,
            } => write!(
                f,
                "requested voltage {requested} outside regulated window [{floor}, {nominal}]"
            ),
            ChipError::InvalidFreqStep(s) => {
                write!(f, "frequency step {s} is not in the valid range 1..=8")
            }
            ChipError::UnknownMailboxCommand(c) => {
                write!(f, "unknown SLIMpro mailbox command 0x{c:02x}")
            }
            ChipError::MailboxRefused { reason } => {
                write!(f, "SLIMpro mailbox refused the request: {reason}")
            }
            ChipError::MailboxDropped => {
                write!(f, "SLIMpro mailbox request lost in flight (no response)")
            }
        }
    }
}

impl Error for ChipError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ChipError::VoltageOutOfWindow {
            requested: Millivolts::new(1200),
            floor: Millivolts::new(700),
            nominal: Millivolts::new(980),
        };
        let s = e.to_string();
        assert!(s.contains("1200"));
        assert!(s.contains("700"));
        assert!(s.contains("980"));
    }

    #[test]
    fn mailbox_errors_are_distinct_and_typed() {
        let refused = ChipError::MailboxRefused {
            reason: "management processor busy".into(),
        };
        assert!(refused.to_string().contains("busy"));
        assert_ne!(refused, ChipError::MailboxDropped);
        assert!(ChipError::MailboxDropped.to_string().contains("lost"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<ChipError>();
    }
}
