//! The simulated process table.
//!
//! A [`Process`] is one issued job: a benchmark instance with a thread
//! count, per-thread remaining work, an affinity/assignment mask, and the
//! PMU-visible accumulators the daemon samples. The paper's daemon only
//! ever sees what a kernel would expose — pids, assignments, and counter
//! values — never the benchmark identity.

use avfs_chip::topology::CoreSet;
use avfs_sim::time::SimTime;
use avfs_workloads::catalog::Benchmark;
use avfs_workloads::perf::ThreadWork;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Process identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Pid(pub u64);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// Lifecycle state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessState {
    /// Admitted but not yet assigned cores (queued).
    Waiting,
    /// Assigned and executing.
    Running,
    /// Completed.
    Finished,
}

/// One simulated process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Process {
    /// Kernel-visible identifier.
    pub pid: Pid,
    /// The program (visible to the simulator, *not* to drivers).
    pub bench: Benchmark,
    /// Threads the job runs with.
    pub threads: usize,
    /// Job-size scale applied to the reference input.
    pub scale: f64,
    /// Remaining per-thread work.
    pub work: ThreadWork,
    /// Completed fraction in `[0, 1]`.
    pub progress: f64,
    /// Lifecycle state.
    pub state: ProcessState,
    /// Cores currently assigned (empty while waiting; `threads` bits when
    /// running).
    pub assigned: CoreSet,
    /// Issue time.
    pub arrived_at: SimTime,
    /// First dispatch time.
    pub started_at: Option<SimTime>,
    /// Completion time.
    pub finished_at: Option<SimTime>,
    /// Migration pause: the process makes no progress until this time.
    pub stalled_until: SimTime,
    /// PMU accumulator: core cycles across all threads.
    pub cycles: u64,
    /// PMU accumulator: retired instructions across all threads.
    pub instructions: u64,
    /// PMU accumulator: L3 accesses across all threads.
    pub l3_accesses: u64,
    /// Number of times the process was migrated.
    pub migrations: u32,
}

impl Process {
    /// Creates a process in the waiting state.
    pub fn new(
        pid: Pid,
        bench: Benchmark,
        threads: usize,
        scale: f64,
        work: ThreadWork,
        arrived_at: SimTime,
    ) -> Self {
        Process {
            pid,
            bench,
            threads,
            scale,
            work,
            progress: 0.0,
            state: ProcessState::Waiting,
            assigned: CoreSet::EMPTY,
            arrived_at,
            started_at: None,
            finished_at: None,
            stalled_until: SimTime::ZERO,
            cycles: 0,
            instructions: 0,
            l3_accesses: 0,
            migrations: 0,
        }
    }

    /// True while the process should accrue progress.
    pub fn is_running(&self) -> bool {
        self.state == ProcessState::Running
    }

    /// Remaining fraction of the job.
    pub fn remaining(&self) -> f64 {
        (1.0 - self.progress).max(0.0)
    }

    /// Turnaround time (arrival → completion), if finished.
    pub fn turnaround(&self) -> Option<avfs_sim::time::SimDuration> {
        self.finished_at
            .map(|t| t.saturating_since(self.arrived_at))
    }

    /// L3 accesses per 1 M cycles over the whole lifetime so far.
    pub fn lifetime_l3c_per_mcycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.l3_accesses as f64 * 1e6 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_sim::time::SimDuration;
    use avfs_workloads::PerfModel;

    fn proc() -> Process {
        let perf = PerfModel::xgene2();
        let work = perf.thread_work(&Benchmark::NpbLu.profile(), 4);
        Process::new(
            Pid(1),
            Benchmark::NpbLu,
            4,
            1.0,
            work,
            SimTime::from_secs(10),
        )
    }

    #[test]
    fn new_process_is_waiting_and_unassigned() {
        let p = proc();
        assert_eq!(p.state, ProcessState::Waiting);
        assert!(p.assigned.is_empty());
        assert!(!p.is_running());
        assert_eq!(p.progress, 0.0);
        assert_eq!(p.remaining(), 1.0);
        assert_eq!(p.turnaround(), None);
    }

    #[test]
    fn turnaround_spans_arrival_to_finish() {
        let mut p = proc();
        p.finished_at = Some(SimTime::from_secs(70));
        assert_eq!(p.turnaround(), Some(SimDuration::from_secs(60)));
    }

    #[test]
    fn lifetime_l3_rate() {
        let mut p = proc();
        assert_eq!(p.lifetime_l3c_per_mcycle(), 0.0);
        p.cycles = 2_000_000;
        p.l3_accesses = 9_000;
        assert!((p.lifetime_l3c_per_mcycle() - 4_500.0).abs() < 1e-9);
    }

    #[test]
    fn remaining_clamps_at_zero() {
        let mut p = proc();
        p.progress = 1.2;
        assert_eq!(p.remaining(), 0.0);
    }
}
