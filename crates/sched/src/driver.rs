//! The placement-driver interface: how policy code steers the system.
//!
//! The paper's daemon is invoked "after (a) either a new process is issued
//! to the system or when a process finishes its execution ... or (b) when
//! a process changes its state (from CPU-intensive to memory-intensive and
//! vice versa)" (§VI-A). [`SysEvent`] is exactly that event set plus the
//! periodic monitoring tick; a [`Driver`] receives each event with a
//! read-only [`SystemView`] and answers with [`Action`]s — pinning
//! processes, setting per-PMD frequency steps, and adjusting the rail
//! voltage through SLIMpro. The simulator applies actions in order, so a
//! driver can express the paper's fail-safe sequence (raise voltage
//! *before* raising frequency or widening the allocation) naturally.

use crate::governor::GovernorMode;
use crate::process::{Pid, ProcessState};
use avfs_chip::freq::FreqStep;
use avfs_chip::topology::{ChipSpec, CoreSet, PmdId};
use avfs_chip::voltage::Millivolts;
use avfs_sim::time::SimTime;
use avfs_workloads::classify::IntensityClass;
use serde::{Deserialize, Serialize};

/// Events a driver is invoked on.
///
/// Non-exhaustive: new event kinds may be delivered in future versions,
/// so out-of-crate drivers must keep a wildcard arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SysEvent {
    /// A new process entered the system (not yet placed).
    ProcessArrived(Pid),
    /// A process completed and released its cores.
    ProcessFinished(Pid),
    /// The monitoring window re-classified a process.
    ClassChanged(Pid, IntensityClass),
    /// Periodic monitoring tick (counter sampling window elapsed).
    MonitorTick,
    /// One of the driver's own actions failed transiently (mailbox
    /// refusal or drop). Delivered synchronously after the failed batch,
    /// with the remainder of that batch discarded — the driver decides
    /// whether to retry, back off, or fall back to a safe mode.
    OperationFault(FaultNotice),
}

impl SysEvent {
    /// Stable snake_case label used in telemetry traces.
    pub fn label(&self) -> &'static str {
        match self {
            SysEvent::ProcessArrived(_) => "process_arrived",
            SysEvent::ProcessFinished(_) => "process_finished",
            SysEvent::ClassChanged(..) => "class_changed",
            SysEvent::MonitorTick => "monitor_tick",
            SysEvent::OperationFault(_) => "operation_fault",
        }
    }
}

/// What failed, as observed by the control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultNotice {
    /// A `SetVoltage` request was refused by the SLIMpro; the rail is
    /// unchanged.
    VoltageRefused(Millivolts),
    /// A `SetVoltage` request (or its response) was lost in flight; the
    /// rail may or may not have moved — only a fresh view tells.
    VoltageDropped(Millivolts),
}

impl FaultNotice {
    /// The voltage the failed request carried.
    pub fn requested(&self) -> Millivolts {
        match *self {
            FaultNotice::VoltageRefused(v) | FaultNotice::VoltageDropped(v) => v,
        }
    }
}

/// Steering actions a driver can request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// Place (or migrate) a process onto an exact core set. The set's
    /// size must equal the process's thread count.
    PinProcess(Pid, CoreSet),
    /// Request a frequency step for one PMD (only honoured in
    /// `Userspace` governor mode; other modes re-assert their own choice).
    SetPmdStep(PmdId, FreqStep),
    /// Request a rail voltage through the SLIMpro mailbox.
    SetVoltage(Millivolts),
    /// Switch the cpufreq governor mode.
    SetGovernor(GovernorMode),
}

/// Kernel-style, sanitized view of one process: everything a real daemon
/// could learn from `/proc` and the PMU, and nothing more (in particular,
/// not the benchmark identity).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessView {
    /// Process id.
    pub pid: Pid,
    /// Thread count.
    pub threads: usize,
    /// Lifecycle state.
    pub state: ProcessState,
    /// Assigned cores (empty while waiting).
    pub assigned: CoreSet,
    /// L3 accesses per 1 M cycles over the last monitoring window
    /// (`None` before the first window completes).
    pub l3c_per_mcycle: Option<f64>,
    /// Current classification, if any window has completed.
    pub class: Option<IntensityClass>,
    /// When the process arrived.
    pub arrived_at: SimTime,
    /// When the in-flight migration pause ends, if one is in progress
    /// (`None` when the process is executing normally). A hung migration
    /// shows up as a stall end far in the future — what the daemon's
    /// watchdog looks for.
    pub stalled_until: Option<SimTime>,
}

/// Read-only snapshot handed to drivers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemView {
    /// Current simulation time.
    pub now: SimTime,
    /// The chip's static description.
    pub spec: ChipSpec,
    /// Current rail voltage.
    pub voltage: Millivolts,
    /// Current per-PMD frequency steps.
    pub pmd_steps: Vec<FreqStep>,
    /// Governor mode in effect.
    pub governor: GovernorMode,
    /// True while a transient droop excursion is raising the effective
    /// safe Vmin (the chip's droop sensor output; §III-B). The daemon
    /// responds by bumping its guardband immediately.
    pub droop_alert: bool,
    /// Live processes (waiting or running), in pid order.
    pub processes: Vec<ProcessView>,
}

impl SystemView {
    /// The union of cores assigned to running processes.
    pub fn busy_cores(&self) -> CoreSet {
        self.processes
            .iter()
            .filter(|p| p.state == ProcessState::Running)
            .fold(CoreSet::EMPTY, |acc, p| acc.union(p.assigned))
    }

    /// Cores not assigned to anyone.
    pub fn free_cores(&self) -> CoreSet {
        CoreSet::first_n(self.spec.cores).difference(self.busy_cores())
    }

    /// The view of one process, if it is live.
    pub fn process(&self, pid: Pid) -> Option<&ProcessView> {
        self.processes.iter().find(|p| p.pid == pid)
    }

    /// PMDs with at least one busy core.
    pub fn utilized_pmds(&self) -> Vec<PmdId> {
        self.busy_cores().utilized_pmds(&self.spec)
    }
}

/// A placement policy: the system invokes it on every [`SysEvent`].
///
/// Implementations live both here ([`DefaultPolicy`]) and in the
/// `avfs-core` crate (the paper's daemon and its evaluation
/// configurations).
pub trait Driver {
    /// Handles one event, returning the actions to apply (possibly none).
    fn on_event(&mut self, view: &SystemView, event: &SysEvent) -> Vec<Action>;

    /// A short name for reports.
    fn name(&self) -> &str;
}

/// The do-nothing policy: default kernel placement (the simulator's
/// spread-across-PMDs assignment) and whatever governor it was created
/// with. This is the paper's **Baseline** when created with
/// [`DefaultPolicy::ondemand`].
#[derive(Debug, Clone, Default)]
pub struct DefaultPolicy {
    switched: bool,
    mode: Option<GovernorMode>,
}

impl DefaultPolicy {
    /// Baseline: kernel placement + `ondemand` governor at nominal
    /// voltage.
    pub fn ondemand() -> Self {
        DefaultPolicy {
            switched: false,
            mode: Some(GovernorMode::Ondemand),
        }
    }

    /// Kernel placement with a specific governor mode.
    pub fn with_governor(mode: GovernorMode) -> Self {
        DefaultPolicy {
            switched: false,
            mode: Some(mode),
        }
    }
}

impl Driver for DefaultPolicy {
    fn on_event(&mut self, _view: &SystemView, _event: &SysEvent) -> Vec<Action> {
        match (self.switched, self.mode) {
            (false, Some(mode)) => {
                self.switched = true;
                vec![Action::SetGovernor(mode)]
            }
            _ => Vec::new(),
        }
    }

    fn name(&self) -> &str {
        "baseline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_chip::presets;
    use avfs_chip::topology::CoreId;

    fn view() -> SystemView {
        let spec = presets::xgene2().spec().clone();
        SystemView {
            now: SimTime::ZERO,
            spec,
            voltage: Millivolts::new(980),
            pmd_steps: vec![FreqStep::MAX; 4],
            governor: GovernorMode::Ondemand,
            droop_alert: false,
            processes: vec![
                ProcessView {
                    pid: Pid(1),
                    threads: 2,
                    state: ProcessState::Running,
                    assigned: [0u16, 1].into_iter().map(CoreId::new).collect(),
                    l3c_per_mcycle: Some(120.0),
                    class: Some(IntensityClass::CpuIntensive),
                    arrived_at: SimTime::ZERO,
                    stalled_until: None,
                },
                ProcessView {
                    pid: Pid(2),
                    threads: 1,
                    state: ProcessState::Waiting,
                    assigned: CoreSet::EMPTY,
                    l3c_per_mcycle: None,
                    class: None,
                    arrived_at: SimTime::from_secs(1),
                    stalled_until: None,
                },
            ],
        }
    }

    #[test]
    fn busy_and_free_cores_partition() {
        let v = view();
        let busy = v.busy_cores();
        let free = v.free_cores();
        assert_eq!(busy.len(), 2);
        assert_eq!(free.len(), 6);
        assert!(busy.intersection(free).is_empty());
        assert_eq!(busy.union(free).len(), 8);
    }

    #[test]
    fn waiting_processes_occupy_nothing() {
        let v = view();
        assert!(!v.busy_cores().contains(CoreId::new(7)));
        assert_eq!(v.utilized_pmds().len(), 1);
    }

    #[test]
    fn process_lookup() {
        let v = view();
        assert_eq!(v.process(Pid(2)).unwrap().threads, 1);
        assert!(v.process(Pid(99)).is_none());
    }

    #[test]
    fn default_policy_sets_governor_once() {
        let v = view();
        let mut d = DefaultPolicy::ondemand();
        let first = d.on_event(&v, &SysEvent::MonitorTick);
        assert_eq!(first, vec![Action::SetGovernor(GovernorMode::Ondemand)]);
        let second = d.on_event(&v, &SysEvent::MonitorTick);
        assert!(second.is_empty());
        assert_eq!(d.name(), "baseline");
    }
}
