//! Simulated OS substrate: processes, scheduling, cpufreq governors, and
//! the full-system simulator.
//!
//! This crate stands in for the Linux kernel pieces the paper's daemon
//! integrates with: the process list and affinity masks, process
//! migration, the per-PMD cpufreq subsystem with its `ondemand` governor,
//! and the kernel-module PMU sampling path. The [`system::System`]
//! simulator binds a [`avfs_chip::Chip`] and the analytic workload models
//! into a deterministic discrete-event simulation that replays a
//! [`avfs_workloads::WorkloadTrace`] under a pluggable placement
//! [`driver::Driver`] — the hook the paper's daemon (crate `avfs-core`)
//! plugs into.
//!
//! # Example
//!
//! ```
//! use avfs_chip::presets;
//! use avfs_sched::driver::DefaultPolicy;
//! use avfs_sched::system::{System, SystemConfig};
//! use avfs_workloads::{GeneratorConfig, PerfModel, WorkloadTrace};
//! use avfs_sim::time::SimDuration;
//!
//! let mut cfg = GeneratorConfig::paper_default(8, 42);
//! cfg.duration = SimDuration::from_secs(120);
//! cfg.job_scale = 0.2;
//! let trace = WorkloadTrace::generate(&cfg);
//!
//! let chip = presets::xgene2().build();
//! let mut system = System::builder(chip, PerfModel::xgene2())
//!     .config(SystemConfig::default())
//!     .build();
//! let metrics = system.run(&trace, &mut DefaultPolicy::ondemand());
//! assert!(metrics.energy_j > 0.0);
//! ```

pub mod driver;
pub mod governor;
pub mod metrics;
pub mod process;
pub mod report;
pub mod system;

pub use driver::{Action, Driver, SysEvent, SystemView};
pub use governor::GovernorMode;
pub use metrics::RunMetrics;
pub use process::{Pid, Process, ProcessState};
pub use report::Report;
pub use system::{RunState, System, SystemBuilder, SystemConfig};
